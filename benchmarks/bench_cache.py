"""Experiment C1 (extension) — the query cache: cold, warm, invalidated.

Three regimes over the same query battery:

- **cold** — the cache is cleared before every run, so each run pays
  the full pipeline (parse, translate, normalize, plan, optimize,
  execute);
- **warm-compile** — result caching off (``CacheConfig(results=False)``),
  so repeats skip compilation but still execute;
- **warm-result** — the default cache, so repeats are version-checked
  lookups.

Shape: warm-result beats cold by well over the 5x the experiment
records; warm-compile sits between. The invalidation storm alternates
a mutation with the query, forcing a recompute every time — the shape
there is correctness (never a stale answer) plus a bounded overhead
over running the same workload without any cache.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import build_travel_db
from repro.cache import CacheConfig

QUERIES = (
    "select distinct c.name from c in Cities where c.population > 100000",
    "select distinct struct(city: c.name, hotel: h.name) "
    "from c in Cities, h in c.hotels where h.stars >= 4",
    "count(select h.name from c in Cities, h in c.hotels)",
    "select struct(city: city, n: count(partition)) "
    "from c in Cities group by city: c.name",
)

NUM_CITIES = 10


def _cached_db(results: bool = True):
    db = build_travel_db(num_cities=NUM_CITIES, seed=3)
    db.enable_cache(CacheConfig(results=results))
    return db


def _run_all(db):
    for oql in QUERIES:
        db.run(oql)


@pytest.mark.parametrize("mode", ["cold", "warm-compile", "warm-result"])
def test_cache_series(benchmark, mode):
    benchmark.group = f"C1 cache n={NUM_CITIES}"
    if mode == "cold":
        db = _cached_db()

        def run():
            db.cache.clear()
            _run_all(db)

    elif mode == "warm-compile":
        db = _cached_db(results=False)
        _run_all(db)
        run = lambda: _run_all(db)  # noqa: E731
    else:
        db = _cached_db()
        _run_all(db)
        run = lambda: _run_all(db)  # noqa: E731
    benchmark(run)
    stats = db.cache.stats.as_dict()
    if mode != "cold":
        assert stats["compile_hits"] > 0


def test_invalidation_storm(benchmark):
    """Mutate-then-query: every query misses, none is ever stale."""
    from repro.calculus import const
    from repro.db import travel_schema
    from repro.db.database import Database
    from repro.objects import add_to_field, run_update, update_where

    db = Database(travel_schema(), cache=False)
    db.load_objects(
        "Cities",
        "City",
        [
            {"name": f"C{i}", "hotels": set(), "hotel_count": 0,
             "population": 1000 * i, "state": "OR"}
            for i in range(20)
        ],
    )
    db.enable_cache()
    query = "sum(select c.hotel_count from c in Cities)"
    program = update_where(
        "Cities", "c", None, [add_to_field("hotel_count", const(1))]
    )
    evaluator = db.evaluator()
    benchmark.group = "C1 invalidation storm"
    state = {"rounds": 0}

    def storm():
        run_update(program, evaluator)
        state["rounds"] += 1
        assert db.run(query) == 20 * state["rounds"]

    benchmark(storm)
    stats = db.cache.stats.as_dict()
    assert stats["invalidations"] > 0
    assert stats["result_hits"] == 0  # every round was invalidated


# -- shape assertions (run by plain pytest, recorded in EXPERIMENTS.md) --------


def test_shape_warm_beats_cold():
    db = _cached_db()
    uncached = build_travel_db(num_cities=NUM_CITIES, seed=3)
    for oql in QUERIES:  # cached answers must match the uncached engine
        assert db.run(oql) == uncached.run(oql)

    def cold():
        db.cache.clear()
        _run_all(db)

    cold_t = _median_time(cold)
    _run_all(db)
    warm_t = _median_time(lambda: _run_all(db))
    assert cold_t / warm_t > 5.0, f"warm result cache should win big, got {cold_t / warm_t:.1f}x"

    compile_db = _cached_db(results=False)
    _run_all(compile_db)
    warm_compile_t = _median_time(lambda: _run_all(compile_db))
    assert warm_compile_t < cold_t, (
        f"skipping compilation should not be slower: "
        f"cold={cold_t * 1e3:.2f}ms warm-compile={warm_compile_t * 1e3:.2f}ms"
    )


def test_shape_alpha_variants_share_one_entry():
    db = _cached_db()
    db.run("select distinct c.name from c in Cities")
    db.run("select distinct x.name from x in Cities")
    stats = db.cache.stats_dict()
    assert stats["compiled_entries"] == 1
    assert stats["compile_hits"] >= 1


def _median_time(fn, repeats: int = 7) -> float:
    """Best-of-N wall time — robust against load spikes, which would
    otherwise make the cold/warm ratio assertions flaky in CI."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)
