"""Experiment J1 (extension) — closure compilation of the hot path.

The JIT targets the *execution* half of a query: once a plan exists
(compiled-query cache, prepared statement, or simply the same plan
executed over and over), every Select predicate, Join key, Unnest path,
Nest key and Reduce head is evaluated once per row. These benchmarks
time exactly that — ``Executor.execute`` over a precompiled plan — with
closure compilation off (the seed's per-row AST interpretation) and on.

Two predicate-heavy workloads carry the headline ≥2x shape:

- **scan-pred** — a single-extent scan whose predicate is a deep
  arithmetic/boolean expression (the shape QL2xx-clean OLAP filters
  take after normalization);
- **unnest-pred** — the travel schema's Cities→hotels→rooms unnest
  pipeline with a correlated multi-conjunct room filter.

Two more series record the honest *non*-headline shapes: cheap
predicates and heads (where row plumbing, not expression evaluation,
dominates) sit well under 2x — the JIT never makes them slower, but
closure compilation cannot speed up work that isn't expression
evaluation. The binding-dict reuse optimization that rode along with
the JIT is measured last, and the honest answer is recorded: on 1-key
binding dicts it is wall-time parity — the test asserts the analysis
engages, results agree, and timing stays inside a noise band.
"""

from __future__ import annotations

import gc
import time
from contextlib import contextmanager
from unittest import mock

import pytest

from benchmarks.conftest import build_company_db, build_travel_db
from repro.algebra import physical
from repro.algebra.physical import Executor
from repro.algebra.translate import build_plan
from repro.jit import JITConfig
from repro.jit.plan import precompile_plan
from repro.normalize import normalize

NUM_EMPLOYEES = 2000
NUM_CITIES = 30

SCAN_PRED = (
    "sum(select 1 from e in Employees where "
    "(e.salary * 3 + e.age * 2 - e.dno) mod 7 < 5 and "
    "e.salary + e.age * e.dno > 10000 and "
    "(e.age - 20) * (e.age - 20) < 2000 and e.dno * e.dno >= 0 and "
    "(e.salary div 100 + e.age * 3) mod 11 != 5 and "
    "e.salary * 2 - e.age * e.dno + 17 > 0)"
)
UNNEST_PRED = (
    "sum(select 1 from c in Cities, h in c.hotels, r in h.rooms where "
    "r.price * 2 + r.beds * 10 > 300 and "
    "(r.price - 50) * (r.beds + 1) < 9000 and r.price mod 7 != 3 and "
    "(r.beds * r.beds + r.price div 10) mod 5 < 4 and "
    "r.price + r.beds * 3 - 7 > 60 and h.stars * 20 + r.price > 100 and "
    "(r.price * r.beds + h.stars) mod 13 != 6 and "
    "r.beds * 2 + h.stars * 3 > 4)"
)
CHEAP_PRED = "sum(select 1 from e in Employees where e.salary > 40000)"
RECORD_HEAD = (
    "select struct(n: e.name, s: e.salary + e.age) "
    "from e in Employees where e.salary > 30000"
)

WORKLOADS = {
    "scan-pred": ("company", SCAN_PRED),
    "unnest-pred": ("travel", UNNEST_PRED),
    "cheap-pred": ("company", CHEAP_PRED),
    "record-head": ("company", RECORD_HEAD),
}


def _dbs():
    return {
        "company": build_company_db(num_employees=NUM_EMPLOYEES, seed=3),
        "travel": build_travel_db(num_cities=NUM_CITIES, seed=3),
    }


def _prepared(db, oql, jit: bool):
    """A (plan, executor) pair ready for repeated execution."""
    plan = db._optimize(build_plan(normalize(db.translate(oql)), pre_normalize=True))
    if jit:
        precompile_plan(plan)
        executor = Executor(
            db.evaluator(), db.catalog.index_mappings(), jit=JITConfig()
        )
    else:
        executor = Executor(db.evaluator(), db.catalog.index_mappings())
    return plan, executor


@contextmanager
def _quiesced_gc():
    """Collector pauses scale with the live heap — after a long pytest
    session they land asymmetrically on the shorter (jit) samples and
    compress the measured ratio. Collect once, then keep the collector
    out of the timed region."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _median_time(fn, repeats: int = 7) -> float:
    """Best-of-N wall time — robust against load spikes in CI."""
    times = []
    with _quiesced_gc():
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
    return min(times)


def _paired_speedup(off, on, repeats: int = 9) -> float:
    """Best-of-N for each side, sampled in alternation so slow drift in
    machine load hits both sides equally."""
    off_times, on_times = [], []
    with _quiesced_gc():
        for _ in range(repeats):
            start = time.perf_counter()
            off()
            off_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            on()
            on_times.append(time.perf_counter() - start)
    return min(off_times) / min(on_times)


# -- benchmark series ----------------------------------------------------------


@pytest.mark.parametrize("mode", ["interpreted", "jit"])
@pytest.mark.parametrize("workload", list(WORKLOADS))
def test_jit_series(benchmark, workload, mode):
    schema, oql = WORKLOADS[workload]
    benchmark.group = f"J1 {workload}"
    db = _dbs()[schema]
    plan, executor = _prepared(db, oql, jit=mode == "jit")
    benchmark(lambda: executor.execute(plan))


# -- shape assertions (run by plain pytest, recorded in EXPERIMENTS.md) --------


def _speedup(oql: str, schema: str, attempts: int = 2) -> float:
    db = _dbs()[schema]
    plan_off, ex_off = _prepared(db, oql, jit=False)
    plan_on, ex_on = _prepared(db, oql, jit=True)
    assert ex_off.execute(plan_off) == ex_on.execute(plan_on)
    return max(
        _paired_speedup(
            lambda: ex_off.execute(plan_off), lambda: ex_on.execute(plan_on)
        )
        for _ in range(attempts)
    )


def test_shape_scan_pred_speedup():
    """Headline 1: a predicate-heavy scan at least doubles."""
    speedup = _speedup(SCAN_PRED, "company")
    assert speedup >= 2.0, f"scan-pred jit speedup {speedup:.2f}x < 2x"


def test_shape_unnest_pred_speedup():
    """Headline 2: the unnest pipeline with a heavy filter doubles."""
    speedup = _speedup(UNNEST_PRED, "travel")
    assert speedup >= 2.0, f"unnest-pred jit speedup {speedup:.2f}x < 2x"


def test_shape_cheap_queries_never_slower():
    """Where plumbing dominates, the JIT must at least break even
    (within measurement noise)."""
    for oql, schema in ((CHEAP_PRED, "company"), (RECORD_HEAD, "company")):
        speedup = _speedup(oql, schema)
        assert speedup >= 0.9, f"jit made a cheap query slower: {speedup:.2f}x"


def test_shape_end_to_end_with_cache():
    """Through Database.run with the compiled-query cache attached (the
    deployment shape the JIT is designed for: compile once, execute per
    call), the jit side must win clearly on the heavy predicate."""
    from repro.cache import CacheConfig
    from repro.db import Database, company_schema, make_company

    def build(jit):
        db = Database(company_schema(), parallel=False, jit=jit)
        # Compile cache only: with the result cache on, both sides
        # collapse to cache hits and nothing executes at all.
        db.enable_cache(CacheConfig(results=False))
        db.load_extents(
            make_company(
                num_departments=max(2, NUM_EMPLOYEES // 10),
                num_employees=NUM_EMPLOYEES,
                seed=3,
            )
        )
        return db

    off_db, on_db = build(False), build(True)
    assert off_db.run(SCAN_PRED) == on_db.run(SCAN_PRED)  # warm the caches
    speedup = _paired_speedup(
        lambda: off_db.run(SCAN_PRED), lambda: on_db.run(SCAN_PRED)
    )
    assert speedup >= 1.5, (
        f"cached end-to-end speedup collapsed: {speedup:.2f}x"
    )


def test_shape_binding_dict_reuse_is_parity():
    """Honest record for EXPERIMENTS.md: the scan-dict reuse fast path
    engages on this plan shape (the analysis marks the scan) yet buys no
    measurable wall time on 1-key binding dicts — CPython allocates them
    too cheaply for the hoist to matter. The assertion is therefore
    *parity within noise*, in both directions: reuse must not regress
    anything, and we must not claim a speedup the data does not show."""
    from repro.algebra.ops import Scan

    db = _dbs()["company"]
    plan, executor = _prepared(db, CHEAP_PRED, jit=False)
    reusable = physical._collect_reusable_scans(plan)
    assert any(
        isinstance(node, Scan) and id(node) in reusable
        for node in _walk(plan)
    ), "reuse analysis did not engage on a plain scan plan"

    baseline = executor.execute(plan)
    patcher = mock.patch.object(
        physical, "_collect_reusable_scans", lambda p: frozenset()
    )

    def fresh_dicts():
        with patcher:
            return executor.execute(plan)

    assert fresh_dicts() == baseline
    # reuse-time / fresh-time: ~1.0 is the honest result
    ratio = _paired_speedup(lambda: executor.execute(plan), fresh_dicts)
    assert 0.75 <= ratio <= 1.33, f"parity band exceeded: {ratio:.2f}x"


def _walk(node):
    yield node
    for child in node.children():
        yield from _walk(child)
