"""Experiment T3 — Table 3: the normalization rules.

For each rule: a witness term on which exactly that rule fires
(before/after recorded in extra_info), plus timing of the full
normalizer on the paper's nested queries and rule-application counts
over the OQL corpus — the "manipulability" evidence.
"""

from __future__ import annotations

import pytest

from repro.calculus import (
    add,
    and_,
    apply,
    bind,
    comp,
    const,
    eq,
    filt,
    gen,
    gt,
    if_,
    lam,
    lt,
    merge,
    proj,
    rec,
    unit,
    var,
    zero,
)
from repro.normalize import RULES_BY_NAME, normalize, normalize_with_trace
from repro.oql import translate_oql

#: rule name -> witness term
WITNESSES = {
    "N1-beta": apply(lam("x", add(var("x"), const(1))), const(2)),
    "N2-proj": proj(rec(a=const(1), b=const(2)), "a"),
    "N3-bind": comp("sum", var("y"), [gen("x", var("Xs")), bind("y", var("x"))]),
    "N4-true": comp("set", var("x"), [gen("x", var("Xs")), filt(const(True))]),
    "N5-false": comp("set", var("x"), [gen("x", var("Xs")), filt(const(False))]),
    "N6-empty": comp("set", var("x"), [gen("x", zero("set"))]),
    "N7-unit": comp("sum", var("x"), [gen("x", unit("list", const(5)))]),
    "N8-merge": comp("set", var("x"), [gen("x", merge("set", var("A"), var("B")))]),
    "N9-flatten": comp(
        "set", var("x"), [gen("x", comp("set", var("y"), [gen("y", var("Ys"))]))]
    ),
    "N10-if-gen": comp("set", var("x"), [gen("x", if_(var("p"), var("A"), var("B")))]),
    "N11-exists": comp(
        "set",
        var("x"),
        [gen("x", var("Xs")), filt(comp("some", eq(var("y"), const(1)), [gen("y", var("Ys"))]))],
    ),
    "N12-and": comp(
        "set",
        var("x"),
        [gen("x", var("Xs")), filt(and_(gt(var("x"), const(0)), lt(var("x"), const(9))))],
    ),
    "N14-zero": merge("set", zero("set"), var("A")),
    "N15-const": lt(const(1), const(2)),
}

CORPUS = [
    "select distinct h.name from h in (select distinct x from c in Cities, "
    "x in c.hotels where c.name = 'Portland')",
    "select distinct c.name from c in Cities where exists h in c.hotels : "
    "h.stars = 5",
    "select distinct r.beds from c in Cities, h in c.hotels, r in h.rooms "
    "where c.name = 'Portland' and h.stars >= 3 and r.price < 200",
    "sum(select h.stars from c in Cities, h in c.hotels)",
    "select distinct c.name from c in Cities where 3 in "
    "(select r.beds from h in c.hotels, r in h.rooms)",
]


@pytest.mark.parametrize("rule_name", sorted(WITNESSES), ids=sorted(WITNESSES))
def test_rule_fires_on_witness(benchmark, rule_name):
    rule = RULES_BY_NAME[rule_name]
    witness = WITNESSES[rule_name]
    benchmark.group = "T3 single rule"

    result = benchmark(lambda: rule.apply(witness))
    assert result is not None, f"{rule_name} did not fire on its witness"
    benchmark.extra_info["before"] = str(witness)
    benchmark.extra_info["after"] = str(result)


def test_portland_derivation(benchmark):
    """The paper's worked derivation: nested query -> one comprehension."""
    nested = translate_oql(CORPUS[0])
    benchmark.group = "T3 normalize"

    def derive():
        result, trace = normalize_with_trace(nested)
        return trace

    trace = benchmark(derive)
    fired = trace.rules_fired()
    assert "N9-flatten" in fired and "N3-bind" in fired
    benchmark.extra_info["derivation"] = trace.render().splitlines()


def test_rule_counts_over_corpus(benchmark):
    """How often each rule fires across the query corpus."""
    terms = [translate_oql(q) for q in CORPUS]
    benchmark.group = "T3 normalize"

    def count_all():
        counts: dict[str, int] = {}
        for term in terms:
            _, trace = normalize_with_trace(term)
            for name, n in trace.rule_counts().items():
                counts[name] = counts.get(name, 0) + n
        return counts

    counts = benchmark(count_all)
    assert counts.get("N9-flatten", 0) >= 2
    assert counts.get("N11-exists", 0) >= 2
    benchmark.extra_info["rule_counts"] = dict(sorted(counts.items()))


@pytest.mark.parametrize("depth", [1, 3, 6])
def test_normalization_cost_vs_nesting_depth(benchmark, depth):
    """Normalizer cost as subquery nesting deepens (series)."""
    benchmark.group = "T3 depth scaling"
    term = comp("set", var("x0"), [gen("x0", var("Base"))])
    for level in range(1, depth + 1):
        term = comp("set", var(f"x{level}"), [gen(f"x{level}", term)])
    result = benchmark(lambda: normalize(term))
    from repro.normalize import is_canonical_comprehension

    assert is_canonical_comprehension(result)
