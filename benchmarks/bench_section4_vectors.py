"""Experiment V1 — section 4.1: vectors and arrays as monoids.

Times every vector example from the paper (reverse, subsequence,
permutation, inner product, matmul, transpose, histogram) plus the
FFT-as-a-query [7], each validated against a direct computation
(numpy for the FFT). The comparison of interest is the calculus
engine's overhead versus plain Python loops — the *shape* claim is
that vector comprehensions express these computations, not that an
interpreter beats BLAS.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.vectors import (
    fft_query,
    histogram_query,
    inner_product_query,
    matmul_query,
    permute_query,
    reverse_query,
    subsequence_query,
    transpose_query,
)


@pytest.mark.parametrize("n", [64, 512])
def test_reverse(benchmark, n):
    benchmark.group = f"V1 reverse n={n}"
    xs = list(range(n))
    out = benchmark(lambda: reverse_query(xs))
    assert out == xs[::-1]


@pytest.mark.parametrize("n", [64, 512])
def test_reverse_python_baseline(benchmark, n):
    benchmark.group = f"V1 reverse n={n}"
    xs = list(range(n))
    out = benchmark(lambda: xs[::-1])
    assert out[0] == n - 1


def test_subsequence(benchmark):
    xs = list(range(512))
    out = benchmark(lambda: subsequence_query(xs, 100, 400))
    assert out == xs[100:400]


def test_permutation(benchmark):
    n = 256
    xs = list(range(n))
    perm = [(i * 97) % n for i in range(n)]  # 97 coprime with 256
    out = benchmark(lambda: permute_query(xs, perm))
    expected = [0] * n
    for i, target in enumerate(perm):
        expected[target] = xs[i]
    assert out == expected


def test_inner_product(benchmark):
    n = 512
    xs = list(range(n))
    ys = list(range(n, 0, -1))
    out = benchmark(lambda: inner_product_query(xs, ys))
    assert out == sum(a * b for a, b in zip(xs, ys))


def test_histogram(benchmark):
    data = [(i * 37) % 100 for i in range(2000)]
    out = benchmark(lambda: histogram_query(data, buckets=10, width=10))
    assert sum(out) == len(data)


@pytest.mark.parametrize("n", [4, 8])
def test_matmul(benchmark, n):
    benchmark.group = f"V1 matmul {n}x{n}"
    rng = np.random.default_rng(n)
    a = rng.integers(0, 9, (n, n)).tolist()
    b = rng.integers(0, 9, (n, n)).tolist()
    out = benchmark(lambda: matmul_query(a, b))
    assert out == (np.array(a) @ np.array(b)).tolist()


def test_transpose(benchmark):
    rng = np.random.default_rng(1)
    a = rng.integers(0, 9, (12, 8)).tolist()
    out = benchmark(lambda: transpose_query(a))
    assert out == np.array(a).T.tolist()


@pytest.mark.parametrize("n", [16, 64, 256])
def test_fft_as_query(benchmark, n):
    """Buneman's FFT as log2(n)+1 vector comprehensions (series)."""
    benchmark.group = f"V1 fft n={n}"
    rng = np.random.default_rng(n)
    xs = rng.normal(size=n).tolist()
    out = benchmark(lambda: fft_query(xs))
    ref = np.fft.fft(xs)
    assert max(abs(m - r) for m, r in zip(out, ref)) < 1e-8


@pytest.mark.parametrize("n", [16, 64, 256])
def test_fft_numpy_baseline(benchmark, n):
    benchmark.group = f"V1 fft n={n}"
    rng = np.random.default_rng(n)
    xs = rng.normal(size=n).tolist()
    benchmark(lambda: np.fft.fft(xs))


def test_fft_scaling_is_nlogn_not_quadratic():
    """Shape: doubling n must not quadruple the comprehension FFT time."""
    import time

    def median_run(n: int) -> float:
        xs = np.random.default_rng(n).normal(size=n).tolist()
        times = []
        for _ in range(5):
            start = time.perf_counter()
            fft_query(xs)
            times.append(time.perf_counter() - start)
        times.sort()
        return times[len(times) // 2]

    t_small, t_big = median_run(128), median_run(512)
    # 4x the input: n log n predicts ~4.5x; quadratic predicts 16x.
    assert t_big / t_small < 10.0
