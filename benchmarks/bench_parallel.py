"""Experiment P2 (extension) — partition-parallel execution.

Two workloads over the same commutative aggregate shape:

- **latency-bound** — the reduce head calls a registered function that
  waits on an external resource (modeled by ``time.sleep``, which
  releases the GIL exactly like a socket or disk read would). Four
  partitions overlap their waits, so the wall-clock shape is a ≥2x
  speedup at 4 workers.
- **cpu-bound** — pure-Python arithmetic in the head. CPython's GIL
  serializes the bytecode, so the honest shape here is *parity* (the
  fan-out must not make the query materially slower), not speedup.
  The series is still recorded: it measures the coordination overhead
  a free-threaded build would shed.

Both shapes also assert the parallel value equals the serial value —
the homomorphism argument of the paper's section 2, measured.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import build_company_db
from repro.parallel import ParallelConfig
from repro.values import to_python

NUM_EMPLOYEES = 64
SLEEP_S = 0.002  # per-element wait of the latency-bound head
WORKERS = 4

LATENCY_QUERY = "sum(select fetch_score(e.salary) from e in Employees)"
CPU_QUERY = "sum(select e.salary * e.age + e.dno from e in Employees)"


def _fetch_score(salary):
    """A stand-in for an external lookup: waits, then scores."""
    time.sleep(SLEEP_S)
    return salary // 100


def _bench_db(parallel=None):
    db = build_company_db(num_employees=NUM_EMPLOYEES, seed=3)
    db.register_function("fetch_score", _fetch_score)
    if parallel is not None:
        db.enable_parallel(parallel)
    return db


def _parallel_config():
    return ParallelConfig(max_workers=WORKERS, min_partition_rows=1)


@pytest.mark.parametrize("mode", ["serial", "parallel"])
@pytest.mark.parametrize("workload", ["latency", "cpu"])
def test_parallel_series(benchmark, workload, mode):
    benchmark.group = f"P2 {workload}-bound n={NUM_EMPLOYEES}"
    db = _bench_db(_parallel_config() if mode == "parallel" else None)
    oql = LATENCY_QUERY if workload == "latency" else CPU_QUERY
    benchmark(lambda: db.run(oql))
    if mode == "parallel":
        stats = db.run_detailed(oql).stats
        assert stats.partitions == WORKERS


# -- shape assertions (run by plain pytest, recorded in EXPERIMENTS.md) --------


def test_shape_latency_bound_speedup_at_4_workers():
    """The headline shape: a commutative aggregate whose head waits on
    an external resource speeds up ≥2x with 4 workers."""
    serial_db = _bench_db()
    par_db = _bench_db(_parallel_config())
    assert to_python(serial_db.run(LATENCY_QUERY)) == to_python(
        par_db.run(LATENCY_QUERY)
    )
    serial_t = _median_time(lambda: serial_db.run(LATENCY_QUERY))
    par_t = _median_time(lambda: par_db.run(LATENCY_QUERY))
    assert serial_t / par_t >= 2.0, (
        f"4-worker fan-out should at least halve a latency-bound "
        f"aggregate: serial={serial_t * 1e3:.1f}ms "
        f"parallel={par_t * 1e3:.1f}ms ({serial_t / par_t:.2f}x)"
    )


def test_shape_cpu_bound_parity_and_equality():
    """Under the GIL a CPU-bound fold must stay near parity — the
    fan-out's value is correctness plus latency overlap, and its cost
    (partitioning + thread coordination) must stay bounded."""
    serial_db = _bench_db()
    par_db = _bench_db(_parallel_config())
    assert to_python(serial_db.run(CPU_QUERY)) == to_python(par_db.run(CPU_QUERY))
    serial_t = _median_time(lambda: serial_db.run(CPU_QUERY))
    par_t = _median_time(lambda: par_db.run(CPU_QUERY))
    assert par_t < serial_t * 3 + 0.01, (
        f"coordination overhead out of bounds: serial={serial_t * 1e3:.2f}ms "
        f"parallel={par_t * 1e3:.2f}ms"
    )


def test_shape_group_by_agrees_under_parallel():
    serial_db = _bench_db()
    par_db = _bench_db(_parallel_config())
    oql = (
        "select struct(d: dno, total: sum(select p.salary from p in partition)) "
        "from e in Employees group by dno: e.dno"
    )
    assert to_python(serial_db.run(oql)) == to_python(par_db.run(oql))


def _median_time(fn, repeats: int = 5) -> float:
    """Best-of-N wall time — robust against load spikes in CI."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)
