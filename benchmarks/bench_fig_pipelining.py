"""Experiment F1 — the pipelining claim.

The paper's argument for normalization: canonical forms maximize
pipelining. We regenerate the series with two nested-query workloads:

- **nested-from**: a subquery materialized in the ``from`` clause; the
  canonical form streams through it instead of building the
  intermediate set;
- **membership**: an uncorrelated subquery in the ``where`` clause; the
  naive evaluator recomputes it *per outer element* (quadratic), while
  the canonical form fuses it into a join (and the algebra engine then
  runs it as a hash join).

Variants per size: ``raw`` (un-normalized term, reference evaluator),
``normalized`` (canonical term, reference evaluator), ``algebra``
(canonical term, optimized plan, pipelined executor). The paper's
expected shape: raw >= normalized >= algebra, with the gap growing.
"""

from __future__ import annotations

import time

import pytest

from repro.algebra import Executor, Optimizer, build_plan
from repro.normalize import normalize
from benchmarks.conftest import build_company_db, build_travel_db

NESTED_FROM = (
    "select distinct h.name from h in "
    "(select distinct x from c in Cities, x in c.hotels) "
    "where h.stars = 5"
)

MEMBERSHIP = (
    "select distinct e.name from e in Employees "
    "where e.dno in (select d.dno from d in Departments where d.floor > 5)"
)

SIZES = [20, 80, 320]


def _setup(workload: str, size: int):
    if workload == "nested-from":
        db = build_travel_db(num_cities=size, seed=1)
        oql = NESTED_FROM
    else:
        db = build_company_db(num_employees=size, seed=1)
        oql = MEMBERSHIP
    raw = db.translate(oql)
    canonical = normalize(raw)
    evaluator = db.evaluator()
    plan = Optimizer(db.catalog.index_keys()).optimize(build_plan(canonical))
    executor = Executor(evaluator, db.catalog.index_mappings())
    return raw, canonical, evaluator, plan, executor


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("workload", ["nested-from", "membership"])
@pytest.mark.parametrize("variant", ["raw", "normalized", "algebra"])
def test_pipelining_series(benchmark, workload, variant, size):
    raw, canonical, evaluator, plan, executor = _setup(workload, size)
    benchmark.group = f"F1 {workload} n={size}"

    if variant == "raw":
        value = benchmark(lambda: evaluator.evaluate(raw))
    elif variant == "normalized":
        value = benchmark(lambda: evaluator.evaluate(canonical))
    else:
        value = benchmark(lambda: executor.execute(plan))

    # All variants must agree — the rewrites are only allowed to be faster.
    assert value == evaluator.evaluate(raw)


def test_shape_membership_quadratic_vs_fused():
    """Shape assertion: at the largest size, the fused membership query
    beats the naive per-row re-evaluation by a widening factor."""
    raw, canonical, evaluator, plan, executor = _setup("membership", SIZES[-1])
    raw_s = _median_time(lambda: evaluator.evaluate(raw))
    algebra_s = _median_time(lambda: executor.execute(plan))
    assert algebra_s < raw_s, (
        f"normalization+algebra ({algebra_s:.4f}s) should beat naive "
        f"({raw_s:.4f}s) on the membership workload"
    )
    # The paper's claim is a *growing* gap; require a real factor here.
    assert raw_s / algebra_s > 2.0


def test_shape_nested_from_normalization_helps():
    """The canonical form never loses to the materializing form."""
    raw, canonical, evaluator, _, _ = _setup("nested-from", SIZES[-1])
    raw_s = _median_time(lambda: evaluator.evaluate(raw))
    norm_s = _median_time(lambda: evaluator.evaluate(canonical))
    assert norm_s < raw_s * 1.25  # at worst parity, typically faster


def _median_time(fn, repeats: int = 7) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]
