#!/usr/bin/env python3
"""Regenerate the EXPERIMENTS.md measurement tables in one run.

Usage:  python -m benchmarks.report [--fast]

Prints, per experiment id (see DESIGN.md section 3), the same rows and
series EXPERIMENTS.md records: the regenerated Table 1, the section 2
example values, the T2 translation table, the Table 3 derivation and
rule counts, the F1 pipelining series, the F2 join/point-query series,
the V1 vector checks and the U1 update timings.
"""

from __future__ import annotations

import sys

import numpy as np

from benchmarks.bench_fig_algebra import _join_executor
from benchmarks.bench_fig_pipelining import MEMBERSHIP, NESTED_FROM, _setup
from benchmarks.bench_table3_rules import CORPUS
from benchmarks.conftest import build_company_db
from repro.algebra import Executor, Optimizer, build_plan
from repro.monoids import table1
from repro.normalize import normalize, normalize_with_trace
from repro.objects import run_update
from repro.obs import Tracer
from repro.oql import translate_oql
from repro.vectors import fft_query


def median_time(fn, repeats: int = 5) -> float:
    """Median wall time of ``fn`` measured through repro.obs spans —
    the same clock and span machinery the query pipeline reports with."""
    tracer = Tracer(enabled=True)
    for _ in range(repeats):
        with tracer.span("call"):
            fn()
    times = sorted(span.duration for span in tracer.roots)
    return times[len(times) // 2]


def heading(text: str) -> None:
    print(f"\n## {text}\n")


def report_t1() -> None:
    heading("T1 — Table 1 (regenerated)")
    rows = table1()
    widths = {key: max(len(key), max(len(str(r[key])) for r in rows)) for key in rows[0]}
    print("  " + "  ".join(key.ljust(widths[key]) for key in rows[0]))
    for row in rows:
        print("  " + "  ".join(str(row[key]).ljust(widths[key]) for key in row))


def report_t3() -> None:
    heading("T3 — the Portland derivation and corpus rule counts")
    nested = translate_oql(CORPUS[0])
    _, trace = normalize_with_trace(nested)
    print(trace.render())
    counts: dict[str, int] = {}
    for query in CORPUS:
        _, t = normalize_with_trace(translate_oql(query))
        for rule, n in t.rule_counts().items():
            counts[rule] = counts.get(rule, 0) + n
    print("\ncorpus rule counts:", dict(sorted(counts.items())))


def report_f1(sizes) -> None:
    heading("F1 — pipelining (raw / normalized / algebra, ms)")
    for workload in ("membership", "nested-from"):
        print(f"  {workload}:")
        for size in sizes:
            raw, canonical, evaluator, plan, executor = _setup(workload, size)
            r = median_time(lambda: evaluator.evaluate(raw))
            n = median_time(lambda: evaluator.evaluate(canonical))
            a = median_time(lambda: executor.execute(plan))
            print(
                f"    n={size:>4}: raw={r * 1e3:8.2f}  normalized={n * 1e3:8.2f}  "
                f"algebra={a * 1e3:8.2f}  raw/algebra={r / a:6.1f}x"
            )


def report_f2(sizes) -> None:
    heading("F2 — join strategies (cross+filter vs hash, ms)")
    for size in sizes:
        db = build_company_db(num_employees=size, seed=2)
        cross_plan, cross_exec = _join_executor(db, use_hash=False)
        hash_plan, hash_exec = _join_executor(db, use_hash=True)
        c = median_time(lambda: cross_exec.execute(cross_plan))
        h = median_time(lambda: hash_exec.execute(hash_plan))
        print(f"  n={size:>4}: cross={c * 1e3:8.1f}  hash={h * 1e3:8.1f}  ratio={c / h:5.1f}x")

    db = build_company_db(num_employees=2000, seed=2)
    point = "select distinct d.name from d in Departments where d.dno = 3"
    term = normalize(db.translate(point))
    scan_plan = Optimizer(set()).optimize(build_plan(term))
    db.create_index("Departments", "dno")
    index_plan = Optimizer(db.catalog.index_keys()).optimize(build_plan(term))
    executor = Executor(db.evaluator(), db.catalog.index_mappings())
    s = median_time(lambda: executor.execute(scan_plan), 7)
    i = median_time(lambda: executor.execute(index_plan), 7)
    print(f"  point query: scan={s * 1e6:7.0f}us  index={i * 1e6:7.0f}us  ratio={s / i:5.0f}x")


def report_v1(sizes) -> None:
    heading("V1 — FFT as a query vs numpy")
    for n in sizes:
        xs = np.random.default_rng(n).normal(size=n).tolist()
        t = median_time(lambda: fft_query(xs), 3)
        err = max(abs(m - r) for m, r in zip(fft_query(xs), np.fft.fft(xs)))
        print(f"  n={n:>4}: {t * 1e3:7.1f} ms   max err vs numpy = {err:.2e}")


def report_g1(sizes) -> None:
    heading("G1 — group-by: nested comprehension vs Nest (ms)")
    from benchmarks.bench_groupby import QUERY

    for size in sizes:
        db = build_company_db(num_employees=size, seed=6)
        interp = median_time(lambda: db.run(QUERY, engine="interpret"), 3)
        nest = median_time(lambda: db.run(QUERY, engine="algebra"), 3)
        print(
            f"  n={size:>4}: interpret={interp * 1e3:9.1f}  nest={nest * 1e3:7.1f}  "
            f"ratio={interp / nest:6.1f}x"
        )


def report_p1(num_cities: int) -> None:
    heading("P1 — pipeline phase breakdown (repro.obs spans, ms)")
    from repro.db import demo_travel_database

    queries = {
        "filter": "select distinct c.name from c in Cities "
                  "where c.population > 100000",
        "unnest": "select distinct h.name from c in Cities, h in c.hotels "
                  "where h.stars >= 4",
        "nested": "select distinct h.name from h in "
                  "(select distinct x from c in Cities, x in c.hotels)",
    }
    from repro.obs.tracer import PIPELINE_PHASES

    db = demo_travel_database(num_cities=num_cities)
    db.profile(True)
    # the tracer's canonical phase order, minus the phases this table
    # doesn't exercise (lint is strict-mode-only, typecheck is opt-in)
    phase_order = tuple(p for p in PIPELINE_PHASES if p not in ("lint", "typecheck"))
    print("  " + "query".ljust(8) + "".join(p.rjust(11) for p in phase_order))
    for name, oql in queries.items():
        result = db.run_detailed(oql)
        phases = result.span.phase_times_ms()
        cells = "".join(f"{phases.get(p, 0.0):11.3f}" for p in phase_order)
        print(f"  {name.ljust(8)}{cells}")
    db.profile(False)


def report_c1() -> None:
    heading("C1 — query cache: cold vs warm pipeline (ms)")
    from benchmarks.bench_cache import NUM_CITIES, QUERIES, _cached_db, _run_all

    db = _cached_db()

    def cold():
        db.cache.clear()
        _run_all(db)

    cold_t = median_time(cold)
    compile_db = _cached_db(results=False)
    _run_all(compile_db)
    warm_compile_t = median_time(lambda: _run_all(compile_db))
    _run_all(db)
    warm_result_t = median_time(lambda: _run_all(db))
    print(
        f"  {len(QUERIES)} queries, n={NUM_CITIES} cities:\n"
        f"    cold (full pipeline)     = {cold_t * 1e3:8.2f}\n"
        f"    warm (compile cache)     = {warm_compile_t * 1e3:8.2f}"
        f"   {cold_t / warm_compile_t:6.1f}x\n"
        f"    warm (result cache)      = {warm_result_t * 1e3:8.2f}"
        f"   {cold_t / warm_result_t:6.1f}x"
    )
    stats = db.cache.stats_dict()
    print(
        f"    counters: compile {stats['compile_hits']} hits / "
        f"{stats['compile_misses']} misses, result {stats['result_hits']} hits / "
        f"{stats['result_misses']} misses, {stats['evictions']} evictions"
    )


def report_te1(num_cities: int) -> None:
    heading("TE1 — fleet telemetry overhead (Database.run, ms)")
    from repro.db import demo_travel_database
    from repro.obs.telemetry.registry import MetricsRegistry

    queries = (
        "select distinct c.name from c in Cities where c.population > 100000",
        "select distinct h.name from c in Cities, h in c.hotels "
        "where h.stars >= 4",
    )
    db = demo_travel_database(num_cities=num_cities)

    def run_all():
        for oql in queries:
            db.run(oql)

    off_t = median_time(run_all, 7)
    db.enable_telemetry(MetricsRegistry())
    on_t = median_time(run_all, 7)
    registry = db.telemetry
    db.disable_telemetry()
    hist = registry.histogram("repro_query_seconds", "").labels()
    print(
        f"  {len(queries)} queries, n={num_cities} cities:\n"
        f"    telemetry off = {off_t * 1e3:7.2f}\n"
        f"    telemetry on  = {on_t * 1e3:7.2f}"
        f"   overhead = {(on_t / off_t - 1) * 100:+5.1f}%\n"
        f"    recorded: {hist.count} observations, "
        f"p50={hist.quantile(0.5) * 1e3:.2f}ms "
        f"p99={hist.quantile(0.99) * 1e3:.2f}ms, "
        f"{len(registry.fingerprints)} query classes"
    )


def report_p2() -> None:
    heading("P2 — partition-parallel execution (4 workers, ms)")
    from benchmarks.bench_parallel import (
        CPU_QUERY,
        LATENCY_QUERY,
        NUM_EMPLOYEES,
        WORKERS,
        _bench_db,
        _parallel_config,
    )

    serial_db = _bench_db()
    par_db = _bench_db(_parallel_config())
    print(f"  n={NUM_EMPLOYEES} employees, {WORKERS} workers:")
    for label, oql in (("latency-bound", LATENCY_QUERY), ("cpu-bound", CPU_QUERY)):
        serial_t = median_time(lambda: serial_db.run(oql))
        par_t = median_time(lambda: par_db.run(oql))
        print(
            f"    {label:<14} serial={serial_t * 1e3:8.2f}  "
            f"parallel={par_t * 1e3:8.2f}   {serial_t / par_t:5.2f}x"
        )
    stats = par_db.run_detailed(LATENCY_QUERY).stats
    print(f"    partitions={stats.partitions} workers={stats.parallel_workers}")


def report_j1() -> None:
    heading("J1 — closure compilation of the hot execution path (ms)")
    from benchmarks.bench_jit import WORKLOADS, _dbs, _prepared

    dbs = _dbs()
    print("  executor-level (plan precompiled once, executed repeatedly):")
    for label, (schema, oql) in WORKLOADS.items():
        plan_off, ex_off = _prepared(dbs[schema], oql, jit=False)
        plan_on, ex_on = _prepared(dbs[schema], oql, jit=True)
        off_t = median_time(lambda: ex_off.execute(plan_off))
        on_t = median_time(lambda: ex_on.execute(plan_on))
        print(
            f"    {label:<12} interpreted={off_t * 1e3:8.2f}  "
            f"jit={on_t * 1e3:8.2f}   {off_t / on_t:5.2f}x"
        )
    db = dbs["company"]
    db.enable_jit()
    result = db.run_detailed(next(iter(WORKLOADS.values()))[1])
    if result.jit is not None:
        print(
            f"    closure coverage on scan-pred: "
            f"compiled={result.jit['compiled']} "
            f"fallback={result.jit['fallback']}"
        )


def report_u1(sizes) -> None:
    heading("U1 — update program timings")
    from benchmarks.bench_section4_updates import _insertion_program, _object_db

    for n in sizes:
        db = _object_db(n)
        program = _insertion_program("City-1")
        evaluator = db.evaluator()
        t = median_time(lambda: run_update(program, evaluator))
        print(f"  n={n:>5}: {t * 1e3:7.2f} ms")


def main(argv=None) -> int:
    fast = "--fast" in (argv if argv is not None else sys.argv[1:])
    f1_sizes = (20, 80) if fast else (20, 80, 320)
    f2_sizes = (50, 200) if fast else (50, 200, 800)
    v1_sizes = (16, 64) if fast else (16, 64, 256)
    u1_sizes = (100,) if fast else (100, 1000)
    g1_sizes = (50,) if fast else (50, 200)
    p1_cities = 8 if fast else 32

    print("# Reproduction report — Fegaras & Maier, SIGMOD 1995")
    report_t1()
    report_t3()
    report_f1(f1_sizes)
    report_f2(f2_sizes)
    report_g1(g1_sizes)
    report_c1()
    report_p1(p1_cities)
    report_p2()
    report_j1()
    report_te1(p1_cities)
    report_v1(v1_sizes)
    report_u1(u1_sizes)
    print("\n(shapes asserted automatically by `pytest benchmarks/`)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
