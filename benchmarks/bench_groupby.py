"""Experiment G1 (extension) — group-by: nested-comprehension vs Nest.

The OQL translator's group-by semantics is a nested comprehension: one
partition subquery per distinct key, re-scanning the input (quadratic
in practice). The Nest operator folds partitions in a single pass.
Series over employee counts; shape: Nest wins with a growing gap.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import build_company_db

QUERY = (
    "select struct(d: dno, total: sum(select p.salary from p in partition), "
    "n: count(partition)) from e in Employees group by dno: e.dno"
)

SIZES = [50, 200, 800]

# The interpreted (nested-comprehension) form is quadratic — measured
# 76 ms / 1.5 s / 22 s over this series — so timed benchmarks cap it at
# 200 employees; the Nest engine runs the full series (4 / 11 / 30 ms).
INTERPRET_CAP = 200


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("engine", ["interpret", "nest"])
def test_group_by_series(benchmark, engine, size):
    if engine == "interpret" and size > INTERPRET_CAP:
        pytest.skip("quadratic interpreter form is too slow to benchmark here")
    db = build_company_db(num_employees=size, seed=6)
    benchmark.group = f"G1 group-by n={size}"
    if engine == "interpret":
        value = benchmark(lambda: db.run(QUERY, engine="interpret"))
    else:
        value = benchmark(lambda: db.run(QUERY, engine="algebra"))
    assert len(value) == max(2, size // 10)


def test_shape_nest_beats_nested_comprehension():
    ratios = []
    for size in (SIZES[0], INTERPRET_CAP):
        db = build_company_db(num_employees=size, seed=6)
        assert db.run(QUERY, engine="algebra") == db.run(QUERY, engine="interpret")
        interp = _median_time(lambda: db.run(QUERY, engine="interpret"))
        nest = _median_time(lambda: db.run(QUERY, engine="algebra"))
        ratios.append(interp / nest)
    assert ratios[-1] > 2.0, f"Nest should win at scale, got {ratios}"
    assert ratios[-1] > ratios[0], f"gap should grow, got {ratios}"


def _median_time(fn, repeats: int = 5) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]
