"""Ablation benches for the design choices DESIGN.md calls out.

A1 — **rule ablation**: the F1 membership workload evaluated after
normalizing with (a) the full Table-3 rule set, (b) without N11
(existential fusion), (c) without N9 (generator flattening). Each
removed rule costs real evaluation time, isolating which rewrite buys
what.

A2 — **accumulator ablation**: comprehension construction through the
O(n) accumulator (the design choice in ``CollectionMonoid``) versus the
textbook right fold of unit/merge the semantics is defined by. Same
results, very different constants (quadratic for list/set merges).

A3 — **build-side ablation**: the hash join with and without the
optimizer's build-on-the-smaller-input flip.
"""

from __future__ import annotations

import pytest

from repro.algebra import Executor, Join, Optimizer, Reduce, build_plan
from repro.eval import Evaluator
from repro.monoids import BAG, LIST, SET
from repro.normalize import DEFAULT_RULES, normalize
from repro.normalize.rules import ExistentialFusion, FlattenGenerator
from benchmarks.conftest import build_company_db

MEMBERSHIP = (
    "select distinct e.name from e in Employees "
    "where e.dno in (select d.dno from d in Departments where d.floor > 5)"
)

RULESETS = {
    "full": DEFAULT_RULES,
    "no-N11": tuple(r for r in DEFAULT_RULES if not isinstance(r, ExistentialFusion)),
    "no-N9": tuple(r for r in DEFAULT_RULES if not isinstance(r, FlattenGenerator)),
}


@pytest.mark.parametrize("ruleset", list(RULESETS), ids=list(RULESETS))
def test_a1_rule_ablation(benchmark, ruleset):
    """Plans built from partially-normalized terms: each missing rule
    leaves a nested comprehension the executor must re-evaluate per row,
    so the timing isolates that rule's contribution to pipelining."""
    db = build_company_db(num_employees=150, seed=4)
    term = normalize(db.translate(MEMBERSHIP), rules=RULESETS[ruleset])
    plan = build_plan(term, pre_normalize=False)
    executor = Executor(db.evaluator())
    benchmark.group = "A1 rule ablation"
    value = benchmark(lambda: executor.execute(plan))
    assert value == db.evaluator().evaluate(db.translate(MEMBERSHIP))
    benchmark.extra_info["normalized"] = str(term)[:160]


_N = 1_500


@pytest.mark.parametrize("monoid_name", ["list", "set", "bag"])
@pytest.mark.parametrize("strategy", ["accumulator", "fold-of-merges"])
def test_a2_accumulator_ablation(benchmark, monoid_name, strategy):
    monoid = {"list": LIST, "set": SET, "bag": BAG}[monoid_name]
    benchmark.group = f"A2 build {monoid_name}"
    items = [i % 997 for i in range(_N)]

    if strategy == "accumulator":
        def build():
            acc = monoid.accumulator()
            for item in items:
                acc.add(item)
            return acc.finish()
    else:
        def build():
            out = monoid.zero()
            for item in items:
                out = monoid.merge(out, monoid.unit(item))
            return out

    value = benchmark(build)
    assert monoid.length(value) > 0


def test_a2_strategies_agree():
    for monoid in (LIST, SET, BAG):
        items = [i % 13 for i in range(200)]
        acc = monoid.accumulator()
        for item in items:
            acc.add(item)
        folded = monoid.zero()
        for item in items:
            folded = monoid.merge(folded, monoid.unit(item))
        assert acc.finish() == folded


JOIN = (
    "select distinct struct(e: e.name, d: d.name) "
    "from d in Departments, e in Employees where e.dno = d.dno"
)


@pytest.mark.parametrize("flip", ["build-side-chosen", "syntactic-order"])
def test_a3_build_side_ablation(benchmark, flip):
    db = build_company_db(num_employees=1200, seed=4)
    plan = build_plan(normalize(db.translate(JOIN)))
    if flip == "build-side-chosen":
        plan = Optimizer(extent_sizes=db.catalog.extent_sizes()).optimize(plan)
    executor = Executor(db.evaluator())
    benchmark.group = "A3 build side"
    value = benchmark(lambda: executor.execute(plan))
    assert len(value) == 1200
