"""Shared benchmark fixtures and reporting helpers.

Running ``pytest benchmarks/ --benchmark-only`` regenerates every series
the reproduction reports (grouped per experiment id from DESIGN.md);
running plain ``pytest benchmarks/`` additionally executes the *shape*
assertions (who wins, by how much) that EXPERIMENTS.md records.
"""

from __future__ import annotations

import pytest

from repro.db import (
    Database,
    company_schema,
    make_company,
    make_travel_agency,
    travel_schema,
)


# The engine benchmarks time repeated identical queries, so the query
# cache (REPRO_CACHE=1) would collapse every timing to a cache hit,
# REPRO_PARALLEL would change what the serial series measures, and
# REPRO_JIT would change what the interpreted baseline measures; the
# builders opt out of all three. bench_cache.py manages its own caches,
# bench_parallel.py its own fan-out, bench_jit.py its own executors.
def build_travel_db(num_cities: int, seed: int = 0) -> Database:
    db = Database(travel_schema(), cache=False, parallel=False, jit=False)
    db.load_extents(
        make_travel_agency(
            num_cities=num_cities, hotels_per_city=5, rooms_per_hotel=6, seed=seed
        )
    )
    return db


def build_company_db(num_employees: int, seed: int = 0) -> Database:
    db = Database(company_schema(), cache=False, parallel=False, jit=False)
    db.load_extents(
        make_company(
            num_departments=max(2, num_employees // 10),
            num_employees=num_employees,
            seed=seed,
        )
    )
    return db


@pytest.fixture(scope="module")
def travel_db() -> Database:
    return build_travel_db(num_cities=10, seed=3)


@pytest.fixture(scope="module")
def company_db() -> Database:
    return build_company_db(num_employees=200, seed=3)
