"""Experiment U1 — section 4.2: identity and update programs.

Times the paper's five object examples, the hotel-insertion update
program across growing extents, and compares the update-comprehension
path against a direct imperative loop over the store (the abstraction
cost of running updates *as queries*).
"""

from __future__ import annotations

import pytest

from repro.calculus import (
    add,
    assign,
    bind,
    comp,
    const,
    deref,
    eq,
    gen,
    new,
    proj,
    rec,
    var,
)
from repro.db import Database, travel_schema
from repro.eval import Evaluator
from repro.objects import add_to_field, run_update, update_where
from repro.values import Record

PAPER_EXAMPLES = {
    "distinct-objects": (
        comp("some", eq(var("x"), var("y")),
             [bind("x", new(const(1))), bind("y", new(const(1)))]),
        False,
    ),
    "alias-equality": (
        comp("some", eq(var("x"), var("y")),
             [bind("x", new(const(1))), bind("y", var("x")),
              assign(var("y"), const(2))]),
        True,
    ),
    "alias-mutation": (
        comp("sum", deref(var("x")),
             [bind("x", new(const(1))), bind("y", var("x")),
              assign(var("y"), const(2))]),
        2,
    ),
    "state-iteration": (
        comp("set", var("e"),
             [bind("x", new(const(()))), assign(var("x"), const((1, 2))),
              gen("e", deref(var("x")))]),
        frozenset({1, 2}),
    ),
    "running-sums": (
        comp("list", deref(var("x")),
             [bind("x", new(const(0))), gen("e", const((1, 2, 3, 4))),
              assign(var("x"), add(deref(var("x")), var("e")))]),
        (1, 3, 6, 10),
    ),
}


@pytest.mark.parametrize("name", sorted(PAPER_EXAMPLES), ids=sorted(PAPER_EXAMPLES))
def test_paper_object_examples(benchmark, name):
    term, expected = PAPER_EXAMPLES[name]
    benchmark.group = "U1 examples"
    value = benchmark(lambda: Evaluator().evaluate(term))
    assert value == expected


def _object_db(num_cities: int) -> Database:
    db = Database(travel_schema())
    db.load_objects(
        "Cities",
        "City",
        [
            {
                "name": f"City-{i}",
                "state": "OR",
                "population": 1000 * i,
                "hotels": set(),
                "hotel_count": 0,
            }
            for i in range(num_cities)
        ],
    )
    return db


def _insertion_program(city: str):
    return update_where(
        "Cities",
        "c",
        eq(proj(var("c"), "name"), const(city)),
        [
            add_to_field("hotels", rec(name=const("New Hotel"), stars=const(4))),
            add_to_field("hotel_count", const(1)),
        ],
    )


@pytest.mark.parametrize("num_cities", [10, 100, 1000])
def test_update_program_series(benchmark, num_cities):
    """The paper's hotel-insertion program as the extent grows."""
    benchmark.group = f"U1 update n={num_cities}"
    db = _object_db(num_cities)
    program = _insertion_program("City-1")
    evaluator = db.evaluator()
    touched = benchmark(lambda: run_update(program, evaluator))
    assert len(touched) == 1


@pytest.mark.parametrize("num_cities", [10, 100, 1000])
def test_direct_imperative_baseline(benchmark, num_cities):
    """The same mutation done by hand against the store."""
    benchmark.group = f"U1 update n={num_cities}"
    db = _object_db(num_cities)
    store = db.store
    objs = list(db.registry.extent("Cities"))

    def imperative():
        touched = []
        for obj in objs:
            state = store.deref(obj)
            if state["name"] == "City-1":
                state = state.with_field(
                    "hotels",
                    frozenset(state["hotels"]) | {Record(name="New Hotel", stars=4)},
                ).with_field("hotel_count", state["hotel_count"] + 1)
                store.assign(obj, state)
                touched.append(obj)
        return touched

    touched = benchmark(imperative)
    assert len(touched) == 1


def test_bulk_update_touches_every_object(benchmark):
    db = _object_db(200)
    program = update_where("Cities", "c", None, [add_to_field("hotel_count", const(1))])
    evaluator = db.evaluator()
    benchmark.group = "U1 bulk"
    touched = benchmark(lambda: run_update(program, evaluator))
    assert len(touched) == 200
