"""Experiment E2 — the section 2 worked examples.

Each benchmark evaluates one of the paper's example comprehensions and
asserts the exact value the paper prints, then times the evaluation
(the reference evaluator's constant factors).
"""

from __future__ import annotations

import pytest

from repro.calculus import add, assign, bind, comp, const, deref, eq, gen, le, new, tup, var
from repro.eval import Evaluator, evaluate
from repro.monoids import OSET
from repro.values import Bag, OrderedSet


def test_list_bag_join_into_set(benchmark):
    """set{ (a,b) | a <- [1,2,3], b <- {{4,5}} } — the flagship example."""
    term = comp(
        "set",
        tup(var("a"), var("b")),
        [gen("a", const((1, 2, 3))), gen("b", const(Bag([4, 5])))],
    )
    value = benchmark(lambda: evaluate(term))
    assert value == frozenset({(1, 4), (1, 5), (2, 4), (2, 5), (3, 4), (3, 5)})


def test_sum_with_predicate(benchmark):
    """sum{ a | a <- [1,2,3], a <= 2 } = 3."""
    term = comp("sum", var("a"), [gen("a", const((1, 2, 3))), le(var("a"), const(2))])
    assert benchmark(lambda: evaluate(term)) == 3


def test_oset_merge_example(benchmark):
    """[2,5,3,1] merged with [3,2,6] = [2,5,3,1,6]."""
    left = OrderedSet([2, 5, 3, 1])
    right = OrderedSet([3, 2, 6])
    value = benchmark(lambda: OSET.merge(left, right))
    assert list(value) == [2, 5, 3, 1, 6]


def test_list_construction_from_units(benchmark):
    """[1]++[2]++[3] = [1,2,3]."""
    from repro.calculus import merge as m, unit, zero

    term = m("list", unit("list", const(1)),
             m("list", unit("list", const(2)), unit("list", const(3))))
    assert benchmark(lambda: evaluate(term)) == (1, 2, 3)


def test_running_sums_object_example(benchmark):
    """list{ !x | x <- new(0), e <- [1..4], x := !x + e } = [1,3,6,10]."""
    term = comp(
        "list",
        deref(var("x")),
        [
            bind("x", new(const(0))),
            gen("e", const((1, 2, 3, 4))),
            assign(var("x"), add(deref(var("x")), var("e"))),
        ],
    )
    value = benchmark(lambda: Evaluator().evaluate(term))
    assert value == (1, 3, 6, 10)


@pytest.mark.parametrize("size", [10, 100, 1000])
def test_evaluator_join_scaling(benchmark, size):
    """Evaluator cost of the flagship join as inputs grow (series)."""
    benchmark.group = "E2 join scaling"
    term = comp(
        "set",
        tup(var("a"), var("b")),
        [gen("a", var("Xs")), gen("b", var("Ys")), eq(var("a"), var("b"))],
    )
    data = {"Xs": tuple(range(size)), "Ys": Bag(range(size))}
    value = benchmark(lambda: evaluate(term, data))
    assert len(value) == size
