"""Experiment T1 — Table 1: the monoid catalog.

Regenerates the paper's Table 1 from the live registry (the rows are
asserted, and printed into the benchmark's ``extra_info``), validates
the monoid laws on every entry, and measures merge / bulk-accumulation
throughput per monoid — the constant factors behind every comprehension.
"""

from __future__ import annotations

import pytest

from repro.monoids import (
    ALL,
    BAG,
    LIST,
    MAX,
    MIN,
    OSET,
    PROD,
    SET,
    SOME,
    STRING,
    SUM,
    hom,
    sorted_monoid,
    table1,
)
from repro.values import Bag, OrderedSet

#: The paper's Table 1, as data (monoid -> C/I flags).
PAPER_TABLE1_CI = {
    "list": "-",
    "set": "CI",
    "bag": "C",
    "oset": "I",
    "string": "-",
    "sorted[f]": "CI",
    "sum": "C",
    "prod": "C",
    "max": "CI",
    "min": "CI",
    "some": "CI",
    "all": "CI",
}

_N = 2_000

_COLLECTION_CASES = {
    "list": (LIST, lambda: tuple(range(50))),
    "set": (SET, lambda: frozenset(range(50))),
    "bag": (BAG, lambda: Bag(range(50))),
    "oset": (OSET, lambda: OrderedSet(range(50))),
    "string": (STRING, lambda: "x" * 50),
}

_PRIMITIVE_CASES = {
    "sum": (SUM, 7),
    "prod": (PROD, 1),
    "max": (MAX, 7),
    "min": (MIN, 7),
    "some": (SOME, True),
    "all": (ALL, True),
}


def test_table1_rows_match_paper(benchmark):
    """The regenerated table's C/I column equals the paper's."""

    def regenerate():
        rows = table1()
        flags = {row["monoid"]: row["C/I"] for row in rows}
        assert flags == PAPER_TABLE1_CI
        return rows

    rows = benchmark(regenerate)
    benchmark.extra_info["rows"] = [
        f"{r['monoid']}: type={r['type']} zero={r['zero']} "
        f"unit={r['unit']} merge={r['merge']} C/I={r['C/I']}"
        for r in rows
    ]


@pytest.mark.parametrize("name", sorted(_COLLECTION_CASES))
def test_collection_merge_throughput(benchmark, name):
    monoid, make = _COLLECTION_CASES[name]
    chunk = make()
    benchmark.group = "T1 merge"

    def merge_many():
        acc = monoid.zero()
        for _ in range(200):
            acc = monoid.merge(acc, chunk)
        return acc

    benchmark(merge_many)


@pytest.mark.parametrize("name", sorted(_COLLECTION_CASES))
def test_collection_accumulator_throughput(benchmark, name):
    """The O(n) bulk path comprehensions actually use."""
    monoid, _ = _COLLECTION_CASES[name]
    benchmark.group = "T1 accumulate"

    def accumulate():
        acc = monoid.accumulator()
        for i in range(_N):
            acc.add(i % 97)
        return acc.finish()

    benchmark(accumulate)


@pytest.mark.parametrize("name", sorted(_PRIMITIVE_CASES))
def test_primitive_merge_throughput(benchmark, name):
    monoid, unit_value = _PRIMITIVE_CASES[name]
    benchmark.group = "T1 primitive"

    def fold():
        acc = monoid.zero()
        for _ in range(_N):
            acc = monoid.merge(acc, unit_value)
        return acc

    benchmark(fold)


def test_sorted_monoid_throughput(benchmark):
    monoid = sorted_monoid(lambda x: x)
    benchmark.group = "T1 accumulate"

    def accumulate():
        acc = monoid.accumulator()
        for i in range(_N):
            acc.add((i * 7919) % 1000)
        return acc.finish()

    out = benchmark(accumulate)
    assert list(out) == sorted(set(out))


def test_hom_throughput(benchmark):
    """The single bulk operator: hom[list -> sum] over 10k elements."""
    data = tuple(range(10_000))
    benchmark.group = "T1 hom"
    result = benchmark(lambda: hom(LIST, SUM, lambda a: a, data))
    assert result == sum(range(10_000))
