"""Experiment F2 — efficient evaluation through the logical algebra.

Regenerates the join-strategy series behind the paper's "amenable to
efficient evaluation" claim: the same equi-join query executed as

- ``cross+filter`` — nested-loop cross product with a residual filter
  (what a calculus evaluator without join recognition does),
- ``hash`` — the hash join the plan builder derives from the equality
  qualifier,
- ``index`` — an index-nested lookup when the selection matches a
  hash index.

Expected shape: cross+filter grows quadratically; hash stays near-linear
and wins everywhere beyond tiny inputs; the index path wins for
selective point queries.
"""

from __future__ import annotations

import time

import pytest

from repro.algebra import Executor, Optimizer, Reduce, Join, Scan, SelectOp, build_plan
from repro.calculus import and_, eq, proj, var
from repro.calculus.ast import MonoidRef
from repro.normalize import normalize
from benchmarks.conftest import build_company_db

JOIN_OQL = (
    "select distinct struct(e: e.name, d: d.name) "
    "from e in Employees, d in Departments where e.dno = d.dno"
)

POINT_OQL = "select distinct d.name from d in Departments where d.dno = 3"

SIZES = [50, 200, 800]


def _join_executor(db, use_hash: bool):
    term = normalize(db.translate(JOIN_OQL))
    plan = build_plan(term)
    if not use_hash:
        plan = _strip_join_keys(plan)
    executor = Executor(db.evaluator())
    return plan, executor


def _strip_join_keys(plan: Reduce) -> Reduce:
    """Demote the hash join to a cross product with a residual filter."""

    def strip(node):
        if isinstance(node, Join) and node.left_keys:
            residual = node.residual
            for left, right in zip(node.left_keys, node.right_keys):
                pred = eq(left, right)
                residual = pred if residual is None else and_(residual, pred)
            return Join(strip(node.left), strip(node.right), residual=residual)
        if isinstance(node, Join):
            return Join(strip(node.left), strip(node.right), residual=node.residual)
        if isinstance(node, SelectOp):
            return SelectOp(strip(node.child), node.pred)
        return node

    return Reduce(plan.monoid, plan.head, strip(plan.child))


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("strategy", ["cross+filter", "hash"])
def test_join_strategy_series(benchmark, strategy, size):
    db = build_company_db(num_employees=size, seed=2)
    plan, executor = _join_executor(db, use_hash=(strategy == "hash"))
    benchmark.group = f"F2 join n={size}"
    value = benchmark(lambda: executor.execute(plan))
    assert len(value) == size  # every employee has a department


@pytest.mark.parametrize("strategy", ["scan", "index"])
def test_point_query_series(benchmark, strategy):
    db = build_company_db(num_employees=800, seed=2)
    if strategy == "index":
        db.create_index("Departments", "dno")
    term = normalize(db.translate(POINT_OQL))
    plan = Optimizer(db.catalog.index_keys()).optimize(build_plan(term))
    executor = Executor(db.evaluator(), db.catalog.index_mappings())
    benchmark.group = "F2 point query"
    value = benchmark(lambda: executor.execute(plan))
    assert value == frozenset({"Dept-3"})


def test_shape_hash_beats_cross_with_growing_gap():
    ratios = []
    for size in (SIZES[0], SIZES[-1]):
        db = build_company_db(num_employees=size, seed=2)
        cross_plan, cross_exec = _join_executor(db, use_hash=False)
        hash_plan, hash_exec = _join_executor(db, use_hash=True)
        assert cross_exec.execute(cross_plan) == hash_exec.execute(hash_plan)
        cross_s = _median_time(lambda: cross_exec.execute(cross_plan))
        hash_s = _median_time(lambda: hash_exec.execute(hash_plan))
        ratios.append(cross_s / hash_s)
    assert ratios[-1] > 1.5, f"hash join should win at scale, got {ratios}"
    assert ratios[-1] > ratios[0], f"gap should grow with size, got {ratios}"


def test_shape_index_beats_full_scan_for_point_query():
    db = build_company_db(num_employees=2000, seed=2)
    term = normalize(db.translate(POINT_OQL))
    scan_plan = Optimizer(set()).optimize(build_plan(term))
    db.create_index("Departments", "dno")
    index_plan = Optimizer(db.catalog.index_keys()).optimize(build_plan(term))
    executor = Executor(db.evaluator(), db.catalog.index_mappings())
    assert executor.execute(scan_plan) == executor.execute(index_plan)
    scan_s = _median_time(lambda: executor.execute(scan_plan))
    index_s = _median_time(lambda: executor.execute(index_plan))
    assert index_s < scan_s


def _median_time(fn, repeats: int = 7) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]
