"""Experiment T2 — the section 3 OQL -> calculus translation.

Regenerates the paper's translation table: every OQL form is parsed,
translated, pretty-printed (asserted against the expected calculus
shape) and evaluated on the travel database, with parse+translate
throughput measured.
"""

from __future__ import annotations

import pytest

from repro.calculus import pretty
from repro.oql import parse, translate_oql
from repro.values import to_python

#: (label, OQL, expected calculus rendering or None, check fn or None)
TRANSLATION_TABLE = [
    (
        "select-distinct",
        "select distinct c.name from c in Cities",
        "set{ c.name | c <- Cities }",
    ),
    (
        "select-bag",
        "select c.name from c in Cities",
        "bag{ c.name | c <- Cities }",
    ),
    (
        "select-where",
        "select distinct h from c in Cities, h in c.hotels where h.stars = 5",
        "set{ h | c <- Cities, h <- c.hotels, (h.stars = 5) }",
    ),
    (
        "exists",
        "exists h in hotels : h.stars > 4",
        "some{ (h.stars > 4) | h <- hotels }",
    ),
    (
        "forall",
        "for all h in hotels : h.stars > 4",
        "all{ (h.stars > 4) | h <- hotels }",
    ),
    (
        "sum",
        "sum(xs)",
        None,  # fresh variable: shape checked separately
    ),
    (
        "struct",
        "struct(a: 1, b: 2)",
        "<a=1, b=2>",
    ),
]


@pytest.mark.parametrize(
    "label,oql,expected",
    TRANSLATION_TABLE,
    ids=[row[0] for row in TRANSLATION_TABLE],
)
def test_translation_table(benchmark, label, oql, expected):
    benchmark.group = "T2 translate"

    def run():
        return translate_oql(oql)

    term = benchmark(run)
    if expected is not None:
        assert pretty(term) == expected
    benchmark.extra_info["oql"] = oql
    benchmark.extra_info["calculus"] = pretty(term)


def test_membership_translates_to_some(benchmark):
    term = benchmark(lambda: translate_oql("3 in xs"))
    rendered = pretty(term)
    assert rendered.startswith("some{ (") and "<- xs" in rendered


def test_count_is_primitive(benchmark):
    """count over a set is NOT hom[set -> sum] (the paper's restriction)."""
    term = benchmark(lambda: translate_oql("count(xs)"))
    assert pretty(term) == "count(xs)"


def test_parser_throughput(benchmark):
    source = (
        "select distinct struct(city: c.name, best: max(select h.stars "
        "from h in c.hotels)) from c in Cities where exists h in c.hotels : "
        "h.stars >= 4 and 'pool' in h.facilities order by c.name"
    )
    benchmark.group = "T2 parse"
    node = benchmark(lambda: parse(source))
    assert node is not None


def test_full_pipeline_portland_query(benchmark, travel_db):
    """The paper's running example evaluated end to end."""
    oql = (
        "select h.name from c in Cities, h in c.hotels, r in h.rooms "
        "where c.name = 'Portland' and r.beds = 3"
    )
    benchmark.group = "T2 end-to-end"
    value = benchmark(lambda: travel_db.run(oql))
    assert to_python(value) is not None
