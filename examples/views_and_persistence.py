#!/usr/bin/env python3
"""Views, persistence and the shell-facing layers.

Run:  python examples/views_and_persistence.py

Demonstrates (1) ODMG `define` views fused into queries by the Table-3
normalizer — zero-cost views; (2) saving/restoring a whole database as
tagged JSON; (3) the calculus-notation parser for scripting terms
directly.
"""

import tempfile
from pathlib import Path

from repro import demo_company_database, parse_calculus, to_python
from repro.db import load_database, save_database
from repro.db.database import Database
from repro.db.sample_data import company_schema


def main() -> None:
    db = demo_company_database(num_departments=6, num_employees=60, seed=8)

    print("=== Views are macro-expanded and fused ===")
    db.define(
        "WellPaid",
        "select distinct e from e in Employees where e.salary > 120000",
    )
    db.define(
        "WellPaidSeniors",
        "select distinct p from p in WellPaid where p.age > 50",
    )
    result = db.run_detailed(
        "select distinct q.name from q in WellPaidSeniors"
    )
    print("query over the composed view:")
    print("  normalized:", result.normalized)
    print("  plan scans the base extent directly:")
    for line in result.plan.render().splitlines():
        print("   ", line)
    print("  result:", sorted(to_python(result.value))[:5], "...")

    print("\n=== Persistence round trip ===")
    db.create_index("Departments", "dno")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "company.json"
        save_database(db, path)
        print(f"saved {path.stat().st_size} bytes")
        restored = load_database(path, company_schema())
        query = (
            "select distinct struct(d: d.name, n: count(partition)) "
            "from e in Employees group by d: element(select distinct x from "
            "x in Departments where x.dno = e.dno)"
        )
        simple = "sum(select e.salary from e in Employees)"
        assert restored.run(simple) == db.run(simple)
        print("restored database answers identically:", restored.run(simple))
        print("indexes survived:", restored.catalog.index_keys())

    print("\n=== Scripting the calculus directly ===")
    term = parse_calculus(
        "set{ <name=e.name, rich=(e.salary > 150000)> "
        "| e <- Employees, e.age < 30 }"
    )
    print("term:", term)
    young = db.run_calculus(term)
    print("young employees:", sorted(to_python(young), key=repr)[:3], "...")


if __name__ == "__main__":
    main()
