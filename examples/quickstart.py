#!/usr/bin/env python3
"""Quickstart: the monoid comprehension calculus in five minutes.

Run:  python examples/quickstart.py

Walks the layers bottom-up: monoids -> comprehensions -> OQL ->
normalization -> algebra plans, printing what each stage produces.
"""

from repro import (
    BAG,
    LIST,
    SET,
    SUM,
    Bag,
    check_hom_well_formed,
    comp,
    const,
    demo_travel_database,
    evaluate,
    gen,
    hom,
    normalize_with_trace,
    table1,
    to_python,
    translate_oql,
    var,
)
from repro.calculus import tup
from repro.errors import WellFormednessError


def section(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def main() -> None:
    section("1. Monoids (Table 1)")
    header = f"{'monoid':<10} {'type':<10} {'zero':<6} {'unit(a)':<8} {'merge':<16} C/I"
    print(header)
    print("-" * len(header))
    for row in table1():
        print(
            f"{row['monoid']:<10} {row['type']:<10} {row['zero']:<6} "
            f"{row['unit']:<8} {row['merge']:<16} {row['C/I']}"
        )

    section("2. Monoid homomorphisms and the C/I restriction")
    print("hom[list -> sum](identity) [1,2,3]  =", hom(LIST, SUM, lambda a: a, (1, 2, 3)))
    print("hom[bag -> sum](\\a.1) {{7,7,8}}     =", hom(BAG, SUM, lambda a: 1, Bag([7, 7, 8])))
    try:
        check_hom_well_formed(SET, SUM)
    except WellFormednessError as err:
        print("hom[set -> sum] rejected:", err)

    section("3. Monoid comprehensions (mixing collection kinds)")
    join = comp(
        "set",
        tup(var("a"), var("b")),
        [gen("a", const((1, 2, 3))), gen("b", const(Bag([4, 5])))],
    )
    print(f"{join}")
    print("  =", sorted(evaluate(join)))

    section("4. OQL translation (section 3 of the paper)")
    oql = (
        "select distinct h.name from c in Cities, h in c.hotels "
        "where c.name = 'Portland' and h.stars >= 3"
    )
    term = translate_oql(oql)
    print("OQL:     ", oql)
    print("calculus:", term)

    section("5. Normalization (Table 3)")
    nested = translate_oql(
        "select distinct h.name from h in "
        "(select distinct x from c in Cities, x in c.hotels "
        " where c.name = 'Portland')"
    )
    flat, trace = normalize_with_trace(nested)
    print(trace.render())

    section("6. A full database run")
    db = demo_travel_database(num_cities=4, seed=1)
    result = db.run_detailed(oql)
    print(result.pipeline_report())
    print("\nas plain Python:", to_python(result.value))


if __name__ == "__main__":
    main()
