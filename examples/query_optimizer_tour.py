#!/usr/bin/env python3
"""A tour of the evaluation stack: plans, pushdown, joins, indexes.

Run:  python examples/query_optimizer_tour.py

Shows, on the company database, how canonical comprehensions become
operator trees; how predicate pushdown, hash-join detection and index
selection change the plan; and what those changes do to the executor's
row counters.
"""

import time

from repro import demo_company_database
from repro.db import Database, company_schema, make_company


def run_and_report(db: Database, title: str, oql: str) -> None:
    print(f"\n--- {title}")
    result = db.run_detailed(oql)
    print("normalized:", result.normalized)
    if result.plan is not None:
        print("plan:")
        for line in result.plan.render().splitlines():
            print("   ", line)
    if result.stats is not None:
        stats = result.stats.as_dict()
        print("stats:", {k: v for k, v in stats.items() if v})
    print("rows out:", _size(result.value))


def _size(value) -> int:
    try:
        return len(value)
    except TypeError:
        return 1


def main() -> None:
    db = demo_company_database(num_departments=20, num_employees=400, seed=5)

    run_and_report(
        db,
        "Selection pushdown (filters sit under the join inputs)",
        "select distinct struct(e: e.name, d: d.name) "
        "from e in Employees, d in Departments "
        "where e.dno = d.dno and e.salary > 150000 and d.floor > 6",
    )

    run_and_report(
        db,
        "Hash join picked automatically for the equi-join",
        "select distinct e.name from e in Employees, d in Departments "
        "where e.dno = d.dno",
    )

    print("\n--- Index selection")
    q = "select distinct d.name from d in Departments where d.dno = 7"
    before = db.run_detailed(q)
    db.create_index("Departments", "dno")
    after = db.run_detailed(q)
    print("without index:", before.plan.render().splitlines()[-1].strip())
    print("   rows scanned:", before.stats.rows_scanned)
    print("with index:   ", after.plan.render().splitlines()[-1].strip())
    print("   rows scanned:", after.stats.rows_scanned,
          "| probes:", after.stats.index_probes)
    assert before.value == after.value

    print("\n--- Nested-loop vs hash join wall-clock (who wins, where)")
    print(f"{'employees':>10} {'nested-loop':>12} {'hash join':>12} {'speedup':>9}")
    for n in (100, 400, 1600):
        grown = Database(company_schema())
        grown.load_extents(make_company(num_departments=n // 10, num_employees=n, seed=1))
        oql = (
            "sum(select e.salary from e in Employees, d in Departments "
            "where e.dno = d.dno)"
        )
        # hash join (auto)
        t0 = time.perf_counter()
        fast = grown.run(oql)
        hash_s = time.perf_counter() - t0
        # force a cross product + residual filter by obscuring the equality
        slow_oql = (
            "sum(select e.salary from e in Employees, d in Departments "
            "where e.dno - d.dno = 0)"
        )
        t0 = time.perf_counter()
        slow = grown.run(slow_oql)
        loop_s = time.perf_counter() - t0
        assert fast == slow
        print(f"{n:>10} {loop_s*1e3:>10.1f}ms {hash_s*1e3:>10.1f}ms {loop_s/hash_s:>8.1f}x")

    print("\n--- Explain with cardinality estimates")
    print(db.explain(
        "select distinct e.name from e in Employees, d in Departments "
        "where e.dno = d.dno and d.floor > 6"
    ))


if __name__ == "__main__":
    main()
