#!/usr/bin/env python3
"""The paper's travel-agency workload, end to end.

Run:  python examples/travel_agency.py

Builds the Cities/Hotels/Rooms database the paper's OQL examples range
over and runs every flavour of query the paper maps into the calculus:
path expressions, nested subqueries, quantifiers, aggregates, sorting,
grouping and methods — printing the calculus term and the plan for the
interesting ones.
"""

from repro import demo_travel_database, to_python


def show(db, title, oql, detail=False):
    print(f"\n--- {title}")
    print(f"OQL: {oql.strip()}")
    result = db.run_detailed(oql)
    if detail:
        print("calculus:  ", result.calculus)
        print("normalized:", result.normalized)
        if result.plan is not None:
            print("plan:")
            for line in result.plan.render().splitlines():
                print("   ", line)
    value = to_python(result.value)
    if isinstance(value, (list, set)):
        value = sorted(value, key=repr)[:6]
    print("result:", value)


def main() -> None:
    db = demo_travel_database(num_cities=6, hotels_per_city=4, rooms_per_hotel=5, seed=42)
    db.create_index("Cities", "name")

    show(
        db,
        "The paper's Portland query (three-bed rooms), with its plan",
        "select distinct h.name from c in Cities, h in c.hotels, r in h.rooms "
        "where c.name = 'Portland' and r.beds = 3",
        detail=True,
    )
    show(
        db,
        "Nested subquery in the from clause (flattened by Table 3)",
        "select distinct h.name from h in "
        "(select distinct x from c in Cities, x in c.hotels "
        " where c.name = 'Portland') where h.stars >= 2",
        detail=True,
    )
    show(
        db,
        "Existential subquery fused into a join",
        "select distinct c.name from c in Cities "
        "where exists h in c.hotels : h.stars = 5",
        detail=True,
    )
    show(
        db,
        "Universal quantification",
        "select distinct c.name from c in Cities "
        "where for all h in c.hotels : h.stars >= 2",
    )
    show(
        db,
        "Aggregation over a nested path",
        "avg(select r.price from c in Cities, h in c.hotels, r in h.rooms)",
    )
    show(
        db,
        "Membership over flattened facilities",
        "select distinct c.name from c in Cities where 'pool' in "
        "flatten(select h.facilities from h in c.hotels)",
    )
    show(
        db,
        "Ordering (sortedbag monoid under the hood)",
        "select struct(name: h.name, stars: h.stars) "
        "from c in Cities, h in c.hotels order by h.stars desc",
    )
    show(
        db,
        "Grouping with partitions (nested bag comprehension)",
        "select struct(stars: s, hotels: count(partition)) "
        "from c in Cities, h in c.hotels group by s: h.stars",
    )
    show(
        db,
        "Method calls from the schema",
        "select distinct struct(city: c.name, cheapest: "
        "h.cheapest_room().price) from c in Cities, h in c.hotels "
        "where c.has_luxury()",
    )

    print("\n--- explain output with cardinality estimates")
    print(
        db.explain(
            "select distinct h.name from c in Cities, h in c.hotels "
            "where c.name = 'Portland' and h.stars >= 3"
        )
    )


if __name__ == "__main__":
    main()
