#!/usr/bin/env python3
"""Section 4.2: identity and updates in the calculus.

Run:  python examples/object_updates.py

Replays the paper's five object examples (with their printed results)
and the hotel-insertion update program, all through the evaluator's
heap-threading semantics.
"""

from repro.calculus import (
    add,
    assign,
    bind,
    comp,
    const,
    deref,
    eq,
    gen,
    new,
    proj,
    rec,
    var,
)
from repro.db import Database, travel_schema
from repro.eval import Evaluator, evaluate
from repro.objects import add_to_field, run_update, update_where
from repro.values import to_python


def show(title, term, expected):
    value = evaluate(term)
    print(f"{title}\n  {term}\n  => {value!r}   (paper: {expected})\n")


def main() -> None:
    print("=== The paper's five object examples ===\n")
    show(
        "distinct objects differ",
        comp("some", eq(var("x"), var("y")),
             [bind("x", new(const(1))), bind("y", new(const(1)))]),
        "false",
    )
    show(
        "aliases are the same object",
        comp("some", eq(var("x"), var("y")),
             [bind("x", new(const(1))), bind("y", var("x")),
              assign(var("y"), const(2))]),
        "true",
    )
    show(
        "mutation through an alias is visible",
        comp("sum", deref(var("x")),
             [bind("x", new(const(1))), bind("y", var("x")),
              assign(var("y"), const(2))]),
        "2",
    )
    show(
        "replace state, then iterate it",
        comp("set", var("e"),
             [bind("x", new(const(()))), assign(var("x"), const((1, 2))),
              gen("e", deref(var("x")))]),
        "{1, 2}",
    )
    show(
        "running sums via a mutable accumulator",
        comp("list", deref(var("x")),
             [bind("x", new(const(0))), gen("e", const((1, 2, 3, 4))),
              assign(var("x"), add(deref(var("x")), var("e")))]),
        "[1, 3, 6, 10]",
    )

    print("=== The update program (hotel insertion) ===\n")
    db = Database(travel_schema())
    db.load_objects(
        "Cities",
        "City",
        [
            {"name": "Portland", "state": "OR", "population": 650_000,
             "hotels": set(), "hotel_count": 0},
            {"name": "Salem", "state": "OR", "population": 170_000,
             "hotels": set(), "hotel_count": 0},
        ],
    )
    program = update_where(
        "Cities",
        "c",
        eq(proj(var("c"), "name"), const("Portland")),
        [
            add_to_field(
                "hotels",
                rec(
                    name=const("Hotel Monaco"),
                    address=const("506 SW Washington St"),
                    stars=const(4),
                    rooms=const(()),
                    facilities=const(frozenset()),
                ),
            ),
            add_to_field("hotel_count", const(1)),
        ],
    )
    print("update comprehension:")
    print(" ", program, "\n")
    touched = run_update(program, db.evaluator())
    print("objects touched:", touched)
    print(
        "hotels in Portland now:",
        to_python(
            db.run(
                "select distinct h.name from c in Cities, h in c.hotels "
                "where c.name = 'Portland'"
            )
        ),
    )
    print(
        "hotel_count per city:",
        to_python(
            db.run("select distinct struct(c: c.name, n: c.hotel_count) from c in Cities")
        ),
    )


if __name__ == "__main__":
    main()
