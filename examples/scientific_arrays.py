#!/usr/bin/env python3
"""Section 4.1: vectors and arrays as monoids — the scientific workload.

Run:  python examples/scientific_arrays.py

Every computation below is a *query*: a vector comprehension evaluated
by the calculus engine. The finale is Buneman's "FFT as a database
query", checked against numpy.
"""

import numpy as np

from repro.calculus import call, const, gen, sub, var
from repro.vectors import (
    fft_query,
    histogram_query,
    inner_product_query,
    matmul_query,
    permute_query,
    reverse_query,
    subsequence_query,
    transpose_query,
    vcomp,
)


def main() -> None:
    print("=== The reversal comprehension, as a term ===")
    n = 6
    term = vcomp(
        "sum", n, var("a"), sub(const(n - 1), var("i")), [gen("a", var("x"), at="i")]
    )
    print("term:   ", term)
    print("reverse:", reverse_query([1, 2, 3, 4, 5, 6]))

    print("\n=== Subsequences and permutations (write-once cell monoid) ===")
    print("subsequence [1..5][1:4]:", subsequence_query([10, 20, 30, 40, 50], 1, 4))
    print("permute abc by (2,0,1): ", permute_query(["a", "b", "c"], [2, 0, 1]))

    print("\n=== Aggregations over vectors ===")
    xs, ys = [1, 2, 3, 4], [4, 3, 2, 1]
    print(f"inner_product({xs}, {ys}) =", inner_product_query(xs, ys))
    data = [0.5, 1.5, 1.7, 2.2, 5.1, 5.9, 0.1]
    print("histogram(width=2, buckets=4):", histogram_query(data, 4, 2))

    print("\n=== Matrices as vectors of vectors ===")
    a = [[1, 2], [3, 4], [5, 6]]
    b = [[7, 8, 9], [10, 11, 12]]
    print("A =", a)
    print("B =", b)
    print("A @ B     =", matmul_query(a, b))
    print("transpose =", transpose_query(a))
    assert matmul_query(a, b) == (np.array(a) @ np.array(b)).tolist()

    print("\n=== The FFT as a database query (Buneman [7]) ===")
    rng = np.random.default_rng(0)
    signal = rng.normal(size=16).tolist()
    mine = fft_query(signal)
    ref = np.fft.fft(signal)
    err = max(abs(m - r) for m, r in zip(mine, ref))
    print(f"n = {len(signal)}: log2(n) butterfly-stage comprehensions")
    print(f"max |calculus FFT - numpy FFT| = {err:.2e}")
    print("first three bins:", [f"{v:.3f}" for v in mine[:3]])


if __name__ == "__main__":
    main()
