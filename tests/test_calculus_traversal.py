"""Free variables, substitution (capture avoidance), alpha equality."""

from repro.calculus import (
    alpha_equal,
    bind,
    comp,
    const,
    eq,
    free_vars,
    fresh_var,
    gen,
    has_effects,
    lam,
    let,
    new,
    proj,
    substitute,
    substitute_many,
    subterms,
    term_size,
    tup,
    var,
)
from repro.calculus.ast import Comprehension, Generator, Lambda, Var


class TestFreeVars:
    def test_const_has_none(self):
        assert free_vars(const(1)) == frozenset()

    def test_var_is_free(self):
        assert free_vars(var("x")) == {"x"}

    def test_lambda_binds(self):
        assert free_vars(lam("x", var("x"))) == frozenset()
        assert free_vars(lam("x", var("y"))) == {"y"}

    def test_let_binds_body_not_value(self):
        term = let("x", var("x"), var("x"))
        assert free_vars(term) == {"x"}  # the value's x is free

    def test_comprehension_generator_scoping(self):
        term = comp("set", var("x"), [gen("x", var("db"))])
        assert free_vars(term) == {"db"}

    def test_generator_source_sees_earlier_binders_only(self):
        term = comp(
            "set",
            var("y"),
            [gen("x", var("db")), gen("y", proj(var("x"), "items"))],
        )
        assert free_vars(term) == {"db"}

    def test_bind_qualifier_scoping(self):
        term = comp("set", var("v"), [bind("v", var("u"))])
        assert free_vars(term) == {"u"}

    def test_index_var_is_bound(self):
        term = comp("set", tup(var("a"), var("i")), [gen("a", var("x"), at="i")])
        assert free_vars(term) == {"x"}

    def test_sorted_key_counts(self):
        from repro.calculus.ast import MonoidRef

        ref = MonoidRef("sorted", key=lam("p", proj(var("p"), var_name := "k")))
        term = Comprehension(ref, var("x"), (Generator("x", var("db")),))
        assert free_vars(term) == {"db"}


class TestSubstitution:
    def test_simple(self):
        assert substitute(var("x"), "x", const(1)) == const(1)

    def test_shadowed_by_lambda(self):
        term = lam("x", var("x"))
        assert substitute(term, "x", const(1)) == term

    def test_capture_avoidance_in_lambda(self):
        # (\y. x)[y/x] must NOT become \y. y
        term = lam("y", var("x"))
        result = substitute(term, "x", var("y"))
        assert isinstance(result, Lambda)
        assert result.body == var("y")
        assert result.param != "y"

    def test_capture_avoidance_in_comprehension(self):
        # set{ x | y <- db }[y/x]: the generator's y must be renamed
        term = comp("set", var("x"), [gen("y", var("db"))])
        result = substitute(term, "x", var("y"))
        assert isinstance(result, Comprehension)
        generator = result.qualifiers[0]
        assert generator.var != "y"
        assert result.head == var("y")

    def test_substitution_into_generator_source(self):
        term = comp("set", var("x"), [gen("x", var("src"))])
        result = substitute(term, "src", var("db"))
        assert result.qualifiers[0].source == var("db")

    def test_generator_var_shadows_in_suffix(self):
        term = comp("set", var("x"), [gen("x", var("x"))])
        result = substitute(term, "x", const(1))
        # the source x was free, the head x was bound
        assert result.qualifiers[0].source == const(1)
        assert result.head == Var(result.qualifiers[0].var)

    def test_substitute_many_is_simultaneous(self):
        term = tup(var("a"), var("b"))
        result = substitute_many(term, {"a": var("b"), "b": var("a")})
        assert result == tup(var("b"), var("a"))

    def test_no_op_mapping(self):
        term = var("x")
        assert substitute_many(term, {}) is term


class TestAlphaEquality:
    def test_alpha_equal_lambdas(self):
        assert alpha_equal(lam("x", var("x")), lam("y", var("y")))

    def test_alpha_unequal_free_vars(self):
        assert not alpha_equal(lam("x", var("a")), lam("x", var("b")))

    def test_alpha_equal_comprehensions(self):
        a = comp("set", var("x"), [gen("x", var("db")), eq(var("x"), const(1))])
        b = comp("set", var("y"), [gen("y", var("db")), eq(var("y"), const(1))])
        assert alpha_equal(a, b)

    def test_alpha_distinguishes_monoids(self):
        a = comp("set", var("x"), [gen("x", var("db"))])
        b = comp("bag", var("x"), [gen("x", var("db"))])
        assert not alpha_equal(a, b)

    def test_alpha_distinguishes_structure(self):
        assert not alpha_equal(const(1), var("x"))
        assert not alpha_equal(eq(var("x"), const(1)), eq(const(1), var("x")))


class TestStructuralHelpers:
    def test_subterms_preorder(self):
        term = eq(var("x"), const(1))
        nodes = list(subterms(term))
        assert nodes[0] is term
        assert var("x") in nodes and const(1) in nodes

    def test_term_size(self):
        assert term_size(const(1)) == 1
        assert term_size(eq(var("x"), const(1))) == 3

    def test_has_effects_detects_new(self):
        assert has_effects(new(const(1)))
        assert has_effects(comp("set", var("x"), [bind("x", new(const(1)))]))
        assert not has_effects(comp("set", var("x"), [gen("x", var("db"))]))

    def test_fresh_var_unique_and_marked(self):
        a, b = fresh_var("x"), fresh_var("x")
        assert a != b
        assert "~" in a
