"""Database-level parallel execution: enablement, equality with the
serial engine, observability integration and the REPL toggle."""

import pytest

from repro.db import Database, company_schema, make_company
from repro.db.database import demo_company_database
from repro.parallel import ParallelConfig
from repro.values import to_python

QUERIES = [
    "sum(select e.salary from e in Employees)",
    "max(select e.age from e in Employees)",
    "count(select e from e in Employees where e.salary > 30000)",
    "select distinct e.dno from e in Employees",
    "select e.name from e in Employees where e.age < 40",
    "select struct(e: e.name, b: d.budget) "
    "from e in Employees, d in Departments where e.dno = d.dno",
    "select struct(d: dno, total: sum(select p.salary from p in partition)) "
    "from e in Employees group by dno: e.dno",
]

FAST = ParallelConfig(max_workers=4, min_partition_rows=1)


@pytest.fixture
def dbs():
    def make(parallel=None):
        db = Database(company_schema(), parallel=parallel)
        db.load_extents(make_company(num_departments=4, num_employees=40, seed=11))
        return db

    return make(), make(FAST)


def test_results_equal_serial(dbs):
    serial, par = dbs
    assert par.parallel is FAST
    for oql in QUERIES:
        assert to_python(serial.run(oql)) == to_python(par.run(oql)), oql


def test_run_detailed_records_fan_out(dbs):
    _, par = dbs
    result = par.run_detailed("sum(select e.salary from e in Employees)")
    assert result.engine == "algebra"
    assert result.stats.partitions == 4
    assert result.stats.parallel_workers == 4


def test_enable_disable_cycle(dbs):
    serial, _ = dbs
    assert serial.parallel is None
    config = serial.enable_parallel(2)
    assert serial.parallel is config and config.max_workers == 2
    serial.disable_parallel()
    assert serial.parallel is None
    serial.enable_parallel()
    assert serial.parallel.max_workers == ParallelConfig().max_workers


def test_constructor_accepts_int_and_true():
    db = Database(company_schema(), parallel=3)
    assert db.parallel.max_workers == 3
    db = Database(company_schema(), parallel=True)
    assert db.parallel == ParallelConfig()


def test_env_var_enables(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL", "4")
    db = Database(company_schema())
    assert db.parallel is not None and db.parallel.max_workers == 4
    monkeypatch.setenv("REPRO_PARALLEL", "off")
    assert Database(company_schema()).parallel is None


def test_explicit_false_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL", "1")
    assert Database(company_schema(), parallel=False).parallel is None


def test_explain_analyze_under_parallel():
    db = demo_company_database()
    db.enable_parallel(FAST)
    out = db.explain(
        "select e.name from e in Employees where e.salary > 20000", analyze=True
    )
    assert "actual=100" in out  # the scan saw every employee exactly once


def test_verify_mode_passes(dbs):
    serial, _ = dbs
    serial.enable_parallel(
        ParallelConfig(max_workers=4, min_partition_rows=1, verify=True)
    )
    for oql in QUERIES:
        serial.run(oql)  # VerificationError would propagate


def test_traced_query_attaches_partition_spans(dbs):
    _, par = dbs
    par.profile(True, sink=lambda line: None)
    result = par.run_detailed("sum(select e.salary from e in Employees)")
    execute = next(s for s in result.span.children if s.name == "execute")
    names = [child.name for child in execute.children]
    assert names == [f"partition[{i}]" for i in range(4)]


def test_telemetry_counts_parallel_queries(dbs):
    from repro.obs.telemetry.registry import MetricsRegistry

    _, par = dbs
    registry = MetricsRegistry()
    par.enable_telemetry(registry)
    par.run("sum(select e.salary from e in Employees)")
    par.run("select e.name from e in Employees")
    counter = registry.counter(
        "repro_parallel_queries_total",
        "queries answered by the partition-parallel engine",
    )
    assert counter.total() == 2
    hist = registry.histogram(
        "repro_parallel_partitions", "partitions per parallel query"
    )
    assert hist.labels().count == 2


def test_cached_results_unaffected(dbs):
    serial, par = dbs
    par.enable_cache()
    oql = "sum(select e.salary from e in Employees)"
    first = to_python(par.run(oql))
    second = to_python(par.run(oql))  # served from the result cache
    assert first == second == to_python(serial.run(oql))


def test_repl_parallel_toggle(dbs):
    from repro.repl import Repl

    serial, _ = dbs
    lines = []
    repl = Repl(serial, out=lines.append)
    repl.handle(":parallel on")
    assert serial.parallel is not None
    assert any("parallel is on" in line for line in lines)
    repl.handle(":parallel off")
    assert serial.parallel is None
    assert any("parallel is off" in line for line in lines)
    repl.handle(":parallel bogus")
    assert any("usage" in line for line in lines)
