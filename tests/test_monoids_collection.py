"""Unit tests for the collection monoids (Table 1, upper half)."""


from repro.monoids import BAG, LIST, OSET, SET, STRING
from repro.values import Bag, OrderedSet


class TestListMonoid:
    def test_triple(self):
        assert LIST.zero() == ()
        assert LIST.unit(1) == (1,)
        assert LIST.merge((1,), (2, 3)) == (1, 2, 3)

    def test_properties(self):
        assert not LIST.commutative and not LIST.idempotent
        assert LIST.properties == frozenset()

    def test_paper_construction(self):
        # [1]++[2]++[3] = [1,2,3]
        assert LIST.merge(LIST.merge(LIST.unit(1), LIST.unit(2)), LIST.unit(3)) == (1, 2, 3)

    def test_iterate_preserves_order(self):
        assert list(LIST.iterate((3, 1, 2))) == [3, 1, 2]

    def test_accumulator(self):
        acc = LIST.accumulator()
        acc.add(1)
        acc.add(1)
        assert acc.finish() == (1, 1)

    def test_from_iterable(self):
        assert LIST.from_iterable([1, 2]) == (1, 2)

    def test_length_and_contains(self):
        assert LIST.length((1, 2, 2)) == 3
        assert LIST.contains((1, 2), 2)
        assert not LIST.contains((1, 2), 5)


class TestSetMonoid:
    def test_triple(self):
        assert SET.zero() == frozenset()
        assert SET.unit(1) == frozenset({1})
        assert SET.merge(frozenset({1}), frozenset({1, 2})) == frozenset({1, 2})

    def test_properties(self):
        assert SET.commutative and SET.idempotent

    def test_iterate_is_canonical_order(self):
        assert list(SET.iterate(frozenset({3, 1, 2}))) == [1, 2, 3]

    def test_accumulator_dedups(self):
        acc = SET.accumulator()
        acc.add(1)
        acc.add(1)
        assert acc.finish() == frozenset({1})


class TestBagMonoid:
    def test_triple(self):
        assert BAG.zero() == Bag()
        assert BAG.unit(1) == Bag([1])
        assert BAG.merge(Bag([1]), Bag([1])) == Bag([1, 1])

    def test_properties(self):
        assert BAG.commutative and not BAG.idempotent

    def test_length_counts_multiplicity(self):
        assert BAG.length(Bag([1, 1, 2])) == 3


class TestOSetMonoid:
    def test_triple(self):
        assert OSET.zero() == OrderedSet()
        assert OSET.unit(1) == OrderedSet([1])

    def test_paper_merge(self):
        merged = OSET.merge(OrderedSet([2, 5, 3, 1]), OrderedSet([3, 2, 6]))
        assert list(merged) == [2, 5, 3, 1, 6]

    def test_properties(self):
        assert not OSET.commutative and OSET.idempotent

    def test_accumulator_dedups_preserving_order(self):
        acc = OSET.accumulator()
        for value in (2, 1, 2, 3):
            acc.add(value)
        assert list(acc.finish()) == [2, 1, 3]


class TestStringMonoid:
    def test_triple(self):
        assert STRING.zero() == ""
        assert STRING.unit("a") == "a"
        assert STRING.merge("ab", "c") == "abc"

    def test_properties(self):
        assert not STRING.commutative and not STRING.idempotent

    def test_iterate_chars(self):
        assert list(STRING.iterate("abc")) == ["a", "b", "c"]

    def test_accumulator(self):
        acc = STRING.accumulator()
        acc.add("x")
        acc.add("y")
        assert acc.finish() == "xy"
