"""The partition-parallel executor: partitioning, config, fan-out,
fallbacks, metrics pairing and trace spans."""

import pytest

from repro.algebra import Executor, IndexScan, Reduce, Scan, build_plan
from repro.calculus import const, proj, var
from repro.calculus.ast import MonoidRef
from repro.errors import DatabaseError, VerificationError
from repro.eval import Evaluator
from repro.obs.metrics import PlanMetrics
from repro.obs.tracer import Tracer
from repro.oql import translate_oql
from repro.parallel import (
    ParallelConfig,
    ParallelExecutor,
    partition_rows,
    resolve_parallel,
)
from repro.parallel.config import config_from_env, parallel_env_enabled
from repro.values import Record


# ---------------------------------------------------------------------------
# partition_rows
# ---------------------------------------------------------------------------


def test_partitions_are_contiguous_in_order_and_nonempty():
    rows = tuple({"x": i} for i in range(17))
    for workers in (1, 2, 3, 4, 8, 17, 40):
        parts = partition_rows(rows, workers)
        assert all(parts), "no empty partitions"
        assert len(parts) <= max(workers, 1)
        flat = tuple(row for part in parts for row in part)
        assert flat == rows, "concatenation restores the scan order"


def test_partitions_cap_at_element_count():
    rows = tuple({"x": i} for i in range(3))
    parts = partition_rows(rows, 8)
    assert len(parts) == 3
    assert [len(p) for p in parts] == [1, 1, 1]


def test_partitions_empty_input():
    assert partition_rows((), 4) == []


def test_partitions_morsel_size():
    rows = tuple({"x": i} for i in range(7))
    parts = partition_rows(rows, 4, morsel_size=2)
    assert [len(p) for p in parts] == [2, 2, 2, 1]


# ---------------------------------------------------------------------------
# config
# ---------------------------------------------------------------------------


def test_config_validation():
    with pytest.raises(DatabaseError):
        ParallelConfig(max_workers=0)
    with pytest.raises(DatabaseError):
        ParallelConfig(min_partition_rows=-1)
    with pytest.raises(DatabaseError):
        ParallelConfig(morsel_size=0)


def test_resolve_parallel_variants():
    assert resolve_parallel(None) is None
    assert resolve_parallel(False) is None
    assert resolve_parallel(True) == ParallelConfig()
    assert resolve_parallel(6).max_workers == 6
    config = ParallelConfig(max_workers=2)
    assert resolve_parallel(config) is config


def test_env_enablement(monkeypatch):
    for value in ("", "0", "false", "off", "no"):
        monkeypatch.setenv("REPRO_PARALLEL", value)
        assert not parallel_env_enabled()
    monkeypatch.setenv("REPRO_PARALLEL", "1")
    assert parallel_env_enabled()
    assert config_from_env() == ParallelConfig()
    monkeypatch.setenv("REPRO_PARALLEL", "8")
    assert config_from_env().max_workers == 8
    monkeypatch.delenv("REPRO_PARALLEL")
    assert not parallel_env_enabled()


# ---------------------------------------------------------------------------
# fan-out vs serial
# ---------------------------------------------------------------------------


@pytest.fixture
def env():
    return {
        "Ns": tuple(Record(k=i % 5, v=i) for i in range(100)),
        "Ds": tuple(Record(k=i, name=f"d{i}") for i in range(5)),
    }


def both(oql, env, config=None, tracer=None, metrics=None):
    plan = build_plan(translate_oql(oql))
    serial = Executor(Evaluator(env)).execute(plan)
    pex = ParallelExecutor(
        Evaluator(env),
        metrics=metrics,
        config=config or ParallelConfig(max_workers=4, min_partition_rows=1),
        tracer=tracer,
    )
    return serial, pex.execute(plan), pex


def test_parallel_sum_equals_serial(env):
    serial, par, pex = both("sum(select n.v from n in Ns)", env)
    assert serial == par == sum(range(100))
    assert pex.last_mode == "parallel"
    assert pex.stats.partitions == 4
    assert pex.stats.parallel_workers == 4


def test_parallel_filter_bag_equals_serial(env):
    serial, par, pex = both("select n.v from n in Ns where n.v > 42", env)
    assert serial == par
    assert pex.last_mode == "parallel"


def test_parallel_stats_match_serial(env):
    plan = build_plan(translate_oql("select n.v from n in Ns where n.v > 42"))
    ref = Executor(Evaluator(env))
    ref.execute(plan)
    pex = ParallelExecutor(
        Evaluator(env), config=ParallelConfig(max_workers=4, min_partition_rows=1)
    )
    pex.execute(plan)
    expected = ref.stats.as_dict()
    got = pex.stats.as_dict()
    assert {k: v for k, v in got.items() if k not in ("partitions", "parallel_workers")} == {
        k: v for k, v in expected.items() if k not in ("partitions", "parallel_workers")
    }


def test_parallel_hash_join_equals_serial(env):
    serial, par, pex = both(
        "select struct(v: n.v, d: d.name) from n in Ns, d in Ds where n.k = d.k",
        env,
    )
    assert serial == par
    assert pex.last_mode == "parallel"
    assert pex.stats.hash_builds == 5


def test_serial_fallback_few_rows(env):
    serial, par, pex = both(
        "sum(select n.v from n in Ns)",
        env,
        config=ParallelConfig(max_workers=4, min_partition_rows=1000),
    )
    assert serial == par
    assert pex.last_mode == "serial"
    assert pex.stats.partitions == 0


def test_serial_fallback_one_worker(env):
    serial, par, pex = both(
        "sum(select n.v from n in Ns)", env, config=ParallelConfig(max_workers=1)
    )
    assert serial == par
    assert pex.last_mode == "serial"


def test_serial_fallback_index_scan(env):
    plan = Reduce(
        MonoidRef("sum"),
        proj(var("n"), "v"),
        IndexScan("n", "Ns", "k", const(3)),
    )
    indexes = {("Ns", "k"): {3: [r for r in env["Ns"] if r["k"] == 3]}}
    serial = Executor(Evaluator(env), indexes).execute(plan)
    pex = ParallelExecutor(
        Evaluator(env),
        indexes,
        config=ParallelConfig(max_workers=4, min_partition_rows=1),
    )
    assert pex.execute(plan) == serial
    assert pex.last_mode == "serial"


def test_morsels_beyond_worker_count(env):
    serial, par, pex = both(
        "select n.v from n in Ns where n.v > 10",
        env,
        config=ParallelConfig(max_workers=3, min_partition_rows=1, morsel_size=7),
    )
    assert serial == par
    assert pex.stats.partitions == 15  # ceil(100 / 7)
    assert pex.stats.parallel_workers == 3


# ---------------------------------------------------------------------------
# group-by (Nest)
# ---------------------------------------------------------------------------


def nest_plan(part_monoid="bag"):
    """Reduce(set, partition, Nest(Scan n <- Ns, k: n.k))."""
    from repro.algebra import Nest

    return Reduce(
        MonoidRef("set"),
        var("partition"),
        Nest(
            Scan("n", var("Ns")),
            (("kk", proj(var("n"), "k")),),
            "partition",
            proj(var("n"), "v"),
            MonoidRef(part_monoid),
        ),
    )


@pytest.mark.parametrize("part_monoid", ["bag", "set", "list"])
def test_parallel_nest_equals_serial(env, part_monoid):
    plan = nest_plan(part_monoid)
    serial = Executor(Evaluator(env)).execute(plan)
    pex = ParallelExecutor(
        Evaluator(env), config=ParallelConfig(max_workers=4, min_partition_rows=1)
    )
    assert pex.execute(plan) == serial
    assert pex.last_mode == "parallel"
    assert pex.stats.rows_grouped == 5


# ---------------------------------------------------------------------------
# metrics pairing
# ---------------------------------------------------------------------------


def test_parallel_metrics_rows_match_serial(env):
    oql = "select n.v from n in Ns where n.v > 42"
    plan = build_plan(translate_oql(oql))
    serial_metrics = PlanMetrics()
    Executor(Evaluator(env), metrics=serial_metrics).execute(plan)
    par_metrics = PlanMetrics()
    pex = ParallelExecutor(
        Evaluator(env),
        metrics=par_metrics,
        config=ParallelConfig(max_workers=4, min_partition_rows=1),
    )
    pex.execute(plan)
    assert pex.last_mode == "parallel"
    serial_rows = {
        type(s.node).__name__: s.rows_out for s in serial_metrics.walk(plan)
    }
    par_rows = {type(s.node).__name__: s.rows_out for s in par_metrics.walk(plan)}
    assert par_rows == serial_rows


def test_parallel_join_metrics_hash_builds(env):
    oql = "select struct(v: n.v, d: d.name) from n in Ns, d in Ds where n.k = d.k"
    plan = build_plan(translate_oql(oql))
    metrics = PlanMetrics()
    pex = ParallelExecutor(
        Evaluator(env),
        metrics=metrics,
        config=ParallelConfig(max_workers=4, min_partition_rows=1),
    )
    pex.execute(plan)
    assert pex.last_mode == "parallel"
    by_name = {type(s.node).__name__: s.metrics for s in metrics.walk(plan)}
    assert by_name["Join"].hash_builds == 5
    assert by_name["Join"].rows_out == 100
    assert by_name["Scan"].rows_out in (100, 5)  # whichever scan walks first


def test_parallel_nest_metrics(env):
    plan = nest_plan()
    metrics = PlanMetrics()
    pex = ParallelExecutor(
        Evaluator(env),
        metrics=metrics,
        config=ParallelConfig(max_workers=4, min_partition_rows=1),
    )
    pex.execute(plan)
    assert pex.last_mode == "parallel"
    by_name = {type(s.node).__name__: s.metrics for s in metrics.walk(plan)}
    assert by_name["Nest"].rows_out == 5
    assert by_name["Scan"].rows_out == 100


def test_serial_fallback_metrics_still_pair(env):
    oql = "select n.v from n in Ns where n.v > 42"
    plan = build_plan(translate_oql(oql))
    metrics = PlanMetrics()
    pex = ParallelExecutor(
        Evaluator(env),
        metrics=metrics,
        config=ParallelConfig(max_workers=4, min_partition_rows=1000),
    )
    pex.execute(plan)
    assert pex.last_mode == "serial"
    by_name = {type(s.node).__name__: s.rows_out for s in metrics.walk(plan)}
    assert by_name["Scan"] == 100
    assert by_name["SelectOp"] == 57


# ---------------------------------------------------------------------------
# tracing + verification
# ---------------------------------------------------------------------------


def test_partition_spans_attach(env):
    tracer = Tracer(enabled=True)
    with tracer.span("execute"):
        serial, par, pex = both("sum(select n.v from n in Ns)", env, tracer=tracer)
    assert serial == par
    root = tracer.roots[-1]
    names = [child.name for child in root.children]
    assert names == [f"partition[{i}]" for i in range(4)]
    assert sum(child.meta["rows"] for child in root.children) == 100


def test_verify_accepts_equivalent_parallel_run(env):
    serial, par, pex = both(
        "sum(select n.v from n in Ns)",
        env,
        config=ParallelConfig(max_workers=4, min_partition_rows=1, verify=True),
    )
    assert serial == par
    assert pex.last_mode == "parallel"


def test_verify_rejects_divergent_values():
    from repro.analysis.verifier import check_parallel_equivalence

    with pytest.raises(VerificationError):
        check_parallel_equivalence(object(), 10, 11)
    # float reassociation tolerance
    check_parallel_equivalence(object(), 0.1 + 0.2 + 0.3, 0.1 + (0.2 + 0.3))
