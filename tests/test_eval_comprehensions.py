"""Comprehension semantics — including the paper's section 2 examples."""

import pytest

from repro.calculus import (
    bind,
    comp,
    const,
    filt,
    gen,
    hom,
    le,
    merge,
    mul,
    tup,
    unit,
    var,
    zero,
)
from repro.calculus.ast import Comprehension, Lambda, MonoidRef
from repro.errors import EvaluationError, WellFormednessError
from repro.eval import evaluate
from repro.values import Bag, OrderedSet


class TestPaperSection2Examples:
    def test_list_bag_join_into_set(self):
        """set{ (a,b) | a <- [1,2,3], b <- {{4,5}} } from the paper."""
        term = comp(
            "set",
            tup(var("a"), var("b")),
            [gen("a", const((1, 2, 3))), gen("b", const(Bag([4, 5])))],
        )
        assert evaluate(term) == frozenset(
            {(1, 4), (1, 5), (2, 4), (2, 5), (3, 4), (3, 5)}
        )

    def test_sum_with_predicate(self):
        """sum{ a | a <- [1,2,3], a <= 2 } = 3."""
        term = comp("sum", var("a"), [gen("a", const((1, 2, 3))), le(var("a"), const(2))])
        assert evaluate(term) == 3

    def test_list_bag_join_smaller(self):
        """set{ (x,y) | x <- [1,2], y <- {{3,4,3}} } dedups."""
        term = comp(
            "set",
            tup(var("x"), var("y")),
            [gen("x", const((1, 2))), gen("y", const(Bag([3, 4, 3])))],
        )
        assert evaluate(term) == frozenset({(1, 3), (1, 4), (2, 3), (2, 4)})


class TestOutputMonoids:
    def test_bag_output_keeps_duplicates(self):
        term = comp("bag", const(1), [gen("x", const((1, 2, 3)))])
        assert evaluate(term) == Bag([1, 1, 1])

    def test_list_output_order(self):
        term = comp("list", mul(var("x"), const(2)), [gen("x", const((3, 1, 2)))])
        assert evaluate(term) == (6, 2, 4)

    def test_oset_output(self):
        term = comp("oset", var("x"), [gen("x", const((2, 1, 2, 3)))])
        assert evaluate(term) == OrderedSet([2, 1, 3])

    def test_string_output(self):
        term = comp("string", var("c"), [gen("c", const("abc"))])
        assert evaluate(term) == "abc"

    def test_prod_output(self):
        term = comp("prod", var("x"), [gen("x", const((2, 3, 4)))])
        assert evaluate(term) == 24

    def test_max_min(self):
        xs = const((5, 1, 9))
        assert evaluate(comp("max", var("x"), [gen("x", xs)])) == 9
        assert evaluate(comp("min", var("x"), [gen("x", xs)])) == 1

    def test_empty_aggregates(self):
        assert evaluate(comp("sum", var("x"), [gen("x", const(()))])) == 0
        assert evaluate(comp("max", var("x"), [gen("x", const(()))])) is None
        assert evaluate(comp("some", var("x"), [gen("x", const(()))])) is False
        assert evaluate(comp("all", var("x"), [gen("x", const(()))])) is True

    def test_sorted_comprehension(self):
        ref = MonoidRef("sorted", key=Lambda("x", var("x")))
        term = Comprehension(ref, var("x"), (gen("x", const((3, 1, 2, 1))),))
        assert evaluate(term) == (1, 2, 3)

    def test_sortedbag_comprehension(self):
        ref = MonoidRef("sortedbag", key=Lambda("x", var("x")))
        term = Comprehension(ref, var("x"), (gen("x", const((3, 1, 2, 1))),))
        assert evaluate(term) == (1, 1, 2, 3)


class TestQualifiers:
    def test_binding_qualifier(self):
        term = comp("sum", var("y"), [gen("x", const((1, 2))), bind("y", mul(var("x"), var("x")))])
        assert evaluate(term) == 5

    def test_predicate_qualifier_must_be_boolean(self):
        term = comp("set", var("x"), [gen("x", const((1,))), filt(const(1))])
        with pytest.raises(EvaluationError):
            evaluate(term)

    def test_dependent_generators(self):
        data = ((1, (10, 11)), (2, (20,)))
        from repro.calculus import index

        term = comp(
            "list",
            var("y"),
            [gen("p", const(data)), gen("y", index(var("p"), const(1)))],
        )
        assert evaluate(term) == (10, 11, 20)

    def test_generator_over_string(self):
        term = comp("list", var("c"), [gen("c", const("ab"))])
        assert evaluate(term) == ("a", "b")

    def test_generator_over_non_collection_fails(self):
        term = comp("set", var("x"), [gen("x", const(3))])
        with pytest.raises(EvaluationError):
            evaluate(term)

    def test_indexed_generator_over_list(self):
        term = comp(
            "list", tup(var("i"), var("a")), [gen("a", const(("x", "y")), at="i")]
        )
        assert evaluate(term) == ((0, "x"), (1, "y"))

    def test_indexed_generator_over_set_rejected(self):
        term = comp(
            "list", var("a"), [gen("a", const(frozenset({1})), at="i")]
        )
        with pytest.raises(EvaluationError):
            evaluate(term)

    def test_set_iteration_is_deterministic(self):
        term = comp("list", var("x"), [gen("x", const(frozenset({3, 1, 2})))])
        assert evaluate(term) == (1, 2, 3)


class TestZeroUnitMerge:
    def test_zero(self):
        assert evaluate(zero("set")) == frozenset()
        assert evaluate(zero("sum")) == 0

    def test_unit(self):
        assert evaluate(unit("bag", const(3))) == Bag([3])

    def test_merge(self):
        term = merge("list", const((1,)), const((2,)))
        assert evaluate(term) == (1, 2)

    def test_nested_comprehension_in_head(self):
        inner = comp("sum", var("y"), [gen("y", var("x"))])
        term = comp("list", inner, [gen("x", const(((1, 2), (3,))))])
        assert evaluate(term) == (3, 3)


class TestHomTerm:
    def test_hom_evaluation(self):
        term = hom("list", "sum", "x", var("x"), const((1, 2, 3)))
        assert evaluate(term) == 6

    def test_hom_to_collection(self):
        term = hom("list", "set", "x", unit("set", var("x")), const((1, 1, 2)))
        assert evaluate(term) == frozenset({1, 2})

    def test_hom_checks_well_formedness_at_runtime(self):
        term = hom("set", "sum", "x", const(1), const(frozenset({1, 2})))
        with pytest.raises(WellFormednessError):
            evaluate(term)


class TestComprehensionHomEquivalence:
    def test_comprehension_equals_hom_desugaring(self):
        """M{ e | v <- u } == hom[N -> M](\\v. unit(e))(u)."""
        data = const((1, 2, 2, 3))
        comprehension = comp("set", mul(var("v"), const(10)), [gen("v", data)])
        desugared = hom("list", "set", "v", unit("set", mul(var("v"), const(10))), data)
        assert evaluate(comprehension) == evaluate(desugared)
