"""Property-based verification of the monoid laws (hypothesis).

For every monoid in Table 1 we check, on random data:

- associativity:     (x + y) + z == x + (y + z)
- left/right unit:   zero + x == x == x + zero
- commutativity iff the monoid claims it
- idempotence iff the monoid claims it

These laws are what make the comprehension semantics well-defined, so
they are the deepest invariants in the library.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monoids import (
    ALL,
    BAG,
    LIST,
    MAX,
    MIN,
    OSET,
    PROD,
    SET,
    SOME,
    STRING,
    SUM,
    Monoid,
    VectorMonoid,
    sorted_bag_monoid,
    sorted_monoid,
)
from repro.values import Bag, OrderedSet

_SCALARS = st.integers(min_value=-50, max_value=50)


def _carrier_strategy(monoid: Monoid):
    if monoid is LIST:
        return st.lists(_SCALARS, max_size=6).map(tuple)
    if monoid is SET:
        return st.frozensets(_SCALARS, max_size=6)
    if monoid is BAG:
        return st.lists(_SCALARS, max_size=6).map(Bag)
    if monoid is OSET:
        return st.lists(_SCALARS, max_size=6).map(OrderedSet)
    if monoid is STRING:
        return st.text(alphabet="abcxyz", max_size=6)
    if monoid is SUM or monoid is MAX or monoid is MIN:
        return _SCALARS
    if monoid is PROD:
        return st.integers(min_value=-5, max_value=5)
    if monoid is SOME or monoid is ALL:
        return st.booleans()
    if isinstance(monoid, VectorMonoid):
        # Build through the accumulator so the carrier's default slot value
        # is the element monoid's zero (None for max, 0 for sum, ...).
        def build(pairs):
            acc = monoid.accumulator()
            for pair in pairs:
                acc.add(pair)
            return acc.finish()

        return st.lists(
            st.tuples(_SCALARS, st.integers(0, monoid.size - 1)), max_size=6
        ).map(build)
    # sorted / sortedbag carriers are built through the monoid itself so
    # the representation invariant (sortedness) holds.
    return st.lists(_SCALARS, max_size=6).map(monoid.from_iterable)


_MONOIDS = [
    LIST,
    SET,
    BAG,
    OSET,
    STRING,
    SUM,
    PROD,
    MAX,
    MIN,
    SOME,
    ALL,
    sorted_monoid(lambda x: x, key_name="id"),
    sorted_bag_monoid(lambda x: x, key_name="id"),
    VectorMonoid(SUM, 4),
    VectorMonoid(MAX, 3),
]


@pytest.mark.parametrize("monoid", _MONOIDS, ids=lambda m: m.name)
def test_monoid_laws(monoid):
    strategy = _carrier_strategy(monoid)

    @settings(max_examples=60, deadline=None)
    @given(x=strategy, y=strategy, z=strategy)
    def laws(x, y, z):
        # associativity
        assert monoid.merge(monoid.merge(x, y), z) == monoid.merge(
            x, monoid.merge(y, z)
        )
        # identity
        zero = monoid.zero()
        assert monoid.merge(zero, x) == x
        assert monoid.merge(x, zero) == x
        # claimed properties
        if monoid.commutative:
            assert monoid.merge(x, y) == monoid.merge(y, x)
        if monoid.idempotent:
            assert monoid.merge(x, x) == x

    laws()


@pytest.mark.parametrize(
    "monoid",
    [LIST, STRING],
    ids=lambda m: m.name,
)
def test_noncommutative_monoids_have_witnesses(monoid):
    """The declared *absence* of a property is real, not conservative."""
    if monoid is LIST:
        assert monoid.merge((1,), (2,)) != monoid.merge((2,), (1,))
        assert monoid.merge((1,), (1,)) != (1,)
    else:
        assert monoid.merge("a", "b") != monoid.merge("b", "a")
        assert monoid.merge("a", "a") != "a"


def test_bag_not_idempotent_witness():
    assert BAG.merge(Bag([1]), Bag([1])) != Bag([1])


def test_oset_not_commutative_witness():
    a, b = OrderedSet([1, 2]), OrderedSet([2, 3])
    assert OSET.merge(a, b) != OSET.merge(b, a)


@settings(max_examples=40, deadline=None)
@given(items=st.lists(_SCALARS, max_size=10))
def test_from_iterable_equals_unit_merges(items):
    """Bulk construction must agree with folding unit/merge."""
    for monoid in (LIST, SET, BAG, OSET):
        folded = monoid.zero()
        for item in items:
            folded = monoid.merge(folded, monoid.unit(item))
        assert monoid.from_iterable(items) == folded


@settings(max_examples=40, deadline=None)
@given(items=st.lists(st.tuples(_SCALARS, st.integers(0, 3)), max_size=8))
def test_vector_accumulator_equals_unit_merges(items):
    monoid = VectorMonoid(SUM, 4)
    folded = monoid.zero()
    for value, index in items:
        folded = monoid.merge(folded, monoid.unit(value, index))
    acc = monoid.accumulator()
    for pair in items:
        acc.add(pair)
    assert acc.finish() == folded
