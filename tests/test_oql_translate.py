"""The section 3 OQL -> calculus translation rules."""


from repro.calculus import alpha_equal, comp, const, eq, gen, gt, proj, var
from repro.calculus.ast import Call, Comprehension, Merge
from repro.eval import evaluate
from repro.oql import translate_oql
from repro.values import Bag, Record, to_python


class TestSelectTranslation:
    def test_select_distinct_is_set(self):
        term = translate_oql("select distinct c.name from c in Cities")
        expected = comp("set", proj(var("c"), "name"), [gen("c", var("Cities"))])
        assert term == expected

    def test_select_is_bag(self):
        term = translate_oql("select c.name from c in Cities")
        assert isinstance(term, Comprehension)
        assert term.monoid.name == "bag"

    def test_where_becomes_predicate(self):
        term = translate_oql("select c from c in Cities where c.pop > 5")
        expected = comp(
            "bag", var("c"), [gen("c", var("Cities")), gt(proj(var("c"), "pop"), const(5))]
        )
        assert term == expected

    def test_multiple_generators(self):
        term = translate_oql("select h from c in Cities, h in c.hotels")
        assert len(term.qualifiers) == 2


class TestQuantifierTranslation:
    def test_exists(self):
        term = translate_oql("exists h in hotels : h.stars > 4")
        expected = comp(
            "some", gt(proj(var("h"), "stars"), const(4)), [gen("h", var("hotels"))]
        )
        assert term == expected

    def test_forall(self):
        term = translate_oql("for all h in hotels : h.stars > 4")
        assert term.monoid.name == "all"

    def test_membership_becomes_some(self):
        term = translate_oql("3 in xs")
        assert isinstance(term, Comprehension)
        assert term.monoid.name == "some"
        expected = comp("some", eq(var("w"), const(3)), [gen("w", var("xs"))])
        assert alpha_equal(term, expected)

    def test_exists_subquery(self):
        term = translate_oql("exists(select h from h in Hs)")
        assert term.monoid.name == "some"
        assert term.head == const(True)


class TestAggregateTranslation:
    def test_sum_is_comprehension(self):
        term = translate_oql("sum(xs)")
        assert term.monoid.name == "sum"
        assert alpha_equal(term, comp("sum", var("a"), [gen("a", var("xs"))]))

    def test_max_min(self):
        assert translate_oql("max(xs)").monoid.name == "max"
        assert translate_oql("min(xs)").monoid.name == "min"

    def test_count_is_builtin(self):
        """Set cardinality is not hom[set->sum]; count is a primitive."""
        term = translate_oql("count(xs)")
        assert isinstance(term, Call) and term.name == "count"

    def test_avg_is_builtin(self):
        term = translate_oql("avg(xs)")
        assert isinstance(term, Call) and term.name == "avg"

    def test_aggregate_of_subquery(self):
        term = translate_oql("sum(select e.salary from e in Es)")
        assert term.monoid.name == "sum"
        inner = term.qualifiers[0].source
        assert isinstance(inner, Comprehension) and inner.monoid.name == "bag"


class TestConstructorTranslation:
    def test_collection_literal_builds_units(self):
        term = translate_oql("list(1, 2)")
        assert isinstance(term, Merge)
        assert evaluate(term) == (1, 2)

    def test_set_literal(self):
        assert evaluate(translate_oql("set(1, 2, 2)")) == frozenset({1, 2})

    def test_bag_literal(self):
        assert evaluate(translate_oql("bag(1, 1)")) == Bag([1, 1])

    def test_struct(self):
        assert evaluate(translate_oql("struct(a: 1, b: 2)")) == Record(a=1, b=2)

    def test_if_expression(self):
        assert evaluate(translate_oql("if 1 < 2 then 'y' else 'n'")) == "y"


class TestSortAndOrderBy:
    def test_sort_over_list_uses_sortedbag(self):
        term = translate_oql("sort x in list(3, 1, 2) by x")
        assert term.monoid.name == "sortedbag"
        assert evaluate(term) == (1, 2, 3)

    def test_sort_keeps_duplicates(self):
        term = translate_oql("sort x in bag(2, 1, 2) by x")
        assert evaluate(term) == (1, 2, 2)

    def test_sort_desc(self):
        term = translate_oql("sort x in list(1, 3, 2) by x desc")
        assert evaluate(term) == (3, 2, 1)

    def test_order_by_projects_after_sorting(self):
        term = translate_oql(
            "select x.name from x in Xs order by x.rank"
        )
        xs = (Record(name="b", rank=2), Record(name="a", rank=1))
        assert to_python(evaluate(term, {"Xs": xs})) == ["a", "b"]

    def test_order_by_desc(self):
        term = translate_oql("select x.name from x in Xs order by x.rank desc")
        xs = (Record(name="b", rank=2), Record(name="a", rank=1))
        assert to_python(evaluate(term, {"Xs": xs})) == ["b", "a"]

    def test_order_by_multiple_keys(self):
        term = translate_oql(
            "select x.name from x in Xs order by x.group, x.rank desc"
        )
        xs = (
            Record(name="a", group=1, rank=1),
            Record(name="b", group=1, rank=2),
            Record(name="c", group=0, rank=1),
        )
        assert to_python(evaluate(term, {"Xs": xs})) == ["c", "b", "a"]


class TestGroupBy:
    def test_group_by_partition(self):
        term = translate_oql(
            "select struct(d: dno, total: sum(select p.salary from p in partition)) "
            "from e in Es group by dno: e.dno"
        )
        es = Bag(
            [
                Record(name="a", dno=1, salary=10),
                Record(name="b", dno=1, salary=20),
                Record(name="c", dno=2, salary=5),
            ]
        )
        out = evaluate(term, {"Es": es})
        assert out == frozenset({Record(d=1, total=30), Record(d=2, total=5)})

    def test_group_by_having(self):
        term = translate_oql(
            "select dno from e in Es group by dno: e.dno "
            "having count(partition) > 1"
        )
        es = Bag([Record(dno=1), Record(dno=1), Record(dno=2)])
        assert evaluate(term, {"Es": es}) == frozenset({1})

    def test_group_by_multiple_keys(self):
        term = translate_oql(
            "select struct(a: x, b: y) from e in Es group by x: e.x, y: e.y"
        )
        es = Bag([Record(x=1, y=2), Record(x=1, y=2), Record(x=1, y=3)])
        out = evaluate(term, {"Es": es})
        assert out == frozenset({Record(a=1, b=2), Record(a=1, b=3)})


class TestEndToEndEvaluation:
    CITIES = frozenset(
        {
            Record(
                name="Portland",
                hotels=frozenset(
                    {
                        Record(name="Benson", stars=5, rooms=(Record(beds=2),)),
                        Record(name="Hilton", stars=4, rooms=(Record(beds=3),)),
                    }
                ),
            ),
            Record(
                name="Salem",
                hotels=frozenset({Record(name="Grand", stars=3, rooms=())}),
            ),
        }
    )

    def test_paper_portland_query(self):
        """The paper's running example: hotels with three-bed rooms."""
        term = translate_oql(
            "select h.name from c in Cities, h in c.hotels, r in h.rooms "
            "where c.name = 'Portland' and r.beds = 3"
        )
        assert evaluate(term, {"Cities": self.CITIES}) == Bag(["Hilton"])

    def test_nested_subquery_in_from(self):
        term = translate_oql(
            "select h.name from h in (select distinct x from c in Cities, "
            "x in c.hotels where c.name = 'Portland')"
        )
        out = evaluate(term, {"Cities": self.CITIES})
        assert out == Bag(["Benson", "Hilton"])

    def test_exists_predicate(self):
        term = translate_oql(
            "select distinct c.name from c in Cities "
            "where exists h in c.hotels : h.stars = 5"
        )
        assert evaluate(term, {"Cities": self.CITIES}) == frozenset({"Portland"})

    def test_union_of_queries(self):
        term = translate_oql(
            "(select distinct c.name from c in Cities) union set('Eugene')"
        )
        out = evaluate(term, {"Cities": self.CITIES})
        assert out == frozenset({"Portland", "Salem", "Eugene"})
