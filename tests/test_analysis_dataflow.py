"""The binding-aware dataflow layer: scoped walks, counts, def-use,
alpha renaming."""

from repro.analysis.dataflow import (
    alpha_rename,
    def_use,
    free_var_counts,
    scoped_subterms,
    use_count,
)
from repro.calculus.ast import Lambda, Var
from repro.calculus.builders import (
    add,
    bind,
    comp,
    const,
    filt,
    gen,
    gt,
    hom,
    lam,
    let,
    proj,
    unit,
    var,
)
from repro.calculus.traversal import alpha_equal, free_vars


def bound_at(term, target_name):
    """The ``bound`` sets at every occurrence of Var(target_name)."""
    return [
        bound
        for sub, bound in scoped_subterms(term)
        if isinstance(sub, Var) and sub.name == target_name
    ]


class TestScopedSubterms:
    def test_lambda_binds_param(self):
        term = lam("x", add(var("x"), var("y")))
        assert bound_at(term, "x") == [frozenset({"x"})]
        assert bound_at(term, "y") == [frozenset({"x"})]

    def test_generator_scopes_left_to_right(self):
        # x is bound for the filter and head, but not for its own source
        term = comp(
            "set",
            var("x"),
            [gen("x", var("db")), filt(gt(proj(var("x"), "a"), 0))],
        )
        occurrences = bound_at(term, "x")
        assert occurrences == [frozenset({"x"}), frozenset({"x"})]
        assert bound_at(term, "db") == [frozenset()]

    def test_shadowing_nested_lambda(self):
        term = lam("x", lam("x", var("x")))
        (inner,) = bound_at(term, "x")
        assert "x" in inner

    def test_let_value_outside_binding(self):
        term = let("x", var("x"), var("x"))
        assert bound_at(term, "x") == [frozenset(), frozenset({"x"})]

    def test_monoid_key_terms_are_visited(self):
        from repro.calculus.ast import MonoidRef

        ref = MonoidRef("list", key=lam("e", proj(var("e"), "k")))
        term = comp(ref, var("v"), [gen("v", var("db"))])
        labels = [str(sub) for sub, _ in scoped_subterms(term)]
        assert "e.k" in labels


class TestUseCount:
    def test_counts_free_occurrences(self):
        assert use_count(add(var("x"), var("x")), "x") == 2

    def test_shadowed_occurrences_do_not_count(self):
        term = add(var("x"), lam("x", var("x")))
        assert use_count(term, "x") == 1

    def test_comprehension_tail_scoping(self):
        term = comp("set", var("x"), [gen("x", var("x"))])
        # the source occurrence is free, the head one is bound
        assert use_count(term, "x") == 1

    def test_absent_name(self):
        assert use_count(const(1), "x") == 0


class TestFreeVarCounts:
    def test_matches_free_vars(self):
        term = add(var("a"), add(var("b"), var("a")))
        counts = free_var_counts(term)
        assert counts == {"a": 2, "b": 1}
        assert set(counts) == free_vars(term)

    def test_bound_names_excluded(self):
        term = lam("a", add(var("a"), var("b")))
        assert free_var_counts(term) == {"b": 1}


class TestDefUse:
    def test_generator_binding_and_uses(self):
        term = comp(
            "set",
            proj(var("c"), "name"),
            [gen("c", var("Cities")), filt(gt(proj(var("c"), "pop"), 0))],
        )
        du = def_use(term)
        (info,) = du.for_name("c")
        assert info.kind == "generator"
        assert info.uses == 2
        assert du.free == {"Cities": 1}
        assert du.unused() == []

    def test_unused_binding_reported(self):
        term = comp(
            "set",
            proj(var("c"), "name"),
            [gen("c", var("Cities")), gen("h", var("Hotels"))],
        )
        du = def_use(term)
        assert [b.name for b in du.unused()] == ["h"]

    def test_uses_resolve_to_innermost_binder(self):
        term = lam("x", add(var("x"), lam("x", var("x"))))
        du = def_use(term)
        outer, inner = du.for_name("x")
        assert outer.uses == 1
        assert inner.uses == 1

    def test_bind_let_hom_kinds(self):
        term = let(
            "a",
            const(1),
            comp(
                "set",
                var("b"),
                [gen("x", var("db")), bind("b", proj(var("x"), "f"))],
            ),
        )
        kinds = {b.name: b.kind for b in def_use(term).bindings}
        assert kinds == {"a": "let", "x": "generator", "b": "bind"}
        h = hom("set", "sum", "v", var("v"), var("db"))
        assert [b.kind for b in def_use(h).bindings] == ["hom"]


class TestAlphaRename:
    def test_result_is_alpha_equal(self):
        term = comp(
            "set",
            add(var("x"), var("free")),
            [gen("x", var("db")), filt(gt(var("x"), 0))],
        )
        renamed = alpha_rename(term)
        assert renamed is not term
        assert alpha_equal(term, renamed)

    def test_free_vars_preserved(self):
        term = lam("x", add(var("x"), var("y")))
        assert free_vars(alpha_rename(term)) == {"y"}

    def test_binders_disjoint_from_original(self):
        term = lam("x", let("y", var("x"), var("y")))
        renamed = alpha_rename(term)
        assert isinstance(renamed, Lambda)
        assert renamed.param != "x"
        assert "~" in renamed.param  # freshened, so never a user spelling

    def test_shadowing_survives(self):
        term = lam("x", lam("x", var("x")))
        renamed = alpha_rename(term)
        assert alpha_equal(term, renamed)
        assert renamed.param != renamed.body.param

    def test_singleton_generator_comprehension(self):
        term = comp("set", var("v"), [gen("v", unit("set", const(3)))])
        assert alpha_equal(term, alpha_rename(term))
