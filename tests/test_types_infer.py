"""Type inference and the static C/I well-formedness check."""

import pytest

from repro.calculus import (
    add,
    and_,
    apply,
    bind,
    call,
    comp,
    const,
    deref,
    div,
    filt,
    gen,
    hom,
    if_,
    in_,
    lam,
    let,
    lt,
    merge,
    method,
    new,
    not_,
    proj,
    rec,
    tup,
    unit,
    var,
)
from repro.errors import TypingError, WellFormednessError
from repro.types import (
    ANY,
    Schema,
    TBOOL,
    TColl,
    TFLOAT,
    TINT,
    TRecord,
    TSTRING,
    TTuple,
    TypeChecker,
    type_of_value,
)
from repro.values import Bag, Record


@pytest.fixture
def checker() -> TypeChecker:
    return TypeChecker()


class TestBasicInference:
    def test_literals(self, checker):
        assert checker.infer(const(1)) == TINT
        assert checker.infer(const(1.5)) == TFLOAT
        assert checker.infer(const("s")) == TSTRING
        assert checker.infer(const(True)) == TBOOL

    def test_collection_constants(self, checker):
        assert checker.infer(const((1, 2))) == TColl("list", TINT)
        assert checker.infer(const(frozenset({1}))) == TColl("set", TINT)
        assert checker.infer(const(Bag(["a"]))) == TColl("bag", TSTRING)

    def test_heterogeneous_list_is_any_element(self, checker):
        assert checker.infer(const((1, "x"))) == TColl("list", ANY)

    def test_numeric_widening_in_collections(self, checker):
        assert checker.infer(const((1, 2.0))) == TColl("list", TFLOAT)

    def test_unbound_variable(self, checker):
        with pytest.raises(TypingError):
            checker.infer(var("x"))

    def test_bound_variable(self, checker):
        assert checker.infer(var("x"), {"x": TINT}) == TINT

    def test_arithmetic(self, checker):
        assert checker.infer(add(const(1), const(2))) == TINT
        assert checker.infer(add(const(1), const(2.0))) == TFLOAT
        assert checker.infer(div(const(1), const(2))) == TFLOAT
        with pytest.raises(TypingError):
            checker.infer(add(const(1), const("x")))

    def test_booleans(self, checker):
        assert checker.infer(and_(const(True), const(False))) == TBOOL
        with pytest.raises(TypingError):
            checker.infer(and_(const(1), const(True)))
        assert checker.infer(not_(const(True))) == TBOOL

    def test_comparison(self, checker):
        assert checker.infer(lt(const(1), const(2))) == TBOOL
        with pytest.raises(TypingError):
            checker.infer(lt(const(1), const("a")))

    def test_record_and_projection(self, checker):
        record = rec(a=const(1), b=const("x"))
        assert checker.infer(proj(record, "b")) == TSTRING
        with pytest.raises(TypingError):
            checker.infer(proj(record, "zzz"))

    def test_tuple_and_if(self, checker):
        assert checker.infer(tup(const(1), const("a"))) == TTuple((TINT, TSTRING))
        assert checker.infer(if_(const(True), const(1), const(2))) == TINT
        assert checker.infer(if_(const(True), const(1), const(2.0))) == TFLOAT
        with pytest.raises(TypingError):
            checker.infer(if_(const(1), const(1), const(2)))

    def test_membership(self, checker):
        assert checker.infer(in_(const(1), const((1, 2)))) == TBOOL
        with pytest.raises(TypingError):
            checker.infer(in_(const("a"), const((1, 2))))

    def test_lambda_and_apply(self, checker):
        fn = lam("x", const(1))
        assert checker.infer(apply(fn, const(0))) == TINT
        with pytest.raises(TypingError):
            checker.infer(apply(const(1), const(0)))

    def test_let(self, checker):
        assert checker.infer(let("x", const(2), add(var("x"), const(1)))) == TINT

    def test_builtins(self, checker):
        assert checker.infer(call("count", const((1,)))) == TINT
        assert checker.infer(call("element", const((1,)))) == TINT
        assert checker.infer(call("avg", const((1,)))) == TFLOAT
        assert checker.infer(call("range", const(3))) == TColl("list", TINT)
        assert checker.infer(call("to_set", const((1,)))) == TColl("set", TINT)

    def test_object_ops(self, checker):
        obj = new(const(1))
        assert str(checker.infer(obj)) == "obj(int)"
        assert checker.infer(deref(obj)) == TINT
        from repro.calculus import assign

        assert checker.infer(assign(obj, const(2))) == TBOOL
        with pytest.raises(TypingError):
            checker.infer(deref(const(1)))


class TestComprehensionTyping:
    def test_collection_output(self, checker):
        term = comp("set", var("x"), [gen("x", const((1, 2)))])
        assert checker.infer(term) == TColl("set", TINT)

    def test_primitive_outputs(self, checker):
        xs = const((1, 2))
        assert checker.infer(comp("sum", var("x"), [gen("x", xs)])) == TINT
        assert checker.infer(comp("max", var("x"), [gen("x", xs)])) == TINT
        assert (
            checker.infer(comp("some", lt(var("x"), const(2)), [gen("x", xs)])) == TBOOL
        )

    def test_sum_of_strings_rejected(self, checker):
        term = comp("sum", var("x"), [gen("x", const(("a",)))])
        with pytest.raises(TypingError):
            checker.infer(term)

    def test_some_of_non_bool_rejected(self, checker):
        term = comp("some", var("x"), [gen("x", const((1,)))])
        with pytest.raises(TypingError):
            checker.infer(term)

    def test_predicate_must_be_bool(self, checker):
        term = comp("set", var("x"), [gen("x", const((1,))), filt(const(1))])
        with pytest.raises(TypingError):
            checker.infer(term)

    def test_binding_qualifier_types_flow(self, checker):
        term = comp(
            "sum", var("y"), [gen("x", const((1,))), bind("y", add(var("x"), const(1)))]
        )
        assert checker.infer(term) == TINT

    def test_generator_over_non_collection_rejected(self, checker):
        term = comp("set", var("x"), [gen("x", const(3))])
        with pytest.raises(TypingError):
            checker.infer(term)

    def test_sorted_result_is_list_typed(self, checker):
        """Table 1: sorted's carrier *type* is list(a)."""
        from repro.calculus.ast import Comprehension, MonoidRef

        ref = MonoidRef("sorted", key=lam("x", var("x")))
        term = Comprehension(ref, var("x"), (gen("x", const(frozenset({1}))),))
        assert checker.infer(term) == TColl("list", TINT)


class TestWellFormednessRestriction:
    def test_set_into_bag_rejected(self, checker):
        term = comp("bag", var("x"), [gen("x", const(frozenset({1})))])
        with pytest.raises(WellFormednessError):
            checker.infer(term)

    def test_set_into_sum_rejected(self, checker):
        term = comp("sum", var("x"), [gen("x", const(frozenset({1})))])
        with pytest.raises(WellFormednessError):
            checker.infer(term)

    def test_set_into_list_rejected(self, checker):
        term = comp("list", var("x"), [gen("x", const(frozenset({1})))])
        with pytest.raises(WellFormednessError):
            checker.infer(term)

    def test_bag_into_set_allowed(self, checker):
        term = comp("set", var("x"), [gen("x", const(Bag([1])))])
        assert checker.infer(term) == TColl("set", TINT)

    def test_bag_into_sum_allowed(self, checker):
        term = comp("sum", var("x"), [gen("x", const(Bag([1])))])
        assert checker.infer(term) == TINT

    def test_set_into_some_allowed(self, checker):
        term = comp("some", lt(var("x"), const(9)), [gen("x", const(frozenset({1})))])
        assert checker.infer(term) == TBOOL

    def test_mixed_generators_each_checked(self, checker):
        term = comp(
            "set",
            tup(var("a"), var("b")),
            [gen("a", const((1,))), gen("b", const(frozenset({2})))],
        )
        assert checker.infer(term) == TColl("set", TTuple((TINT, TINT)))

    def test_hom_term_checked(self, checker):
        term = hom("set", "sum", "x", const(1), const(frozenset({1})))
        with pytest.raises(WellFormednessError):
            checker.infer(term)

    def test_hom_target_body_shape(self, checker):
        good = hom("list", "set", "x", unit("set", var("x")), const((1,)))
        assert checker.infer(good) == TColl("set", TINT)
        bad = hom("list", "set", "x", const(1), const((1,)))
        with pytest.raises(TypingError):
            checker.infer(bad)


class TestSchemaIntegration:
    @pytest.fixture
    def schema(self) -> Schema:
        s = Schema()
        s.define_class("City", {"name": TSTRING, "pop": TINT}, extent="Cities")
        s.define_method("City", "double_pop", lambda c: c["pop"] * 2, result=TINT)
        return s

    def test_extents_typed_from_schema(self, schema):
        checker = TypeChecker(schema)
        term = comp("set", proj(var("c"), "name"), [gen("c", var("Cities"))])
        assert checker.infer(term) == TColl("set", TSTRING)

    def test_unknown_attribute_rejected(self, schema):
        checker = TypeChecker(schema)
        term = comp("set", proj(var("c"), "nope"), [gen("c", var("Cities"))])
        with pytest.raises(TypingError):
            checker.infer(term)

    def test_method_result_type(self, schema):
        checker = TypeChecker(schema)
        term = comp("set", method(var("c"), "double_pop"), [gen("c", var("Cities"))])
        assert checker.infer(term) == TColl("set", TINT)

    def test_unknown_method_rejected(self, schema):
        checker = TypeChecker(schema)
        term = comp("set", method(var("c"), "nope"), [gen("c", var("Cities"))])
        with pytest.raises(TypingError):
            checker.infer(term)


class TestTypeOfValue:
    def test_scalars(self):
        assert type_of_value(None).name == "none"
        assert type_of_value(True) == TBOOL
        assert type_of_value(3) == TINT
        assert type_of_value("x") == TSTRING

    def test_records(self):
        assert type_of_value(Record(a=1)) == TRecord((("a", TINT),))

    def test_merge_and_empty(self):
        checker = TypeChecker()
        out = checker.infer(merge("set", const(frozenset({1})), const(frozenset({2}))))
        assert out == TColl("set", TINT)
