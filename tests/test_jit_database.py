"""The JIT wired through the Database: enablement, reporting, cache and
verify-mode interplay, telemetry counters, QL501 advice and the REPL
toggle."""

from __future__ import annotations

import pytest

from repro.db.database import (
    Database,
    demo_company_database,
    demo_travel_database,
)
from repro.errors import DatabaseError, VerificationError
from repro.jit import JITConfig, resolve_jit
from repro.obs.telemetry.registry import MetricsRegistry
from repro.obs.tracer import COMPILE_PHASES, PIPELINE_PHASES


@pytest.fixture
def db():
    return demo_travel_database(num_cities=4, seed=7)


@pytest.fixture
def company():
    return demo_company_database(4, 60, seed=11)


QUERY = "select distinct c.name from c in Cities where c.state = 'OR'"
SCAN_QUERY = "select e.name from e in Employees where e.salary > 50000"
GROUP_QUERY = (
    "select struct(dno: dno, n: count(partition)) "
    "from e in Employees group by dno: e.dno"
)


class TestEnablement:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JIT", raising=False)
        assert demo_travel_database(num_cities=3, seed=7).jit is None

    def test_constructor_true(self):
        assert Database(jit=True).jit == JITConfig()

    def test_constructor_config(self):
        cfg = JITConfig(verify=True)
        assert Database(jit=cfg).jit is cfg

    def test_constructor_false_means_off(self):
        assert Database(jit=False).jit is None

    def test_constructor_rejects_garbage(self):
        with pytest.raises(DatabaseError, match="jit must be"):
            Database(jit=42)

    def test_config_rejects_non_bool_verify(self):
        with pytest.raises(DatabaseError, match="verify"):
            JITConfig(verify="yes")

    def test_enable_disable_cycle(self, db):
        db.enable_jit()
        assert db.jit == JITConfig()
        db.disable_jit()
        assert db.jit is None

    def test_env_flag_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "1")
        assert demo_travel_database(num_cities=3, seed=1).jit is not None

    def test_env_falsey_values_stay_off(self, monkeypatch):
        for value in ("", "0", "false", "off", "no"):
            monkeypatch.setenv("REPRO_JIT", value)
            assert demo_travel_database(num_cities=3, seed=1).jit is None

    def test_resolve_jit_table(self):
        assert resolve_jit(False) is None
        assert resolve_jit(True) == JITConfig()
        cfg = JITConfig()
        assert resolve_jit(cfg) is cfg
        with pytest.raises(DatabaseError):
            resolve_jit("fast please")


class TestReporting:
    def test_query_result_carries_jit_stats(self, db):
        db.enable_jit()
        result = db.run_detailed(QUERY)
        assert result.jit is not None
        assert result.jit["compiled"] >= 1
        assert result.jit["fallback"] == 0

    def test_pipeline_report_line(self, db):
        db.enable_jit()
        report = db.run_detailed(QUERY).pipeline_report()
        assert "jit:" in report and "compiled=" in report

    def test_no_jit_no_report(self, monkeypatch):
        monkeypatch.delenv("REPRO_JIT", raising=False)
        result = demo_travel_database(num_cities=4, seed=7).run_detailed(QUERY)
        assert result.jit is None
        assert "jit:" not in result.pipeline_report()

    def test_fallback_constructs_reported(self, company):
        company.enable_jit()
        # `exists` translates to a comprehension inside the predicate —
        # outside the compilable fragment.
        result = company.run_detailed(
            "select e.name from e in Employees "
            "where exists s in e.skills : s = 'oql'"
        )
        assert result.jit is not None and result.jit["fallback"] >= 1
        assert "Comprehension" in result.jit["constructs"]

    def test_jit_phase_in_registries(self):
        assert "jit" in PIPELINE_PHASES and "jit" in COMPILE_PHASES

    def test_jit_span_recorded_when_profiling(self, db):
        db.enable_jit()
        db.profile(True, sink=lambda line: None)
        result = db.run_detailed(QUERY)
        assert "jit" in result.span.phase_times_ms()


class TestExplainAnalyze:
    def _actuals(self, node):
        out = [(node["op"], node.get("actual_rows"), node.get("rows_in"))]
        for child in node.get("children", []):
            out.extend(self._actuals(child))
        return out

    def test_actual_rows_identical_on_and_off(self, company):
        off = company.explain_data(SCAN_QUERY, analyze=True)
        company.enable_jit()
        on = company.explain_data(SCAN_QUERY, analyze=True)
        assert self._actuals(off["plan"]) == self._actuals(on["plan"])


class TestCacheInterplay:
    def test_cached_entry_from_before_jit_still_compiles(self, company):
        from repro.cache import CacheConfig

        # Compilation cache only: every run re-executes the cached plan,
        # so the jit report reflects what actually ran.
        company.enable_cache(CacheConfig(results=False))
        baseline = company.run(SCAN_QUERY)
        company.enable_jit()
        # The cached plan predates the JIT: _jit_ensure compiles it on
        # first post-enable execution.
        assert company.run(SCAN_QUERY) == baseline
        result = company.run_detailed(SCAN_QUERY)
        assert result.jit is not None and result.jit["compiled"] >= 1
        assert company.cache.stats.as_dict()["compile_hits"] >= 1

    def test_compile_with_jit_then_hit(self, company):
        company.enable_cache()
        company.enable_jit()
        first = company.run(SCAN_QUERY)
        assert company.run(SCAN_QUERY) == first
        assert company.cache.stats.as_dict()["compile_hits"] >= 1

    def test_invalidation_recompiles(self, company):
        company.enable_cache()
        company.enable_jit()
        before = company.run_detailed(SCAN_QUERY)
        # Catalog change: compiled entries (and their jit'd plan nodes)
        # are invalidated wholesale; the rebuilt plan recompiles.
        company.load_extent("Lonely", [1, 2, 3])
        after = company.run_detailed(SCAN_QUERY)
        assert after.value == before.value
        assert after.jit is not None and after.jit["compiled"] >= 1

    def test_prepared_statement_with_jit(self, db):
        db.enable_cache()
        db.enable_jit()
        prepared = db.prepare(
            "select distinct c.name from c in Cities where c.state = $state"
        )
        expected = db.run(QUERY)
        assert prepared.run(state="OR") == expected
        assert prepared.run(state="OR") == expected


class TestVerifyMode:
    def test_verify_mode_passes_on_honest_closures(self, company):
        company.enable_jit(JITConfig(verify=True))
        baseline = demo_company_database(4, 60, seed=11).run(SCAN_QUERY)
        assert company.run(SCAN_QUERY) == baseline

    def test_injected_wrong_closure_is_caught(self, company):
        from repro.algebra.translate import build_plan
        from repro.jit.plan import compile_node

        from repro.normalize import normalize

        company.enable_jit(JITConfig(verify=True))
        normalized = normalize(company.translate(SCAN_QUERY))
        plan = company._optimize(build_plan(normalized, pre_normalize=True))
        compile_node(plan)
        object.__setattr__(plan, "head_fn", lambda b, rt: "corrupt")
        executor = company._executor(company.evaluator(), None)
        with pytest.raises(VerificationError, match="jit-compile"):
            executor.execute(plan)

    def test_verify_off_does_not_wrap(self, company):
        company.enable_jit()
        executor = company._executor(company.evaluator(), None)
        fn = lambda b, rt: 1  # noqa: E731
        assert executor._jit_wrap(fn, None) is fn


class TestTelemetryCounters:
    def test_jit_counters_recorded(self, db):
        registry = MetricsRegistry()
        db.enable_telemetry(registry)
        db.enable_jit()
        db.run(QUERY)
        counter = registry.counter(
            "repro_jit_expressions_total",
            "hot-path expressions prepared by the JIT, by outcome",
            labels=("status",),
        )
        assert counter.total() >= 1

    def test_no_jit_counters_when_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_JIT", raising=False)
        db = demo_travel_database(num_cities=4, seed=7)
        registry = MetricsRegistry()
        db.enable_telemetry(registry)
        db.run(QUERY)
        assert all(
            key[0] != "compiled"
            for key, _ in registry.counter(
                "repro_jit_expressions_total",
                "hot-path expressions prepared by the JIT, by outcome",
                labels=("status",),
            ).items()
        )


class TestQL501:
    HOT = (
        "select e.name from e in Employees "
        "where exists s in e.skills : s = 'oql'"
    )

    def test_advice_names_construct(self, company):
        from repro.jit.advise import advise_jit_fallbacks

        registry = MetricsRegistry()
        company.enable_telemetry(registry)
        company.enable_jit()
        for _ in range(4):
            company.run(self.HOT)
        findings = advise_jit_fallbacks(company, registry)
        assert findings, "expected a QL501 for the dominant fallback query"
        assert findings[0].code == "QL501"
        assert "Comprehension" in findings[0].message

    def test_fully_compiled_hot_query_is_silent(self, company):
        from repro.jit.advise import advise_jit_fallbacks

        registry = MetricsRegistry()
        company.enable_telemetry(registry)
        company.enable_jit()
        for _ in range(4):
            company.run(SCAN_QUERY)
        assert advise_jit_fallbacks(company, registry) == []

    def test_summary_lines_surface_ql501(self, company):
        from repro.obs.telemetry.instrument import summary_lines

        registry = MetricsRegistry()
        company.enable_telemetry(registry)
        company.enable_jit()
        for _ in range(4):
            company.run(self.HOT)
        assert "QL501" in "\n".join(summary_lines(registry, db=company))


class TestRepl:
    def test_toggle(self, db):
        from repro.repl import Repl

        lines = []
        repl = Repl(db, out=lines.append)
        repl.handle(":jit on")
        assert db.jit is not None
        assert any("jit is on" in line for line in lines)
        repl.handle(":jit off")
        assert db.jit is None
        repl.handle(":jit sideways")
        assert any("usage: :jit on|off" in line for line in lines)

    def test_queries_run_with_jit_on(self, db):
        from repro.repl import Repl

        lines = []
        repl = Repl(db, out=lines.append)
        expected = repr(
            __import__("repro.values", fromlist=["to_python"]).to_python(
                db.run(QUERY)
            )
        )
        repl.handle(":jit on")
        repl.handle(QUERY)
        assert any(expected == line for line in lines)


class TestGroupBy:
    def test_group_by_parity_and_stats(self, company):
        baseline = company.run(GROUP_QUERY)
        company.enable_jit()
        assert company.run(GROUP_QUERY) == baseline
        result = company.run_detailed(GROUP_QUERY)
        assert result.jit is not None and result.jit["compiled"] >= 1
