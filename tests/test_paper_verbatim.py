"""Paper-verbatim checks: the exact notations and names the paper uses.

These tests keep the reproduction honest at the surface level too —
attribute names with ``#`` (``bed#``, ``hotel#``), the exact example
collections, and the exact query text shapes from the paper.
"""


from repro.db import Database
from repro.eval import Evaluator, evaluate
from repro.monoids import OSET, SET, SUM, LIST, VectorMonoid
from repro.oql import translate_oql
from repro.values import Bag, OrderedSet, Record, Vector


class TestHashAttributeNames:
    """The paper's schema uses bed# and hotel# as attribute names."""

    CITIES = frozenset(
        {
            Record(
                {
                    "name": "Portland",
                    "hotels": frozenset(
                        {
                            Record(
                                {
                                    "name": "Benson",
                                    "rooms": (
                                        Record({"bed#": 3}),
                                        Record({"bed#": 2}),
                                    ),
                                }
                            ),
                        }
                    ),
                    "hotel#": 1,
                }
            ),
        }
    )

    def test_paper_query_with_hash_attributes(self):
        """bag{ h.name | c <- Cities, c.name="Portland", h <- c.hotels,
        r <- h.rooms, r.bed# = 3 } — the paper's canonical form."""
        term = translate_oql(
            "select h.name from c in Cities, h in c.hotels, r in h.rooms "
            "where c.name = 'Portland' and r.bed# = 3"
        )
        assert evaluate(term, {"Cities": self.CITIES}) == Bag(["Benson"])

    def test_hash_attribute_update(self):
        """The paper's c.hotel# += 1."""
        from repro.calculus import const, update, var

        ev = Evaluator()
        city = ev.store.new(Record({"name": "Portland", "hotel#": 1}))
        ev.bind_global("c", city)
        ev.evaluate(update(var("c"), "hotel#", "+=", const(1)))
        assert ev.store.deref(city)["hotel#"] == 2

    def test_database_with_hash_attributes(self):
        db = Database()
        db.load_extent(
            "Rooms", [Record({"bed#": n}) for n in (1, 2, 3, 3)], monoid="bag"
        )
        assert db.run("count(select r from r in Rooms where r.bed# = 3)") == 2


class TestPaperCollectionIdentities:
    def test_list_from_singletons(self):
        # [1]++[2]++[3] = [1,2,3]
        assert LIST.merge_all([LIST.unit(1), LIST.unit(2), LIST.unit(3)]) == (1, 2, 3)

    def test_set_from_singletons(self):
        # {1} u {2} u {3} = {1,2,3}
        assert SET.merge_all([SET.unit(i) for i in (1, 2, 3)]) == frozenset({1, 2, 3})

    def test_set_idempotence_quoted_law(self):
        # "forall x: x u x = x"
        x = frozenset({1, 2})
        assert SET.merge(x, x) == x

    def test_oset_paper_example(self):
        assert OSET.merge(OrderedSet([2, 5, 3, 1]), OrderedSet([3, 2, 6])) == OrderedSet(
            [2, 5, 3, 1, 6]
        )

    def test_vector_monoid_paper_examples(self):
        m = VectorMonoid(SUM, 4)
        # zero sum[4] = (|0,0,0,0|)
        assert m.zero() == Vector.from_dense([0, 0, 0, 0])
        # unit sum[4](8, 2) = (|0,0,8,0|)
        assert m.unit(8, 2) == Vector.from_dense([0, 0, 8, 0])
        # merge sum[4]((|0,1,2,0|), (|3,0,2,1|)) = (|3,1,4,1|)
        assert m.merge(
            Vector.from_dense([0, 1, 2, 0]), Vector.from_dense([3, 0, 2, 1])
        ) == Vector.from_dense([3, 1, 4, 1])


class TestPaperJoinExample:
    def test_flagship_join_values(self):
        """setf (a; b) | a <- [1; 2; 3]; b <- ff4; 5gg g from the abstract."""
        from repro.calculus import comp, const, gen, tup, var

        term = comp(
            "set",
            tup(var("a"), var("b")),
            [gen("a", const((1, 2, 3))), gen("b", const(Bag([4, 5])))],
        )
        assert evaluate(term) == frozenset(
            {(1, 4), (1, 5), (2, 4), (2, 5), (3, 4), (3, 5)}
        )

    def test_smaller_join(self):
        """setf (x; y) | x <- [1; 2]; y <- ff3; 4; 3gg g = {(1,3),(1,4),(2,3),(2,4)}."""
        from repro.calculus import comp, const, gen, tup, var

        term = comp(
            "set",
            tup(var("x"), var("y")),
            [gen("x", const((1, 2))), gen("y", const(Bag([3, 4, 3])))],
        )
        assert evaluate(term) == frozenset({(1, 3), (1, 4), (2, 3), (2, 4)})

    def test_sum_example(self):
        """sumf a | a <- [1; 2; 3]; a <= 2 g = 3."""
        from repro.calculus import comp, const, gen, le, var

        term = comp(
            "sum", var("a"), [gen("a", const((1, 2, 3))), le(var("a"), const(2))]
        )
        assert evaluate(term) == 3
