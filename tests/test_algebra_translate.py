"""Canonical comprehension -> logical plan shapes."""

import pytest

from repro.algebra import Join, Reduce, Scan, SelectOp, Unnest, build_plan
from repro.calculus import bind, comp, const, filt, gen, gt, new, var
from repro.errors import PlanError
from repro.oql import translate_oql


def test_single_scan():
    plan = build_plan(translate_oql("select distinct c from c in Cities"))
    assert isinstance(plan, Reduce)
    assert isinstance(plan.child, Scan)
    assert plan.child.var == "c"


def test_selection_above_scan():
    plan = build_plan(
        translate_oql("select distinct c from c in Cities where c.pop > 5")
    )
    assert isinstance(plan.child, SelectOp)
    assert isinstance(plan.child.child, Scan)


def test_dependent_generator_becomes_unnest():
    plan = build_plan(
        translate_oql("select distinct h from c in Cities, h in c.hotels")
    )
    assert isinstance(plan.child, Unnest)
    assert plan.child.var == "h"


def test_independent_generators_become_join():
    plan = build_plan(translate_oql("select distinct 1 from a in Ls, b in Rs"))
    assert isinstance(plan.child, Join)
    assert plan.child.left_keys == ()


def test_equi_join_keys_detected():
    plan = build_plan(
        translate_oql(
            "select distinct 1 from a in Ls, b in Rs where a.k = b.k"
        )
    )
    join = plan.child
    assert isinstance(join, Join)
    assert len(join.left_keys) == 1
    assert str(join.left_keys[0]) == "a.k"
    assert str(join.right_keys[0]) == "b.k"


def test_swapped_equi_join_keys_detected():
    plan = build_plan(
        translate_oql(
            "select distinct 1 from a in Ls, b in Rs where b.k = a.k"
        )
    )
    join = plan.child
    assert len(join.left_keys) == 1
    assert str(join.left_keys[0]) == "a.k"


def test_predicates_pushed_to_earliest_operator():
    plan = build_plan(
        translate_oql(
            "select distinct b from a in Ls, b in Rs "
            "where a.x > 1 and b.y > 2"
        )
    )
    # a.x > 1 must sit below the join, on the left input
    join = plan.child
    assert isinstance(join, Join)
    assert isinstance(join.left, SelectOp)
    assert str(join.left.pred) == "(a.x > 1)"
    assert isinstance(join.right, SelectOp)


def test_bind_becomes_singleton_unnest():
    term = comp(
        "set",
        var("y"),
        [gen("x", var("Xs")), filt(new_pred := gt(var("x"), const(0)))],
    )
    # leftover Bind (kept by a purity guard) is handled too
    from repro.calculus.ast import Bind as BindQ, Comprehension

    with_bind = Comprehension(
        term.monoid, var("y"), term.qualifiers + (BindQ("y", var("x")),)
    )
    plan = build_plan(with_bind, pre_normalize=False)
    assert isinstance(plan.child, Unnest)


def test_effectful_comprehension_rejected():
    term = comp("set", var("x"), [bind("x", new(const(1)))])
    with pytest.raises(PlanError):
        build_plan(term, pre_normalize=False)


def test_degenerate_empty_plan():
    from repro.calculus import zero
    from repro.algebra import execute_plan

    plan = build_plan(zero("set"), pre_normalize=False)
    assert execute_plan(plan) == frozenset()


def test_degenerate_singleton_plan():
    from repro.calculus import unit
    from repro.algebra import execute_plan

    plan = build_plan(unit("bag", const(3)), pre_normalize=False)
    from repro.values import Bag

    assert execute_plan(plan) == Bag([3])


def test_no_generator_comprehension_guards():
    from repro.algebra import execute_plan

    term = comp("sum", const(5), [filt(var("p"))])
    plan = build_plan(term, pre_normalize=False)
    assert execute_plan(plan, {"p": True}) == 5
    assert execute_plan(plan, {"p": False}) == 0


def test_render_tree():
    plan = build_plan(
        translate_oql("select distinct h from c in Cities, h in c.hotels where h.stars = 5")
    )
    out = plan.render()
    assert "Reduce" in out and "Unnest" in out and "Scan" in out


def test_columns_tracking():
    plan = build_plan(
        translate_oql("select distinct h from c in Cities, h in c.hotels")
    )
    assert plan.child.columns() == frozenset({"c", "h"})
