"""Ordering contracts of ``merge_all`` and ``combine_partials``.

Regression suite for the parallel-engine audit: every fold site must
treat ``merge_all`` as a *left fold in iteration order* (the carrier
order is semantically significant for non-commutative monoids), and
``combine_partials`` over partition-ordered partials must equal the
serial fold for every monoid in the catalog — that equality is exactly
what makes partitioned execution a homomorphism.
"""

import random

from repro.monoids import (
    LIST,
    OSET,
    STRING,
    SUM,
    get_monoid,
    sorted_bag_monoid,
    sorted_monoid,
    vector_monoid,
)

PRIMITIVE_INT = ["sum", "prod", "max", "min"]
PRIMITIVE_BOOL = ["some", "all"]
COLLECTION = ["set", "bag", "list", "oset"]


def elements_for(name, rng, n):
    if name in PRIMITIVE_BOOL:
        return [rng.random() < 0.5 for _ in range(n)]
    if name == "string":
        return [rng.choice("abcde") for _ in range(n)]
    return [rng.randint(-9, 9) for _ in range(n)]


def serial_fold(monoid, elements):
    out = monoid.zero()
    for element in elements:
        out = monoid.merge(out, monoid.unit(element))
    return out


def split(elements, k):
    """Contiguous partitions (possibly empty tails) in element order."""
    if not elements:
        return [[]]
    size = max(1, len(elements) // k)
    return [elements[i : i + size] for i in range(0, len(elements), size)]


def test_merge_all_is_left_fold_in_iteration_order():
    # list and string concatenation expose any reordering immediately
    assert LIST.merge_all([(1,), (2, 3), (4,)]) == (1, 2, 3, 4)
    assert STRING.merge_all(["ab", "c", "d"]) == "abcd"
    # a generator (one-shot iterable) must work too
    assert LIST.merge_all(iter([(1,), (2,)])) == (1, 2)


def test_combine_partials_equals_serial_fold_every_monoid():
    rng = random.Random("ordering")
    catalog = [get_monoid(name) for name in
               PRIMITIVE_INT + PRIMITIVE_BOOL + COLLECTION + ["string"]]
    catalog.append(sorted_monoid(lambda x: x))
    catalog.append(sorted_bag_monoid(lambda x: x))
    for monoid in catalog:
        for n in (0, 1, 5, 23):
            elements = elements_for(monoid.name, rng, n)
            serial = serial_fold(monoid, elements)
            for k in (1, 2, 3, 7):
                partials = [serial_fold(monoid, part) for part in split(elements, k)]
                combined = monoid.combine_partials(partials)
                assert combined == serial, (monoid.name, n, k)


def test_commutative_monoids_accept_any_partial_order():
    rng = random.Random("commute")
    for name in PRIMITIVE_INT + ["bag", "set"]:
        monoid = get_monoid(name)
        assert monoid.commutative, name
        elements = elements_for(name, rng, 17)
        serial = serial_fold(monoid, elements)
        partials = [serial_fold(monoid, part) for part in split(elements, 4)]
        rng.shuffle(partials)
        assert monoid.combine_partials(partials) == serial, name


def test_non_commutative_monoids_are_order_sensitive():
    # The contract the parallel engine relies on: for these monoids the
    # partial order IS the answer, so reordering must be observable.
    assert not LIST.commutative and not STRING.commutative and not OSET.commutative
    assert LIST.combine_partials([(1,), (2,)]) != LIST.combine_partials([(2,), (1,)])
    assert STRING.combine_partials(["a", "b"]) != STRING.combine_partials(["b", "a"])


def test_sorted_combine_is_kway_merge_with_idempotent_dedup():
    asc = sorted_monoid(lambda x: x)
    # already-sorted partials with a cross-partition duplicate
    assert asc.combine_partials([(1, 3, 5), (2, 3, 6)]) == (1, 2, 3, 5, 6)
    bag = sorted_bag_monoid(lambda x: x)
    assert bag.combine_partials([(1, 3, 5), (2, 3, 6)]) == (1, 2, 3, 3, 5, 6)


def test_sorted_combine_matches_pairwise_merge():
    rng = random.Random("kway")
    asc = sorted_monoid(lambda x: x)
    parts = []
    for _ in range(5):
        parts.append(serial_fold(asc, [rng.randint(0, 20) for _ in range(8)]))
    assert asc.combine_partials(parts) == asc.merge_all(parts)


def test_vector_combine_partials():
    vec = vector_monoid(SUM, 6)

    def fold(pairs):
        out = vec.zero()
        for value, index in pairs:
            out = vec.merge(out, vec.unit(value, index))
        return out

    partials = [fold([(1, 0), (2, 3)]), fold([(10, 3), (4, 5)])]
    combined = vec.combine_partials(partials)
    assert combined.to_list() == [1, 0, 0, 12, 0, 4]


def test_combine_partials_empty_and_singleton():
    for name in PRIMITIVE_INT + COLLECTION + ["string"]:
        monoid = get_monoid(name)
        assert monoid.combine_partials([]) == monoid.zero(), name
        one = serial_fold(monoid, elements_for(name, random.Random(name), 3))
        assert monoid.combine_partials([one]) == one, name
