"""Unit tests for sorted[f] and sortedbag[f]."""

from repro.monoids import sorted_bag_monoid, sorted_monoid
from repro.values import Record


def test_sorted_orders_by_key():
    m = sorted_monoid(lambda r: r["k"])
    out = m.from_iterable([Record(k=3), Record(k=1), Record(k=2)])
    assert [r.k for r in out] == [1, 2, 3]


def test_sorted_is_idempotent_dropping_exact_duplicates():
    m = sorted_monoid(lambda x: x)
    assert m.merge((1, 2), (1, 2)) == (1, 2)


def test_sorted_keeps_key_equal_distinct_values():
    m = sorted_monoid(lambda r: r["k"])
    out = m.from_iterable([Record(k=1, v="b"), Record(k=1, v="a")])
    assert len(out) == 2
    # Ties broken deterministically by canonical value order.
    assert out == m.from_iterable([Record(k=1, v="a"), Record(k=1, v="b")])


def test_sorted_merge_commutative_and_associative():
    m = sorted_monoid(lambda x: x)
    a, b, c = (3, 5), (1,), (4, 5)
    assert m.merge(a, b) == m.merge(b, a)
    assert m.merge(m.merge(a, b), c) == m.merge(a, m.merge(b, c))


def test_sorted_properties_are_ci():
    m = sorted_monoid(lambda x: x)
    assert m.commutative and m.idempotent


def test_sorted_unit_and_zero():
    m = sorted_monoid(lambda x: x)
    assert m.zero() == ()
    assert m.unit(5) == (5,)


def test_sorted_insert():
    m = sorted_monoid(lambda x: x)
    assert m.insert((1, 3), 2) == (1, 2, 3)
    assert m.insert((1, 3), 3) == (1, 3)  # duplicate dropped


def test_sortedbag_keeps_duplicates():
    m = sorted_bag_monoid(lambda x: x)
    assert m.merge((1, 2), (1, 2)) == (1, 1, 2, 2)


def test_sortedbag_properties_c_only():
    m = sorted_bag_monoid(lambda x: x)
    assert m.commutative and not m.idempotent


def test_sortedbag_insert_keeps_duplicates():
    m = sorted_bag_monoid(lambda x: x)
    assert m.insert((1, 2), 2) == (1, 2, 2)


def test_sortedbag_merge_commutative():
    m = sorted_bag_monoid(lambda x: -x, key_name="neg")
    assert m.merge((3, 1), (2,)) == m.merge((2,), (3, 1)) == (3, 2, 1)


def test_sorted_descending_via_key():
    m = sorted_monoid(lambda x: -x)
    assert m.from_iterable([1, 3, 2]) == (3, 2, 1)


def test_distinct_monoid_instances_by_key_name():
    a = sorted_monoid(lambda x: x, key_name="id")
    b = sorted_monoid(lambda x: x, key_name="id2")
    assert a.name == "sorted[id]"
    assert b.name == "sorted[id2]"
    assert a != b
