"""``python -m repro verify`` — exit codes, text and JSON output."""

import json
from pathlib import Path

from repro.analysis.cli import main

EXAMPLES = Path(__file__).parent.parent / "examples"


def run(argv):
    lines = []
    code = main(argv, out=lines.append)
    return code, lines


class TestFiles:
    def test_travel_examples_all_verify(self):
        code, lines = run([str(EXAMPLES / "travel_queries.oql")])
        assert code == 0
        assert lines and all(line.startswith("ok ") for line in lines)
        assert any("rewrite(s) verified" in line for line in lines)

    def test_lines_carry_file_and_line_numbers(self):
        target = str(EXAMPLES / "travel_queries.oql")
        code, lines = run([target])
        assert code == 0
        assert all(f"{target}:" in line for line in lines)

    def test_unreadable_target_fails(self, tmp_path):
        # a directory exists but cannot be read as a query file
        code, lines = run([str(tmp_path)])
        assert code == 1
        assert any("cannot read" in line for line in lines)


class TestLiteralQueries:
    def test_good_query_exits_zero(self):
        code, lines = run(["select distinct c.name from c in Cities"])
        assert code == 0
        assert len(lines) == 1 and lines[0].startswith("ok <query>")

    def test_company_schema_flag(self):
        code, _ = run(
            ["--schema", "company", "select distinct e.name from e in Employees"]
        )
        assert code == 0

    def test_bad_query_exits_one(self):
        code, lines = run(["select distinct c.name from c in Citees"])
        assert code == 1
        assert lines[0].startswith("FAIL <query>")

    def test_syntax_error_exits_one(self):
        code, lines = run(["select from where"])
        assert code == 1
        assert lines[0].startswith("FAIL")


class TestJson:
    def test_json_report_shape(self):
        code, lines = run(["--json", "select distinct c.name from c in Cities"])
        assert code == 0
        (payload,) = lines
        docs = json.loads(payload)
        assert len(docs) == 1
        (doc,) = docs[0]["queries"]
        assert doc["ok"] is True
        assert doc["engine"]
        assert isinstance(doc["rewrites"], int)
        assert isinstance(doc["rules"], dict)

    def test_json_failure_document(self):
        code, lines = run(["--json", "select distinct c.name from c in Citees"])
        assert code == 1
        (doc,) = json.loads(lines[0])[0]["queries"]
        assert doc["ok"] is False
        assert doc["error"]
        assert doc["detail"]
