"""Pipelined execution: joins, unnests, stats, index scans."""

import pytest

from repro.algebra import (
    Executor,
    IndexScan,
    Join,
    Reduce,
    Scan,
    SelectOp,
    Unnest,
    build_plan,
    execute_plan,
)
from repro.calculus import const, eq, proj, var
from repro.calculus.ast import MonoidRef
from repro.errors import EvaluationError, PlanError
from repro.eval import Evaluator
from repro.oql import translate_oql
from repro.values import Bag, Record


@pytest.fixture
def world():
    as_ = frozenset({Record(k=1, x=10), Record(k=2, x=20)})
    bs = frozenset({Record(k=1, y="a"), Record(k=1, y="b"), Record(k=3, y="c")})
    return {"Ls": as_, "Rs": bs}


def test_hash_join_matches_nested_loop(world):
    hash_plan = Reduce(
        MonoidRef("set"),
        proj(var("b"), "y"),
        Join(
            Scan("a", var("Ls")),
            Scan("b", var("Rs")),
            (proj(var("a"), "k"),),
            (proj(var("b"), "k"),),
        ),
    )
    loop_plan = Reduce(
        MonoidRef("set"),
        proj(var("b"), "y"),
        SelectOp(
            Join(Scan("a", var("Ls")), Scan("b", var("Rs"))),
            eq(proj(var("a"), "k"), proj(var("b"), "k")),
        ),
    )
    assert execute_plan(hash_plan, world) == execute_plan(loop_plan, world) == frozenset({"a", "b"})


def test_hash_join_stats(world):
    plan = build_plan(
        translate_oql("select distinct b.y from a in Ls, b in Rs where a.k = b.k")
    )
    executor = Executor(Evaluator(world))
    executor.execute(plan)
    assert executor.stats.hash_builds == 3
    assert executor.stats.rows_joined == 2


def test_join_residual_predicate(world):
    plan = Reduce(
        MonoidRef("set"),
        proj(var("b"), "y"),
        Join(
            Scan("a", var("Ls")),
            Scan("b", var("Rs")),
            (proj(var("a"), "k"),),
            (proj(var("b"), "k"),),
            residual=eq(proj(var("b"), "y"), const("a")),
        ),
    )
    assert execute_plan(plan, world) == frozenset({"a"})


def test_cross_join(world):
    plan = Reduce(
        MonoidRef("sum"),
        const(1),
        Join(Scan("a", var("Ls")), Scan("b", var("Rs"))),
    )
    assert execute_plan(plan, world) == 6


def test_unnest(world):
    data = {"Cs": frozenset({Record(name="c1", xs=(1, 2)), Record(name="c2", xs=(3,))})}
    plan = Reduce(
        MonoidRef("bag"),
        var("x"),
        Unnest(Scan("c", var("Cs")), "x", proj(var("c"), "xs")),
    )
    assert execute_plan(plan, data) == Bag([1, 2, 3])


def test_selection_requires_boolean(world):
    plan = Reduce(
        MonoidRef("set"),
        var("a"),
        SelectOp(Scan("a", var("Ls")), const(1)),
    )
    with pytest.raises(EvaluationError):
        execute_plan(plan, world)


def test_indexed_scan_over_vector():
    from repro.values import Vector

    plan = Reduce(
        MonoidRef("list"),
        var("i"),
        Scan("x", var("v"), index_var="i"),
    )
    assert execute_plan(plan, {"v": Vector.from_dense([9, 9])}) == (0, 1)


def test_index_scan_uses_index(world):
    index = {(("Ls"), "k"): {1: [Record(k=1, x=10)], 2: [Record(k=2, x=20)]}}
    plan = Reduce(
        MonoidRef("set"),
        proj(var("a"), "x"),
        IndexScan("a", "Ls", "k", const(2)),
    )
    executor = Executor(Evaluator(world), indexes=index)
    assert executor.execute(plan) == frozenset({20})
    assert executor.stats.index_probes == 1


def test_index_scan_missing_index_raises(world):
    plan = Reduce(
        MonoidRef("set"),
        var("a"),
        IndexScan("a", "Ls", "k", const(2)),
    )
    with pytest.raises(PlanError):
        Executor(Evaluator(world)).execute(plan)


def test_reduce_primitive_monoid(world):
    plan = Reduce(MonoidRef("sum"), proj(var("a"), "x"), Scan("a", var("Ls")))
    assert execute_plan(plan, world) == 30


def test_reduce_vector_monoid_requires_pair():
    from repro.calculus import tup
    from repro.calculus.ast import MonoidRef as MR, Const

    ref = MR("vec", element=MR("sum"), size=Const(2))
    good = Reduce(ref, tup(var("x"), const(0)), Scan("x", const((1, 2))))
    out = execute_plan(good)
    assert out.to_list() == [3, 0]

    bad = Reduce(ref, var("x"), Scan("x", const((1, 2))))
    with pytest.raises(EvaluationError):
        execute_plan(bad)


def test_stats_reset_between_executions(world):
    plan = build_plan(translate_oql("select distinct a from a in Ls"))
    executor = Executor(Evaluator(world))
    executor.execute(plan)
    first = executor.stats.rows_scanned
    executor.execute(plan)
    assert executor.stats.rows_scanned == first


def test_scan_dereferences_object_sources():
    ev = Evaluator()
    obj = ev.store.new((1, 2, 3))
    ev.bind_global("Xs", obj)
    plan = Reduce(MonoidRef("sum"), var("x"), Scan("x", var("Xs")))
    assert Executor(ev).execute(plan) == 6
