"""The normalization engine: fixpoints, traces, canonical forms."""

import pytest

from repro.calculus import (
    add,
    alpha_equal,
    comp,
    const,
    eq,
    filt,
    gen,
    lam,
    apply,
    proj,
    var,
)
from repro.eval import evaluate
from repro.normalize import (
    is_canonical,
    is_canonical_comprehension,
    is_simple_path,
    normalize,
    normalize_with_trace,
)
from repro.oql import translate_oql
from repro.values import Record


class TestEngine:
    def test_normal_form_is_fixed_point(self):
        term = translate_oql(
            "select distinct h.name from c in Cities, h in c.hotels "
            "where c.name = 'Portland'"
        )
        once = normalize(term)
        assert normalize(once) == once

    def test_trace_records_each_step(self):
        inner = comp("set", var("c"), [gen("c", var("Cities"))])
        outer = comp("set", proj(var("x"), "name"), [gen("x", inner)])
        result, trace = normalize_with_trace(outer)
        assert trace.rules_fired() == ["N9-flatten", "N3-bind"]
        assert trace.result == result
        assert len(trace) == 2

    def test_trace_render(self):
        term = apply(lam("x", var("x")), const(1))
        _, trace = normalize_with_trace(term)
        out = trace.render()
        assert "N1-beta" in out and "source:" in out

    def test_rule_counts(self):
        term = apply(lam("x", apply(lam("y", var("y")), var("x"))), const(1))
        _, trace = normalize_with_trace(term)
        assert trace.rule_counts()["N1-beta"] == 2

    def test_max_steps_guard(self):
        from repro.errors import NormalizationError

        term = apply(lam("x", var("x")), const(1))
        with pytest.raises(NormalizationError):
            normalize(term, max_steps=0)

    def test_rewrites_inside_all_positions(self):
        redex = apply(lam("x", var("x")), const(1))
        # in generator source, predicate, and head simultaneously
        term = comp(
            "set",
            add(redex, const(0)),
            [gen("v", const((1,))), filt(eq(redex, const(1)))],
        )
        result = normalize(term)
        assert is_canonical(result)
        assert evaluate(result) == frozenset({1})


class TestPaperDerivation:
    """The paper's worked normalization: the Portland hotels query.

    bag{ h.name | h <- set{ h | c <- Cities, c.name="Portland",
                                 h <- c.hotels }, ... } nested shapes
    flatten into one canonical comprehension over simple paths.
    """

    def test_nested_from_clause_flattens(self):
        nested = translate_oql(
            "select distinct h.name from h in "
            "(select distinct h from c in Cities, h in c.hotels "
            " where c.name = 'Portland')"
        )
        flat, trace = normalize_with_trace(nested)
        assert is_canonical_comprehension(flat)
        assert "N9-flatten" in trace.rules_fired()
        # Same canonical form as writing the flat query directly.
        direct = normalize(
            translate_oql(
                "select distinct h.name from c in Cities, h in c.hotels "
                "where c.name = 'Portland'"
            )
        )
        assert alpha_equal(flat, direct)

    def test_flattened_query_evaluates_identically(self):
        cities = frozenset(
            {
                Record(
                    name="Portland",
                    hotels=frozenset({Record(name="A"), Record(name="B")}),
                ),
                Record(name="Salem", hotels=frozenset({Record(name="C")})),
            }
        )
        nested = translate_oql(
            "select distinct h.name from h in "
            "(select distinct h from c in Cities, h in c.hotels "
            " where c.name = 'Portland')"
        )
        flat = normalize(nested)
        env = {"Cities": cities}
        assert evaluate(flat, env) == evaluate(nested, env) == frozenset({"A", "B"})

    def test_exists_fusion_produces_join(self):
        term = translate_oql(
            "select distinct c.name from c in Cities "
            "where exists h in c.hotels : h.stars = 5"
        )
        flat, trace = normalize_with_trace(term)
        assert "N11-exists" in trace.rules_fired()
        assert is_canonical_comprehension(flat)
        # the fused form has two generators (a dependent join)
        from repro.calculus.ast import Generator

        generators = [q for q in flat.qualifiers if isinstance(q, Generator)]
        assert len(generators) == 2


class TestCanonicalPredicates:
    def test_simple_path(self):
        assert is_simple_path(var("x"))
        assert is_simple_path(proj(proj(var("c"), "a"), "b"))
        assert not is_simple_path(const(3))
        assert not is_simple_path(add(var("x"), const(1)))

    def test_is_canonical_comprehension(self):
        good = comp("set", var("x"), [gen("x", var("db"))])
        assert is_canonical_comprehension(good)
        nested = comp("set", var("x"), [gen("x", comp("set", var("y"), [gen("y", var("db"))]))])
        assert not is_canonical_comprehension(nested)
        assert not is_canonical_comprehension(const(3))

    def test_is_canonical_term(self):
        assert is_canonical(var("x"))
        assert not is_canonical(apply(lam("x", var("x")), const(1)))
