"""The rewrite-soundness verifier: every Table 3 rule verifies, broken
rules are caught, and the enablement switches compose correctly."""

import pytest

from repro.analysis.verifier import (
    RewriteVerifier,
    resolve_verify,
    verification,
    verification_enabled,
)
from repro.calculus.ast import (
    Apply,
    BinOp,
    Comprehension,
    Lambda,
    MonoidRef,
    Var,
)
from repro.calculus.builders import (
    add,
    and_,
    bind,
    comp,
    const,
    eq,
    filt,
    gen,
    gt,
    if_,
    index,
    lam,
    let,
    lt,
    merge,
    proj,
    rec,
    tup,
    unit,
    var,
    zero,
)
from repro.errors import VerificationError
from repro.normalize.engine import normalize, normalize_with_trace
from repro.normalize.rules import RULES_BY_NAME

# One fixture per rule: a term the rule fires on at the root. Together
# these cover the entire registry (asserted below), so a new rule
# without a verified fixture fails the suite.
RULE_FIXTURES = {
    "N1-beta": Apply(lam("x", add(var("x"), 1)), const(2)),
    "N1-let": let("x", const(2), add(var("x"), 1)),
    "N2-proj": proj(rec(a=const(1), b=const(2)), "a"),
    "N2-tuple": index(tup(const(1), const(2)), const(1)),
    "N15-const": lt(const(3), const(5)),
    "N4-true": comp("set", var("x"), [gen("x", var("db")), filt(const(True))]),
    "N5-false": comp("set", var("x"), [gen("x", var("db")), filt(const(False))]),
    "N6-empty": comp("set", var("x"), [gen("x", zero("set"))]),
    "N14-zero": merge("set", zero("set"), unit("set", const(1))),
    "N7-unit": comp("set", var("x"), [gen("x", unit("set", const(5)))]),
    "N3-bind": comp(
        "set",
        var("y"),
        [gen("x", var("db")), bind("y", proj(var("x"), "a"))],
    ),
    "N12-and": comp(
        "set",
        var("x"),
        [gen("x", var("db")), filt(and_(gt(var("x"), 0), lt(var("x"), 9)))],
    ),
    "N9-flatten": comp(
        "set",
        var("x"),
        [gen("x", comp("set", var("y"), [gen("y", var("db"))]))],
    ),
    "N11-exists": comp(
        "set",
        var("x"),
        [
            gen("x", var("db")),
            filt(comp("some", eq(var("x"), var("y")), [gen("y", var("db2"))])),
        ],
    ),
    "N8-merge": comp("set", var("x"), [gen("x", merge("set", var("a"), var("b")))]),
    "N10-if-gen": comp(
        "set", var("x"), [gen("x", if_(var("p"), var("a"), var("b")))]
    ),
    "N0-unit": comp("set", const(1), []),
}


class TestEveryRuleVerifies:
    def test_fixture_set_covers_the_registry(self):
        assert set(RULE_FIXTURES) == set(RULES_BY_NAME)

    @pytest.mark.parametrize("rule_name", sorted(RULE_FIXTURES))
    def test_rule_fire_passes_verification(self, rule_name):
        rule = RULES_BY_NAME[rule_name]
        before = RULE_FIXTURES[rule_name]
        after = rule.apply(before)
        assert after is not None, f"{rule_name} did not fire on its fixture"
        verifier = RewriteVerifier()
        verifier.check_rewrite(rule, before, after)  # must not raise
        assert verifier.checked == 1

    @pytest.mark.parametrize("rule_name", sorted(RULE_FIXTURES))
    def test_fixture_normalizes_under_verification(self, rule_name):
        # the full pipeline (which fires follow-up rules too) stays sound
        normalize(RULE_FIXTURES[rule_name], verify=True)


# ---------------------------------------------------------------------------
# Deliberately broken rules: the verifier must catch each failure mode.
# ---------------------------------------------------------------------------


def _naive_subst(term, name, value):
    """Textbook-wrong substitution: ignores capture entirely."""
    if isinstance(term, Var):
        return value if term.name == name else term
    if isinstance(term, Lambda):
        if term.param == name:
            return term
        return Lambda(term.param, _naive_subst(term.body, name, value))
    if isinstance(term, BinOp):
        return BinOp(
            term.op,
            _naive_subst(term.left, name, value),
            _naive_subst(term.right, name, value),
        )
    return term


class CapturingBeta:
    """A beta rule built on naive substitution — captures free variables."""

    name = "test-capturing-beta"

    def apply(self, term):
        if isinstance(term, Apply) and isinstance(term.fn, Lambda):
            return _naive_subst(term.fn.body, term.fn.param, term.arg)
        return None


class MonoidSwap:
    """A 'simplification' that silently turns a set into a bag."""

    name = "test-monoid-swap"

    def apply(self, term):
        if isinstance(term, Comprehension) and term.monoid.name == "set":
            return Comprehension(MonoidRef("bag"), term.head, term.qualifiers)
        return None


class VariableEscape:
    """Rewrites zero(M) to a variable nobody bound."""

    name = "test-escape"

    def apply(self, term):
        from repro.calculus.ast import Empty

        if isinstance(term, Empty):
            return Var("leaked")
        return None


class TestBrokenRulesAreCaught:
    def test_capture_detected_by_alpha_probe(self):
        # (\x. \y. x + y) y  —  naive substitution captures the free y
        rule = CapturingBeta()
        before = Apply(lam("x", lam("y", add(var("x"), var("y")))), var("y"))
        after = rule.apply(before)
        with pytest.raises(VerificationError) as exc:
            RewriteVerifier().check_rewrite(rule, before, after)
        assert any(v.invariant == "alpha" for v in exc.value.violations)
        assert "test-capturing-beta" in str(exc.value)

    def test_capture_caught_inside_normalize(self):
        before = Apply(lam("x", lam("y", add(var("x"), var("y")))), var("y"))
        with pytest.raises(VerificationError):
            normalize(before, rules=(CapturingBeta(),), verify=True)
        # and without verification the bad rule slips through silently
        normalize(before, rules=(CapturingBeta(),), verify=False)

    def test_type_change_detected(self):
        rule = MonoidSwap()
        before = comp("set", var("x"), [gen("x", var("db"))])
        after = rule.apply(before)
        with pytest.raises(VerificationError) as exc:
            RewriteVerifier().check_rewrite(rule, before, after)
        assert any(v.invariant == "type" for v in exc.value.violations)

    def test_variable_escape_detected(self):
        rule = VariableEscape()
        before = zero("set")
        after = rule.apply(before)
        with pytest.raises(VerificationError) as exc:
            RewriteVerifier().check_rewrite(rule, before, after)
        assert any(v.invariant == "scope" for v in exc.value.violations)

    def test_error_carries_rule_and_terms(self):
        rule = VariableEscape()
        before = zero("set")
        with pytest.raises(VerificationError) as exc:
            RewriteVerifier().check_rewrite(rule, before, rule.apply(before))
        err = exc.value
        assert err.rule == "test-escape"
        assert err.before is before
        assert "before:" in str(err) and "after:" in str(err)


# ---------------------------------------------------------------------------
# Enablement switches
# ---------------------------------------------------------------------------


class TestEnablement:
    def test_env_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        assert not verification_enabled()
        monkeypatch.setenv("REPRO_VERIFY", "1")
        assert verification_enabled()
        for falsey in ("", "0", "false", "off", "no", "  NO  "):
            monkeypatch.setenv("REPRO_VERIFY", falsey)
            assert not verification_enabled()

    def test_context_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        with verification(False):
            assert not verification_enabled()
        assert verification_enabled()
        monkeypatch.delenv("REPRO_VERIFY")
        with verification(True):
            assert verification_enabled()
        assert not verification_enabled()

    def test_none_context_is_transparent(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        with verification(None):
            assert not verification_enabled()

    def test_explicit_flag_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        assert resolve_verify(False) is False
        assert resolve_verify(None) is True
        monkeypatch.delenv("REPRO_VERIFY")
        assert resolve_verify(True) is True
        assert resolve_verify(None) is False

    def test_env_flag_reaches_normalize(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        before = Apply(lam("x", lam("y", add(var("x"), var("y")))), var("y"))
        with pytest.raises(VerificationError):
            normalize(before, rules=(CapturingBeta(),))


class TestOffPathUnchanged:
    def test_verified_and_plain_results_identical(self):
        term = comp(
            "set",
            var("x"),
            [gen("x", comp("set", var("y"), [gen("y", var("db")),
                                             filt(gt(var("y"), 3))]))],
        )
        plain, plain_trace = normalize_with_trace(term, verify=False)
        checked, checked_trace = normalize_with_trace(term, verify=True)
        # fresh-name counters differ between runs; the terms are the same
        from repro.calculus.traversal import alpha_equal

        assert alpha_equal(plain, checked)
        assert plain_trace.rule_counts() == checked_trace.rule_counts()
