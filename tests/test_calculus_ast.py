"""AST construction, immutability, hashing and pretty printing."""

import pytest

from repro.calculus import (
    Const,
    Generator,
    MonoidRef,
    Var,
    bind,
    comp,
    const,
    eq,
    filt,
    gen,
    lam,
    merge,
    mref,
    pretty_block,
    proj,
    rec,
    tup,
    unit,
    var,
    vec_ref,
    zero,
)


def test_nodes_are_hashable_and_comparable():
    a = comp("set", var("x"), [gen("x", var("db"))])
    b = comp("set", var("x"), [gen("x", var("db"))])
    assert a == b
    assert hash(a) == hash(b)
    assert len({a, b}) == 1


def test_nodes_are_immutable():
    node = var("x")
    with pytest.raises(Exception):
        node.name = "y"


def test_comprehension_str_matches_paper_notation():
    term = comp(
        "set",
        tup(var("a"), var("b")),
        [gen("a", const((1, 2, 3))), gen("b", const((4, 5)))],
    )
    assert str(term) == "set{ (a, b) | a <- (1, 2, 3), b <- (4, 5) }"


def test_empty_comprehension_str():
    assert str(comp("bag", const(1))) == "bag{ 1 }"


def test_qualifier_strs():
    assert str(gen("x", var("db"))) == "x <- db"
    assert str(gen("a", var("x"), at="i")) == "a[i] <- x"
    assert str(bind("v", const(3))) == "v == 3"
    assert str(filt(eq(var("x"), const(1)))) == "(x = 1)"


def test_monoid_ref_str_forms():
    assert str(mref("bag")) == "bag"
    sorted_ref = MonoidRef("sorted", key=lam("x", var("x")))
    assert str(sorted_ref) == "sorted[\\x. x]"
    assert str(vec_ref("sum", 8)) == "sum[8]"


def test_zero_unit_merge_strs():
    assert str(zero("set")) == "zero(set)"
    assert str(unit("set", const(1))) == "unit(set)(1)"
    assert str(unit(vec_ref("sum", 4), const(8), at=const(2))) == "unit(sum[4])(8 @ 2)"
    assert str(merge("bag", zero("bag"), zero("bag"))) == "(zero(bag) (+)bag zero(bag))"


def test_const_str_booleans_and_strings():
    assert str(const(True)) == "true"
    assert str(const(False)) == "false"
    assert str(const("hi")) == "'hi'"
    assert str(const(3)) == "3"


def test_record_and_path_strs():
    assert str(rec(a=const(1), b=var("x"))) == "<a=1, b=x>"
    assert str(proj(var("c"), "hotels", "name")) == "c.hotels.name"


def test_record_field_map():
    node = rec(a=const(1), b=const(2))
    assert node.field_map() == {"a": Const(1), "b": Const(2)}


def test_pretty_block_multiline():
    term = comp("set", var("x"), [gen("x", var("db")), eq(var("x"), const(1))])
    out = pretty_block(term)
    assert out.splitlines()[0] == "set{ x |"
    assert out.splitlines()[-1] == "}"
    assert "x <- db" in out


def test_generator_defaults():
    g = Generator("x", Var("db"))
    assert g.index_var is None


def test_vector_monoid_ref_flags():
    assert vec_ref("sum", 4).is_vector
    assert not mref("set").is_vector
