"""The batch CLI: query splitting, span re-basing, exit codes."""

from repro.db.sample_data import travel_schema
from repro.lint.cli import lint_text, main, split_queries
from repro.lint.linter import Linter


def run_cli(args):
    lines = []
    code = main(args, out=lines.append)
    return code, "\n".join(lines)


class TestSplitQueries:
    def test_single_query_no_semicolon(self):
        assert list(split_queries("select 1")) == [(0, 0, "select 1")]

    def test_two_queries_offsets(self):
        chunks = list(split_queries("count(Cities);\nselect 1"))
        assert len(chunks) == 2
        assert chunks[0][:2] == (0, 0)
        line0, col0, text = chunks[1]
        # the segment keeps the newline after ';', so it starts right
        # there and the segment-relative line 2 rebases to file line 2
        assert (line0, col0) == (0, 14)
        assert text == "\nselect 1"

    def test_semicolon_in_string_does_not_split(self):
        chunks = list(split_queries("select distinct c.name from c in Cities "
                                    "where c.name = 'a;b'"))
        assert len(chunks) == 1

    def test_semicolon_in_comment_does_not_split(self):
        source = "-- not a split; really\ncount(Cities)"
        chunks = list(split_queries(source))
        assert len(chunks) == 1

    def test_blank_segments_dropped(self):
        assert list(split_queries(";;  ;\n;")) == []


class TestLintText:
    def test_spans_rebased_to_file_coordinates(self):
        source = "count(Cities);\nselect distinct c.name from c in Citees"
        findings = lint_text(source, Linter(travel_schema()))
        assert [d.code for d in findings] == ["QL003"]
        span = findings[0].span
        assert span.line == 2
        # 'Citees' starts at column 34 of the second line
        assert source.splitlines()[span.line - 1][span.column - 1:].startswith("Citees")


class TestMain:
    def test_clean_file_exits_zero(self, tmp_path):
        path = tmp_path / "ok.oql"
        path.write_text("select distinct c.name from c in Cities")
        code, out = run_cli([str(path)])
        assert code == 0
        assert "no diagnostics" in out

    def test_error_file_exits_one(self, tmp_path):
        path = tmp_path / "bad.oql"
        path.write_text("select distinct c.name from c in Citees")
        code, out = run_cli([str(path)])
        assert code == 1
        assert "error[QL003]" in out
        assert "did you mean 'Cities'?" in out

    def test_warning_only_file_exits_zero(self, tmp_path):
        path = tmp_path / "warn.oql"
        path.write_text("select distinct c.name from c in Cities where 1 = 1")
        code, out = run_cli([str(path)])
        assert code == 0
        assert "warning[QL102]" in out

    def test_quiet_mode_summarizes(self, tmp_path):
        path = tmp_path / "bad.oql"
        path.write_text("select distinct c.name from c in Citees")
        code, out = run_cli(["--quiet", str(path)])
        assert code == 1
        assert out.strip() == f"{path}: 1 errors, 0 warnings"

    def test_missing_file_exits_one(self, tmp_path):
        code, out = run_cli([str(tmp_path / "nope.oql")])
        assert code == 1
        assert "cannot read" in out

    def test_schema_none(self, tmp_path):
        path = tmp_path / "q.oql"
        path.write_text("select distinct c.name from c in Cities")
        code, out = run_cli(["--schema", "none", str(path)])
        assert code == 1  # Cities unknown without a schema
        assert "QL003" in out

    def test_company_schema(self, tmp_path):
        path = tmp_path / "q.oql"
        path.write_text("select distinct e.name from e in Employees")
        code, out = run_cli(["--schema", "company", str(path)])
        assert code == 0

    def test_multiple_files_one_bad_fails(self, tmp_path):
        good = tmp_path / "good.oql"
        good.write_text("count(Cities)")
        bad = tmp_path / "bad.oql"
        bad.write_text("select from")
        code, out = run_cli([str(good), str(bad)])
        assert code == 1
        assert f"== {good}" in out and f"== {bad}" in out

    def test_repo_example_files_are_lintable(self):
        import pathlib

        examples = sorted(
            str(p) for p in
            (pathlib.Path(__file__).parent.parent / "examples").glob("*.oql")
        )
        assert examples, "examples/*.oql missing"
        code, out = run_cli(examples)
        assert code == 0

    def test_module_dispatch(self, tmp_path):
        from repro.__main__ import main as module_main

        path = tmp_path / "q.oql"
        path.write_text("count(Cities)")
        assert module_main(["lint", str(path)]) == 0


class TestExitStatusContract:
    """docs/LINT.md 'Exit status': 0 = no errors (warnings/infos print
    but never fail), 1 = error diagnostic or unreadable file."""

    def test_info_only_exits_zero(self, tmp_path):
        path = tmp_path / "info.oql"
        # QL303 (index-probe candidate) is info severity
        path.write_text(
            "select distinct c.name from c in Cities where c.state = 'OR'"
        )
        code, out = run_cli([str(path)])
        assert code == 0
        assert "info[QL303]" in out

    def test_warnings_and_infos_together_exit_zero(self, tmp_path):
        path = tmp_path / "mixed.oql"
        path.write_text(
            "select distinct c.name from c in Cities, h in c.hotels "
            "where c.state = 'OR'"
        )
        code, out = run_cli([str(path)])
        assert code == 0
        assert "warning[QL005]" in out and "info[QL303]" in out

    def test_json_info_only_exits_zero(self, tmp_path):
        import json

        path = tmp_path / "info.oql"
        path.write_text(
            "select distinct c.name from c in Cities where c.state = 'OR'"
        )
        lines = []
        code = main(["--json", str(path)], out=lines.append)
        assert code == 0
        report = json.loads("\n".join(lines))[0]
        assert report["errors"] == 0
        assert any(d["severity"] == "info" for d in report["diagnostics"])


class TestJson:
    def run_json(self, args):
        import json

        lines = []
        code = main(["--json", *args], out=lines.append)
        return code, json.loads("\n".join(lines))

    def test_clean_file(self, tmp_path):
        path = tmp_path / "ok.oql"
        path.write_text("select distinct c.name from c in Cities")
        code, reports = self.run_json([str(path)])
        assert code == 0
        assert reports == [
            {"file": str(path), "errors": 0, "warnings": 0, "diagnostics": []}
        ]

    def test_diagnostic_shape_and_rebased_span(self, tmp_path):
        path = tmp_path / "bad.oql"
        path.write_text("count(Cities);\nselect distinct c.name from c in Citees")
        code, reports = self.run_json([str(path)])
        assert code == 1
        report = reports[0]
        assert report["errors"] == 1
        diag = report["diagnostics"][0]
        assert diag["code"] == "QL003"
        assert diag["severity"] == "error"
        assert diag["hint"] == "did you mean 'Cities'?"
        assert diag["span"]["line"] == 2  # rebased past the first query
        assert diag["span"]["end_column"] > diag["span"]["column"]

    def test_warnings_counted_exit_zero(self, tmp_path):
        path = tmp_path / "warn.oql"
        path.write_text("select distinct c.name from c in Cities where 1 = 1")
        code, reports = self.run_json([str(path)])
        assert code == 0
        assert reports[0]["warnings"] >= 1
        assert all(
            d["severity"] != "error" for d in reports[0]["diagnostics"]
        )

    def test_missing_file_still_valid_json(self, tmp_path):
        good = tmp_path / "good.oql"
        good.write_text("count(Cities)")
        code, reports = self.run_json([str(good), str(tmp_path / "nope.oql")])
        assert code == 1
        assert reports[0]["diagnostics"] == []
        assert "error" in reports[1]
