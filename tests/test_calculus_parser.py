"""The calculus-notation parser, incl. round trips with the printer."""

import pytest

from repro.calculus import (
    alpha_equal,
    bind,
    comp,
    const,
    eq,
    gen,
    lt,
    pretty,
    proj,
    tup,
    var,
)
from repro.calculus.ast import (
    Assign,
    BinOp,
    Comprehension,
    Const,
    Deref,
    Empty,
    Hom,
    If,
    Lambda,
    Let,
    Merge,
    MonoidRef,
    New,
    RecordCons,
    Singleton,
    Var,
)
from repro.calculus.parser import parse_calculus
from repro.errors import CalculusError
from repro.eval import evaluate
from repro.values import Bag


class TestBasicTerms:
    def test_literals(self):
        assert parse_calculus("42") == Const(42)
        assert parse_calculus("4.5") == Const(4.5)
        assert parse_calculus("'hi'") == Const("hi")
        assert parse_calculus("true") == Const(True)
        assert parse_calculus("false") == Const(False)
        assert parse_calculus("none") == Const(None)

    def test_variables_and_paths(self):
        assert parse_calculus("x") == Var("x")
        assert parse_calculus("c.hotels.name") == proj(var("c"), "hotels", "name")

    def test_operators_and_precedence(self):
        term = parse_calculus("1 + 2 * 3")
        assert isinstance(term, BinOp) and term.op == "+"
        assert term.right == BinOp("*", Const(2), Const(3))

    def test_comparisons_and_booleans(self):
        term = parse_calculus("a < b and not (c = d)")
        assert term.op == "and"

    def test_tuples_and_records(self):
        assert parse_calculus("(1, 2)") == tup(const(1), const(2))
        record = parse_calculus("<a=1, b=x>")
        assert isinstance(record, RecordCons)
        assert record.field_map()["b"] == Var("x")

    def test_empty_record(self):
        assert parse_calculus("<>") == RecordCons(())

    def test_lambda_let_if(self):
        assert isinstance(parse_calculus("\\x. x + 1"), Lambda)
        term = parse_calculus("let x = 1 in x + 1")
        assert isinstance(term, Let)
        assert isinstance(parse_calculus("if a then 1 else 2"), If)

    def test_membership(self):
        term = parse_calculus("3 in xs")
        assert term == BinOp("in", Const(3), Var("xs"))

    def test_calls_and_methods(self):
        assert parse_calculus("count(xs)").name == "count"
        term = parse_calculus("h.cheapest_room().price")
        assert pretty(term) == "h.cheapest_room().price"

    def test_indexing(self):
        assert pretty(parse_calculus("xs[2]")) == "xs[2]"


class TestMonoidForms:
    def test_zero_unit_merge(self):
        assert parse_calculus("zero(set)") == Empty(MonoidRef("set"))
        unit = parse_calculus("unit(bag)(3)")
        assert isinstance(unit, Singleton) and unit.monoid.name == "bag"
        merged = parse_calculus("unit(list)(1) (+)list unit(list)(2)")
        assert isinstance(merged, Merge)
        assert evaluate(merged) == (1, 2)

    def test_vector_unit(self):
        term = parse_calculus("unit(sum[4])(8 @ 2)")
        assert evaluate(term).to_list() == [0, 0, 8, 0]

    def test_unknown_monoid_rejected(self):
        with pytest.raises(CalculusError):
            parse_calculus("zero(tree)")

    def test_hom(self):
        term = parse_calculus("hom[list -> sum](\\x. x)(xs)")
        assert isinstance(term, Hom)
        assert evaluate(term, {"xs": (1, 2, 3)}) == 6


class TestComprehensions:
    def test_flagship_example(self):
        term = parse_calculus("set{ (a, b) | a <- Xs, b <- Ys }")
        assert isinstance(term, Comprehension)
        out = evaluate(term, {"Xs": (1, 2), "Ys": Bag([3])})
        assert out == frozenset({(1, 3), (2, 3)})

    def test_predicates_and_bindings(self):
        term = parse_calculus("sum{ y | x <- Xs, y == x * x, y < 10 }")
        assert evaluate(term, {"Xs": (1, 2, 3, 4)}) == 1 + 4 + 9

    def test_no_qualifiers(self):
        term = parse_calculus("bag{ 7 }")
        assert evaluate(term) == Bag([7])

    def test_nested(self):
        term = parse_calculus("set{ x | s <- set{ c.hotels | c <- Cities }, x <- s }")
        assert isinstance(term.qualifiers[0].source, Comprehension)

    def test_sorted_comprehension(self):
        term = parse_calculus("sorted[\\x. x]{ x | x <- Xs }")
        assert evaluate(term, {"Xs": (3, 1, 2)}) == (1, 2, 3)

    def test_vector_comprehension_with_indexed_generator(self):
        term = parse_calculus("sum[4]{ a @ 3 - i | a[i] <- x }")
        from repro.values import Vector

        out = evaluate(term, {"x": Vector.from_dense([1, 2, 3, 4])})
        assert out.to_list() == [4, 3, 2, 1]

    def test_object_operations(self):
        term = parse_calculus(
            "list{ !x | x == new(0), e <- xs, x := !x + e }"
        )
        assert evaluate(term, {"xs": (1, 2, 3)}) == (1, 3, 6)

    def test_deref_and_assign_shapes(self):
        assert isinstance(parse_calculus("!x"), Deref)
        assert isinstance(parse_calculus("x := 2"), Assign)
        assert isinstance(parse_calculus("new(1)"), New)


class TestRoundTrips:
    CASES = [
        comp("set", tup(var("a"), var("b")), [gen("a", var("Xs")), gen("b", var("Ys"))]),
        comp("sum", var("x"), [gen("x", var("Xs")), lt(var("x"), const(5))]),
        comp("bag", proj(var("c"), "name"),
             [gen("c", var("Cities")), eq(proj(var("c"), "state"), const("OR"))]),
        comp("some", eq(var("x"), const(1)), [gen("x", var("Xs"))]),
        comp("set", var("y"), [gen("x", var("Xs")), bind("y", proj(var("x"), "a"))]),
    ]

    @pytest.mark.parametrize("term", CASES, ids=[str(c)[:40] for c in CASES])
    def test_pretty_parse_round_trip(self, term):
        assert alpha_equal(parse_calculus(pretty(term)), term)

    def test_round_trip_preserves_semantics(self):
        term = comp(
            "set",
            tup(var("a"), var("b")),
            [gen("a", var("Xs")), gen("b", var("Ys")), lt(var("a"), var("b"))],
        )
        data = {"Xs": (1, 2, 3), "Ys": Bag([2, 3])}
        assert evaluate(parse_calculus(pretty(term)), data) == evaluate(term, data)


class TestErrors:
    def test_trailing_input(self):
        with pytest.raises(CalculusError, match="trailing"):
            parse_calculus("1 2")

    def test_bad_token(self):
        with pytest.raises(CalculusError):
            parse_calculus("a ; b")

    def test_unclosed_comprehension(self):
        with pytest.raises(CalculusError):
            parse_calculus("set{ x | x <- Xs")

    def test_hom_requires_lambda(self):
        with pytest.raises(CalculusError, match="lambda"):
            parse_calculus("hom[list -> sum](3)(xs)")
