"""repro.cache building blocks: keys, LRU/TTL stores, stats, config."""

import pytest

from repro.cache import (
    CacheConfig,
    LRUCache,
    QueryCache,
    canonical_term,
    literal_skeleton,
    param_names,
    resolve_cache,
)
from repro.cache.core import MISSING
from repro.cache.keys import literal_vector
from repro.errors import DatabaseError
from repro.oql import translate_oql


class TestCanonicalTerm:
    def test_alpha_variants_collide(self):
        a = canonical_term(translate_oql("select distinct c.name from c in Cities"))
        b = canonical_term(translate_oql("select distinct x.name from x in Cities"))
        assert a == b
        assert hash(a) == hash(b)

    def test_different_extents_do_not_collide(self):
        a = canonical_term(translate_oql("select distinct c.name from c in Cities"))
        b = canonical_term(translate_oql("select distinct c.name from c in Towns"))
        assert a != b

    def test_different_structure_does_not_collide(self):
        a = canonical_term(translate_oql("select c.name from c in Cities"))
        b = canonical_term(
            translate_oql("select c.name from c in Cities where c.population > 1")
        )
        assert a != b

    def test_deterministic(self):
        q = ("select distinct struct(c: c.name, h: h.name) "
             "from c in Cities, h in c.hotels where h.stars > 3")
        assert canonical_term(translate_oql(q)) == canonical_term(translate_oql(q))

    def test_nested_binders(self):
        a = canonical_term(translate_oql(
            "select distinct h.name from h in "
            "(select distinct x from c in Cities, x in c.hotels)"))
        b = canonical_term(translate_oql(
            "select distinct k.name from k in "
            "(select distinct w from t in Cities, w in t.hotels)"))
        assert a == b

    def test_literals_distinguish(self):
        a = canonical_term(
            translate_oql("select c.name from c in Cities where c.population > 1")
        )
        b = canonical_term(
            translate_oql("select c.name from c in Cities where c.population > 2")
        )
        assert a != b


class TestLiteralSkeleton:
    def test_literal_variants_share_a_skeleton(self):
        a = literal_skeleton(
            translate_oql("select c.name from c in Cities where c.population > 1")
        )
        b = literal_skeleton(
            translate_oql("select x.name from x in Cities where x.population > 999")
        )
        assert a == b

    def test_structure_still_distinguishes(self):
        a = literal_skeleton(
            translate_oql("select c.name from c in Cities where c.population > 1")
        )
        b = literal_skeleton(
            translate_oql("select c.name from c in Cities where c.state = 'OR'")
        )
        assert a != b

    def test_literal_vector_orders_constants(self):
        term = translate_oql(
            "select c.name from c in Cities "
            "where c.population > 10 and c.state = 'OR'")
        assert set(literal_vector(term)) >= {10, "OR"}


class TestParamNames:
    def test_collects_and_sorts(self):
        term = translate_oql(
            "select c.name from c in Cities "
            "where c.population > $min and c.state = $state")
        assert param_names(term) == ("min", "state")

    def test_no_params(self):
        assert param_names(translate_oql("count(Cities)")) == ()


class TestLRUCache:
    def test_lru_eviction_order(self):
        evicted = []
        lru = LRUCache(2, on_evict=lambda k, v: evicted.append(k))
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.get("a") == 1  # refresh 'a'
        lru.put("c", 3)  # displaces 'b', the stale one
        assert evicted == ["b"]
        assert lru.get("b") is MISSING
        assert lru.get("a") == 1 and lru.get("c") == 3

    def test_ttl_expiry_with_fake_clock(self):
        now = [0.0]
        evicted = []
        lru = LRUCache(8, ttl=10.0, clock=lambda: now[0],
                       on_evict=lambda k, v: evicted.append(k))
        lru.put("a", 1)
        now[0] = 5.0
        assert lru.get("a") == 1
        now[0] = 16.0
        assert lru.get("a") is MISSING  # put at 0, ttl 10
        assert evicted == ["a"]
        assert len(lru) == 0

    def test_min_capacity_enforced(self):
        with pytest.raises(DatabaseError):
            LRUCache(0)

    def test_remove_and_clear_are_silent(self):
        evicted = []
        lru = LRUCache(4, on_evict=lambda k, v: evicted.append(k))
        lru.put("a", 1)
        lru.remove("a")
        lru.put("b", 2)
        lru.clear()
        assert evicted == []
        assert len(lru) == 0


class TestQueryCacheStats:
    def test_result_roundtrip_and_invalidation(self):
        qc = QueryCache()
        hit, _ = qc.result_for("k", (1,))
        assert not hit
        qc.remember_result("k", (1,), "value")
        hit, value = qc.result_for("k", (1,))
        assert hit and value == "value"
        hit, _ = qc.result_for("k", (2,))  # version moved on
        assert not hit
        assert qc.stats.invalidations == 1
        assert qc.stats.result_hits == 1
        assert qc.stats.result_misses == 2

    def test_clear_keeps_then_resets_counters(self):
        qc = QueryCache()
        qc.remember_result("k", (1,), "v")
        qc.result_for("k", (1,))
        qc.clear()
        assert qc.stats.result_hits == 1
        assert qc.sizes() == {"compiled_entries": 0, "result_entries": 0}
        qc.clear(reset_stats=True)
        assert qc.stats.result_hits == 0

    def test_stats_dict_shape(self):
        keys = set(QueryCache().stats_dict())
        assert keys == {
            "compile_hits", "compile_misses", "result_hits", "result_misses",
            "evictions", "invalidations", "compiled_entries", "result_entries",
        }


class TestResolveCache:
    def test_false_and_true(self):
        assert resolve_cache(False) is None
        assert isinstance(resolve_cache(True), QueryCache)

    def test_config_and_instance(self):
        config = CacheConfig(max_entries=7)
        qc = resolve_cache(config)
        assert qc.config.max_entries == 7
        assert resolve_cache(qc) is qc

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert resolve_cache(None) is None
        monkeypatch.setenv("REPRO_CACHE", "1")
        assert isinstance(resolve_cache(None), QueryCache)
        monkeypatch.setenv("REPRO_CACHE", "off")
        assert resolve_cache(None) is None

    def test_rejects_garbage(self):
        with pytest.raises(DatabaseError):
            resolve_cache(42)
