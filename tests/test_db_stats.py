"""Catalog statistics and their effect on the cost model."""

import pytest

from repro.algebra import build_plan, estimate_cardinality, explain
from repro.db import Database
from repro.db.catalog import Catalog
from repro.db.stats import StatisticsCollector, fanout_of, selectivity_of
from repro.oql import translate_oql
from repro.values import Record


@pytest.fixture
def catalog():
    c = Catalog()
    c.register_extent(
        "Rows",
        (
            Record(k=1, group="a", items=(1, 2, 3)),
            Record(k=2, group="a", items=(4,)),
            Record(k=3, group="b", items=()),
            Record(k=4, group=None, items=(5, 6)),
        ),
    )
    return c


def test_sizes_and_distincts(catalog):
    stats = StatisticsCollector(catalog).collect()
    rows = stats["Rows"]
    assert rows.size == 4
    assert rows.attributes["k"].distinct == 4
    assert rows.attributes["group"].distinct == 2  # None excluded
    assert rows.attributes["group"].non_null == 3


def test_fanout(catalog):
    stats = StatisticsCollector(catalog).collect()
    assert stats["Rows"].attributes["items"].avg_fanout == pytest.approx(6 / 4)


def test_selectivity_helpers(catalog):
    stats = StatisticsCollector(catalog).collect()
    assert selectivity_of(stats, "Rows", "k") == pytest.approx(0.25)
    assert selectivity_of(stats, "Rows", "group") == pytest.approx(0.5)
    assert selectivity_of(stats, "Rows", "missing") is None
    assert selectivity_of(stats, "Ghost", "k") is None
    assert fanout_of(stats, "Rows", "items") == pytest.approx(1.5)
    assert fanout_of(stats, "Rows", "k") is None


def test_equality_estimates_use_stats(catalog):
    stats = StatisticsCollector(catalog).collect()
    plan = build_plan(translate_oql("select distinct r from r in Rows where r.k = 1"))
    sizes = {"Rows": 4}
    with_stats = estimate_cardinality(plan, sizes, stats)
    without = estimate_cardinality(plan, sizes)
    assert with_stats == pytest.approx(1.0)  # 4 * 1/4
    assert without == pytest.approx(1.0)  # default 0.25 happens to agree
    # group has selectivity 1/2 -> clearly different from the default
    plan2 = build_plan(
        translate_oql("select distinct r from r in Rows where r.group = 'a'")
    )
    assert estimate_cardinality(plan2, sizes, stats) == pytest.approx(2.0)


def test_unnest_estimates_use_fanout(catalog):
    stats = StatisticsCollector(catalog).collect()
    plan = build_plan(translate_oql("select distinct i from r in Rows, i in r.items"))
    sizes = {"Rows": 4}
    assert estimate_cardinality(plan, sizes, stats) == pytest.approx(6.0)
    assert estimate_cardinality(plan, sizes) == pytest.approx(16.0)  # default 4x


def test_database_analyze_feeds_explain(travel_db):
    before = travel_db.explain(
        "select distinct h from c in Cities, h in c.hotels "
        "where c.name = 'Portland'"
    )
    travel_db.analyze()
    after = travel_db.explain(
        "select distinct h from c in Cities, h in c.hotels "
        "where c.name = 'Portland'"
    )
    # With stats, the name-equality selection estimates exactly one city.
    assert "~1 rows" in after.splitlines()[-2] or "~1 rows" in after
    assert before != after


def test_stats_with_object_extents():
    from repro.db.sample_data import travel_schema

    db = Database(travel_schema())
    db.load_objects(
        "Cities",
        "City",
        [
            {"name": "A", "state": "OR", "population": 1, "hotels": set(),
             "hotel_count": 0},
            {"name": "B", "state": "OR", "population": 2, "hotels": set(),
             "hotel_count": 0},
        ],
    )
    # object extents are not in the catalog, so analyze() sees no rows —
    # but it must not crash either
    stats = db.analyze()
    assert isinstance(stats, dict)
