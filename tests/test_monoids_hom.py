"""Homomorphisms and the C/I well-formedness lattice.

These are the paper's core static guarantees: ``props(N) ⊆ props(M)``
decides which conversions exist. The canonical counterexample — set
cardinality as ``hom[set -> sum]`` — must be rejected.
"""

import pytest

from repro.errors import WellFormednessError
from repro.monoids import (
    BAG,
    LIST,
    OSET,
    SET,
    SUM,
    MAX,
    SOME,
    check_hom_well_formed,
    convert,
    ext,
    hom,
    is_hom_well_formed,
    map_collection,
    sorted_monoid,
    sorted_bag_monoid,
)
from repro.values import Bag


class TestWellFormedness:
    def test_list_converts_to_anything(self):
        for target in (LIST, SET, BAG, OSET, SUM, MAX, SOME):
            check_hom_well_formed(LIST, target)

    def test_bag_to_sum_is_well_formed(self):
        check_hom_well_formed(BAG, SUM)

    def test_set_to_sum_rejected(self):
        """The paper: 1 = hom[set -> sum](\\x.1){a} must not typecheck."""
        with pytest.raises(WellFormednessError):
            check_hom_well_formed(SET, SUM)

    def test_set_to_list_rejected(self):
        with pytest.raises(WellFormednessError):
            check_hom_well_formed(SET, LIST)

    def test_set_to_sorted_allowed(self):
        """The paper: sets *can* convert to sorted lists."""
        check_hom_well_formed(SET, sorted_monoid(lambda x: x))

    def test_bag_to_sortedbag_allowed(self):
        check_hom_well_formed(BAG, sorted_bag_monoid(lambda x: x))

    def test_set_to_sortedbag_rejected(self):
        with pytest.raises(WellFormednessError):
            check_hom_well_formed(SET, sorted_bag_monoid(lambda x: x))

    def test_bag_to_set_allowed(self):
        check_hom_well_formed(BAG, SET)

    def test_set_to_bag_rejected(self):
        with pytest.raises(WellFormednessError):
            check_hom_well_formed(SET, BAG)

    def test_oset_to_set_allowed(self):
        check_hom_well_formed(OSET, SET)

    def test_oset_to_bag_rejected(self):
        with pytest.raises(WellFormednessError):
            check_hom_well_formed(OSET, BAG)

    def test_set_to_some_allowed(self):
        check_hom_well_formed(SET, SOME)

    def test_set_to_max_allowed(self):
        check_hom_well_formed(SET, MAX)

    def test_boolean_form(self):
        assert is_hom_well_formed(LIST, SET)
        assert not is_hom_well_formed(SET, SUM)

    def test_error_message_names_missing_property(self):
        with pytest.raises(WellFormednessError, match="idempotent"):
            check_hom_well_formed(SET, SUM)


class TestHom:
    def test_sum_over_list(self):
        assert hom(LIST, SUM, lambda a: a, (1, 2, 3)) == 6

    def test_bag_cardinality(self):
        assert hom(BAG, SUM, lambda a: 1, Bag([7, 7, 8])) == 3

    def test_list_to_set(self):
        out = hom(LIST, SET, lambda a: frozenset({a * 10}), (1, 2, 2))
        assert out == frozenset({10, 20})

    def test_existential(self):
        assert hom(SET, SOME, lambda a: a > 2, frozenset({1, 2, 3})) is True
        assert hom(SET, SOME, lambda a: a > 5, frozenset({1, 2, 3})) is False

    def test_hom_rejects_ill_formed(self):
        with pytest.raises(WellFormednessError):
            hom(SET, SUM, lambda a: 1, frozenset({1}))

    def test_check_can_be_disabled_for_internal_use(self):
        assert hom(SET, SUM, lambda a: 1, frozenset({1, 2}), check=False) == 2

    def test_hom_source_must_be_collection(self):
        from repro.errors import MonoidError

        with pytest.raises(MonoidError):
            hom(SUM, SET, lambda a: frozenset(), 3)


class TestExtAndFriends:
    def test_ext_is_monadic_bind(self):
        assert ext(LIST, lambda a: (a, a), (1, 2)) == (1, 1, 2, 2)

    def test_ext_on_set(self):
        out = ext(SET, lambda a: frozenset({a, a + 10}), frozenset({1, 2}))
        assert out == frozenset({1, 2, 11, 12})

    def test_map_collection(self):
        assert map_collection(LIST, lambda a: a + 1, (1, 2)) == (2, 3)

    def test_convert_list_to_bag(self):
        assert convert(LIST, BAG, (1, 1, 2)) == Bag([1, 1, 2])

    def test_convert_bag_to_set(self):
        assert convert(BAG, SET, Bag([1, 1, 2])) == frozenset({1, 2})

    def test_convert_respects_well_formedness(self):
        with pytest.raises(WellFormednessError):
            convert(SET, LIST, frozenset({1}))

    def test_convert_set_to_sorted(self):
        m = sorted_monoid(lambda x: x)
        assert convert(SET, m, frozenset({3, 1, 2})) == (1, 2, 3)
