"""Class instances, extents and inheritance (object mode)."""

import pytest

from repro.errors import SchemaError
from repro.objects import ExtentRegistry, ObjectStore, class_of, instantiate
from repro.types import Schema, TINT, TSTRING
from repro.values import Record


@pytest.fixture
def schema() -> Schema:
    s = Schema()
    s.define_class("Person", {"name": TSTRING}, extent="Persons")
    s.define_class("Employee", {"salary": TINT}, extent="Employees",
                   superclass="Person")
    return s


@pytest.fixture
def store() -> ObjectStore:
    return ObjectStore()


def test_instantiate_creates_tagged_object(schema, store):
    obj = instantiate(store, schema, "Person", {"name": "Ann"})
    state = store.deref(obj)
    assert state["name"] == "Ann"
    assert class_of(store, obj) == "Person"


def test_instantiate_accepts_inherited_attributes(schema, store):
    obj = instantiate(store, schema, "Employee", {"name": "Bob", "salary": 7})
    assert store.deref(obj)["salary"] == 7


def test_instantiate_rejects_unknown_attributes(schema, store):
    with pytest.raises(SchemaError, match="unknown attributes"):
        instantiate(store, schema, "Person", {"nope": 1})


def test_class_of_untagged_object(store):
    obj = store.new(Record(a=1))
    assert class_of(store, obj) is None


class TestExtentRegistry:
    def test_create_registers_in_extent(self, schema, store):
        registry = ExtentRegistry(schema, store)
        registry.create("Person", {"name": "Ann"})
        assert len(registry.extent("Persons")) == 1

    def test_subclass_members_in_superclass_extent(self, schema, store):
        registry = ExtentRegistry(schema, store)
        registry.create("Employee", {"name": "Bob", "salary": 1})
        assert len(registry.extent("Persons")) == 1
        assert len(registry.extent("Employees")) == 1

    def test_superclass_members_not_in_subclass_extent(self, schema, store):
        registry = ExtentRegistry(schema, store)
        registry.create("Person", {"name": "Ann"})
        assert registry.extent("Employees") == ()

    def test_remove(self, schema, store):
        registry = ExtentRegistry(schema, store)
        obj = registry.create("Person", {"name": "Ann"})
        registry.remove(obj)
        assert registry.extent("Persons") == ()

    def test_members_of_class(self, schema, store):
        registry = ExtentRegistry(schema, store)
        registry.create("Person", {"name": "Ann"})
        registry.create("Employee", {"name": "Bob", "salary": 1})
        assert len(registry.members_of_class("Person")) == 1
        assert len(list(registry.all_objects())) == 2
