"""OQL tokenizer."""

import pytest

from repro.errors import OQLSyntaxError
from repro.oql import tokenize


def _texts(source):
    return [t.text for t in tokenize(source) if t.kind != "eof"]


def _kinds(source):
    return [t.kind for t in tokenize(source) if t.kind != "eof"]


def test_keywords_case_insensitive():
    tokens = tokenize("SELECT Distinct frOm")
    assert [t.text for t in tokens[:-1]] == ["select", "distinct", "from"]
    assert all(t.kind == "keyword" for t in tokens[:-1])


def test_identifiers_keep_case():
    tokens = tokenize("Cities hotelName")
    assert [t.text for t in tokens[:-1]] == ["Cities", "hotelName"]
    assert all(t.kind == "ident" for t in tokens[:-1])


def test_hash_in_identifiers():
    """The paper's schema uses attributes like bed# and hotel#."""
    assert _texts("r.bed# = 3") == ["r", ".", "bed#", "=", "3"]


def test_numbers():
    tokens = tokenize("42 3.14")
    assert tokens[0].kind == "number" and tokens[0].text == "42"
    assert tokens[1].kind == "number" and tokens[1].text == "3.14"


def test_number_followed_by_dot_method():
    # "1..name" style: trailing dot is punct, not part of the number
    assert _texts("7.name") == ["7", ".", "name"]


def test_strings_single_and_double_quotes():
    tokens = tokenize("'abc' \"xy\"")
    assert tokens[0].kind == "string" and tokens[0].text == "abc"
    assert tokens[1].kind == "string" and tokens[1].text == "xy"


def test_string_escapes():
    tokens = tokenize(r"'a\'b'")
    assert tokens[0].text == "a'b"


def test_unterminated_string():
    with pytest.raises(OQLSyntaxError, match="unterminated"):
        tokenize("'oops")


def test_operators_greedy():
    assert _texts("a <= b >= c != d <> e") == ["a", "<=", "b", ">=", "c", "!=", "d", "<>", "e"]


def test_comments_skipped():
    assert _texts("a -- comment here\nb") == ["a", "b"]


def test_positions():
    tokens = tokenize("a\n  b")
    assert (tokens[0].line, tokens[0].column) == (1, 1)
    assert (tokens[1].line, tokens[1].column) == (2, 3)


def test_unexpected_character():
    with pytest.raises(OQLSyntaxError, match="unexpected character"):
        tokenize("a ; b")


def test_punctuation():
    assert _kinds("( ) [ ] . , :") == ["punct"] * 7


def test_eof_token_present():
    tokens = tokenize("")
    assert len(tokens) == 1 and tokens[0].kind == "eof"


def test_is_keyword_helper():
    token = tokenize("select")[0]
    assert token.is_keyword("select")
    assert not token.is_keyword("from")
