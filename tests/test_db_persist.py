"""JSON persistence round trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database, make_travel_agency, travel_schema
from repro.db.persist import (
    decode_value,
    dump_database,
    encode_value,
    load_database,
    restore_database,
    save_database,
)
from repro.errors import DatabaseError
from repro.values import Bag, OrderedSet, Record, Vector


class TestValueCodec:
    CASES = [
        None,
        True,
        42,
        3.5,
        "text",
        (1, 2, 3),
        frozenset({1, "a"}),
        Bag([1, 1, 2]),
        OrderedSet([3, 1, 2]),
        Record(a=1, b=(2, 3)),
        Vector.from_dense([0, 5, 0]),
        Record(nested=frozenset({Record(x=Bag(["y", "y"]))})),
    ]

    @pytest.mark.parametrize("value", CASES, ids=[repr(c)[:30] for c in CASES])
    def test_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_json_compatible(self):
        import json

        for value in self.CASES:
            json.dumps(encode_value(value))

    def test_unknown_type_rejected(self):
        with pytest.raises(DatabaseError):
            encode_value(object())

    def test_unknown_tag_rejected(self):
        with pytest.raises(DatabaseError):
            decode_value({"$": "mystery"})


_scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-1000, 1000),
    st.text(alphabet="abcxyz", max_size=5),
)


def _values():
    return st.recursive(
        _scalar,
        lambda children: st.one_of(
            st.lists(children, max_size=4).map(tuple),
            st.lists(children, max_size=4).map(lambda xs: frozenset(xs)),
            st.lists(children, max_size=4).map(Bag),
            st.lists(children, max_size=4).map(OrderedSet),
            st.dictionaries(
                st.text(alphabet="abc", min_size=1, max_size=3), children, max_size=3
            ).map(Record),
        ),
        max_leaves=8,
    )


@settings(max_examples=80, deadline=None)
@given(value=_values())
def test_codec_round_trip_property(value):
    assert decode_value(encode_value(value)) == value


class TestDatabasePersistence:
    def test_save_load_round_trip(self, tmp_path):
        db = Database(travel_schema())
        db.load_extents(make_travel_agency(num_cities=3, seed=9))
        db.create_index("Cities", "name")
        path = tmp_path / "travel.json"
        save_database(db, path)

        restored = load_database(path, travel_schema())
        q = "select distinct h.name from c in Cities, h in c.hotels where h.stars >= 3"
        assert restored.run(q) == db.run(q)
        assert restored.catalog.index_keys() == {("Cities", "name")}

    def test_restored_queries_use_indexes(self, tmp_path):
        db = Database(travel_schema())
        db.load_extents(make_travel_agency(num_cities=3, seed=9))
        db.create_index("Cities", "name")
        path = tmp_path / "travel.json"
        save_database(db, path)
        restored = load_database(path, travel_schema())
        result = restored.run_detailed(
            "select distinct c.population from c in Cities where c.name = 'Portland'"
        )
        assert result.stats.index_probes == 1

    def test_dump_restore_without_files(self):
        db = Database()
        db.load_extent("Xs", [{"a": 1}, {"a": 2}], monoid="bag")
        restored = restore_database(dump_database(db))
        assert restored.run("count(Xs)") == 2

    def test_bad_format_rejected(self):
        with pytest.raises(DatabaseError):
            restore_database({"format": "something-else"})

    def test_bad_version_rejected(self):
        with pytest.raises(DatabaseError):
            restore_database({"format": "repro-db", "version": 99})
