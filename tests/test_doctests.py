"""Run every docstring example in the library as a test.

The docstrings double as the API documentation, so their examples must
stay executable. This collects them all through doctest.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro

_MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.endswith("__main__")
)


@pytest.mark.parametrize("module_name", _MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, optionflags=doctest.ELLIPSIS)
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"
