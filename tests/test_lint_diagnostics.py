"""The diagnostic registry, the Diagnostic type, and the renderer."""

import re
from pathlib import Path

import pytest

from repro.lint import CODES, Diagnostic, render_all, render_diagnostic
from repro.lint.diagnostics import SEVERITIES, make, sort_diagnostics
from repro.span import Span

LINT_DOC = Path(__file__).parent.parent / "docs" / "LINT.md"


class TestRegistry:
    def test_codes_have_stable_shape(self):
        for code in CODES:
            assert re.fullmatch(r"QL\d{3}", code), code

    def test_codes_have_valid_severities(self):
        for code, (severity, _) in CODES.items():
            assert severity in SEVERITIES, code

    def test_every_code_documented(self):
        doc = LINT_DOC.read_text(encoding="utf-8")
        for code in CODES:
            assert f"### {code}" in doc, f"{code} missing from docs/LINT.md"

    def test_no_undocumented_codes_in_doc(self):
        doc = LINT_DOC.read_text(encoding="utf-8")
        documented = set(re.findall(r"^### (QL\d{3})", doc, re.MULTILINE))
        assert documented == set(CODES)

    def test_expected_codes_present(self):
        expected = {
            "QL000", "QL001", "QL002", "QL003", "QL004", "QL005", "QL006",
            "QL101", "QL102", "QL103", "QL201", "QL202", "QL203",
            "QL301", "QL302", "QL303", "QL401", "QL402", "QL501",
        }
        assert expected == set(CODES)


class TestDiagnostic:
    def test_make_picks_registered_severity(self):
        assert make("QL003", "x").severity == "error"
        assert make("QL005", "x").severity == "warning"
        assert make("QL203", "x").severity == "info"

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("QL999", "error", "nope")

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("QL001", "fatal", "nope")

    def test_str_with_span(self):
        diag = make("QL003", "unbound variable 'x'", Span(2, 7, 2, 8))
        assert str(diag) == "error[QL003]: unbound variable 'x' at line 2, column 7"

    def test_sorting_orders_by_position_then_code(self):
        a = make("QL102", "later", Span(3, 1, 3, 2))
        b = make("QL003", "earlier", Span(1, 5, 1, 6))
        c = make("QL005", "no span")
        assert sort_diagnostics([a, b, c]) == [b, a, c]


class TestSpan:
    def test_merge(self):
        merged = Span(1, 4, 1, 9).merge(Span(2, 1, 2, 3))
        assert merged == Span(1, 4, 2, 3)

    def test_shifted_moves_first_line_only(self):
        shifted = Span(1, 4, 2, 3).shifted(5, 10)
        assert shifted == Span(6, 14, 7, 3)

    def test_str(self):
        assert str(Span(3, 9, 3, 12)) == "line 3, column 9"


class TestRenderer:
    def test_caret_underlines_span(self):
        source = "select c.name from c in Citeis"
        diag = make("QL003", "unbound variable 'Citeis'", Span(1, 25, 1, 31),
                    hint="did you mean 'Cities'?")
        block = render_diagnostic(diag, source, "q.oql")
        lines = block.splitlines()
        assert lines[0] == "error[QL003]: unbound variable 'Citeis'"
        assert lines[1] == "  --> q.oql:1:25"
        assert lines[3].endswith("Citeis")
        caret_line = lines[4]
        start = caret_line.index("^") - caret_line.index("|") - 2
        assert start == 24  # zero-based column of 'Citeis'
        assert caret_line.count("^") == len("Citeis")
        assert lines[5] == "   = help: did you mean 'Cities'?"

    def test_render_without_source_skips_excerpt(self):
        diag = make("QL102", "always true", Span(1, 1, 1, 2))
        block = render_diagnostic(diag)
        assert "-->" in block and "|" not in block

    def test_render_all_summary(self):
        ds = [make("QL003", "a", Span(1, 1, 1, 2)), make("QL102", "b"),
              make("QL203", "c")]
        text = render_all(ds, "select 1")
        assert text.endswith("1 error, 1 warning, 1 info")

    def test_render_all_empty(self):
        assert render_all([]) == "no diagnostics"
