"""Execute every code block in docs/TUTORIAL.md.

The tutorial's blocks share one namespace, top to bottom, exactly as a
reader would paste them into a REPL — so the docs cannot rot.
"""

import re
from pathlib import Path

import pytest

TUTORIAL = Path(__file__).parent.parent / "docs" / "TUTORIAL.md"

_BLOCK_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _blocks() -> list[str]:
    text = TUTORIAL.read_text(encoding="utf-8")
    return _BLOCK_RE.findall(text)


def test_tutorial_has_blocks():
    assert len(_blocks()) >= 8


def test_tutorial_blocks_execute_in_order():
    namespace: dict = {}
    for i, block in enumerate(_blocks(), 1):
        try:
            exec(compile(block, f"tutorial-block-{i}", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(f"tutorial block {i} failed: {exc}\n---\n{block}")
