"""OQL parser: shapes of the syntax tree."""

import pytest

from repro.errors import OQLSyntaxError
from repro.oql import parse
from repro.oql.ast import (
    Aggregate,
    BinaryOp,
    CallOp,
    CollectionExpr,
    Exists,
    ExistsQuery,
    ForAll,
    IfExpr,
    IndexOp,
    Literal,
    MethodOp,
    Name,
    Path,
    Select,
    SortExpr,
    StructExpr,
    UnaryOp,
)


class TestSelect:
    def test_minimal(self):
        node = parse("select c from c in Cities")
        assert isinstance(node, Select)
        assert not node.distinct
        assert node.from_clauses[0].var == "c"
        assert node.from_clauses[0].source == Name("Cities")
        assert node.where is None

    def test_distinct_and_where(self):
        node = parse("select distinct c.name from c in Cities where c.pop > 5")
        assert node.distinct
        assert isinstance(node.head, Path)
        assert isinstance(node.where, BinaryOp)

    def test_multiple_from_clauses(self):
        node = parse("select h from c in Cities, h in c.hotels")
        assert [f.var for f in node.from_clauses] == ["c", "h"]

    def test_as_alias(self):
        node = parse("select c from Cities as c")
        assert node.from_clauses[0].var == "c"

    def test_implicit_alias(self):
        node = parse("select c from Cities c")
        assert node.from_clauses[0].var == "c"

    def test_missing_alias_fails(self):
        with pytest.raises(OQLSyntaxError):
            parse("select c from Cities")

    def test_order_by(self):
        node = parse("select e from e in E order by e.salary desc, e.name")
        assert node.order_by[0].descending
        assert not node.order_by[1].descending

    def test_group_by_and_having(self):
        node = parse(
            "select struct(d: dno, n: count(partition)) from e in E "
            "group by dno: e.dno having count(partition) > 2"
        )
        assert node.group_by[0].label == "dno"
        assert node.having is not None

    def test_nested_select_in_from(self):
        node = parse("select x from x in (select y from y in Ys)")
        assert isinstance(node.from_clauses[0].source, Select)

    def test_nested_select_in_where(self):
        node = parse("select x from x in Xs where x in (select y from y in Ys)")
        assert isinstance(node.where, BinaryOp)
        assert node.where.op == "in"


class TestExpressions:
    def test_precedence_arithmetic(self):
        node = parse("1 + 2 * 3")
        assert isinstance(node, BinaryOp) and node.op == "+"
        assert isinstance(node.right, BinaryOp) and node.right.op == "*"

    def test_precedence_booleans(self):
        node = parse("a or b and c")
        assert node.op == "or"
        assert node.right.op == "and"

    def test_not(self):
        node = parse("not a")
        assert isinstance(node, UnaryOp) and node.op == "not"

    def test_comparison_chain_not_allowed(self):
        # single comparison only; the rest parses as trailing input
        with pytest.raises(OQLSyntaxError):
            parse("1 < 2 < 3")

    def test_neq_spellings(self):
        assert parse("a != b").op == "!="
        assert parse("a <> b").op == "!="

    def test_union_and_intersect_precedence(self):
        node = parse("A union B intersect C")
        assert node.op == "union"
        assert node.right.op == "intersect"

    def test_paths_and_methods(self):
        node = parse("c.hotels.name")
        assert isinstance(node, Path) and node.field == "name"
        node = parse("h.cheapest_room().price")
        assert isinstance(node, Path)
        assert isinstance(node.base, MethodOp)

    def test_method_with_args(self):
        node = parse("o.m(1, 2)")
        assert isinstance(node, MethodOp)
        assert len(node.args) == 2

    def test_indexing(self):
        node = parse("xs[3]")
        assert isinstance(node, IndexOp)

    def test_keyword_field_names_after_dot(self):
        node = parse("g.partition")
        assert isinstance(node, Path) and node.field == "partition"

    def test_if_expression(self):
        node = parse("if a > 1 then 'big' else 'small'")
        assert isinstance(node, IfExpr)

    def test_unary_minus(self):
        node = parse("-x")
        assert isinstance(node, UnaryOp) and node.op == "-"

    def test_literals(self):
        assert parse("42") == Literal(42)
        assert parse("4.5") == Literal(4.5)
        assert parse("'s'") == Literal("s")
        assert parse("true") == Literal(True)
        assert parse("nil") == Literal(None)

    def test_parenthesized(self):
        node = parse("(1 + 2) * 3")
        assert node.op == "*"


class TestQuantifiersAndAggregates:
    def test_exists_in(self):
        node = parse("exists h in c.hotels : h.stars = 5")
        assert isinstance(node, Exists)
        assert node.var == "h"

    def test_exists_subquery(self):
        node = parse("exists(select h from h in Hs)")
        assert isinstance(node, ExistsQuery)

    def test_forall(self):
        node = parse("for all x in Xs : x > 0")
        assert isinstance(node, ForAll)

    def test_aggregates(self):
        for op in ("count", "sum", "avg", "max", "min"):
            node = parse(f"{op}(Xs)")
            assert isinstance(node, Aggregate) and node.op == op

    def test_element_flatten_distinct(self):
        assert parse("element(Xs)") == CallOp("element", (Name("Xs"),))
        assert parse("flatten(Xs)") == CallOp("flatten", (Name("Xs"),))
        assert parse("distinct(Xs)") == CallOp("to_set", (Name("Xs"),))

    def test_membership(self):
        node = parse("3 in Xs")
        assert node.op == "in"


class TestConstructors:
    def test_struct(self):
        node = parse("struct(a: 1, b: 'x')")
        assert isinstance(node, StructExpr)
        assert [name for name, _ in node.fields] == ["a", "b"]

    def test_collections(self):
        for kind in ("set", "bag", "list"):
            node = parse(f"{kind}(1, 2, 3)")
            assert isinstance(node, CollectionExpr)
            assert node.kind == kind
            assert len(node.items) == 3

    def test_array_is_list(self):
        assert parse("array(1)").kind == "list"

    def test_empty_collection(self):
        assert parse("set()").items == ()

    def test_sort(self):
        node = parse("sort c in Cities by c.name, c.pop desc")
        assert isinstance(node, SortExpr)
        assert node.var == "c"
        assert node.keys[1].descending

    def test_function_call(self):
        node = parse("sqrt(2)")
        assert isinstance(node, CallOp)


class TestErrors:
    def test_trailing_input(self):
        with pytest.raises(OQLSyntaxError, match="trailing"):
            parse("1 2")

    def test_missing_from(self):
        with pytest.raises(OQLSyntaxError):
            parse("select x")

    def test_error_carries_position(self):
        try:
            parse("select x from x in")
        except OQLSyntaxError as err:
            assert err.line >= 1
        else:  # pragma: no cover
            pytest.fail("expected a syntax error")

    def test_bad_struct(self):
        with pytest.raises(OQLSyntaxError):
            parse("struct(a 1)")
