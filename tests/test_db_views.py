"""Named queries (ODMG `define`) and the build-side join heuristic."""

import pytest

from repro.algebra import Join, Optimizer, Scan, build_plan
from repro.errors import DatabaseError
from repro.normalize import is_canonical_comprehension
from repro.oql import translate_oql
from repro.values import Record


@pytest.fixture
def db(company_db):
    return company_db


class TestViews:
    def test_view_expands_into_query(self, db):
        db.define("RichPeople", "select distinct e from e in Employees "
                                "where e.salary > 100000")
        direct = db.run("select distinct e.name from e in Employees "
                        "where e.salary > 100000")
        via_view = db.run("select distinct p.name from p in RichPeople")
        assert via_view == direct

    def test_view_fuses_into_canonical_form(self, db):
        db.define("RichPeople", "select distinct e from e in Employees "
                                "where e.salary > 100000")
        result = db.run_detailed("select distinct p.name from p in RichPeople")
        assert is_canonical_comprehension(result.normalized)
        # the plan scans the base extent — no view materialization
        assert "Employees" in result.plan.render()

    def test_views_compose(self, db):
        db.define("RichPeople", "select distinct e from e in Employees "
                                "where e.salary > 100000")
        db.define("RichOldPeople", "select distinct p from p in RichPeople "
                                   "where p.age > 50")
        out = db.run("select distinct q.name from q in RichOldPeople")
        direct = db.run("select distinct e.name from e in Employees "
                        "where e.salary > 100000 and e.age > 50")
        assert out == direct

    def test_view_name_conflicting_with_extent_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.define("Employees", "select distinct e from e in Employees")

    def test_view_joins_with_extents(self, db):
        db.define("TopFloors", "select distinct d from d in Departments "
                               "where d.floor > 5")
        out = db.run(
            "select distinct e.name from e in Employees, d in TopFloors "
            "where e.dno = d.dno"
        )
        direct = db.run(
            "select distinct e.name from e in Employees, d in Departments "
            "where e.dno = d.dno and d.floor > 5"
        )
        assert out == direct


class TestBuildSideHeuristic:
    def _join_plan(self):
        return build_plan(
            translate_oql(
                "select distinct 1 from big in Big, small in Small "
                "where big.k = small.k"
            )
        )

    def test_larger_build_side_flipped(self):
        plan = self._join_plan()
        optimized = Optimizer(extent_sizes={"Big": 10_000, "Small": 10}).optimize(plan)
        join = optimized.child
        assert isinstance(join, Join)
        # probe (left) should now be the big input, build (right) the small
        assert isinstance(join.left, Scan) and join.left.var == "big"
        assert isinstance(join.right, Scan) and join.right.var == "small"

    def test_already_good_order_untouched(self):
        plan = self._join_plan()
        optimized = Optimizer(extent_sizes={"Big": 10, "Small": 10_000}).optimize(plan)
        join = optimized.child
        assert join.left.var == "small"
        assert join.right.var == "big"

    def test_flip_preserves_results(self):
        plan = self._join_plan()
        flipped = Optimizer(extent_sizes={"Big": 10_000, "Small": 10}).optimize(plan)
        from repro.algebra import execute_plan

        data = {
            "Big": frozenset(Record(k=i % 5, v=i) for i in range(50)),
            "Small": frozenset(Record(k=i) for i in range(5)),
        }
        assert execute_plan(plan, data) == execute_plan(flipped, data)

    def test_noncommutative_output_not_flipped(self):
        from repro.calculus import comp, eq, gen, proj, var

        term = comp(
            "list",
            const_one := proj(var("big"), "v"),
            [
                gen("big", var("Big")),
                gen("small", var("Small")),
                eq(proj(var("big"), "k"), proj(var("small"), "k")),
            ],
        )
        plan = build_plan(term)
        optimized = Optimizer(extent_sizes={"Big": 10_000, "Small": 10}).optimize(plan)
        join = optimized.child
        assert join.left.var == "big"  # order preserved for list output

    def test_database_passes_sizes(self, db):
        result = db.run_detailed(
            "select distinct struct(e: e.name, d: d.name) "
            "from d in Departments, e in Employees where e.dno = d.dno"
        )
        join = result.plan.child
        assert isinstance(join, Join)
        # Employees (40) should probe, Departments (4) should build.
        left_vars = join.left.columns()
        assert "e" in left_vars
