"""Evaluator corners: methods, hom over vectors, merge_into, children."""

import pytest

from repro.calculus import (
    apply,
    call,
    comp,
    const,
    gen,
    hom,
    index,
    lam,
    merge,
    method,
    proj,
    rec,
    subterms,
    term_size,
    unit,
    var,
    zero,
)
from repro.calculus.traversal import children
from repro.errors import EvaluationError
from repro.eval import Evaluator, evaluate
from repro.eval.evaluator import merge_into
from repro.values import Bag, OrderedSet, Record, Vector


class TestMethods:
    def test_registered_method(self):
        ev = Evaluator(
            {"r": Record(price=10)},
            methods={"discounted": lambda r, pct: r["price"] * (1 - pct)},
        )
        out = ev.evaluate(method(var("r"), "discounted", const(0.5)))
        assert out == 5.0

    def test_record_field_closure_acts_as_method(self):
        ev = Evaluator()
        ev.bind_global("r", None)  # placeholder; rebuild below
        double = ev.evaluate(lam("x", var("x")))  # a Closure value
        record = Record(double=double)
        ev.bind_global("obj", record)
        assert ev.evaluate(method(var("obj"), "double", const(7))) == 7

    def test_unknown_method(self):
        ev = Evaluator({"r": Record(a=1)})
        with pytest.raises(EvaluationError, match="unknown method"):
            ev.evaluate(method(var("r"), "nope"))

    def test_over_application(self):
        term = apply(apply(lam("x", var("x")), const(1)), const(2))
        with pytest.raises(EvaluationError):
            evaluate(term)


class TestHomOverVectors:
    def test_hom_from_vector_sums_elements(self):
        from repro.calculus import vec_ref

        term = hom(vec_ref("sum", 3), "sum", "x", var("x"), var("v"))
        assert evaluate(term, {"v": Vector.from_dense([1, 2, 3])}) == 6


class TestMergeInto:
    def test_numeric(self):
        assert merge_into(5, 2) == 7

    def test_numeric_type_error(self):
        with pytest.raises(EvaluationError):
            merge_into(5, "x")

    def test_same_carrier_merges(self):
        assert merge_into((1,), (2,)) == (1, 2)
        assert merge_into(frozenset({1}), frozenset({2})) == frozenset({1, 2})
        assert merge_into(Bag([1]), Bag([1])) == Bag([1, 1])

    def test_element_inserts(self):
        assert merge_into((1, 2), 3) == (1, 2, 3)
        assert merge_into(frozenset({1}), 2) == frozenset({1, 2})
        assert merge_into(OrderedSet([1]), 2) == OrderedSet([1, 2])

    def test_non_target_rejected(self):
        with pytest.raises(EvaluationError):
            merge_into(None, 1)


class TestIndexingAndStrings:
    def test_string_indexing(self):
        assert evaluate(index(const("abc"), const(1))) == "b"

    def test_index_into_object_state(self):
        ev = Evaluator()
        obj = ev.store.new((10, 20))
        ev.bind_global("o", obj)
        assert ev.evaluate(index(var("o"), const(1))) == 20

    def test_index_non_indexable(self):
        with pytest.raises(EvaluationError):
            evaluate(index(const(5), const(0)))


class TestStructuralHelpers:
    ALL_NODES = [
        const(1),
        var("x"),
        lam("x", var("x")),
        apply(lam("x", var("x")), const(1)),
        rec(a=const(1)),
        proj(rec(a=const(1)), "a"),
        index(const((1,)), const(0)),
        comp("set", var("x"), [gen("x", var("Xs"))]),
        hom("list", "sum", "x", var("x"), const((1,))),
        merge("set", zero("set"), unit("set", const(1))),
        call("count", const((1,))),
        method(rec(a=const(1)), "m"),
    ]

    @pytest.mark.parametrize("term", ALL_NODES, ids=[str(t)[:30] for t in ALL_NODES])
    def test_children_and_size_consistent(self, term):
        # every child is itself a subterm and sizes add up
        subs = list(subterms(term))
        assert subs[0] is term
        assert term_size(term) == len(subs)
        for child in children(term):
            assert any(child == s for s in subs[1:])

    def test_sorted_monoid_key_in_children(self):
        from repro.calculus.ast import Comprehension, MonoidRef

        ref = MonoidRef("sorted", key=lam("x", var("x")))
        term = Comprehension(ref, var("x"), (gen("x", var("Xs")),))
        assert any(
            isinstance(child, type(lam("x", var("x")))) for child in children(term)
        )


class TestResolveMonoidErrors:
    def test_sorted_without_key(self):
        from repro.calculus.ast import Comprehension, MonoidRef

        term = Comprehension(MonoidRef("sorted"), var("x"), (gen("x", const((1,))),))
        with pytest.raises(EvaluationError, match="key"):
            evaluate(term)

    def test_vector_without_size(self):
        from repro.calculus.ast import Comprehension, MonoidRef

        ref = MonoidRef("vec", element=MonoidRef("sum"))
        term = Comprehension(ref, var("x"), (gen("x", const((1,))),))
        with pytest.raises(EvaluationError):
            evaluate(term)
