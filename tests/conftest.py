"""Shared fixtures: sample databases and evaluators."""

from __future__ import annotations

import pytest

from repro.db import (
    Database,
    company_schema,
    make_company,
    make_travel_agency,
    travel_schema,
)
from repro.eval import Evaluator


@pytest.fixture
def travel_db() -> Database:
    """A small deterministic travel-agency database."""
    db = Database(travel_schema())
    db.load_extents(make_travel_agency(num_cities=5, hotels_per_city=3,
                                       rooms_per_hotel=4, seed=7))
    return db


@pytest.fixture
def company_db() -> Database:
    """A small deterministic company database (Departments/Employees)."""
    db = Database(company_schema())
    db.load_extents(make_company(num_departments=4, num_employees=40, seed=11))
    return db


@pytest.fixture
def evaluator() -> Evaluator:
    return Evaluator()
