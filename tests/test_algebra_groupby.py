"""The Nest operator and group-by planning."""

import pytest

from repro.algebra import Executor, Nest, Reduce, Scan, build_group_by_plan
from repro.calculus import const, proj, var
from repro.calculus.ast import MonoidRef
from repro.db import demo_company_database
from repro.errors import PlanError
from repro.eval import Evaluator
from repro.oql import parse
from repro.oql.translate import Translator
from repro.values import Bag, Record


@pytest.fixture
def db():
    return demo_company_database(num_departments=4, num_employees=30, seed=6)


class TestNestOperator:
    def test_single_pass_grouping(self):
        data = {
            "Rows": (
                Record(k="a", v=1),
                Record(k="b", v=2),
                Record(k="a", v=3),
            )
        }
        plan = Reduce(
            MonoidRef("set"),
            var("partition"),
            Nest(
                Scan("r", var("Rows")),
                (("k", proj(var("r"), "k")),),
                "partition",
                proj(var("r"), "v"),
                MonoidRef("bag"),
            ),
        )
        executor = Executor(Evaluator(data))
        out = executor.execute(plan)
        assert out == frozenset({Bag([1, 3]), Bag([2])})
        assert executor.stats.rows_scanned == 3
        assert executor.stats.rows_grouped == 2

    def test_key_labels_bound_in_output(self):
        data = {"Rows": (Record(k=1, v=9),)}
        plan = Reduce(
            MonoidRef("set"),
            var("k"),
            Nest(
                Scan("r", var("Rows")),
                (("k", proj(var("r"), "k")),),
                "partition",
                var("r"),
                MonoidRef("bag"),
            ),
        )
        assert Executor(Evaluator(data)).execute(plan) == frozenset({1})

    def test_nest_requires_collection_monoid(self):
        plan = Reduce(
            MonoidRef("set"),
            var("k"),
            Nest(
                Scan("r", const((1,))),
                (("k", var("r")),),
                "partition",
                var("r"),
                MonoidRef("sum"),
            ),
        )
        with pytest.raises(PlanError):
            Executor(Evaluator()).execute(plan)

    def test_render(self):
        nest = Nest(
            Scan("r", var("Rows")),
            (("k", proj(var("r"), "k")),),
            "partition",
            var("r"),
            MonoidRef("bag"),
        )
        out = nest.render()
        assert "Nest [k=r.k]" in out
        assert nest.columns() == frozenset({"k", "partition"})


class TestGroupByPlanning:
    Q = (
        "select struct(d: dno, total: sum(select p.salary from p in partition)) "
        "from e in Employees group by dno: e.dno"
    )

    def test_plan_uses_nest(self, db):
        result = db.run_detailed(self.Q)
        assert result.engine == "algebra"
        assert "Nest" in result.plan.render()
        assert result.stats.rows_grouped > 0

    def test_agrees_with_interpreter(self, db):
        assert db.run(self.Q, engine="auto") == db.run(self.Q, engine="interpret")

    def test_having_agrees(self, db):
        q = self.Q + " having count(partition) > 3"
        assert db.run(q, engine="auto") == db.run(q, engine="interpret")

    def test_multi_key_agrees(self, db):
        q = (
            "select struct(d: dno, band: b, n: count(partition)) "
            "from e in Employees group by dno: e.dno, b: e.age div 10"
        )
        assert db.run(q, engine="auto") == db.run(q, engine="interpret")

    def test_multi_generator_group_by_agrees(self, db):
        q = (
            "select struct(f: fl, n: count(partition)) "
            "from e in Employees, d in Departments "
            "where e.dno = d.dno group by fl: d.floor"
        )
        assert db.run(q, engine="auto") == db.run(q, engine="interpret")

    def test_group_plus_order_falls_back(self, db):
        translator = Translator(db.schema)
        node = parse(self.Q + " order by d")
        with pytest.raises(PlanError):
            build_group_by_plan(node, translator)
        # …but the database still answers via the interpreter.
        out = db.run_detailed(self.Q + " order by d")
        assert out.value is not None

    def test_non_group_select_rejected(self, db):
        node = parse("select e from e in Employees")
        with pytest.raises(PlanError):
            build_group_by_plan(node, Translator(db.schema))

    def test_views_disable_nest_path(self, db):
        db.define("Everyone", "select distinct e from e in Employees")
        result = db.run_detailed(self.Q)
        # still correct, just via the interpreter when views exist
        assert result.value == db.run(self.Q, engine="interpret")

    def test_nest_scans_once(self, db):
        result = db.run_detailed(self.Q)
        # one pass over 30 employees, not one per distinct key
        assert result.stats.rows_scanned == 30
