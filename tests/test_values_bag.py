"""Unit tests for the Bag (multiset) value."""

import pytest

from repro.values import Bag, Record


def test_counts_multiplicity():
    b = Bag([1, 2, 2, 3])
    assert b.count(2) == 2
    assert b.count(1) == 1
    assert b.count(9) == 0


def test_len_counts_with_multiplicity():
    assert len(Bag([1, 1, 1])) == 3
    assert len(Bag()) == 0


def test_equality_ignores_insertion_order():
    assert Bag([1, 2, 2]) == Bag([2, 1, 2])
    assert Bag([1, 2]) != Bag([1, 2, 2])


def test_union_is_additive():
    merged = Bag([1, 2]).union(Bag([2, 3]))
    assert merged == Bag([1, 2, 2, 3])


def test_add_operator():
    assert Bag([1]) + Bag([1]) == Bag([1, 1])


def test_difference_is_monus():
    assert Bag([1, 1, 2]).difference(Bag([1, 3])) == Bag([1, 2])
    assert Bag([1]).difference(Bag([1, 1])) == Bag()


def test_intersection_takes_min_multiplicity():
    assert Bag([1, 1, 2]).intersection(Bag([1, 2, 2])) == Bag([1, 2])


def test_contains():
    assert 2 in Bag([1, 2])
    assert 9 not in Bag([1, 2])


def test_iteration_is_deterministic_and_sorted():
    b = Bag([3, 1, 2, 1])
    assert list(b) == [1, 1, 2, 3]


def test_distinct():
    assert Bag([1, 1, 2]).distinct() == frozenset({1, 2})


def test_hashable_and_nestable():
    outer = frozenset({Bag([1, 1]), Bag([2])})
    assert Bag([1, 1]) in outer


def test_bags_of_records():
    b = Bag([Record(a=1), Record(a=1)])
    assert b.count(Record(a=1)) == 2


def test_from_counts():
    assert Bag.from_counts({1: 2, 2: 0}) == Bag([1, 1])


def test_from_counts_rejects_negative():
    with pytest.raises(ValueError):
        Bag.from_counts({1: -1})


def test_immutability():
    b = Bag([1])
    with pytest.raises(AttributeError):
        b.x = 1


def test_copy_construction():
    b = Bag([1, 2])
    assert Bag(b) == b


def test_counts_returns_fresh_dict():
    b = Bag([1])
    counts = b.counts()
    counts[1] = 99
    assert b.count(1) == 1
