"""Telemetry wired through the Database: phase histograms, error
counters, cache bridging, hot-query advice, CLI/REPL surfaces, and the
telemetry-off parity guarantees."""

import threading
import tracemalloc

import pytest

from repro.db.database import Database, demo_travel_database
from repro.errors import ReproError
from repro.obs.telemetry.cli import main as metrics_main
from repro.obs.telemetry.instrument import summary_lines
from repro.obs.telemetry.registry import MetricsRegistry
from repro.obs.tracer import PIPELINE_PHASES


@pytest.fixture
def db():
    return demo_travel_database(num_cities=4, seed=7)


@pytest.fixture
def registry():
    return MetricsRegistry()


QUERY = "select distinct c.name from c in Cities"
NESTED_QUERY = (
    "select distinct h.name from h in "
    "(select h2 from c in Cities, h2 in c.hotels) where h.stars > 2"
)


class TestRunInstrumentation:
    def test_success_counter_and_latency(self, db, registry):
        db.enable_telemetry(registry)
        db.run(QUERY)
        db.run(QUERY)
        queries = registry.counter(
            "repro_queries_total", "", labels=("engine", "status")
        )
        assert queries.value(engine="algebra", status="ok") == 2
        hist = registry.histogram("repro_query_seconds", "").labels()
        assert hist.count == 2
        assert hist.sum > 0

    def test_phase_histograms_cover_pipeline(self, db, registry):
        db.enable_telemetry(registry)
        db.run(QUERY)
        phase_hist = registry.histogram(
            "repro_phase_seconds", "", labels=("phase",)
        )
        seen = {key[0] for key, _ in phase_hist.items()}
        assert {"parse", "translate", "normalize", "execute"} <= seen
        assert seen <= set(PIPELINE_PHASES) | {"cache"}

    def test_error_counter_by_class(self, db, registry):
        db.enable_telemetry(registry)
        with pytest.raises(ReproError):
            db.run("select n.name from n in Nowhere")
        queries = registry.counter(
            "repro_queries_total", "", labels=("engine", "status")
        )
        assert queries.value(engine="none", status="error") == 1
        errors = registry.counter(
            "repro_query_errors_total", "", labels=("error",)
        )
        assert errors.total() == 1

    def test_rows_and_rule_fires_recorded(self, db, registry):
        db.enable_telemetry(registry)
        # The nested select forces N9-flatten/N3-bind fires.
        value = db.run(NESTED_QUERY)
        rows = registry.counter("repro_rows_returned_total", "")
        assert rows.total() == len(value)
        fires = registry.counter(
            "repro_normalize_rule_fires_total", "", labels=("rule",)
        )
        assert fires.total() > 0

    def test_operator_and_executor_counters(self, db, registry):
        db.enable_telemetry(registry)
        db.run(QUERY)
        ops = registry.counter(
            "repro_operator_invocations_total", "", labels=("operator",)
        )
        assert ops.total() > 0

    def test_cache_bridge_deltas(self, db, registry):
        db.enable_telemetry(registry)
        db.enable_cache()
        db.run(QUERY)
        db.run(QUERY)
        events = registry.counter(
            "repro_cache_events_total", "", labels=("event",)
        )
        assert events.value(event="compile_misses") == 1
        assert events.value(event="compile_hits") == 1
        # A second bridge over the same cache must not double-count.
        assert events.total() == sum(
            v for v in db.cache.stats.as_dict().values()
        )

    def test_fingerprints_group_alpha_variants(self, db, registry):
        db.enable_telemetry(registry)
        db.run("select distinct c.name from c in Cities")
        db.run("select distinct x.name from x in Cities")
        top = registry.fingerprints.top(5)
        assert len(top) == 1
        assert top[0].count == 2

    def test_prepared_statements_recorded(self, db, registry):
        db.enable_telemetry(registry)
        q = db.prepare(
            "select distinct c.name from c in Cities where c.state = $state"
        )
        q.run(state="OR")
        q.run(state="WA")
        queries = registry.counter(
            "repro_queries_total", "", labels=("engine", "status")
        )
        assert queries.total() == 2

    def test_verifier_counters_via_activation(self, db, registry):
        db.enable_telemetry(registry)
        db.run(NESTED_QUERY, verify=True)
        checks = registry.counter(
            "repro_verifier_checks_total", "", labels=("rule",)
        )
        assert checks.total() > 0
        violations = registry.counter(
            "repro_verifier_violations_total", "", labels=("rule", "invariant")
        )
        assert violations.total() == 0

    def test_querylog_counter_via_activation(self, db, registry):
        db.enable_telemetry(registry)
        db.profile(True, slow_ms=60_000.0)
        db.run(QUERY)
        entries = registry.counter(
            "repro_querylog_entries_total", "", labels=("slow",)
        )
        assert entries.value(slow="false") == 1

    def test_registry_shared_across_databases(self, registry):
        a = demo_travel_database(num_cities=3, seed=1)
        b = demo_travel_database(num_cities=3, seed=2)
        a.enable_telemetry(registry)
        b.enable_telemetry(registry)
        a.run(QUERY)
        b.run(QUERY)
        queries = registry.counter(
            "repro_queries_total", "", labels=("engine", "status")
        )
        assert queries.total() == 2

    def test_constructor_accepts_registry(self, registry):
        from repro.db.sample_data import make_travel_agency, travel_schema

        db = Database(travel_schema(), telemetry=registry)
        db.load_extents(make_travel_agency(num_cities=3, seed=1))
        db.run(QUERY)
        assert registry.histogram("repro_query_seconds", "").labels().count == 1

    def test_disable_restores_off_path(self, db, registry):
        db.enable_telemetry(registry)
        db.run(QUERY)
        db.disable_telemetry()
        db.run(QUERY)
        assert registry.histogram("repro_query_seconds", "").labels().count == 1

    def test_results_identical_with_and_without(self, db):
        plain = db.run(QUERY)
        db.enable_telemetry(MetricsRegistry())
        assert db.run(QUERY) == plain

    def test_tracer_override_does_not_leak(self, db, registry):
        db.enable_telemetry(registry)
        db.run(QUERY)
        assert db.tracer.enabled is False
        assert db._active_tracer() is db.tracer
        # A telemetered run still honours an explicitly enabled tracer.
        db.profile(True)
        result = db.run_detailed(QUERY)
        assert result.span is not None
        assert db.query_log.entries


class TestThreadedStress:
    def test_exact_totals_across_threads(self, registry):
        threads, per_thread = 6, 8
        db = demo_travel_database(num_cities=3, seed=5)
        db.enable_telemetry(registry)
        errors: list[Exception] = []

        def work():
            try:
                for _ in range(per_thread):
                    db.run(QUERY)
            except Exception as err:  # pragma: no cover
                errors.append(err)

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert not errors
        total = threads * per_thread
        queries = registry.counter(
            "repro_queries_total", "", labels=("engine", "status")
        )
        assert queries.total() == total
        assert registry.histogram("repro_query_seconds", "").labels().count == total
        top = registry.fingerprints.top(1)
        assert top[0].count == total


class TestOffPathParity:
    def test_off_path_allocates_nothing_in_telemetry_modules(self, db):
        db.disable_telemetry()  # robust when run under REPRO_TELEMETRY=1
        db.run(QUERY)  # warm every lazy import on the off path
        tracemalloc.start()
        try:
            db.run(QUERY)
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        telemetry = snapshot.filter_traces(
            [tracemalloc.Filter(True, "*/obs/telemetry/*")]
        )
        assert telemetry.statistics("filename") == []

    def test_off_database_has_no_registry(self, monkeypatch):
        from repro.obs.telemetry.registry import disable_telemetry

        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        disable_telemetry()
        db = demo_travel_database(num_cities=3, seed=1)
        assert db.telemetry is None

    def test_env_flag_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        db = demo_travel_database(num_cities=3, seed=1)
        assert db.telemetry is not None


class TestSummaryAndAdvice:
    def test_summary_lines_shape(self, db, registry):
        db.enable_telemetry(registry)
        db.run(QUERY)
        lines = summary_lines(registry, db=db)
        text = "\n".join(lines)
        assert "queries: 1 ok, 0 failed" in text
        assert "latency: p50=" in text
        assert "hot queries" in text

    def test_ql402_advice_for_hot_unindexed_query(self, db, registry):
        db.enable_telemetry(registry)
        hot = "select c.name from c in Cities where c.state = 'OR'"
        for _ in range(4):
            db.run(hot)
        lines = "\n".join(summary_lines(registry, db=db))
        assert "QL402" in lines
        assert "create_index('Cities', 'state')" in lines

    def test_ql402_silent_once_indexed(self, db, registry):
        from repro.obs.telemetry.advise import advise_hot_queries

        db.enable_telemetry(registry)
        db.create_index("Cities", "state")
        hot = "select c.name from c in Cities where c.state = 'OR'"
        for _ in range(4):
            db.run(hot)
        assert advise_hot_queries(db, registry) == []


class TestCliAndRepl:
    def test_metrics_dump_prom_round_trips(self, capsys):
        from repro.obs.telemetry.promparse import parse_prometheus_text

        assert metrics_main(["dump", "--burst", "1"]) == 0
        out = capsys.readouterr().out
        families = parse_prometheus_text(out)
        assert "repro_queries_total" in families
        assert "repro_query_errors_total" in families

    def test_metrics_top(self, capsys):
        assert metrics_main(["top", "--burst", "1", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "queries:" in out
        assert "hot queries" in out

    def test_metrics_dump_otlp_and_statsd(self, capsys):
        import json

        assert metrics_main(["dump", "--burst", "1", "--format", "otlp"]) == 0
        json.loads(capsys.readouterr().out)
        assert metrics_main(["dump", "--burst", "1", "--format", "statsd"]) == 0
        assert "|c" in capsys.readouterr().out

    def test_repl_stats_cycle(self, db):
        from repro.repl import Repl

        db.disable_telemetry()  # robust when run under REPRO_TELEMETRY=1
        out: list[str] = []
        repl = Repl(db, out=out.append)
        repl.handle(":stats")
        assert any("telemetry is off" in line for line in out)
        repl.handle(":stats on")
        repl.db.telemetry = MetricsRegistry()  # isolate from shared default
        repl.handle(QUERY)
        out.clear()
        repl.handle(":stats")
        assert any("queries: 1 ok" in line for line in out)
        repl.handle(":stats off")
        assert any("telemetry is off" in line for line in out)
