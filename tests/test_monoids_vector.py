"""Unit tests for the M[n] vector monoid (section 4.1)."""

import pytest

from repro.errors import VectorError
from repro.monoids import MAX, SUM, VectorMonoid
from repro.values import Vector


def test_zero_is_all_element_zeros():
    m = VectorMonoid(SUM, 4)
    assert m.zero().to_list() == [0, 0, 0, 0]


def test_paper_unit_example():
    # unit sum[4](8, 2) = (|0, 0, 8, 0|)
    m = VectorMonoid(SUM, 4)
    assert m.unit(8, 2).to_list() == [0, 0, 8, 0]


def test_paper_merge_example():
    # merge sum[4]((|0,1,2,0|), (|3,0,2,1|)) = (|3,1,4,1|)
    m = VectorMonoid(SUM, 4)
    left = Vector.from_dense([0, 1, 2, 0])
    right = Vector.from_dense([3, 0, 2, 1])
    assert m.merge(left, right).to_list() == [3, 1, 4, 1]


def test_unit_requires_index():
    m = VectorMonoid(SUM, 4)
    with pytest.raises(VectorError):
        m.unit(8)


def test_unit_index_range_checked():
    m = VectorMonoid(SUM, 2)
    with pytest.raises(VectorError):
        m.unit(1, 5)


def test_properties_inherited_from_element():
    assert VectorMonoid(SUM, 3).commutative
    assert not VectorMonoid(SUM, 3).idempotent
    assert VectorMonoid(MAX, 3).idempotent


def test_merge_size_mismatch_rejected():
    m = VectorMonoid(SUM, 2)
    with pytest.raises(VectorError):
        m.merge(Vector.from_dense([1, 2]), Vector.from_dense([1, 2, 3]))


def test_merge_non_vector_rejected():
    m = VectorMonoid(SUM, 2)
    with pytest.raises(VectorError):
        m.merge((1, 2), Vector.from_dense([1, 2]))


def test_iterate_yields_index_value_pairs():
    m = VectorMonoid(SUM, 3)
    v = Vector.from_dense([5, 0, 7])
    assert list(m.iterate(v)) == [(0, 5), (1, 0), (2, 7)]


def test_accumulator_merges_collisions_with_element_monoid():
    m = VectorMonoid(SUM, 3)
    acc = m.accumulator()
    acc.add((5, 1))
    acc.add((2, 1))
    acc.add((9, 0))
    assert acc.finish().to_list() == [9, 7, 0]


def test_accumulator_with_max_element():
    m = VectorMonoid(MAX, 2)
    acc = m.accumulator()
    acc.add((5, 0))
    acc.add((3, 0))
    assert acc.finish()[0] == 5


def test_accumulator_rejects_bad_shape():
    m = VectorMonoid(SUM, 2)
    acc = m.accumulator()
    with pytest.raises(VectorError):
        acc.add(5)


def test_accumulator_rejects_out_of_range_index():
    m = VectorMonoid(SUM, 2)
    acc = m.accumulator()
    with pytest.raises(VectorError):
        acc.add((5, 7))


def test_name_and_signature():
    m = VectorMonoid(SUM, 8)
    assert m.name == "sum[8]"
    assert m == VectorMonoid(SUM, 8)
    assert m != VectorMonoid(SUM, 4)


def test_not_freely_generated():
    """Several units on one slot combine — the paper's observation."""
    m = VectorMonoid(SUM, 1)
    merged = m.merge(m.unit(2, 0), m.unit(3, 0))
    assert merged.to_list() == [5]
