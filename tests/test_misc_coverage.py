"""Edge cases across small modules: errors, env, pretty, catalog, veval."""

import pytest

from repro.calculus import comp, const, eq, filt, gen, pretty_block, var
from repro.calculus.pretty import describe_qualifier
from repro.db.catalog import Catalog
from repro.errors import (
    DatabaseError,
    OQLSyntaxError,
    ReproError,
    UnboundVariableError,
    UnknownMonoidError,
)
from repro.eval.env import Env
from repro.values import Bag


class TestErrors:
    def test_hierarchy(self):
        for err_type in (DatabaseError, OQLSyntaxError, UnboundVariableError):
            assert issubclass(err_type, ReproError)

    def test_unbound_variable_message(self):
        err = UnboundVariableError("foo")
        assert "foo" in str(err)
        assert err.name == "foo"

    def test_unknown_monoid_lists_known(self):
        err = UnknownMonoidError("tree", ["set", "bag"])
        assert "tree" in str(err) and "bag" in str(err)

    def test_syntax_error_position(self):
        err = OQLSyntaxError("bad token", line=3, column=7)
        assert "line 3" in str(err)
        assert (err.line, err.column) == (3, 7)

    def test_all_library_errors_catchable_as_repro_error(self):
        from repro.oql import parse

        with pytest.raises(ReproError):
            parse("select")


class TestEnv:
    def test_bind_is_persistent(self):
        base = Env({"x": 1})
        child = base.bind("y", 2)
        assert child.lookup("x") == 1
        assert child.lookup("y") == 2
        assert not base.has("y")

    def test_bind_many_empty_returns_self(self):
        env = Env({"x": 1})
        assert env.bind_many({}) is env

    def test_shadowing(self):
        env = Env({"x": 1}).bind("x", 2)
        assert env.lookup("x") == 2

    def test_names_innermost_first(self):
        env = Env({"x": 1, "y": 2}).bind("x", 3)
        names = list(env.names())
        assert names[0] == "x"
        assert set(names) == {"x", "y"}

    def test_lookup_missing(self):
        with pytest.raises(UnboundVariableError):
            Env().lookup("ghost")


class TestPretty:
    def test_pretty_block_plain_term(self):
        assert pretty_block(const(1)) == "1"

    def test_pretty_block_nested_comprehension_source(self):
        inner = comp("set", var("y"), [gen("y", var("Ys"))])
        outer = comp("set", var("x"), [gen("x", inner), filt(eq(var("x"), const(1)))])
        text = pretty_block(outer)
        assert text.count("{") >= 2
        assert text.endswith("}")

    def test_describe_qualifier(self):
        assert describe_qualifier(gen("x", var("Xs"))) == "generator"
        assert describe_qualifier(filt(const(True))) == "predicate"
        from repro.calculus import bind

        assert describe_qualifier(bind("x", const(1))) == "binding"


class TestCatalog:
    def test_register_and_sizes(self):
        catalog = Catalog()
        catalog.register_extent("Xs", (1, 2, 3))
        catalog.register_extent("Ys", Bag([1, 1]))
        assert catalog.extent_sizes() == {"Xs": 3, "Ys": 2}

    def test_non_collection_rejected(self):
        from repro.errors import EvaluationError

        catalog = Catalog()
        with pytest.raises(EvaluationError):
            catalog.register_extent("bad", 42)

    def test_unknown_extent_message_lists_loaded(self):
        catalog = Catalog()
        catalog.register_extent("Xs", (1,))
        with pytest.raises(DatabaseError, match="Xs"):
            catalog.extent("Ghost")

    def test_index_rebuilt_on_reload(self):
        from repro.values import Record

        catalog = Catalog()
        catalog.register_extent("R", (Record(k=1),))
        catalog.create_index("R", "k")
        catalog.register_extent("R", (Record(k=2), Record(k=2)), replace=True)
        mapping = catalog.index_mappings()[("R", "k")]
        assert len(mapping.get(2, [])) == 2
        assert mapping.get(1, []) == []

    def test_iterate_extent(self):
        catalog = Catalog()
        catalog.register_extent("Xs", frozenset({3, 1}))
        assert list(catalog.iterate_extent("Xs")) == [1, 3]


class TestVeval:
    def test_lists_convert_to_vectors(self):
        from repro.calculus import gen as g, sub, var as v
        from repro.vectors import vcomp, veval

        n = 3
        term = vcomp("sum", n, v("a"), sub(const(n - 1), v("i")),
                     [g("a", v("x"), at="i")])
        assert veval(term, {"x": [1, 2, 3]}) == [3, 2, 1]

    def test_scalar_results_pass_through(self):
        from repro.vectors import veval

        term = comp("sum", var("a"), [gen("a", const((1, 2)))])
        assert veval(term) == 3


class TestPublicAPI:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_exports_resolve(self):
        import importlib

        for package in (
            "algebra",
            "calculus",
            "db",
            "eval",
            "monoids",
            "normalize",
            "objects",
            "oql",
            "types",
            "values",
            "vectors",
        ):
            module = importlib.import_module(f"repro.{package}")
            for name in module.__all__:
                assert getattr(module, name) is not None
