"""Update programs as comprehensions — the paper's hotel insertion."""

import pytest

from repro.calculus import const, eq, proj, rec, var
from repro.eval import Evaluator
from repro.objects import (
    add_to_field,
    run_update,
    set_field,
    update_where,
)
from repro.values import Record


def _city_world():
    """Two city objects with hotel sets, as the paper's db.cities."""
    ev = Evaluator()
    portland = ev.store.new(
        Record(name="Portland", hotels=frozenset({Record(name="Benson")}), hotel_count=1)
    )
    salem = ev.store.new(
        Record(name="Salem", hotels=frozenset(), hotel_count=0)
    )
    ev.bind_global("cities", (portland, salem))
    return ev, portland, salem


def test_paper_update_program_shape():
    program = update_where(
        "cities",
        "c",
        eq(proj(var("c"), "name"), const("Portland")),
        [
            add_to_field("hotels", rec(name=const("New Hotel"))),
            add_to_field("hotel_count", const(1)),
        ],
    )
    text = str(program)
    # the nested select-then-update comprehension form from the paper
    assert text.startswith("set{ c | c <- set{ c | c <- cities,")
    assert "(c.hotels += <name='New Hotel'>)" in text
    assert "(c.hotel_count += 1)" in text


def test_paper_update_program_executes():
    ev, portland, salem = _city_world()
    program = update_where(
        "cities",
        "c",
        eq(proj(var("c"), "name"), const("Portland")),
        [
            add_to_field("hotels", rec(name=const("New Hotel"))),
            add_to_field("hotel_count", const(1)),
        ],
    )
    touched = run_update(program, ev)
    assert touched == frozenset({portland})
    state = ev.store.deref(portland)
    assert state.hotel_count == 2
    assert Record(name="New Hotel") in state.hotels
    # Salem untouched
    assert ev.store.deref(salem).hotel_count == 0


def test_update_without_predicate_touches_all():
    ev, portland, salem = _city_world()
    program = update_where("cities", "c", None, [add_to_field("hotel_count", const(10))])
    touched = run_update(program, ev)
    assert touched == frozenset({portland, salem})
    assert ev.store.deref(salem).hotel_count == 10


def test_set_field_replaces():
    ev, portland, _ = _city_world()
    program = update_where(
        "cities",
        "c",
        eq(proj(var("c"), "name"), const("Portland")),
        [set_field("name", const("PDX"))],
    )
    run_update(program, ev)
    assert ev.store.deref(portland).name == "PDX"


def test_victims_chosen_before_mutation():
    """The nested set materializes targets before updates run, so an
    update that changes the predicate's field still applies exactly once
    to the originally-matching objects."""
    ev, portland, salem = _city_world()
    program = update_where(
        "cities",
        "c",
        eq(proj(var("c"), "hotel_count"), const(0)),
        [add_to_field("hotel_count", const(1))],
    )
    touched = run_update(program, ev)
    assert touched == frozenset({salem})
    assert ev.store.deref(salem).hotel_count == 1
    assert ev.store.deref(portland).hotel_count == 1  # unchanged


def test_bad_operator_rejected():
    with pytest.raises(ValueError):
        from repro.objects import FieldUpdate

        FieldUpdate("x", "-=", const(1))


def test_multiple_updates_apply_in_order():
    ev, portland, _ = _city_world()
    program = update_where(
        "cities",
        "c",
        eq(proj(var("c"), "name"), const("Portland")),
        [
            set_field("hotel_count", const(5)),
            add_to_field("hotel_count", const(2)),
        ],
    )
    run_update(program, ev)
    assert ev.store.deref(portland).hotel_count == 7
