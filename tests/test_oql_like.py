"""The OQL `like` operator, end to end."""

import pytest

from repro.errors import EvaluationError, TypingError
from repro.eval import evaluate
from repro.eval.builtins import builtin_like
from repro.oql import translate_oql
from repro.types import TypeChecker
from repro.values import Record


class TestBuiltin:
    @pytest.mark.parametrize(
        "value,pattern,expected",
        [
            ("Portland", "Port%", True),
            ("Portland", "%land", True),
            ("Portland", "P_rtland", True),
            ("Portland", "p%", False),  # case sensitive
            ("Portland", "Portland", True),
            ("Portland", "%", True),
            ("", "%", True),
            ("", "_", False),
            ("a.b", "a.b", True),
            ("axb", "a.b", False),  # '.' is literal, not regex
            ("50%", "50\\%", False),  # backslash is literal too
        ],
    )
    def test_matching(self, value, pattern, expected):
        assert builtin_like(value, pattern) is expected

    def test_type_errors(self):
        with pytest.raises(EvaluationError):
            builtin_like(3, "%")
        with pytest.raises(EvaluationError):
            builtin_like("x", 3)


class TestThroughOQL:
    DATA = {
        "Xs": frozenset(
            {Record(name="Portland"), Record(name="Portsmouth"), Record(name="Salem")}
        )
    }

    def test_translation(self):
        term = translate_oql("select distinct x from x in Xs where x.name like 'Port%'")
        assert "like(x.name, 'Port%')" in str(term)

    def test_evaluation(self):
        term = translate_oql(
            "select distinct x.name from x in Xs where x.name like 'Port%'"
        )
        assert evaluate(term, self.DATA) == frozenset({"Portland", "Portsmouth"})

    def test_not_like(self):
        term = translate_oql(
            "select distinct x.name from x in Xs where not (x.name like 'Port%')"
        )
        assert evaluate(term, self.DATA) == frozenset({"Salem"})

    def test_typechecks(self):
        term = translate_oql("'abc' like 'a%'")
        assert str(TypeChecker().infer(term)) == "bool"

    def test_non_string_rejected_statically(self):
        term = translate_oql("3 like 'a%'")
        with pytest.raises(TypingError):
            TypeChecker().infer(term)

    def test_through_database(self, travel_db):
        out = travel_db.run(
            "select distinct c.name from c in Cities where c.name like '%land%'"
        )
        assert all("land" in name for name in out)
