"""The interactive shell, driven programmatically."""

import io

import pytest

from repro.db import demo_travel_database
from repro.repl import Repl


@pytest.fixture
def shell():
    outputs = []
    repl = Repl(demo_travel_database(num_cities=3, seed=1), out=outputs.append)
    return repl, outputs


def _all(outputs):
    return "\n".join(outputs)


def test_plain_query(shell):
    repl, outputs = shell
    repl.handle("count(Cities)")
    assert "3" in _all(outputs)


def test_calc_command(shell):
    repl, outputs = shell
    repl.handle("\\calc sum{ x | x <- range(5) }")
    assert "10" in _all(outputs)


def test_explain_command(shell):
    repl, outputs = shell
    repl.handle("\\explain select distinct c.name from c in Cities")
    assert "Scan c <- Cities" in _all(outputs)


def test_trace_command(shell):
    repl, outputs = shell
    repl.handle(
        "\\trace select distinct h.name from h in "
        "(select distinct x from c in Cities, x in c.hotels)"
    )
    assert "N9-flatten" in _all(outputs)


def test_plan_command(shell):
    repl, outputs = shell
    repl.handle("\\plan select distinct c.name from c in Cities")
    assert "normalized:" in _all(outputs)


def test_define_and_use_view(shell):
    repl, outputs = shell
    repl.handle("\\define Lux as select distinct h from c in Cities, "
                "h in c.hotels where h.stars = 5")
    repl.handle("select distinct l.name from l in Lux")
    assert "defined view Lux" in _all(outputs)


def test_extents_and_schema(shell):
    repl, outputs = shell
    repl.handle("\\extents")
    repl.handle("\\schema")
    text = _all(outputs)
    assert "Cities: 3 elements" in text
    assert "class City" in text


def test_error_reported_not_raised(shell):
    repl, outputs = shell
    repl.handle("select broken from")
    assert "error:" in _all(outputs)


def test_unknown_command(shell):
    repl, outputs = shell
    repl.handle("\\bogus")
    assert "unknown command" in _all(outputs)


def test_help_and_quit(shell):
    repl, outputs = shell
    repl.handle("\\help")
    assert "OQL shell" in _all(outputs) or "oql" in _all(outputs).lower()
    repl.handle("\\quit")
    assert not repl.running


def test_run_loop_over_stream():
    outputs = []
    repl = Repl(demo_travel_database(num_cities=2, seed=1), out=outputs.append)
    stream = io.StringIO("count(Cities)\n\\quit\n")
    repl.run(stdin=stream)
    assert "2" in "\n".join(outputs)


def test_empty_line_ignored(shell):
    repl, outputs = shell
    repl.handle("   ")
    assert outputs == []
