"""QL401 — literal-only query variants (the batch cache lint)."""

from repro.lint.cachelint import find_literal_variants, run_batch
from repro.lint.cli import lint_text, split_queries
from repro.lint.linter import Linter


def _segments(source):
    return list(split_queries(source))


class TestFindLiteralVariants:
    def test_flags_literal_only_pair(self):
        diags = find_literal_variants(_segments(
            "select distinct c.name from c in Cities where c.population > 100;\n"
            "select distinct c.name from c in Cities where c.population > 500"))
        assert [d.code for d in diags] == ["QL401", "QL401"]
        assert all(d.severity == "info" for d in diags)
        assert "db.prepare" in diags[0].hint
        # spans land on each variant's own line
        assert {d.span.line for d in diags} == {1, 2}

    def test_alpha_variant_literals_still_flagged(self):
        diags = find_literal_variants(_segments(
            "select distinct c.name from c in Cities where c.state = 'OR';\n"
            "select distinct x.name from x in Cities where x.state = 'WA'"))
        assert [d.code for d in diags] == ["QL401", "QL401"]

    def test_identical_queries_not_flagged(self):
        diags = find_literal_variants(_segments(
            "select distinct c.name from c in Cities where c.state = 'OR';\n"
            "select distinct c.name from c in Cities where c.state = 'OR'"))
        assert diags == []

    def test_structurally_different_not_flagged(self):
        diags = find_literal_variants(_segments(
            "select distinct c.name from c in Cities where c.population > 100;\n"
            "select distinct c.name from c in Cities where c.state = 'OR'"))
        assert diags == []

    def test_no_literals_not_flagged(self):
        # alpha-variants with no constants: nothing to parameterize
        diags = find_literal_variants(_segments(
            "select distinct c.name from c in Cities;\n"
            "select distinct x.name from x in Cities"))
        assert diags == []

    def test_single_query_not_flagged(self):
        diags = find_literal_variants(_segments(
            "select distinct c.name from c in Cities where c.state = 'OR'"))
        assert diags == []

    def test_already_parameterized_not_flagged(self):
        diags = find_literal_variants(_segments(
            "select distinct c.name from c in Cities where c.state = $a;\n"
            "select distinct c.name from c in Cities where c.state = $b"))
        assert diags == []

    def test_unparseable_queries_skipped(self):
        diags = find_literal_variants(_segments(
            "select from from;\n"
            "select distinct c.name from c in Cities where c.state = 'OR'"))
        assert diags == []

    def test_three_variants_three_findings(self):
        diags = find_literal_variants(_segments(
            "count(select c from c in Cities where c.population > 1);\n"
            "count(select c from c in Cities where c.population > 2);\n"
            "count(select c from c in Cities where c.population > 3)"))
        assert len(diags) == 3
        assert all("3 queries" in d.message for d in diags)


class TestIntegration:
    def test_lint_text_includes_batch_findings_sorted(self):
        source = (
            "select distinct c.name from c in Cities where c.population > 100;\n"
            "select distinct c.name from c in Cities where c.population > 500"
        )
        findings = lint_text(source, Linter())
        codes = [d.code for d in findings]
        assert codes.count("QL401") == 2
        # sorted by position: line-1 findings precede line-2 findings
        positions = [d.span.line for d in findings if d.span is not None]
        assert positions == sorted(positions)

    def test_run_batch_matches_finder(self):
        segs = _segments(
            "select distinct c.name from c in Cities where c.state = 'OR';\n"
            "select distinct c.name from c in Cities where c.state = 'WA'")
        assert len(run_batch(segs)) == len(find_literal_variants(segs)) == 2

    def test_examples_stay_clean(self):
        from pathlib import Path

        from repro.db.sample_data import travel_schema

        linter = Linter(travel_schema())
        for path in sorted(Path("examples").glob("*.oql")):
            findings = lint_text(path.read_text(encoding="utf-8"), linter)
            assert not [d for d in findings if d.code == "QL401"], path
