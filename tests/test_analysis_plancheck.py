"""Physical-plan scoping/schema verification and the optimizer hook."""

import pytest

from repro.algebra.ops import (
    IndexScan,
    Join,
    Nest,
    Reduce,
    Scan,
    SelectOp,
    Unnest,
)
from repro.analysis.plancheck import (
    check_plan_rewrite,
    plan_variables,
    verify_plan,
)
from repro.calculus.builders import eq, gt, mref, proj, var
from repro.errors import VerificationError


def scan(name, extent):
    return Scan(name, var(extent))


def violations(exc_info):
    return [v.invariant for v in exc_info.value.violations]


class TestPlanVariables:
    def test_collects_all_binders(self):
        plan = Join(
            scan("c", "Cities"),
            Unnest(scan("d", "Depts"), "e", proj(var("d"), "emps")),
        )
        assert plan_variables(plan) == {"c", "d", "e"}

    def test_nest_binds_labels_and_partition(self):
        plan = Nest(
            scan("e", "Employees"),
            keys=(("dno", proj(var("e"), "dno")),),
            part_var="partition",
            part_head=var("e"),
            part_monoid=mref("bag"),
        )
        assert plan_variables(plan) == {"e", "dno", "partition"}


class TestGoodPlans:
    def test_scan_select_reduce(self):
        plan = Reduce(
            mref("bag"),
            proj(var("c"), "name"),
            SelectOp(scan("c", "Cities"), gt(proj(var("c"), "pop"), 0)),
        )
        verify_plan(plan)  # must not raise

    def test_join_with_sided_keys(self):
        plan = Reduce(
            mref("bag"),
            var("c"),
            Join(
                scan("c", "Cities"),
                scan("h", "Hotels"),
                left_keys=(proj(var("c"), "name"),),
                right_keys=(proj(var("h"), "city"),),
                residual=gt(proj(var("h"), "stars"), 2),
            ),
        )
        verify_plan(plan)

    def test_unnest_over_parent_path(self):
        plan = Reduce(
            mref("bag"),
            var("h"),
            Unnest(scan("c", "Cities"), "h", proj(var("c"), "hotels")),
        )
        verify_plan(plan)

    def test_index_scan_with_constant_key(self):
        plan = Reduce(
            mref("bag"),
            var("c"),
            IndexScan("c", "Cities", "state", var("target_state")),
        )
        verify_plan(plan)


class TestBadPlans:
    def test_select_pred_from_other_join_side(self):
        # the predicate over d is sunk into c's side, where d is unbound
        plan = Join(
            SelectOp(scan("c", "Cities"), gt(proj(var("d"), "pop"), 0)),
            scan("d", "Docks"),
        )
        with pytest.raises(VerificationError) as exc:
            verify_plan(plan)
        assert "plan-scope" in violations(exc)
        assert "'d'" in str(exc.value)

    def test_join_sides_overlap(self):
        plan = Join(scan("c", "Cities"), scan("c", "Docks"))
        with pytest.raises(VerificationError) as exc:
            verify_plan(plan)
        assert "plan-schema" in violations(exc)

    def test_join_key_on_wrong_side(self):
        plan = Join(
            scan("c", "Cities"),
            scan("h", "Hotels"),
            left_keys=(proj(var("h"), "city"),),  # h is a right-side column
            right_keys=(proj(var("h"), "city"),),
        )
        with pytest.raises(VerificationError) as exc:
            verify_plan(plan)
        assert "plan-scope" in violations(exc)

    def test_index_scan_key_referencing_plan_variable(self):
        plan = Join(
            scan("c", "Cities"),
            IndexScan("h", "Hotels", "city", proj(var("c"), "name")),
        )
        with pytest.raises(VerificationError) as exc:
            verify_plan(plan)
        assert "evaluated once" in str(exc.value)

    def test_unnest_path_referencing_sibling(self):
        plan = Join(
            scan("c", "Cities"),
            Unnest(scan("d", "Docks"), "h", proj(var("c"), "hotels")),
        )
        with pytest.raises(VerificationError) as exc:
            verify_plan(plan)
        assert "plan-scope" in violations(exc)

    def test_unnest_rebinding(self):
        plan = Unnest(scan("c", "Cities"), "c", proj(var("c"), "hotels"))
        with pytest.raises(VerificationError) as exc:
            verify_plan(plan)
        assert "plan-schema" in violations(exc)

    def test_phase_names_the_failure(self):
        plan = Join(scan("c", "Cities"), scan("c", "Docks"))
        with pytest.raises(VerificationError) as exc:
            verify_plan(plan, phase="group-by-plan")
        assert exc.value.rule == "group-by-plan"


class TestPlanRewrite:
    def base(self):
        return Reduce(
            mref("bag"),
            var("c"),
            SelectOp(scan("c", "Cities"), gt(proj(var("c"), "pop"), 0)),
        )

    def test_identity_rewrite_passes(self):
        plan = self.base()
        check_plan_rewrite("optimizer", plan, plan)

    def test_changed_head_rejected(self):
        before = self.base()
        after = Reduce(before.monoid, proj(var("c"), "name"), before.child)
        with pytest.raises(VerificationError) as exc:
            check_plan_rewrite("optimizer", before, after)
        assert "head" in str(exc.value)

    def test_changed_columns_rejected(self):
        before = self.base()
        after = Reduce(before.monoid, before.head, scan("x", "Cities"))
        with pytest.raises(VerificationError):
            check_plan_rewrite("optimizer", before, after)

    def test_changed_monoid_rejected(self):
        before = self.base()
        after = Reduce(mref("set"), before.head, before.child)
        with pytest.raises(VerificationError):
            check_plan_rewrite("optimizer", before, after)


class TestOptimizerHook:
    def test_optimizer_verifies_its_own_rewrites(self):
        from repro.algebra.optimizer import Optimizer

        plan = Reduce(
            mref("bag"),
            var("h"),
            SelectOp(
                Join(
                    scan("c", "Cities"),
                    scan("h", "Hotels"),
                ),
                eq(proj(var("c"), "name"), proj(var("h"), "city")),
            ),
        )
        optimized = Optimizer(verify=True).optimize(plan)
        assert optimized.head == plan.head
        verify_plan(optimized)
