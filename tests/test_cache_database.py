"""The cached pipeline: value parity, counters, observability surfaces."""

import json

import pytest

from repro.cache import CacheConfig, QueryCache
from repro.db.database import Database, demo_travel_database
from repro.errors import LintError

BATTERY = [
    "select distinct c.name from c in Cities",
    "select c.name from c in Cities where c.population > 100000",
    "select distinct struct(city: c.name, hotel: h.name) "
    "from c in Cities, h in c.hotels where h.stars = 5",
    "count(select h.name from c in Cities, h in c.hotels)",
    "sum(select c.population from c in Cities)",
    "select struct(city: city, n: count(partition)) "
    "from c in Cities group by city: c.name",
    "select h.name from c in Cities, h in c.hotels order by h.stars desc",
    "select distinct c.name from c in Cities where 'pool' in "
    "flatten(select h.facilities from h in c.hotels)",
    "element(select distinct c.name from c in Cities where c.name = 'Portland')",
]


def _pair(num_cities=6, seed=3):
    plain = demo_travel_database(num_cities=num_cities, seed=seed)
    cached = demo_travel_database(num_cities=num_cities, seed=seed)
    cached.enable_cache()
    return plain, cached


class TestValueParity:
    @pytest.mark.parametrize("oql", BATTERY)
    def test_cached_equals_uncached(self, oql):
        plain, cached = _pair()
        expected = plain.run(oql)
        assert cached.run(oql) == expected  # cold (miss)
        assert cached.run(oql) == expected  # warm (result hit)

    @pytest.mark.parametrize("engine", ["auto", "algebra", "interpret"])
    def test_engines_cached(self, engine):
        oql = "select distinct c.name from c in Cities"
        plain, cached = _pair()
        expected = plain.run(oql, engine=engine)
        assert cached.run(oql, engine=engine) == expected
        assert cached.run(oql, engine=engine) == expected


class TestCounters:
    def test_hits_and_misses(self):
        _, db = _pair()
        oql = BATTERY[0]
        db.run(oql)
        stats = db.cache.stats_dict()
        assert stats["compile_misses"] == 1 and stats["compile_hits"] == 0
        db.run(oql)
        stats = db.cache.stats_dict()
        assert stats["compile_hits"] == 1 and stats["result_hits"] == 1

    def test_alpha_variants_share_one_compiled_entry(self):
        _, db = _pair()
        db.run("select distinct c.name from c in Cities")
        db.run("select distinct other.name from other in Cities")
        stats = db.cache.stats_dict()
        assert stats["compiled_entries"] == 1
        assert stats["compile_misses"] == 1
        assert stats["compile_hits"] == 1
        # the alias now covers the variant text: no more parsing either
        db.run("select distinct other.name from other in Cities")
        assert db.cache.stats_dict()["compile_hits"] == 2

    def test_results_disabled_still_compile_caches(self):
        plain, _ = _pair()
        db = demo_travel_database(num_cities=6, seed=3)
        db.enable_cache(CacheConfig(results=False))
        oql = BATTERY[1]
        expected = plain.run(oql)
        assert db.run(oql) == expected
        assert db.run(oql) == expected
        stats = db.cache.stats_dict()
        assert stats["compile_hits"] == 1
        assert stats["result_hits"] == 0 and stats["result_misses"] == 0


class TestEnablement:
    def test_env_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        assert Database().cache is not None
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert Database().cache is None
        monkeypatch.delenv("REPRO_CACHE")
        assert Database().cache is None

    def test_explicit_false_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        assert Database(cache=False).cache is None

    def test_enable_disable_roundtrip(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        db = demo_travel_database(num_cities=3, seed=1)
        assert db.cache is None
        qc = db.enable_cache()
        assert isinstance(qc, QueryCache) and db.cache is qc
        db.disable_cache()
        assert db.cache is None

    def test_shared_cache_instance(self):
        qc = QueryCache()
        a = demo_travel_database(num_cities=3, seed=1)
        b = demo_travel_database(num_cities=3, seed=1)
        a.enable_cache(qc)
        b.enable_cache(qc)
        a.run(BATTERY[0])
        b.run(BATTERY[0])
        # same canonical key, but b's catalog version differs from a's
        # only if registration orders diverged; identical construction
        # gives identical versions, so b hits a's entry.
        assert qc.stats.compile_hits >= 1


class TestObservability:
    def test_pipeline_report_mentions_cache(self):
        _, db = _pair()
        db.run(BATTERY[0])
        report = db.run_detailed(BATTERY[0]).pipeline_report()
        assert "compile=hit" in report and "result=hit" in report

    def test_result_cache_field(self):
        _, db = _pair()
        first = db.run_detailed(BATTERY[0])
        assert first.cache == {"compile": "miss", "result": "miss"}
        second = db.run_detailed(BATTERY[0])
        assert second.cache == {"compile": "hit", "result": "hit"}
        assert second.stats is None  # nothing executed

    def test_cached_spans_render(self):
        _, db = _pair()
        db.profile(True)
        db.run(BATTERY[0])
        db.run(BATTERY[0])
        rendered = db.tracer.render()
        assert "(cached)" in rendered
        db.profile(False)

    def test_querylog_carries_cache_info(self):
        _, db = _pair()
        lines = []
        db.profile(True, sink=lines.append)
        db.run(BATTERY[0])
        db.run(BATTERY[0])
        db.profile(False)
        entries = [json.loads(line) for line in lines]
        assert entries[0]["cache"] == {"compile": "miss", "result": "miss"}
        assert entries[1]["cache"] == {"compile": "hit", "result": "hit"}

    def test_explain_analyze_bypasses_result_cache(self):
        plain, db = _pair()
        oql = BATTERY[1]
        db.run(oql)
        db.run(oql)  # result entry exists now
        doc = db.explain_data(oql, analyze=True)
        assert doc["cache"]["compile"] == "hit"
        assert doc["cache"]["result"] == "bypass"
        assert "stats" in doc["cache"]
        # actuals are real, not a replayed empty plan
        assert doc["plan"]["actual_rows"] >= 0
        rendered = db.explain(oql, analyze=True)
        assert "cache:" in rendered

    def test_uncached_explain_has_no_cache_line(self):
        plain, _ = _pair()
        plain.disable_cache()  # env (REPRO_CACHE=1) may have switched it on
        doc = plain.explain_data(BATTERY[1], analyze=True)
        assert "cache" not in doc


class TestSeedParity:
    def test_strict_lint_still_raises_on_warm_cache(self):
        _, db = _pair()
        good = BATTERY[0]
        db.run(good)
        with pytest.raises(LintError):
            db.run("select distinct z.name from c in Cities", strict=True)
        # a cached hit still honors strict mode's lint gate
        assert db.run(good, strict=True) is not None

    def test_off_path_unchanged(self):
        db = demo_travel_database(num_cities=4, seed=2)
        db.disable_cache()  # env (REPRO_CACHE=1) may have switched it on
        result = db.run_detailed(BATTERY[0])
        assert result.cache is None
        assert "cache" not in result.pipeline_report()

    def test_view_definition_invalidates_compiled_queries(self):
        _, db = _pair()
        oql = "select distinct v.name from v in Fancy"
        db.define("Fancy", "select distinct c from c in Cities where c.population > 0")
        first = db.run(oql)
        db.define("Fancy", "select distinct c from c in Cities where c.population < 0")
        second = db.run(oql)
        assert first != second
        assert second == frozenset()


class TestReplCommand:
    def test_cache_toggle_and_stats(self):
        from repro.repl import Repl

        db = demo_travel_database(num_cities=3, seed=1)
        db.disable_cache()  # env (REPRO_CACHE=1) may have switched it on
        out = []
        repl = Repl(db, out=out.append)
        repl.handle(":cache stats")
        assert "cache is off" in out[-1]
        repl.handle(":cache on")
        assert db.cache is not None
        repl.handle("select distinct c.name from c in Cities")
        repl.handle(":cache stats")
        assert any("compile_misses: 1" in line for line in out)
        repl.handle(":cache off")
        assert db.cache is None
        repl.handle(":cache bogus")
        assert "usage" in out[-1]


class TestCacheCli:
    def test_stats_and_clear(self, capsys):
        from repro.cache.cli import main

        assert main(["stats", "--repeats", "2"]) == 0
        text = capsys.readouterr().out
        assert "compile:" in text and "result:" in text

        assert main(["clear", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["action"] == "clear"
        assert doc["stats"]["compiled_entries"] == 0
        assert doc["stats"]["compile_hits"] > 0  # counters survive a clear

    def test_main_module_dispatch(self, capsys):
        from repro.__main__ import main

        assert main(["cache", "stats", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["stats"]["compile_misses"] > 0
