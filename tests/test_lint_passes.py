"""One positive and one negative fixture per QLxxx code."""

import pytest

from repro.calculus.ast import Hom, MonoidRef, Singleton
from repro.calculus.builders import comp, const, gen, proj, var
from repro.db.sample_data import travel_schema
from repro.lint import Linter, lint_oql
from repro.values import Bag


@pytest.fixture(scope="module")
def linter():
    return Linter(travel_schema())


def codes(diags):
    return [d.code for d in diags]


def lint(source):
    return lint_oql(source, travel_schema())


class TestQL000Syntax:
    def test_positive(self):
        diags = lint("select from Cities")
        assert codes(diags) == ["QL000"]
        assert diags[0].span is not None
        assert "found keyword 'from'" in diags[0].message

    def test_negative(self):
        assert lint("select distinct c.name from c in Cities") == []


class TestQL001IllFormedComprehension:
    def test_positive(self):
        # Cities is a set; a plain select builds a bag — hom[set -> bag]
        # violates the C/I restriction.
        diags = lint("select c.name from c in Cities")
        assert codes(diags) == ["QL001"]
        assert diags[0].span is not None and diags[0].span.line == 1

    def test_negative_distinct(self):
        assert lint("select distinct c.name from c in Cities") == []

    def test_all_violations_reported_not_just_first(self):
        diags = lint("select struct(a: c.name, b: d.name) "
                     "from c in Cities, d in Cities where c.state = d.state")
        assert codes(diags).count("QL001") == 2


class TestQL002IllFormedHom:
    def test_positive(self, linter):
        term = Hom(MonoidRef("set"), MonoidRef("sum"), "x", var("x"),
                   const(frozenset({1, 2})))
        diags = linter.lint_term(term)
        assert "QL002" in codes(diags)

    def test_negative(self, linter):
        term = Hom(MonoidRef("bag"), MonoidRef("sum"), "x", var("x"),
                   const(Bag([1, 2])))
        assert "QL002" not in codes(linter.lint_term(term))


class TestQL003Unbound:
    def test_positive_with_hint(self):
        diags = lint("select distinct c.name from c in Citees")
        assert codes(diags) == ["QL003"]
        assert diags[0].hint == "did you mean 'Cities'?"

    def test_no_hint_when_nothing_close(self):
        diags = lint("select distinct c.name from c in Zzzzzz")
        assert codes(diags) == ["QL003"]
        assert diags[0].hint is None

    def test_negative(self):
        assert lint("select distinct c.name from c in Cities") == []


class TestQL004Shadow:
    def test_positive_outer_binding(self):
        diags = lint("select distinct (select distinct c.name from c in c.hotels) "
                     "from c in Cities")
        assert "QL004" in codes(diags)

    def test_positive_database_name(self):
        diags = lint("select distinct Cities.name from Cities in Cities")
        assert "QL004" in codes(diags)

    def test_negative(self):
        assert lint("select distinct h.name from c in Cities, h in c.hotels") == []


class TestQL005UnusedGenerator:
    def test_positive(self):
        diags = lint("select distinct c.name from c in Cities, h in c.hotels")
        assert codes(diags) == ["QL005"]
        assert "'h'" in diags[0].message

    def test_negative_used_in_filter(self):
        src = ("select distinct c.name from c in Cities, h in c.hotels "
               "where h.stars > 3")
        assert lint(src) == []

    def test_negative_underscore_optout(self, linter):
        term = comp("set", var("c"),
                    [gen("c", var("Cities")), gen("_h", var("Cities"))])
        assert "QL005" not in codes(linter.lint_term(term))


class TestQL006OtherTypeError:
    def test_positive(self):
        diags = lint("select distinct c.population.x from c in Cities")
        assert "QL006" in codes(diags)

    def test_negative(self):
        assert lint("select distinct c.population from c in Cities") == []


class TestQL101ImplicitDedup:
    def test_positive_syntactic_bag(self, linter):
        term = comp("set", var("x"),
                    [gen("x", Singleton(MonoidRef("bag"), const(1)))])
        assert "QL101" in codes(linter.lint_term(term))

    def test_positive_typed_source(self, linter):
        term = comp("set", var("x"), [gen("x", const(Bag([1, 2, 2])))])
        assert "QL101" in codes(linter.lint_term(term))

    def test_positive_through_generator_binding(self, linter):
        # h bound by an earlier generator; h.rooms is a list by schema.
        term = comp(
            "set", var("r"),
            [gen("c", var("Cities")),
             gen("h", proj(var("c"), "hotels")),
             gen("r", proj(var("h"), "rooms"))])
        assert "QL101" in codes(linter.lint_term(term))

    def test_negative_explicit_distinct(self):
        src = ("select distinct r.price "
               "from c in Cities, h in c.hotels, r in h.rooms "
               "where r.price > 0 and h.stars > 0")
        assert "QL101" not in codes(lint(src))

    def test_negative_set_source(self, linter):
        term = comp("set", var("x"),
                    [gen("x", Singleton(MonoidRef("set"), const(1)))])
        assert "QL101" not in codes(linter.lint_term(term))


class TestQL102AlwaysTrue:
    def test_positive(self):
        diags = lint("select distinct c.name from c in Cities where 1 = 1")
        assert codes(diags) == ["QL102"]

    def test_positive_reflexive(self):
        diags = lint("select distinct c.name from c in Cities "
                     "where c.name = c.name")
        assert codes(diags) == ["QL102"]

    def test_negative(self):
        assert lint("select distinct c.name from c in Cities "
                    "where c.population > 10") == []


class TestQL103AlwaysFalse:
    def test_positive(self):
        diags = lint("select distinct c.name from c in Cities where 1 = 2")
        assert codes(diags) == ["QL103"]

    def test_positive_reflexive(self):
        diags = lint("select distinct c.name from c in Cities "
                     "where c.population < c.population")
        assert codes(diags) == ["QL103"]

    def test_negative(self):
        assert lint("select distinct c.name from c in Cities "
                    "where c.population < 10") == []


class TestQL201Cartesian:
    def test_positive(self):
        diags = lint("select distinct struct(a: c.name, b: d.name) "
                     "from c in Cities, d in Cities")
        # the dataflow pass adds QL301: same source, nothing relating c and d
        assert codes(diags) == ["QL201", "QL201", "QL301"]

    def test_negative_join_predicate(self):
        src = ("select distinct struct(a: c.name, b: d.name) "
               "from c in Cities, d in Cities where c.state = d.state")
        assert "QL201" not in codes(lint(src))

    def test_negative_correlated_source(self):
        src = ("select distinct h.name from c in Cities, h in c.hotels "
               "where h.stars > 0")
        assert "QL201" not in codes(lint(src))


class TestQL202LateFilter:
    def test_positive(self):
        diags = lint("select distinct struct(a: c.name, b: d.name) "
                     "from c in Cities, d in Cities where c.population > 0")
        assert "QL202" in codes(diags)

    def test_negative_filter_needs_both(self):
        src = ("select distinct struct(a: c.name, b: d.name) "
               "from c in Cities, d in Cities where c.state = d.state")
        assert "QL202" not in codes(lint(src))

    def test_negative_dependent_generator(self):
        src = ("select distinct h.name from c in Cities, h in c.hotels "
               "where c.population > 0 and h.stars > 0")
        assert "QL202" not in codes(lint(src))


class TestQL203PipeliningBlocked:
    def test_positive_order_by(self):
        diags = lint("select distinct c.name from c in Cities "
                     "order by c.population desc")
        only = [d for d in diags if d.code == "QL203"]
        assert only and only[0].severity == "info"

    def test_negative_flat_query(self):
        assert lint("select distinct h.name from c in Cities, h in c.hotels "
                    "where h.stars > 2") == []

    def test_negative_unnestable_subquery(self):
        src = ("select distinct h.name from h in "
               "(select distinct x from c in Cities, x in c.hotels "
               "where x.stars > 1)")
        assert "QL203" not in codes(lint(src))


class TestBatching:
    def test_acceptance_three_defects_one_run(self):
        """The issue's acceptance scenario: a C/I violation, an unbound
        variable and an uncorrelated cartesian product — all reported in
        one run, each with a stable code and a line/column span."""
        src = ("select h.name\n"
               "from c in Cities, h in Citees\n"
               "where 1 = 1")
        diags = lint(src)
        got = set(codes(diags))
        assert {"QL001", "QL003", "QL201"} <= got
        for d in diags:
            assert d.span is not None
            assert d.span.line in (1, 2, 3)

    def test_passes_are_independent(self, linter):
        from repro.lint import DEFAULT_PASSES
        from repro.oql.translate import Translator

        term = Translator(travel_schema()).translate_text(
            "select distinct c.name from c in Citees where 1 = 1")
        for lint_pass in DEFAULT_PASSES:
            # every pass runs alone without the others' context
            solo = Linter(travel_schema(), passes=(lint_pass,))
            solo.lint_term(term)

    def test_group_by_not_blamed_for_partition_bag(self):
        src = ("select distinct struct(s: st, total: count(partition)) "
               "from c in Cities group by st: c.state")
        assert not any(d.is_error for d in lint(src))

    def test_diagnostics_are_deduplicated(self):
        src = ("select distinct struct(s: st, total: count(partition)) "
               "from c in Cities where 1 = 1 group by st: c.state")
        diags = lint(src)
        keyed = [(d.code, d.message, d.span) for d in diags]
        assert len(keyed) == len(set(keyed))
