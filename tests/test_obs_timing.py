"""Timing-source audit: durations use the monotonic clock, wall-clock
stamps are for event timestamps only.

The observability layer's contract (documented in
``docs/OBSERVABILITY.md``): anything that measures *how long* — tracer
spans, operator metrics, telemetry histograms, benchmark medians — must
use ``time.perf_counter``/``perf_counter_ns`` (or ``time.monotonic``
for the rolling window), which never jump under NTP. Wall clock
(``time.time``/``time.time_ns``) is only legal for *when it happened*
fields: the query log's ``ts`` and OTLP's ``timeUnixNano``. This test
scans the source so a stray ``time.time()`` duration can't creep in.
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"
BENCH = Path(__file__).resolve().parent.parent / "benchmarks"

#: The only files allowed to call the wall clock, and why.
WALL_CLOCK_ALLOWED = {
    "obs/querylog.py",  # the log entry's ts field (event stamp)
    "obs/telemetry/export.py",  # OTLP timeUnixNano (event stamp)
}

_WALL = re.compile(r"\btime\.time(_ns)?\s*\(")
_CODE = re.compile(r"^\s*(#|\"\"\"|''')")  # comment/docstring openers


def _wall_clock_files(root: Path) -> set[str]:
    offenders: set[str] = set()
    for path in root.rglob("*.py"):
        for line in path.read_text(encoding="utf-8").splitlines():
            if _CODE.match(line):
                continue
            if _WALL.search(line):
                offenders.add(path.relative_to(root).as_posix())
                break
    return offenders


class TestWallClockConfinement:
    def test_src_wall_clock_only_in_event_stamp_files(self):
        offenders = _wall_clock_files(SRC)
        assert offenders <= WALL_CLOCK_ALLOWED, (
            f"wall-clock call outside the allow-list: "
            f"{sorted(offenders - WALL_CLOCK_ALLOWED)} — durations must "
            "use time.perf_counter"
        )

    def test_benchmarks_never_use_wall_clock(self):
        assert _wall_clock_files(BENCH) == set()

    def test_allowed_files_actually_use_it(self):
        # If a stamp moves elsewhere, shrink the allow-list with it.
        assert _wall_clock_files(SRC) == WALL_CLOCK_ALLOWED


class TestDurationSources:
    def test_tracer_spans_use_perf_counter(self):
        text = (SRC / "obs" / "tracer.py").read_text(encoding="utf-8")
        assert "perf_counter" in text
        assert not _WALL.search(text)

    def test_operator_metrics_use_perf_counter(self):
        text = (SRC / "obs" / "metrics.py").read_text(encoding="utf-8")
        assert "perf_counter" in text
        assert not _WALL.search(text)

    def test_telemetry_durations_use_perf_counter(self):
        text = (SRC / "obs" / "telemetry" / "instrument.py").read_text(
            encoding="utf-8"
        )
        assert "perf_counter" in text
        assert not _WALL.search(text)

    def test_rolling_window_uses_monotonic(self):
        text = (SRC / "obs" / "telemetry" / "registry.py").read_text(
            encoding="utf-8"
        )
        assert "time.monotonic" in text
        assert not _WALL.search(text)

    def test_querylog_entries_carry_wall_clock_ts(self):
        from repro.db.database import demo_travel_database

        db = demo_travel_database(num_cities=3, seed=1)
        db.profile(True)
        db.run("count(Cities)")
        import time

        ts = db.query_log.entries[-1]["ts"]
        assert abs(ts - time.time()) < 60  # a real wall-clock stamp
