"""User-defined monoids: the framework is open, as the paper requires.

Three classic extensions, each registered once and then used from
ordinary comprehensions by name:

- ``gcd`` — greatest common divisor (commutative and idempotent);
- ``avgpair`` — the (sum, count) pair monoid that makes *average*
  compositional (plain avg is not a monoid; the pair trick is);
- ``top3`` — a bounded "best three" collection monoid.
"""

from __future__ import annotations

import math

import pytest

from repro.calculus import comp, const, gen, proj, tup, var
from repro.errors import WellFormednessError
from repro.eval import evaluate
from repro.monoids import (
    Accumulator,
    CollectionMonoid,
    PrimitiveMonoid,
    check_hom_well_formed,
    default_registry,
)
from repro.types.infer import MONOID_PROPS
from repro.values import Bag


def _register(monoid, props):
    registry = default_registry()
    if monoid.name not in registry:
        registry.register(monoid)
    MONOID_PROPS.setdefault(monoid.name, props)
    return registry.get(monoid.name)


GCD = _register(
    PrimitiveMonoid("gcd", 0, math.gcd, commutative=True, idempotent=True),
    (True, True, False),
)


def _avg_merge(left, right):
    return (left[0] + right[0], left[1] + right[1])


AVGPAIR = _register(
    PrimitiveMonoid("avgpair", (0, 0), _avg_merge, commutative=True, idempotent=False),
    (True, False, False),
)


class _Top3Accumulator(Accumulator):
    def __init__(self):
        self._items = set()

    def add(self, value):
        self._items.add(value)
        self._items = set(sorted(self._items, reverse=True)[:3])

    def finish(self):
        return tuple(sorted(self._items, reverse=True))


class Top3Monoid(CollectionMonoid):
    """The three largest *distinct* elements.

    Deduplication is what makes the merge idempotent — keeping
    duplicates would give ``x + x != x`` (the same C/I bookkeeping the
    paper's sorted monoid needs).
    """

    name = "top3"
    commutative = True
    idempotent = True

    def zero(self):
        return ()

    def unit(self, value):
        return (value,)

    def merge(self, left, right):
        return tuple(sorted(set(left) | set(right), reverse=True)[:3])

    def iterate(self, collection):
        return iter(collection)

    def accumulator(self):
        return _Top3Accumulator()


TOP3 = _register(Top3Monoid(), (True, True, True))


class TestGcd:
    def test_laws(self):
        assert GCD.merge(12, 18) == 6
        assert GCD.merge(0, 7) == 7  # zero is the identity
        assert GCD.merge(7, 7) == 7  # idempotent

    def test_in_comprehension(self):
        term = comp("gcd", var("x"), [gen("x", const((12, 18, 30)))])
        assert evaluate(term) == 6

    def test_set_source_is_well_formed(self):
        """gcd is CI, so even set generators are admissible."""
        check_hom_well_formed(default_registry().get("set"), GCD)
        term = comp("gcd", var("x"), [gen("x", const(frozenset({8, 12})))])
        assert evaluate(term) == 4


class TestAveragePair:
    def test_average_via_pairs(self):
        """avg{ e } = let (s, c) = avgpair{ (e, 1) } in s / c."""
        term = comp(
            "avgpair", tup(var("x"), const(1)), [gen("x", const((2, 4, 6, 8)))]
        )
        total, count = evaluate(term)
        assert total / count == 5.0

    def test_composes_over_partitions(self):
        """The whole point: partial averages merge correctly."""
        left = evaluate(
            comp("avgpair", tup(var("x"), const(1)), [gen("x", const((2, 4)))])
        )
        right = evaluate(
            comp("avgpair", tup(var("x"), const(1)), [gen("x", const((6, 8)))])
        )
        merged = AVGPAIR.merge(left, right)
        assert merged[0] / merged[1] == 5.0

    def test_set_source_rejected(self):
        """avgpair is not idempotent: averaging a set via it is the same
        ill-formedness as summing a set."""
        with pytest.raises(WellFormednessError):
            check_hom_well_formed(default_registry().get("set"), AVGPAIR)


class TestTop3:
    def test_in_comprehension(self):
        term = comp("top3", var("x"), [gen("x", const((5, 1, 9, 7, 3)))])
        assert evaluate(term) == (9, 7, 5)

    def test_idempotent_and_commutative(self):
        a, b = (9, 7, 5), (8, 6, 4)
        assert TOP3.merge(a, a) == a
        assert TOP3.merge(a, b) == TOP3.merge(b, a) == (9, 8, 7)

    def test_bag_source_allowed(self):
        term = comp("top3", var("x"), [gen("x", const(Bag([5, 5, 1])))])
        assert evaluate(term) == (5, 1)  # distinct by construction

    def test_with_projection_head(self):
        rows = tuple(
            {"name": f"e{i}", "salary": s} for i, s in enumerate((30, 90, 50, 70))
        )
        term = comp("top3", proj(var("r"), "salary"), [gen("r", const(rows))])
        assert evaluate(term) == (90, 70, 50)

    def test_normalization_preserves_user_monoid_semantics(self):
        from repro.normalize import normalize

        inner = comp("bag", var("y"), [gen("y", var("Ys"))])
        outer = comp("top3", var("x"), [gen("x", inner)])
        data = {"Ys": (4, 9, 2, 9)}
        assert evaluate(normalize(outer), data) == evaluate(outer, data) == (9, 4, 2)
