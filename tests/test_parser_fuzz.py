"""Fuzzing the two parsers.

1. Garbage in, *clean errors* out: random text must either parse or
   raise the dedicated syntax error — never an internal exception.
2. Printer/parser round trip on random calculus terms: anything the
   pretty printer emits must parse back alpha-equal.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calculus import alpha_equal, pretty
from repro.calculus.parser import parse_calculus
from repro.errors import CalculusError, OQLSyntaxError
from repro.oql import parse as parse_oql

_OQL_FRAGMENTS = [
    "select", "from", "where", "in", "distinct", "exists", "(", ")", ",",
    "c", "Cities", "h", ".", "name", "=", "'x'", "1", "+", "and", "struct",
    "order", "by", "group", ":", "sum", "*", "sort",
]


@settings(max_examples=200, deadline=None)
@given(st.lists(st.sampled_from(_OQL_FRAGMENTS), max_size=12))
def test_oql_parser_never_crashes(fragments):
    source = " ".join(fragments)
    try:
        parse_oql(source)
    except OQLSyntaxError:
        pass  # the only acceptable failure mode


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=40))
def test_oql_lexer_never_crashes(text):
    from repro.oql import tokenize

    try:
        tokenize(text)
    except OQLSyntaxError:
        pass


_CALC_FRAGMENTS = [
    "set{", "}", "|", "<-", "x", "Xs", ",", "(", ")", "sum", "1", "+",
    "==", "\\", ".", "zero(set)", "unit(bag)(1)", "<a=1>", "!", ":=",
]


@settings(max_examples=200, deadline=None)
@given(st.lists(st.sampled_from(_CALC_FRAGMENTS), max_size=10))
def test_calculus_parser_never_crashes(fragments):
    source = " ".join(fragments)
    try:
        parse_calculus(source)
    except CalculusError:
        pass


# -- round trip on random structured terms -----------------------------------

_names = st.sampled_from(["x", "y", "z", "Xs", "Ys"])


def _terms():
    from repro.calculus import (
    add,
    comp,
    const,
    eq,
    filt,
    gen,
    if_,
    lt,
    not_,
    proj,
    rec,
    tup,
    var,
)

    base = st.one_of(
        st.integers(-5, 5).map(const),
        st.booleans().map(const),
        st.sampled_from(["a", "bc"]).map(const),
        _names.map(var),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda p: add(p[0], p[1])),
            st.tuples(children, children).map(lambda p: eq(p[0], p[1])),
            st.tuples(children, children).map(lambda p: lt(p[0], p[1])),
            st.tuples(children, children).map(lambda p: tup(p[0], p[1])),
            # projection from variables only: "-1.f" is lexically a
            # negation of a projection, a degenerate form real terms avoid
            _names.map(lambda n: proj(var(n), "f")),
            children.map(not_),
            st.tuples(children, children, children).map(
                lambda p: if_(p[0], p[1], p[2])
            ),
            st.tuples(children, children).map(lambda p: rec(a=p[0], b=p[1])),
            st.tuples(_names, st.sampled_from(["set", "bag", "list", "sum"]),
                      children, children).map(
                lambda p: comp(p[1], p[3], [gen(p[0], var("Src")), filt(eq(var(p[0]), p[2]))])
            ),
        )

    return st.recursive(base, extend, max_leaves=8)


@settings(max_examples=150, deadline=None)
@given(term=_terms())
def test_pretty_parse_round_trip(term):
    text = pretty(term)
    reparsed = parse_calculus(text)
    assert alpha_equal(reparsed, term), text
