"""The SRU comparison (related work, section 5 of the paper).

Reproduces the argument that unrestricted structural recursion is
ill-defined without uncheckable side conditions, while the calculus'
homomorphisms are safe by a static subset test.
"""

import pytest

from repro.errors import MonoidError, WellFormednessError
from repro.monoids import BAG, LIST, SET, SUM, check_hom_well_formed, hom
from repro.monoids.sru import (
    EmptyTree,
    UnionTree,
    UnitTree,
    collapse,
    elements,
    is_presentation_invariant,
    presentation_of,
    sru,
    sru_consistent,
)


class TestPresentations:
    def test_presentation_of_builds_right_nested_tree(self):
        tree = presentation_of([1, 2])
        assert isinstance(tree, UnionTree)
        assert tree.left == UnitTree(1)

    def test_elements(self):
        assert list(elements(presentation_of([1, 2, 2]))) == [1, 2, 2]
        assert list(elements(EmptyTree())) == []

    def test_collapse_to_each_monoid(self):
        tree = presentation_of([1, 2, 2])
        assert collapse(tree, LIST) == (1, 2, 2)
        assert collapse(tree, SET) == frozenset({1, 2})
        assert collapse(tree, BAG).count(2) == 2

    def test_equal_sets_different_presentations(self):
        once = UnitTree("a")
        twice = UnionTree(once, once)
        assert collapse(once, SET) == collapse(twice, SET)


class TestTheAnomaly:
    """The paper's motivating inconsistency: 1 = sru(+, 0, \\x.1) {a}."""

    def test_cardinality_sru_is_presentation_dependent(self):
        once = UnitTree("a")
        twice = UnionTree(once, once)  # same set {a}
        count = dict(zero=0, unit=lambda x: 1, merge=lambda a, b: a + b)
        assert sru(once, **count) == 1
        assert sru(twice, **count) == 2  # "1 = 2"
        assert not is_presentation_invariant([once, twice], **count)

    def test_well_behaved_sru_is_presentation_invariant(self):
        once = UnitTree("a")
        twice = UnionTree(once, once)
        to_set = dict(
            zero=frozenset(),
            unit=lambda x: frozenset({x}),
            merge=lambda a, b: a | b,
        )
        assert is_presentation_invariant([once, twice], **to_set)

    def test_runtime_check_catches_the_anomaly(self):
        tree = presentation_of(["a"])
        with pytest.raises(MonoidError, match="idempotent"):
            sru_consistent(
                tree, 0, lambda x: 1, lambda a, b: a + b, require_idempotent=True
            )

    def test_runtime_check_passes_well_behaved_arguments(self):
        tree = presentation_of([3, 1, 2])
        out = sru_consistent(
            tree,
            frozenset(),
            lambda x: frozenset({x}),
            lambda a, b: a | b,
            require_commutative=True,
            require_idempotent=True,
        )
        assert out == frozenset({1, 2, 3})

    def test_runtime_check_catches_non_associative_merge(self):
        tree = presentation_of([1, 2])

        def bad_merge(a, b):
            # 0 is a two-sided identity, but the operation is not
            # associative away from it: ((1-2)-1) != (1-(2-1)).
            if a == 0:
                return b
            if b == 0:
                return a
            return a - b

        with pytest.raises(MonoidError, match="associative"):
            sru_consistent(tree, 0, lambda x: x, bad_merge)

    def test_runtime_check_catches_bad_zero(self):
        tree = presentation_of([1])
        with pytest.raises(MonoidError, match="identity"):
            sru_consistent(tree, 1, lambda x: x, lambda a, b: a + b)

    def test_runtime_check_catches_non_commutative(self):
        tree = presentation_of(["a", "b"])
        with pytest.raises(MonoidError, match="commutative"):
            sru_consistent(
                tree, "", lambda x: x, lambda a, b: a + b, require_commutative=True
            )


class TestTheCalculusAlternative:
    """The same computations through checked homomorphisms."""

    def test_bag_cardinality_is_fine(self):
        from repro.values import Bag

        assert hom(BAG, SUM, lambda x: 1, Bag(["a", "a"])) == 2

    def test_set_cardinality_is_statically_rejected(self):
        with pytest.raises(WellFormednessError):
            check_hom_well_formed(SET, SUM)

    def test_hom_is_presentation_independent_by_construction(self):
        """hom consumes the collapsed *value*, so presentations can't
        leak: both presentations of {a} collapse to the same frozenset."""
        once = UnitTree("a")
        twice = UnionTree(once, once)
        value_once = collapse(once, SET)
        value_twice = collapse(twice, SET)
        assert value_once == value_twice
        to_bool = hom(SET, __import__("repro.monoids", fromlist=["SOME"]).SOME,
                      lambda x: True, value_once)
        assert to_bool is True
