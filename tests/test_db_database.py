"""The Database facade: loading, querying, engines, explain, objects."""

import pytest

from repro.db import Database, HashIndex, travel_schema
from repro.errors import DatabaseError, WellFormednessError
from repro.values import Bag, Record


class TestLoading:
    def test_load_dict_rows(self):
        db = Database()
        db.load_extent("Xs", [{"a": 1}, {"a": 2}])
        assert db.run("count(Xs)") == 2

    def test_rows_deep_converted(self):
        db = Database()
        db.load_extent("Xs", [{"a": [1, 2], "b": {"c": 3}}])
        out = db.run("select distinct x.b.c from x in Xs")
        assert out == frozenset({3})

    def test_load_monoids(self):
        db = Database()
        db.load_extent("L", [{"a": 1}, {"a": 1}], monoid="list")
        db.load_extent("B", [{"a": 1}, {"a": 1}], monoid="bag")
        db.load_extent("S", [{"a": 1}, {"a": 1}], monoid="set")
        assert db.run("count(L)") == 2
        assert db.run("count(B)") == 2
        assert db.run("count(S)") == 1

    def test_bad_monoid(self):
        db = Database()
        with pytest.raises(DatabaseError):
            db.load_extent("Xs", [{"a": 1}], monoid="tree")

    def test_duplicate_extent_rejected(self):
        db = Database()
        db.load_extent("Xs", [{"a": 1}])
        with pytest.raises(DatabaseError):
            db.load_extent("Xs", [{"a": 2}])
        db.load_extent("Xs", [{"a": 2}], replace=True)

    def test_unknown_extent_in_query(self):
        db = Database()
        from repro.errors import UnboundVariableError

        with pytest.raises(UnboundVariableError):
            db.run("count(Ghost)")


class TestQuerying:
    def test_both_engines_agree(self, travel_db):
        queries = [
            "select distinct c.name from c in Cities",
            "select h.name from c in Cities, h in c.hotels where h.stars >= 3",
            "sum(select h.stars from c in Cities, h in c.hotels)",
            "select distinct c.name from c in Cities "
            "where exists h in c.hotels : h.stars = 5",
        ]
        for q in queries:
            algebra = db_run(travel_db, q, "algebra")
            interpret = db_run(travel_db, q, "interpret")
            assert algebra == interpret, q

    def test_run_detailed_artifacts(self, travel_db):
        result = travel_db.run_detailed(
            "select distinct h.name from c in Cities, h in c.hotels"
        )
        assert result.engine == "algebra"
        assert result.plan is not None
        assert result.stats is not None
        report = result.pipeline_report()
        assert "OQL:" in report and "plan:" in report

    def test_interpret_fallback_for_non_comprehension(self, travel_db):
        result = travel_db.run_detailed("count(Cities)")
        assert result.engine == "interpret"
        assert result.value == 5

    def test_typecheck_flag(self, travel_db):
        # Cities is a set extent: bag-select over it is ill-formed...
        with pytest.raises(WellFormednessError):
            travel_db.run("select c.name from c in Cities", typecheck=True)
        # ...but the distinct (set) form checks.
        assert travel_db.run(
            "select distinct c.name from c in Cities", typecheck=True
        )

    def test_methods_callable_from_oql(self, travel_db):
        out = travel_db.run(
            "select distinct h.cheapest_room().price from c in Cities, h in c.hotels"
        )
        assert all(isinstance(p, int) for p in out)

    def test_registered_function(self, travel_db):
        travel_db.register_function("shout", lambda s: s.upper())
        out = travel_db.run("select distinct shout(c.name) from c in Cities")
        assert all(name.isupper() for name in out)

    def test_run_calculus(self, travel_db):
        from repro.calculus import comp, gen, proj, var

        term = comp("set", proj(var("c"), "name"), [gen("c", var("Cities"))])
        assert len(travel_db.run_calculus(term)) == 5

    def test_explain(self, travel_db):
        out = travel_db.explain(
            "select distinct h.name from c in Cities, h in c.hotels "
            "where c.name = 'Portland'"
        )
        assert "Scan c <- Cities" in out
        assert "Unnest" in out

    def test_explain_non_comprehension(self, travel_db):
        assert "not a comprehension" in travel_db.explain("count(Cities)")


class TestIndexes:
    def test_index_used_by_plan(self, company_db):
        company_db.create_index("Departments", "dno")
        result = company_db.run_detailed(
            "select distinct d.name from d in Departments where d.dno = 2"
        )
        assert result.stats is not None
        assert result.stats.index_probes == 1
        assert "IndexScan" in result.plan.render()

    def test_index_results_match_scan(self, company_db):
        q = "select distinct d.name from d in Departments where d.dno = 2"
        before = company_db.run(q)
        company_db.create_index("Departments", "dno")
        assert company_db.run(q) == before

    def test_index_unknown_extent(self, company_db):
        with pytest.raises(DatabaseError):
            company_db.create_index("Ghosts", "x")

    def test_hash_index_unit(self):
        rows = [Record(k=1), Record(k=1), Record(k=2)]
        idx = HashIndex.build("R", "k", rows)
        assert len(idx.lookup(1)) == 2
        assert idx.lookup(3) == []
        assert len(idx) == 3

    def test_hash_index_requires_records(self):
        with pytest.raises(DatabaseError):
            HashIndex.build("R", "k", [42])

    def test_hash_index_missing_attribute(self):
        with pytest.raises(DatabaseError):
            HashIndex.build("R", "k", [Record(other=1)])


class TestObjectMode:
    def test_load_objects_and_query(self):
        db = Database(travel_schema())
        db.load_objects(
            "Cities",
            "City",
            [
                {"name": "Portland", "hotels": set(), "hotel_count": 0,
                 "population": 100, "state": "OR"},
            ],
        )
        assert db.run("select distinct c.name from c in Cities") == frozenset(
            {"Portland"}
        )

    def test_update_program_through_db(self):
        from repro.calculus import const, eq, proj, var
        from repro.objects import add_to_field, run_update, update_where

        db = Database(travel_schema())
        db.load_objects(
            "Cities",
            "City",
            [{"name": "Portland", "hotels": set(), "hotel_count": 0,
              "population": 100, "state": "OR"}],
        )
        program = update_where(
            "Cities", "c", eq(proj(var("c"), "name"), const("Portland")),
            [add_to_field("hotel_count", const(1))],
        )
        run_update(program, db.evaluator())
        assert db.run("select distinct c.hotel_count from c in Cities") == frozenset({1})

    def test_load_objects_unknown_class(self):
        db = Database()
        with pytest.raises(DatabaseError):
            db.load_objects("Xs", "Ghost", [{"a": 1}])


class TestSampleData:
    def test_travel_agency_deterministic(self):
        from repro.db import make_travel_agency

        a = make_travel_agency(num_cities=3, seed=5)
        b = make_travel_agency(num_cities=3, seed=5)
        assert a == b

    def test_company_shapes(self):
        from repro.db import make_company

        data = make_company(num_departments=3, num_employees=10, seed=1)
        assert len(data["Departments"]) == 3
        assert isinstance(data["Employees"], Bag)
        assert len(data["Employees"]) == 10

    def test_demo_databases(self):
        from repro.db import demo_company_database, demo_travel_database

        assert demo_travel_database(num_cities=2).run("count(Cities)") == 2
        assert demo_company_database(num_employees=5).run("count(Employees)") == 5


def db_run(db, query, engine):
    return db.run(query, engine=engine)
