"""EXPLAIN ANALYZE: the q-error, the document, the renderer, the CLI."""

import json

import pytest

from repro.db import demo_travel_database
from repro.obs.explain import plan_to_dict, q_error, render_explain, summarize

QUERY = (
    "select distinct h.name from c in Cities, h in c.hotels "
    "where h.stars >= 2"
)


@pytest.fixture
def db():
    database = demo_travel_database(num_cities=5, seed=3)
    database.analyze()
    return database


class TestQError:
    def test_perfect_estimate(self):
        assert q_error(10, 10) == 1.0

    def test_symmetric(self):
        assert q_error(2, 20) == q_error(20, 2) == 10.0

    def test_floored_at_one_row(self):
        assert q_error(0.0, 0.0) == 1.0
        assert q_error(0.25, 1) == 1.0


class TestPlanToDict:
    def test_estimates_only(self, db):
        result = db.run_detailed(QUERY)
        doc = plan_to_dict(result.plan, db.catalog.extent_sizes(), db._stats)
        assert doc["op"] == "Reduce"
        assert doc["label"].startswith("Reduce")
        assert doc["estimated_rows"] > 0
        assert "actual_rows" not in doc
        # the tree nests all the way down to the Scan leaf
        node = doc
        while "children" in node:
            assert len(node["children"]) == 1
            node = node["children"][0]
        assert node["op"] == "Scan"

    def test_with_metrics_adds_actuals(self, db):
        result = db.run_detailed(QUERY, metrics=True)
        doc = plan_to_dict(
            result.plan, db.catalog.extent_sizes(), db._stats, result.metrics
        )
        node = doc
        while True:
            assert set(node) >= {
                "op", "label", "estimated_rows", "actual_rows",
                "rows_in", "invocations", "time_ms", "self_time_ms", "q_error",
            }
            if "children" not in node:
                break
            node = node["children"][0]
        assert node["op"] == "Scan"
        assert node["actual_rows"] == 5  # five cities scanned

    def test_summarize(self, db):
        result = db.run_detailed(QUERY, metrics=True)
        doc = plan_to_dict(
            result.plan, db.catalog.extent_sizes(), db._stats, result.metrics
        )
        summary = summarize(doc)
        assert summary["nodes"] >= 3
        assert 1.0 <= summary["mean_q_error"] <= summary["max_q_error"]

    def test_summarize_without_actuals_counts_nothing(self, db):
        result = db.run_detailed(QUERY)
        doc = plan_to_dict(result.plan, db.catalog.extent_sizes(), db._stats)
        assert summarize(doc) == {"nodes": 0}


class TestDatabaseExplain:
    def test_plain_explain_unchanged(self, db):
        text = db.explain(QUERY)
        assert "~5 rows" in text
        assert "actual=" not in text  # seed behavior: estimates only

    def test_explain_analyze_text(self, db):
        text = db.explain(QUERY, analyze=True)
        assert text.startswith("EXPLAIN ANALYZE:")
        assert "phases:" in text and "execute=" in text
        assert "actual=" in text and "q-err=" in text and "self " in text
        assert "cost model: mean q-error" in text
        # every plan operator appears with both columns
        for op in ("Reduce", "Select", "Unnest", "Scan"):
            assert op in text

    def test_explain_data_document(self, db):
        doc = db.explain_data(QUERY, analyze=True)
        assert doc["analyzed"] is True
        assert doc["engine"] == "algebra"
        assert doc["total_ms"] >= 0
        assert {"parse", "translate", "normalize", "plan", "optimize",
                "execute"} <= set(doc["phases_ms"])
        assert doc["summary"]["nodes"] >= 3
        json.dumps(doc)  # the whole document is JSON-ready

    def test_explain_data_without_analyze_has_no_actuals(self, db):
        doc = db.explain_data(QUERY)
        assert doc["analyzed"] is False
        assert "phases_ms" not in doc
        assert "actual_rows" not in doc["plan"]

    def test_non_comprehension_query_degrades_to_note(self, db):
        doc = db.explain_data("count(Cities)", analyze=True)
        assert doc["plan"] is None
        assert "note" in doc
        text = render_explain(doc)
        assert "(no algebra plan:" in text

    def test_render_explain_without_analyze(self, db):
        doc = db.explain_data(QUERY)
        text = render_explain(doc)
        assert text.startswith("EXPLAIN:")
        assert "actual=" not in text


class TestCli:
    def run_cli(self, args):
        from repro.obs.cli import main

        lines = []
        code = main(args, out=lines.append)
        return code, "\n".join(lines)

    def test_text_mode(self, tmp_path):
        path = tmp_path / "q.oql"
        path.write_text(QUERY + ";\ncount(Cities)")
        code, out = self.run_cli(["--analyze", str(path)])
        assert code == 0
        assert "EXPLAIN ANALYZE:" in out
        assert "actual=" in out
        assert "(no algebra plan:" in out  # the count() query

    def test_json_mode_is_valid_json(self, tmp_path):
        path = tmp_path / "q.oql"
        path.write_text(QUERY)
        code, out = self.run_cli(["--analyze", "--json", str(path)])
        assert code == 0
        docs = json.loads(out)
        assert docs[0]["file"] == str(path)
        query_doc = docs[0]["queries"][0]
        assert query_doc["analyzed"] is True
        assert query_doc["plan"]["op"] == "Reduce"

    def test_without_analyze_estimates_only(self, tmp_path):
        path = tmp_path / "q.oql"
        path.write_text(QUERY)
        code, out = self.run_cli(["--json", str(path)])
        assert code == 0
        query_doc = json.loads(out)[0]["queries"][0]
        assert query_doc["analyzed"] is False
        assert "actual_rows" not in query_doc["plan"]

    def test_bad_query_noted_and_exit_one(self, tmp_path):
        path = tmp_path / "bad.oql"
        path.write_text("select from")
        code, out = self.run_cli(["--json", str(path)])
        assert code == 1
        query_doc = json.loads(out)[0]["queries"][0]
        assert query_doc["plan"] is None
        assert "note" in query_doc

    def test_missing_file_exit_one(self, tmp_path):
        code, out = self.run_cli([str(tmp_path / "nope.oql")])
        assert code == 1
        assert "cannot read" in out

    def test_company_schema(self, tmp_path):
        path = tmp_path / "q.oql"
        path.write_text("select distinct e.name from e in Employees")
        code, out = self.run_cli(
            ["--schema", "company", "--analyze", str(path)]
        )
        assert code == 0
        assert "Scan e <- Employees" in out

    def test_module_dispatch(self, tmp_path):
        from repro.__main__ import main as module_main

        path = tmp_path / "q.oql"
        path.write_text("select distinct c.name from c in Cities")
        assert module_main(["explain", str(path)]) == 0

    def test_example_files_explain_cleanly(self):
        import pathlib

        examples = sorted(
            str(p) for p in
            (pathlib.Path(__file__).parent.parent / "examples").glob("*.oql")
        )
        assert examples
        code, out = self.run_cli(["--analyze", "--json", *examples])
        assert code == 0
        json.loads(out)


class TestRepl:
    def test_explain_analyze_command(self):
        from repro.repl import Repl

        outputs = []
        repl = Repl(demo_travel_database(num_cities=3, seed=1), out=outputs.append)
        repl.handle("\\explain analyze select distinct c.name from c in Cities")
        text = "\n".join(outputs)
        assert "EXPLAIN ANALYZE:" in text
        assert "actual=" in text

    def test_profile_toggle(self):
        from repro.repl import Repl

        outputs = []
        repl = Repl(demo_travel_database(num_cities=3, seed=1), out=outputs.append)
        repl.handle(":profile on")
        repl.handle("count(Cities)")
        repl.handle(":profile off")
        text = "\n".join(outputs)
        assert "profile is on" in text
        assert '"event": "query"' in text  # the streamed JSONL entry
        assert "profile is off" in text
        assert repl.db.query_log is None
