"""The QL3xx dataflow pass, the (code, span) de-duplication rule, and
the QL3xx baseline over the shipped examples."""

from pathlib import Path

from repro.db.sample_data import travel_schema
from repro.lint import lint_oql
from repro.lint.cli import split_queries
from repro.lint.diagnostics import make
from repro.lint.linter import _dedupe
from repro.span import Span

EXAMPLES = Path(__file__).parent.parent / "examples"


def lint(source):
    return lint_oql(source, travel_schema())


def codes(diags):
    return [d.code for d in diags]


class TestQL301DuplicateGenerator:
    def test_positive(self):
        diags = lint("select distinct struct(a: c.name, b: d.name) "
                     "from c in Cities, d in Cities")
        found = [d for d in diags if d.code == "QL301"]
        assert len(found) == 1
        assert "'d'" in found[0].message and "'c'" in found[0].message
        assert found[0].span is not None

    def test_negative_relating_predicate(self):
        src = ("select distinct struct(a: c.name, b: d.name) "
               "from c in Cities, d in Cities where c.state = d.state")
        assert "QL301" not in codes(lint(src))

    def test_negative_different_sources(self):
        src = ("select distinct struct(a: c.name, b: h.name) "
               "from c in Cities, h in c.hotels")
        assert "QL301" not in codes(lint(src))

    def test_negative_underscore_intent(self):
        src = ("select distinct struct(a: c.name, b: _d.name) "
               "from c in Cities, _d in Cities")
        assert "QL301" not in codes(lint(src))

    def test_one_report_per_duplicate(self):
        diags = lint("select distinct struct(a: c.name, b: d.name, e: f.name) "
                     "from c in Cities, d in Cities, f in Cities")
        # d duplicates c; f duplicates c (reported once, not once per earlier)
        assert codes(diags).count("QL301") == 2


class TestQL302NonEquiProduct:
    def test_positive(self):
        diags = lint("select distinct struct(a: c.name, b: d.name) "
                     "from c in Cities, d in Cities "
                     "where c.population < d.population")
        assert codes(diags) == ["QL302"]

    def test_negative_with_equi_join(self):
        src = ("select distinct struct(a: c.name, b: d.name) "
               "from c in Cities, d in Cities "
               "where c.state = d.state and c.population < d.population")
        assert "QL302" not in codes(lint(src))

    def test_negative_uncorrelated_is_ql201(self):
        diags = lint("select distinct struct(a: c.name, b: d.name) "
                     "from c in Cities, d in Cities")
        assert "QL302" not in codes(diags)
        assert "QL201" in codes(diags)

    def test_negative_dependent_generator(self):
        src = ("select distinct h.name from c in Cities, h in c.hotels "
               "where h.stars > c.population")
        assert "QL302" not in codes(lint(src))


class TestQL303IndexProbe:
    def test_positive_with_hint(self):
        diags = lint("select distinct c.name from c in Cities "
                     "where c.state = 'OR'")
        (found,) = [d for d in diags if d.code == "QL303"]
        assert found.severity == "info"
        assert found.hint == "Database.create_index('Cities', 'state')"

    def test_key_may_sit_on_either_side(self):
        diags = lint("select distinct c.name from c in Cities "
                     "where 'OR' = c.state")
        assert "QL303" in codes(diags)

    def test_reported_once_per_extent_attribute(self):
        diags = lint("select distinct c.name from c in Cities "
                     "where c.state = 'OR' and c.state = 'WA'")
        assert codes(diags).count("QL303") == 1

    def test_negative_join_key_varies(self):
        # the 'key' mentions another generator: not a constant probe
        src = ("select distinct struct(a: c.name, b: d.name) "
               "from c in Cities, d in Cities where c.state = d.state")
        assert "QL303" not in codes(lint(src))

    def test_negative_non_extent_source(self):
        src = ("select distinct h.name from c in Cities, h in c.hotels "
               "where h.stars = 4 and h.name = c.name")
        assert "QL303" not in codes(lint(src))

    def test_negative_non_equality(self):
        src = "select distinct c.name from c in Cities where c.population > 5"
        assert "QL303" not in codes(lint(src))


class TestDedupe:
    def test_same_code_and_span_collapse(self):
        span = Span(1, 5, 1, 9)
        first = make("QL005", "worded one way", span)
        second = make("QL005", "worded another way", span)
        assert _dedupe([first, second]) == [first]

    def test_different_spans_survive(self):
        first = make("QL005", "same text", Span(1, 5, 1, 9))
        second = make("QL005", "same text", Span(2, 5, 2, 9))
        assert _dedupe([first, second]) == [first, second]

    def test_spanless_fall_back_to_message(self):
        first = make("QL000", "could not parse")
        second = make("QL000", "could not parse")
        third = make("QL000", "another failure")
        assert _dedupe([first, second, third]) == [first, third]


class TestExamplesBaseline:
    """The shipped examples carry a known, pinned set of QL3xx findings.

    CI's verify-mode job relies on this: new dataflow findings on the
    examples (or silently lost ones) must show up as a diff here.
    """

    def findings(self, filename):
        source = (EXAMPLES / filename).read_text(encoding="utf-8")
        out = []
        for _, _, text in split_queries(source):
            out += [d.code for d in lint(text) if d.code.startswith("QL3")]
        return out

    def test_travel_queries_baseline(self):
        assert self.findings("travel_queries.oql") == ["QL303"]

    def test_lint_showcase_baseline(self):
        assert self.findings("lint_showcase.oql") == ["QL301", "QL302", "QL303"]
