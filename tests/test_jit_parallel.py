"""JIT × partition-parallel execution: forced fan-out parity, shared
compiled closures on prebuilt join sides, and thread-safety of the
compile-on-first-use path under concurrent queries."""

from __future__ import annotations

import threading

import pytest

from repro.db import Database, company_schema, make_company
from repro.db.database import demo_company_database
from repro.jit import JITConfig
from repro.parallel import ParallelConfig
from repro.values import to_python

QUERIES = [
    "sum(select e.salary from e in Employees)",
    "max(select e.age from e in Employees)",
    "count(select e from e in Employees where e.salary > 30000)",
    "select distinct e.dno from e in Employees",
    "select e.name from e in Employees where e.age < 40",
    "select struct(e: e.name, b: d.budget) "
    "from e in Employees, d in Departments where e.dno = d.dno",
    "select struct(d: dno, total: sum(select p.salary from p in partition)) "
    "from e in Employees group by dno: e.dno",
]

#: force fan-out on the small test extents
FAST = ParallelConfig(max_workers=4, min_partition_rows=1)


def make_db(parallel=None, jit=None):
    db = Database(company_schema(), parallel=parallel, jit=jit)
    db.load_extents(make_company(num_departments=4, num_employees=40, seed=11))
    return db


class TestForcedFanOutParity:
    def test_parallel_jit_equals_serial_interpreted(self):
        serial = make_db()
        par = make_db(parallel=FAST, jit=JITConfig())
        for oql in QUERIES:
            assert to_python(serial.run(oql)) == to_python(par.run(oql)), oql

    def test_parallel_jit_equals_parallel_interpreted(self):
        plain = make_db(parallel=FAST)
        jitted = make_db(parallel=FAST, jit=JITConfig())
        for oql in QUERIES:
            assert to_python(plain.run(oql)) == to_python(jitted.run(oql)), oql

    def test_fan_out_actually_happened(self):
        par = make_db(parallel=FAST, jit=JITConfig())
        result = par.run_detailed("sum(select e.salary from e in Employees)")
        assert result.stats.partitions == 4
        assert result.jit is not None and result.jit["compiled"] >= 1

    def test_verify_mode_under_fan_out(self):
        # Per-row differential checks run inside worker threads; the
        # reference executor stays interpreted.
        par = make_db(parallel=FAST, jit=JITConfig(verify=True))
        serial = make_db()
        for oql in QUERIES:
            assert to_python(par.run(oql)) == to_python(serial.run(oql)), oql


class TestEnvFlags:
    def test_both_env_flags_compose(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "1")
        monkeypatch.setenv("REPRO_PARALLEL", "1")
        db = demo_company_database(4, 40, seed=11)
        assert db.jit is not None and db.parallel is not None
        baseline = demo_company_database(4, 40, seed=11)
        baseline.disable_jit()
        baseline.disable_parallel()
        for oql in QUERIES:
            assert to_python(db.run(oql)) == to_python(baseline.run(oql)), oql


class TestSharedPlanThreadSafety:
    def test_concurrent_queries_share_one_database(self):
        # Many threads race Database.run on one jit+parallel database;
        # with a cache attached they also race compile_node on shared
        # plan nodes (idempotent, jit_ready written last).
        db = make_db(parallel=FAST, jit=JITConfig())
        db.enable_cache()
        expected = {oql: to_python(make_db().run(oql)) for oql in QUERIES}
        failures: list = []

        def worker(oql: str) -> None:
            try:
                for _ in range(5):
                    value = to_python(db.run(oql))
                    if value != expected[oql]:
                        failures.append((oql, value))
            except Exception as exc:  # pragma: no cover - diagnostic
                failures.append((oql, repr(exc)))

        threads = [
            threading.Thread(target=worker, args=(oql,)) for oql in QUERIES * 2
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert failures == []

    def test_prebuilt_join_closures_are_shared(self):
        # The coordinator compiles the Join node once; every worker
        # reuses the same closures via the prebuilt hash table.
        from repro.algebra.ops import Join

        db = make_db(parallel=FAST, jit=JITConfig())
        oql = (
            "select struct(e: e.name, b: d.budget) "
            "from e in Employees, d in Departments where e.dno = d.dno"
        )
        result = db.run_detailed(oql)
        assert result.stats.partitions >= 2

        def walk(node):
            yield node
            for child in node.children():
                yield from walk(child)

        joins = [n for n in walk(result.plan) if isinstance(n, Join)]
        assert joins and all(n.jit_ready for n in joins)
