"""Schema declarations: classes, extents, inheritance, methods."""

import pytest

from repro.errors import SchemaError
from repro.types import Schema, TClass, TColl, TINT, TSTRING


@pytest.fixture
def schema() -> Schema:
    s = Schema()
    s.define_class("Person", {"name": TSTRING, "age": TINT}, extent="Persons")
    s.define_class(
        "Employee", {"salary": TINT}, extent="Employees", superclass="Person"
    )
    s.define_class("Manager", {"bonus": TINT}, superclass="Employee")
    return s


def test_extent_type(schema):
    assert schema.extent_type("Persons") == TColl("set", TClass("Person"))


def test_extent_monoid_choice():
    s = Schema()
    s.define_class("E", {}, extent="Es", extent_monoid="bag")
    assert s.extent_type("Es").monoid == "bag"


def test_duplicate_class_rejected(schema):
    with pytest.raises(SchemaError):
        schema.define_class("Person", {})


def test_duplicate_extent_rejected(schema):
    with pytest.raises(SchemaError):
        schema.define_class("Other", {}, extent="Persons")


def test_undefined_superclass_rejected():
    s = Schema()
    with pytest.raises(SchemaError):
        s.define_class("Child", {}, superclass="Ghost")


def test_attribute_type_searches_superclasses(schema):
    assert schema.attribute_type("Manager", "name") == TSTRING
    assert schema.attribute_type("Manager", "salary") == TINT
    assert schema.attribute_type("Manager", "bonus") == TINT
    assert schema.attribute_type("Person", "salary") is None


def test_is_subclass(schema):
    assert schema.is_subclass("Manager", "Person")
    assert schema.is_subclass("Person", "Person")
    assert not schema.is_subclass("Person", "Manager")


def test_unknown_class_raises(schema):
    with pytest.raises(SchemaError):
        schema.class_def("Ghost")
    with pytest.raises(SchemaError):
        schema.extent_class("Ghosts")


def test_methods_inherit(schema):
    schema.define_method("Person", "greeting", lambda p: f"hi {p['name']}")
    mdef = schema.method_def("Manager", "greeting")
    assert mdef is not None
    assert mdef.fn({"name": "Ann"}) == "hi Ann"
    assert schema.method_def("Person", "nothing") is None


def test_method_must_be_callable(schema):
    with pytest.raises(SchemaError):
        schema.define_method("Person", "bad", fn="not callable")


def test_all_methods_flat_map(schema):
    schema.define_method("Person", "m1", lambda p: 1)
    schema.define_method("Employee", "m2", lambda p: 2)
    methods = schema.all_methods()
    assert set(methods) >= {"m1", "m2"}


def test_extents_listing(schema):
    assert schema.extents() == {"Persons": "Person", "Employees": "Employee"}
    assert schema.has_extent("Persons")
    assert not schema.has_extent("Ghosts")


def test_classes_iteration(schema):
    assert {c.name for c in schema.classes()} == {"Person", "Employee", "Manager"}
