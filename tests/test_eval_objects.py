"""Section 4.2: object identity, dereference, assignment, updates.

The five worked examples from the paper, plus the object-store unit
behaviour the evaluator relies on.
"""

import pytest

from repro.calculus import (
    add,
    assign,
    bind,
    comp,
    const,
    deref,
    eq,
    gen,
    rec,
    update,
    var,
)
from repro.errors import EvaluationError, ObjectStoreError
from repro.eval import Evaluator, evaluate
from repro.objects import Obj, ObjectStore
from repro.values import Record


class TestPaperExamples:
    """The paper's five examples, verbatim results."""

    def test_distinct_objects_are_not_equal(self):
        # some{ x = y | x <- new(1), y <- new(1) } -> false
        term = comp(
            "some",
            eq(var("x"), var("y")),
            [bind("x", _new_obj(1)), bind("y", _new_obj(1))],
        )
        assert evaluate(term) is False

    def test_aliased_objects_are_equal(self):
        # some{ x = y | x <- new(1), y == x, y := 2 } -> true
        term = comp(
            "some",
            eq(var("x"), var("y")),
            [bind("x", _new_obj(1)), bind("y", var("x")), assign(var("y"), const(2))],
        )
        assert evaluate(term) is True

    def test_assignment_through_alias_is_visible(self):
        # sum{ !x | x <- new(1), y == x, y := 2 } -> 2
        term = comp(
            "sum",
            deref(var("x")),
            [bind("x", _new_obj(1)), bind("y", var("x")), assign(var("y"), const(2))],
        )
        assert evaluate(term) == 2

    def test_state_replacement_then_iteration(self):
        # set{ e | x <- new([]), x := [1,2], e <- !x } -> {1, 2}
        term = comp(
            "set",
            var("e"),
            [
                bind("x", _new_obj(())),
                assign(var("x"), const((1, 2))),
                gen("e", deref(var("x"))),
            ],
        )
        assert evaluate(term) == frozenset({1, 2})

    def test_running_sums(self):
        # list{ !x | x <- new(0), e <- [1,2,3,4], x := !x + e } -> [1,3,6,10]
        term = comp(
            "list",
            deref(var("x")),
            [
                bind("x", _new_obj(0)),
                gen("e", const((1, 2, 3, 4))),
                assign(var("x"), add(deref(var("x")), var("e"))),
            ],
        )
        assert evaluate(term) == (1, 3, 6, 10)


class TestObjectOperations:
    def test_new_returns_distinct_oids(self):
        ev = Evaluator()
        a = ev.evaluate(_new_obj(1))
        b = ev.evaluate(_new_obj(1))
        assert isinstance(a, Obj) and isinstance(b, Obj)
        assert a != b

    def test_states_can_be_equal(self):
        ev = Evaluator()
        a = ev.evaluate(_new_obj(5))
        b = ev.evaluate(_new_obj(5))
        assert ev.store.deref(a) == ev.store.deref(b)

    def test_assignment_returns_true(self):
        ev = Evaluator()
        obj = ev.evaluate(_new_obj(1))
        ev.bind_global("o", obj)
        assert ev.evaluate(assign(var("o"), const(2))) is True
        assert ev.store.deref(obj) == 2

    def test_deref_of_non_object(self):
        with pytest.raises(ObjectStoreError):
            evaluate(deref(const(3)))

    def test_projection_dereferences_objects(self):
        """OQL path expressions implicitly dereference (the paper's e..name)."""
        from repro.calculus import proj

        ev = Evaluator()
        obj = ev.store.new(Record(name="Ann"))
        ev.bind_global("p", obj)
        assert ev.evaluate(proj(var("p"), "name")) == "Ann"

    def test_generator_dereferences_object_collections(self):
        ev = Evaluator()
        obj = ev.store.new((1, 2, 3))
        ev.bind_global("xs", obj)
        term = comp("sum", var("x"), [gen("x", var("xs"))])
        assert ev.evaluate(term) == 6


class TestUpdateTerm:
    def test_field_replace(self):
        ev = Evaluator()
        obj = ev.store.new(Record(n=1, tags=frozenset()))
        ev.bind_global("o", obj)
        assert ev.evaluate(update(var("o"), "n", ":=", const(9))) is True
        assert ev.store.deref(obj).n == 9

    def test_numeric_increment(self):
        ev = Evaluator()
        obj = ev.store.new(Record(n=1))
        ev.bind_global("o", obj)
        ev.evaluate(update(var("o"), "n", "+=", const(5)))
        assert ev.store.deref(obj).n == 6

    def test_collection_element_insert(self):
        """The paper's c.hotels += <name=...> inserts one element."""
        ev = Evaluator()
        obj = ev.store.new(Record(hotels=frozenset({Record(name="Old")})))
        ev.bind_global("c", obj)
        ev.evaluate(update(var("c"), "hotels", "+=", rec(name=const("New"))))
        hotels = ev.store.deref(obj).hotels
        assert Record(name="New") in hotels and Record(name="Old") in hotels

    def test_collection_merge(self):
        ev = Evaluator()
        obj = ev.store.new(Record(xs=(1,)))
        ev.bind_global("o", obj)
        ev.evaluate(update(var("o"), "xs", "+=", const((2, 3))))
        assert ev.store.deref(obj).xs == (1, 2, 3)

    def test_update_requires_object(self):
        with pytest.raises(EvaluationError):
            evaluate(update(const(3), "n", "+=", const(1)))

    def test_update_requires_record_state(self):
        ev = Evaluator()
        obj = ev.store.new(3)
        ev.bind_global("o", obj)
        with pytest.raises(EvaluationError):
            ev.evaluate(update(var("o"), "n", "+=", const(1)))


class TestObjectStoreUnit:
    def test_snapshot_restore(self):
        store = ObjectStore()
        x = store.new(1)
        snap = store.snapshot()
        store.assign(x, 2)
        store.restore(snap)
        assert store.deref(x) == 1

    def test_dangling_oid(self):
        store = ObjectStore()
        with pytest.raises(ObjectStoreError):
            store.deref(Obj(99))

    def test_objects_enumeration(self):
        store = ObjectStore()
        a = store.new(1)
        b = store.new(2)
        assert list(store.objects()) == [a, b]
        assert len(store) == 2

    def test_contains(self):
        store = ObjectStore()
        a = store.new(1)
        assert store.contains(a)
        assert not store.contains(Obj(99))


def _new_obj(state):
    from repro.calculus import new as new_term

    return new_term(const(state))
