"""Differential tests for the closure compiler (`repro.jit.compiler`).

Every construct in the compilable fragment is checked value-for-value
and error-for-error against the reference interpreter: same results,
same `EvaluationError` wording, same short-circuit behavior. The
fallback machinery is checked to (a) preserve semantics and (b) record
which construct forced the interpreter re-entry.
"""

from __future__ import annotations

import pytest

from repro.calculus.ast import (
    BinOp,
    Call,
    Comprehension,
    Const,
    If,
    Index,
    Lambda,
    Proj,
    RecordCons,
    TupleCons,
    UnOp,
    Var,
)
from repro.calculus import comp, gen, var
from repro.errors import EvaluationError, ReproError
from repro.eval import Evaluator
from repro.eval.env import Env
from repro.jit import Runtime, compile_term, may_capture
from repro.values import Bag, Record


def run_both(term, binding, globals_=None):
    """Evaluate ``term`` compiled and interpreted; both must agree.

    Returns the common value, or the common EvaluationError message.
    """
    ev = Evaluator(globals_ or {})
    rt = Runtime(ev)
    fn = compile_term(term, frozenset(binding))
    env = ev.global_env.bind_many(dict(binding))

    def attempt(thunk):
        try:
            return ("ok", thunk())
        except ReproError as exc:
            return ("err", str(exc))

    compiled = attempt(lambda: fn(binding, rt))
    interpreted = attempt(lambda: ev.evaluate(term, env))
    assert compiled == interpreted, (term, compiled, interpreted)
    return compiled


class TestLeaves:
    def test_const(self):
        assert run_both(Const(42), {}) == ("ok", 42)

    def test_const_freezing_happens_at_compile_time(self):
        # Lists freeze to the same canonical value the interpreter uses.
        assert run_both(Const([1, 2]), {}) == run_both(Const([1, 2]), {})

    def test_bound_var_reads_binding_dict(self):
        assert run_both(Var("x"), {"x": 7}) == ("ok", 7)

    def test_free_var_reads_globals(self):
        assert run_both(Var("g"), {}, globals_={"g": "global"}) == ("ok", "global")

    def test_binding_shadows_global(self):
        # A var in `bound` must read the row dict even if a global with
        # the same name exists — interpreter shadowing order.
        assert run_both(Var("x"), {"x": 1}, globals_={"x": 99}) == ("ok", 1)

    def test_unbound_var_errors_match(self):
        kind, _ = run_both(Var("nope"), {})
        assert kind == "err"


class TestProjIndex:
    def test_record_projection(self):
        binding = {"r": Record({"a": 1, "b": 2})}
        assert run_both(Proj(Var("r"), "a"), binding) == ("ok", 1)

    def test_missing_field_error_matches(self):
        binding = {"r": Record({"a": 1})}
        kind, msg = run_both(Proj(Var("r"), "zzz"), binding)
        assert kind == "err" and "zzz" in msg

    def test_projection_on_non_record_matches(self):
        kind, _ = run_both(Proj(Var("x"), "a"), {"x": 3})
        assert kind == "err"

    def test_index_tuple(self):
        assert run_both(Index(Var("t"), Const(1)), {"t": (10, 20, 30)}) == ("ok", 20)

    def test_index_string(self):
        assert run_both(Index(Var("s"), Const(0)), {"s": "hi"}) == ("ok", "h")

    def test_index_out_of_range_matches(self):
        kind, msg = run_both(Index(Var("t"), Const(9)), {"t": (1,)})
        assert kind == "err" and "bad index" in msg

    def test_index_into_scalar_matches(self):
        kind, msg = run_both(Index(Var("x"), Const(0)), {"x": 5})
        assert kind == "err" and "cannot index into" in msg


class TestConstructors:
    def test_record_cons(self):
        term = RecordCons((("a", Var("x")), ("b", Const(2))))
        assert run_both(term, {"x": 1}) == ("ok", Record({"a": 1, "b": 2}))

    def test_tuple_cons(self):
        term = TupleCons((Var("x"), Const("s")))
        assert run_both(term, {"x": 1}) == ("ok", (1, "s"))


class TestBoolAndIf:
    def test_and_or(self):
        for op in ("and", "or"):
            for lv in (True, False):
                for rv in (True, False):
                    term = BinOp(op, Var("l"), Var("r"))
                    assert run_both(term, {"l": lv, "r": rv})[0] == "ok"

    def test_short_circuit_skips_right(self):
        # or with a true left must not evaluate the erroring right side.
        term = BinOp("or", Const(True), Proj(Const(1), "x"))
        assert run_both(term, {}) == ("ok", True)
        term = BinOp("and", Const(False), Proj(Const(1), "x"))
        assert run_both(term, {}) == ("ok", False)

    def test_non_bool_operand_errors_match(self):
        for op in ("and", "or"):
            kind, msg = run_both(BinOp(op, Const(1), Const(True)), {})
            assert kind == "err" and "requires a boolean" in msg
            # strict in the right operand too (when reached)
            left = Const(False) if op == "or" else Const(True)
            kind, msg = run_both(BinOp(op, left, Const("x")), {})
            assert kind == "err" and "requires a boolean" in msg

    def test_not(self):
        assert run_both(UnOp("not", Const(True)), {}) == ("ok", False)
        kind, msg = run_both(UnOp("not", Const(3)), {})
        assert kind == "err" and "requires a boolean" in msg

    def test_if_branches_and_strictness(self):
        term = If(Var("c"), Const("t"), Const("e"))
        assert run_both(term, {"c": True}) == ("ok", "t")
        assert run_both(term, {"c": False}) == ("ok", "e")
        kind, msg = run_both(term, {"c": 0})
        assert kind == "err" and "if requires a boolean" in msg

    def test_if_only_evaluates_taken_branch(self):
        term = If(Const(True), Const(1), Proj(Const(1), "x"))
        assert run_both(term, {}) == ("ok", 1)


class TestArithmetic:
    def test_int_fast_paths(self):
        for op, expected in (("+", 9), ("-", 5), ("*", 14)):
            assert run_both(BinOp(op, Var("a"), Var("b")), {"a": 7, "b": 2}) == (
                "ok",
                expected,
            )

    def test_bool_is_not_a_number(self):
        # type-is-int fast path must exclude bool, like the interpreter.
        kind, _ = run_both(BinOp("+", Const(True), Const(1)), {})
        assert kind == "err"

    def test_floats_and_strings(self):
        assert run_both(BinOp("+", Const(1.5), Const(2.0)), {}) == ("ok", 3.5)
        assert run_both(BinOp("+", Const("a"), Const("b")), {}) == ("ok", "ab")

    def test_division_family(self):
        assert run_both(BinOp("/", Const(7), Const(2)), {}) == ("ok", 3.5)
        assert run_both(BinOp("div", Const(7), Const(2)), {}) == ("ok", 3)
        assert run_both(BinOp("mod", Const(7), Const(2)), {}) == ("ok", 1)

    def test_divide_by_zero_errors_match(self):
        for op in ("/", "div", "mod"):
            kind, _ = run_both(BinOp(op, Const(1), Const(0)), {})
            assert kind == "err"

    def test_mixed_type_arith_errors_match(self):
        kind, _ = run_both(BinOp("+", Const(1), Const("x")), {})
        assert kind == "err"

    def test_negation(self):
        assert run_both(UnOp("-", Var("x")), {"x": 3}) == ("ok", -3)
        assert run_both(UnOp("-", Const(1.5)), {}) == ("ok", -1.5)
        kind, msg = run_both(UnOp("-", Const("s")), {})
        assert kind == "err" and "negation of non-number" in msg


class TestComparisons:
    def test_orderings(self):
        for op in ("<", "<=", ">", ">="):
            for a, b in ((1, 2), (2, 2), (3, 2)):
                term = BinOp(op, Var("a"), Var("b"))
                assert run_both(term, {"a": a, "b": b})[0] == "ok"

    def test_equality(self):
        assert run_both(BinOp("=", Const(1), Const(1)), {}) == ("ok", True)
        assert run_both(BinOp("!=", Const(1), Const(2)), {}) == ("ok", True)

    def test_incomparable_types_match(self):
        kind, msg = run_both(BinOp("<", Const(1), Const("x")), {})
        assert kind == "err" and "cannot compare" in msg


class TestCollectionOps:
    def test_in_union_intersect_except(self):
        binding = {"s": frozenset({1, 2}), "t": frozenset({2, 3})}
        assert run_both(BinOp("in", Const(1), Var("s")), binding) == ("ok", True)
        for op in ("union", "intersect", "except"):
            assert run_both(BinOp(op, Var("s"), Var("t")), binding)[0] == "ok"


class TestCalls:
    def test_builtin_call_compiles(self):
        fallbacks: list[str] = []
        term = Call("abs", (Var("x"),))
        fn = compile_term(term, frozenset({"x"}), fallbacks)
        assert fallbacks == []
        ev = Evaluator()
        assert fn({"x": -3}, Runtime(ev)) == 3

    def test_user_function_falls_back_but_works(self):
        fallbacks: list[str] = []
        term = Call("double", (Var("x"),))
        fn = compile_term(term, frozenset({"x"}), fallbacks)
        assert fallbacks == ["Call"]
        ev = Evaluator(functions={"double": lambda v: v * 2})
        assert fn({"x": 21}, Runtime(ev)) == 42

    def test_bound_name_falls_back(self):
        # `x(y)` where x is a row variable: never compiled.
        fallbacks: list[str] = []
        compile_term(Call("x", (Var("y"),)), frozenset({"x", "y"}), fallbacks)
        assert fallbacks == ["Call"]

    def test_global_shadows_builtin(self):
        # The runtime resolves through globals first, as the interpreter does.
        term = Call("abs", (Const(-1),))
        assert run_both(term, {}, globals_={"abs": lambda v: "shadowed"}) == (
            "ok",
            "shadowed",
        )


class TestFallbacks:
    def test_comprehension_falls_back_with_right_name(self):
        fallbacks: list[str] = []
        term = comp("sum", var("x"), [gen("x", var("xs"))])
        fn = compile_term(term, frozenset({"xs"}), fallbacks)
        assert fallbacks == ["Comprehension"]
        assert fn({"xs": Bag((1, 2, 3))}, Runtime(Evaluator())) == 6

    def test_partial_compilation_keeps_shell_native(self):
        # (comprehension) + 1: the BinOp shell compiles, the inner
        # comprehension is the only fallback.
        fallbacks: list[str] = []
        inner = comp("sum", var("x"), [gen("x", var("xs"))])
        term = BinOp("+", inner, Const(1))
        fn = compile_term(term, frozenset({"xs"}), fallbacks)
        assert fallbacks == ["Comprehension"]
        assert fn({"xs": Bag((1, 2))}, Runtime(Evaluator())) == 4

    def test_fallback_sees_row_bindings(self):
        # The interpreter re-entry must layer the binding dict over
        # globals so row variables resolve inside the fallback term.
        term = comp("sum", BinOp("*", var("x"), var("y")), [gen("x", var("xs"))])
        fn = compile_term(term, frozenset({"xs", "y"}), [])
        assert fn({"xs": Bag((1, 2)), "y": 10}, Runtime(Evaluator())) == 30


class TestMayCapture:
    def test_plain_terms_do_not_capture(self):
        assert not may_capture(BinOp("<", Proj(Var("x"), "a"), Const(3)))

    def test_lambda_subterm_captures(self):
        assert may_capture(Lambda("v", Var("v")))
        term = BinOp("+", Const(1), Lambda("v", Var("v")))
        assert may_capture(term)

    def test_comprehension_without_lambda_does_not_capture(self):
        # Comprehensions bind via generators, not closures; only Lambda
        # allocates an env-retaining value.
        assert not may_capture(comp("sum", var("x"), [gen("x", var("xs"))]))


class TestRuntime:
    def test_env_wrapping_aliases_without_copy(self):
        inner = {"x": 1}
        env = Env.wrapping(inner, Env({"g": 2}))
        assert env.lookup("x") == 1 and env.lookup("g") == 2
        inner["x"] = 99  # aliasing contract: mutations show through
        assert env.lookup("x") == 99

    def test_unknown_function_error(self):
        rt = Runtime(Evaluator())
        with pytest.raises(EvaluationError, match="unknown function"):
            rt.callable_for("no_such_fn")

    def test_callable_memo_is_stable(self):
        ev = Evaluator(functions={"f": lambda: 1})
        rt = Runtime(ev)
        assert rt.callable_for("f") is rt.callable_for("f")
