"""Query-level property testing: random OQL against random databases.

Queries are assembled from grammar templates (projections, predicates,
quantifiers, aggregates, nesting) over randomly generated company
databases; each query must give identical results through the
interpreter, the normalizer and the algebra engine.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database, company_schema
from repro.normalize import normalize
from repro.values import Bag, Record

_PROJECTIONS = [
    "e.name",
    "e.salary",
    "struct(n: e.name, s: e.salary)",
    "e.salary + e.age",
]

_PREDICATES = [
    "e.salary > {n}",
    "e.age < {n}",
    "e.dno = {d}",
    "e.salary > {n} and e.age > 25",
    "e.salary > {n} or e.dno = {d}",
    "not (e.dno = {d})",
    "'oql' in e.skills",
    "e.name like 'A%'",
]

_SHAPES = [
    "select distinct {proj} from e in Employees where {pred}",
    "select distinct {proj} from e in Employees, d in Departments "
    "where e.dno = d.dno and {pred}",
    "sum(select e.salary from e in Employees where {pred})",
    "max(select e.salary from e in Employees where {pred})",
    "count(select e from e in Employees where {pred})",
    "select distinct d.name from d in Departments "
    "where exists e in Employees : e.dno = d.dno and {pred}",
    "select distinct x.name from x in "
    "(select distinct e from e in Employees where {pred})",
    # The subquery must be distinct: Departments is a *set* extent, and a
    # bag-select over a set is ill-formed in the calculus (hom[set -> bag]).
    "select distinct e.name from e in Employees where e.dno in "
    "(select distinct d.dno from d in Departments where d.floor > {f})",
]


@st.composite
def _query(draw) -> str:
    shape = draw(st.sampled_from(_SHAPES))
    pred = draw(st.sampled_from(_PREDICATES))
    pred = pred.format(
        n=draw(st.integers(0, 200_000)), d=draw(st.integers(0, 4))
    )
    return shape.format(
        proj=draw(st.sampled_from(_PROJECTIONS)),
        pred=pred,
        f=draw(st.integers(0, 12)),
    )


@st.composite
def _database(draw) -> Database:
    num_departments = draw(st.integers(1, 4))
    employees = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["Ann", "Bob", "Cara", "Abe"]),
                st.integers(10_000, 200_000),
                st.integers(20, 70),
                st.integers(0, num_departments - 1),
                st.lists(st.sampled_from(["sql", "oql", "ml"]), max_size=2),
            ),
            max_size=8,
        )
    )
    db = Database(company_schema())
    db.load_extent(
        "Departments",
        frozenset(
            Record(dno=d, name=f"D{d}", budget=100 * d, floor=d * 3)
            for d in range(num_departments)
        ),
    )
    db.load_extent(
        "Employees",
        Bag(
            Record(name=f"{name}-{i}", salary=salary, age=age, dno=dno,
                   skills=frozenset(skills))
            for i, (name, salary, age, dno, skills) in enumerate(employees)
        ),
    )
    return db


@settings(max_examples=80, deadline=None)
@given(query=_query(), db=_database())
def test_engines_agree_on_random_queries(query, db):
    interpret = db.run(query, engine="interpret")
    auto = db.run(query, engine="auto")
    assert auto == interpret, query


@settings(max_examples=60, deadline=None)
@given(query=_query(), db=_database())
def test_normalization_sound_on_random_queries(query, db):
    term = db.translate(query)
    evaluator = db.evaluator()
    assert evaluator.evaluate(normalize(term)) == evaluator.evaluate(term), query


@settings(max_examples=40, deadline=None)
@given(query=_query(), db=_database())
def test_typecheck_accepts_generated_queries(query, db):
    # All templates are well formed under the schema, so the static
    # checker must accept them (no false positives).
    db.typecheck(db.translate(query))


@settings(max_examples=40, deadline=None)
@given(db=_database())
def test_indexes_never_change_results(db):
    query = (
        "select distinct e.name from e in Employees, d in Departments "
        "where e.dno = d.dno and d.floor >= 0"
    )
    before = db.run(query)
    db.create_index("Departments", "dno")
    db.create_index("Employees", "dno")
    assert db.run(query) == before
