"""The heuristic optimizer: index selection, pushdown, key promotion."""


from repro.algebra import (
    IndexScan,
    Join,
    Optimizer,
    Reduce,
    Scan,
    SelectOp,
    Unnest,
    build_plan,
    estimate_cardinality,
    explain,
)
from repro.calculus import const, eq, gt, proj, var
from repro.oql import translate_oql


def _plan(oql: str):
    return build_plan(translate_oql(oql))


def test_index_selection_rewrites_scan():
    plan = _plan("select distinct c from c in Cities where c.zip = 97201")
    optimized = Optimizer({("Cities", "zip")}).optimize(plan)
    assert isinstance(optimized.child, IndexScan)
    assert optimized.child.extent == "Cities"
    assert optimized.child.attribute == "zip"


def test_index_selection_handles_swapped_equality():
    plan = _plan("select distinct c from c in Cities where 97201 = c.zip")
    optimized = Optimizer({("Cities", "zip")}).optimize(plan)
    assert isinstance(optimized.child, IndexScan)


def test_no_index_no_rewrite():
    plan = _plan("select distinct c from c in Cities where c.zip = 97201")
    optimized = Optimizer(set()).optimize(plan)
    assert isinstance(optimized.child, SelectOp)


def test_non_equality_predicate_not_indexed():
    plan = _plan("select distinct c from c in Cities where c.zip > 97201")
    optimized = Optimizer({("Cities", "zip")}).optimize(plan)
    assert isinstance(optimized.child, SelectOp)


def test_self_referencing_key_not_indexed():
    plan = _plan("select distinct c from c in Cities where c.zip = c.other")
    optimized = Optimizer({("Cities", "zip")}).optimize(plan)
    assert isinstance(optimized.child, SelectOp)


def test_selection_pushdown_below_join():
    # Build an unpushed plan by hand: Select over Join.
    raw = Reduce(
        _plan("select distinct 1 from a in Ls, b in Rs").monoid,
        const(1),
        SelectOp(
            Join(Scan("a", var("Ls")), Scan("b", var("Rs"))),
            gt(proj(var("a"), "x"), const(1)),
        ),
    )
    optimized = Optimizer().optimize(raw)
    join = optimized.child
    assert isinstance(join, Join)
    assert isinstance(join.left, SelectOp)


def test_selection_pushdown_below_unnest():
    raw = Reduce(
        _plan("select distinct 1 from a in Ls").monoid,
        const(1),
        SelectOp(
            Unnest(Scan("c", var("Cs")), "h", proj(var("c"), "hotels")),
            gt(proj(var("c"), "pop"), const(1)),
        ),
    )
    optimized = Optimizer().optimize(raw)
    assert isinstance(optimized.child, Unnest)
    assert isinstance(optimized.child.child, SelectOp)


def test_join_key_promotion():
    raw = Reduce(
        _plan("select distinct 1 from a in Ls").monoid,
        const(1),
        SelectOp(
            Join(Scan("a", var("Ls")), Scan("b", var("Rs"))),
            eq(proj(var("a"), "k"), proj(var("b"), "k")),
        ),
    )
    optimized = Optimizer().optimize(raw)
    join = optimized.child
    assert isinstance(join, Join)
    assert len(join.left_keys) == 1


class TestCardinalityEstimates:
    def test_scan_uses_extent_sizes(self):
        plan = _plan("select distinct c from c in Cities")
        assert estimate_cardinality(plan, {"Cities": 42}) == 42.0

    def test_selection_reduces(self):
        plan = _plan("select distinct c from c in Cities where c.x = 1")
        est = estimate_cardinality(plan, {"Cities": 100})
        assert est < 100

    def test_hash_join_vs_cross(self):
        keyed = _plan("select distinct 1 from a in Ls, b in Rs where a.k = b.k")
        cross = _plan("select distinct 1 from a in Ls, b in Rs")
        sizes = {"Ls": 10, "Rs": 20}
        assert estimate_cardinality(keyed, sizes) < estimate_cardinality(cross, sizes)

    def test_index_scan_small(self):
        plan = Optimizer({("Cities", "zip")}).optimize(
            _plan("select distinct c from c in Cities where c.zip = 1")
        )
        assert estimate_cardinality(plan, {"Cities": 1000}) <= 10

    def test_explain_renders_estimates(self):
        plan = _plan("select distinct h from c in Cities, h in c.hotels")
        out = explain(plan, {"Cities": 10})
        assert "~" in out and "rows" in out
        assert "Unnest" in out
