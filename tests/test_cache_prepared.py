"""Prepared statements: $params, validation, recompilation, caching."""

import pytest

from repro.db.database import Database, demo_travel_database
from repro.errors import DatabaseError, OQLSyntaxError
from repro.values import to_python


def _db(cache=False):
    db = demo_travel_database(num_cities=6, seed=3)
    if cache:
        db.enable_cache()
    return db


class TestBasics:
    def test_single_param(self):
        db = _db()
        q = db.prepare(
            "select distinct c.name from c in Cities where c.population > $min")
        assert q.params == ("min",)
        everyone = q.run(min=0)
        nobody = q.run(min=10**12)
        assert nobody == frozenset()
        assert everyone == db.run(
            "select distinct c.name from c in Cities where c.population > 0")

    def test_multiple_params_sorted(self):
        db = _db()
        q = db.prepare(
            "select distinct c.name from c in Cities "
            "where c.population > $min and c.state = $state")
        assert q.params == ("min", "state")
        assert q.run(min=0, state="OR") == db.run(
            "select distinct c.name from c in Cities "
            "where c.population > 0 and c.state = 'OR'")

    def test_callable_alias(self):
        db = _db()
        q = db.prepare("select c.name from c in Cities where c.population > $min")
        assert to_python(q(min=0)) == to_python(q.run(min=0))

    def test_param_in_head(self):
        db = _db()
        q = db.prepare("select distinct struct(tag: $tag, name: c.name) "
                       "from c in Cities")
        rows = q.run(tag="x")
        assert rows and all(r["tag"] == "x" for r in rows)

    def test_no_params(self):
        db = _db()
        q = db.prepare("count(Cities)")
        assert q.params == ()
        assert q.run() == 6


class TestValidation:
    def test_missing_binding(self):
        q = _db().prepare(
            "select c.name from c in Cities where c.population > $min")
        with pytest.raises(DatabaseError, match="missing parameters: min"):
            q.run()

    def test_extra_binding(self):
        q = _db().prepare(
            "select c.name from c in Cities where c.population > $min")
        with pytest.raises(DatabaseError, match="unexpected parameters: bogus"):
            q.run(min=0, bogus=1)

    def test_compile_errors_surface_at_prepare(self):
        with pytest.raises(OQLSyntaxError):
            _db().prepare("select from where")

    def test_bare_dollar_rejected(self):
        with pytest.raises(OQLSyntaxError):
            _db().prepare("select c.name from c in Cities where c.population > $")

    def test_typecheck_with_param_types(self):
        from repro.types.types import TINT

        db = _db()
        q = db.prepare(
            "select distinct c.name from c in Cities where c.population > $min",
            typecheck=True,
            param_types={"min": TINT},
        )
        assert q.run(min=0) is not None


class TestWithCache:
    def test_bindings_get_separate_result_entries(self):
        db = _db(cache=True)
        q = db.prepare(
            "select distinct c.name from c in Cities where c.population > $min")
        a1 = q.run(min=0)
        a2 = q.run(min=0)  # result hit
        b = q.run(min=10**12)
        assert a1 == a2 and b == frozenset()
        stats = db.cache.stats_dict()
        assert stats["result_hits"] >= 1
        assert stats["result_entries"] >= 2

    def test_querylog_marks_prepared(self):
        import json

        db = _db(cache=True)
        lines = []
        db.profile(True, sink=lines.append)
        q = db.prepare("select c.name from c in Cities where c.population > $min")
        q.run(min=0)
        db.profile(False)
        entry = json.loads(lines[-1])
        assert entry["cache"]["compile"] == "prepared"

    def test_shares_compiled_entry_with_adhoc_equivalents(self):
        db = _db(cache=True)
        db.prepare("select distinct c.name from c in Cities where c.state = $s")
        # the same shape spelled with another binder still shares
        db.prepare("select distinct x.name from x in Cities where x.state = $s")
        assert db.cache.stats_dict()["compiled_entries"] == 1


class TestRecompilation:
    def test_recompiles_after_catalog_change(self):
        db = Database()
        db.load_extents({"Rs": [{"k": i % 3, "v": i} for i in range(9)]})
        q = db.prepare("select distinct r.v from r in Rs where r.k = $k")
        before = q.run(k=1)
        first_entry = q._entry
        db.create_index("Rs", "k")
        after = q.run(k=1)
        assert after == before
        assert q._entry is not first_entry  # version moved, recompiled

    def test_reload_extents_seen(self):
        db = Database()
        db.load_extents({"Ns": [1, 2, 3]})
        q = db.prepare("sum(select n from n in Ns where n > $floor)")
        assert q.run(floor=0) == 6
        db.load_extents({"Ns": [10, 20]}, replace=True)
        assert q.run(floor=0) == 30

    def test_works_with_cache_and_catalog_change(self):
        db = Database(cache=True)
        db.load_extents({"Ns": [1, 2, 3]})
        q = db.prepare("sum(select n from n in Ns where n > $floor)")
        assert q.run(floor=0) == 6
        db.load_extents({"Ns": [5]}, replace=True)
        assert q.run(floor=0) == 5
