"""One witness per Table 3 rule: the rule fires and preserves semantics."""


from repro.calculus import (
    add,
    and_,
    apply,
    bind,
    comp,
    const,
    deref,
    eq,
    filt,
    gen,
    gt,
    if_,
    index,
    lam,
    let,
    lt,
    merge,
    new,
    not_,
    proj,
    rec,
    tup,
    unit,
    var,
    zero,
)
from repro.calculus.ast import Empty, Merge
from repro.eval import evaluate
from repro.normalize import RULES_BY_NAME, count_occurrences, normalize
from repro.values import Bag


def _fires(rule_name, term):
    return RULES_BY_NAME[rule_name].apply(term)


class TestBeta:
    def test_fires(self):
        term = apply(lam("x", add(var("x"), const(1))), const(2))
        out = _fires("N1-beta", term)
        assert out == add(const(2), const(1))

    def test_semantics(self):
        term = apply(lam("x", add(var("x"), var("x"))), const(21))
        assert evaluate(normalize(term)) == evaluate(term) == 42

    def test_effectful_arg_duplicated_blocked(self):
        term = apply(lam("x", tup(var("x"), var("x"))), new(const(1)))
        assert _fires("N1-beta", term) is None

    def test_effectful_arg_used_once_allowed(self):
        term = apply(lam("x", deref(var("x"))), new(const(1)))
        assert _fires("N1-beta", term) is not None


class TestLetInline:
    def test_fires(self):
        term = let("x", const(2), add(var("x"), const(1)))
        assert _fires("N1-let", term) == add(const(2), const(1))

    def test_effect_guard(self):
        term = let("x", new(const(1)), const(0))  # x unused: would drop the effect
        assert _fires("N1-let", term) is None


class TestProjections:
    def test_record_projection(self):
        term = proj(rec(a=const(1), b=const(2)), "a")
        assert _fires("N2-proj", term) == const(1)

    def test_record_projection_effect_guard(self):
        term = proj(rec(a=const(1), b=new(const(0))), "a")
        assert _fires("N2-proj", term) is None

    def test_tuple_projection(self):
        term = index(tup(const("a"), const("b")), const(1))
        assert _fires("N2-tuple", term) == const("b")

    def test_tuple_projection_out_of_range_not_rewritten(self):
        term = index(tup(const("a"),), const(5))
        assert _fires("N2-tuple", term) is None


class TestBindingElimination:
    def test_fires(self):
        term = comp("sum", var("y"), [gen("x", const((1, 2))), bind("y", add(var("x"), const(1)))])
        out = _fires("N3-bind", term)
        assert out == comp("sum", add(var("x"), const(1)), [gen("x", const((1, 2)))])

    def test_semantics(self):
        term = comp("set", var("y"), [gen("x", const((1, 2))), bind("y", add(var("x"), var("x")))])
        assert evaluate(normalize(term)) == evaluate(term) == frozenset({2, 4})

    def test_effectful_binding_used_twice_blocked(self):
        term = comp(
            "some",
            eq(var("y"), var("y")),
            [bind("y", new(const(1)))],
        )
        assert _fires("N3-bind", term) is None


class TestPredicateRules:
    def test_true_removed(self):
        term = comp("set", var("x"), [gen("x", const((1,))), filt(const(True))])
        out = _fires("N4-true", term)
        assert out == comp("set", var("x"), [gen("x", const((1,)))])

    def test_false_collapses_to_zero(self):
        term = comp("set", var("x"), [gen("x", const((1,))), filt(const(False))])
        out = _fires("N5-false", term)
        assert isinstance(out, Empty)
        assert evaluate(out) == frozenset()

    def test_false_with_effects_blocked(self):
        term = comp(
            "set",
            var("x"),
            [bind("x", new(const(1))), filt(const(False))],
        )
        assert _fires("N5-false", term) is None

    def test_conjunction_split(self):
        term = comp(
            "set",
            var("x"),
            [gen("x", const((1,))), filt(and_(gt(var("x"), const(0)), lt(var("x"), const(9))))],
        )
        out = _fires("N12-and", term)
        assert len(out.qualifiers) == 3


class TestGeneratorRules:
    def test_empty_generator(self):
        term = comp("set", var("x"), [gen("x", zero("set"))])
        out = _fires("N6-empty", term)
        assert isinstance(out, Empty)

    def test_singleton_generator(self):
        term = comp("sum", add(var("x"), const(1)), [gen("x", unit("list", const(5)))])
        out = _fires("N7-unit", term)
        assert out == comp("sum", add(const(5), const(1)), [])

    def test_merge_split(self):
        term = comp("set", var("x"), [gen("x", merge("set", var("A"), var("B")))])
        out = _fires("N8-merge", term)
        assert isinstance(out, Merge)
        bindings = {"A": frozenset({1}), "B": frozenset({2})}
        assert evaluate(out, bindings) == evaluate(term, bindings) == frozenset({1, 2})

    def test_merge_split_noncommutative_with_other_generators_blocked(self):
        term = comp(
            "list",
            var("x"),
            [gen("y", var("Ys")), gen("x", merge("list", var("A"), var("B")))],
        )
        assert _fires("N8-merge", term) is None

    def test_merge_split_list_single_generator_allowed(self):
        term = comp("list", var("x"), [gen("x", merge("list", var("A"), var("B")))])
        out = _fires("N8-merge", term)
        bindings = {"A": (1, 2), "B": (3,)}
        assert evaluate(out, bindings) == evaluate(term, bindings) == (1, 2, 3)

    def test_conditional_generator(self):
        term = comp(
            "set",
            var("x"),
            [gen("x", if_(var("p"), var("A"), var("B")))],
        )
        out = _fires("N10-if-gen", term)
        assert isinstance(out, Merge)
        for p in (True, False):
            bindings = {"p": p, "A": frozenset({1}), "B": frozenset({2})}
            assert evaluate(out, bindings) == evaluate(term, bindings)


class TestFlattening:
    def test_n9_fires_and_preserves_semantics(self):
        inner = comp("set", add(var("y"), const(10)), [gen("y", var("Ys"))])
        outer = comp("set", var("x"), [gen("x", inner)])
        out = _fires("N9-flatten", outer)
        assert out is not None
        bindings = {"Ys": frozenset({1, 2})}
        assert evaluate(normalize(outer), bindings) == evaluate(outer, bindings)

    def test_n9_respects_ci_condition(self):
        """bag over set must NOT flatten (duplicates would appear)."""
        inner = comp("set", var("y"), [gen("y", var("Ys"))])
        outer = comp("bag", var("x"), [gen("x", inner)])
        assert _fires("N9-flatten", outer) is None
        # and the full normalizer must preserve semantics
        bindings = {"Ys": (1, 1, 2)}
        assert evaluate(normalize(outer), bindings) == evaluate(outer, bindings) == Bag([1, 2])

    def test_n9_bag_over_bag_allowed(self):
        inner = comp("bag", var("y"), [gen("y", var("Ys"))])
        outer = comp("bag", var("x"), [gen("x", inner)])
        assert _fires("N9-flatten", outer) is not None
        bindings = {"Ys": (1, 1)}
        assert evaluate(normalize(outer), bindings) == evaluate(outer, bindings)

    def test_n9_avoids_capture(self):
        # Inner binder named like an outer variable: must be renamed.
        inner = comp("set", tup(var("x"), var("y")), [gen("x", var("Ys"))])
        outer = comp(
            "set", tup(var("x"), var("v")), [gen("x", var("Xs")), gen("v", inner)]
        )
        bindings = {"Xs": frozenset({1}), "Ys": frozenset({7}), "y": 99}
        assert evaluate(normalize(outer), bindings) == evaluate(outer, bindings)


class TestExistentialFusion:
    def test_fires_for_idempotent_outer(self):
        pred = comp("some", eq(var("y"), const(1)), [gen("y", var("Ys"))])
        outer = comp("set", var("x"), [gen("x", var("Xs")), filt(pred)])
        out = _fires("N11-exists", outer)
        assert out is not None
        bindings = {"Xs": frozenset({5}), "Ys": (1, 1, 2)}
        assert evaluate(out, bindings) == evaluate(outer, bindings) == frozenset({5})

    def test_blocked_for_bag_output(self):
        pred = comp("some", eq(var("y"), const(1)), [gen("y", var("Ys"))])
        outer = comp("bag", var("x"), [gen("x", var("Xs")), filt(pred)])
        assert _fires("N11-exists", outer) is None
        # semantics stay correct through full normalization anyway
        bindings = {"Xs": (5,), "Ys": (1, 1)}
        assert evaluate(normalize(outer), bindings) == evaluate(outer, bindings)


class TestConstantFoldingAndZero:
    def test_fold_comparison(self):
        assert _fires("N15-const", lt(const(1), const(2))) == const(True)

    def test_fold_boolean_identities(self):
        assert _fires("N15-const", and_(const(True), var("p"))) == var("p")
        assert _fires("N15-const", and_(var("p"), const(False))) == const(False)

    def test_fold_if(self):
        assert _fires("N15-const", if_(const(True), var("a"), var("b"))) == var("a")

    def test_fold_not(self):
        assert _fires("N15-const", not_(const(True))) == const(False)

    def test_zero_merge_identity(self):
        term = merge("set", zero("set"), var("A"))
        assert _fires("N14-zero", term) == var("A")
        term = merge("set", var("A"), zero("set"))
        assert _fires("N14-zero", term) == var("A")


class TestCountOccurrences:
    def test_counts_free_occurrences(self):
        term = add(var("x"), var("x"))
        assert count_occurrences(term, "x") == 2

    def test_ignores_shadowed(self):
        term = apply(lam("x", var("x")), var("x"))
        assert count_occurrences(term, "x") == 1
