"""Unit tests for the Vector value (the M[n] carrier)."""

import pytest

from repro.errors import VectorError
from repro.values import Vector


def test_from_dense_roundtrip():
    v = Vector.from_dense([1, 2, 3])
    assert v.to_list() == [1, 2, 3]
    assert len(v) == 3


def test_sparse_slots_fill_with_default():
    v = Vector(4, default=0, slots={2: 8})
    assert v.to_list() == [0, 0, 8, 0]


def test_default_valued_slots_are_not_stored():
    v = Vector(3, default=0, slots={0: 0, 1: 5})
    assert list(v.occupied()) == [(1, 5)]


def test_indexing():
    v = Vector.from_dense([10, 20])
    assert v[0] == 10
    assert v[1] == 20


def test_index_out_of_range():
    v = Vector.from_dense([1])
    with pytest.raises(VectorError):
        v[1]
    with pytest.raises(VectorError):
        v[-1]


def test_slot_out_of_range_at_construction():
    with pytest.raises(VectorError):
        Vector(2, slots={5: 1})


def test_negative_size_rejected():
    with pytest.raises(VectorError):
        Vector(-1)


def test_items_iterates_all_indices():
    v = Vector(3, default=0, slots={1: 7})
    assert list(v.items()) == [(0, 0), (1, 7), (2, 0)]


def test_equality_is_structural():
    assert Vector.from_dense([1, 2]) == Vector(2, slots={0: 1, 1: 2})
    assert Vector.from_dense([1, 2]) != Vector.from_dense([2, 1])
    assert Vector.from_dense([1]) != Vector.from_dense([1, 0])


def test_equality_considers_default():
    assert Vector(2, default=0) != Vector(2, default=None)


def test_hashable():
    assert len({Vector.from_dense([1]), Vector.from_dense([1])}) == 1


def test_with_slot():
    v = Vector.from_dense([1, 2]).with_slot(0, 9)
    assert v.to_list() == [9, 2]


def test_repr_paper_notation():
    assert repr(Vector.from_dense([3, 1])) == "(|3, 1|)"


def test_immutability():
    v = Vector.from_dense([1])
    with pytest.raises(AttributeError):
        v.x = 1
