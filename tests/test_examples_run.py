"""Every example script must run clean — they are part of the API docs."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print something"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "travel_agency", "scientific_arrays",
            "object_updates", "query_optimizer_tour"} <= names
