"""Per-operator metrics: one test per physical operator, and the
guarantee that the metrics-less executor is the seed path untouched."""

import dataclasses

import pytest

from repro.algebra.ops import (
    IndexScan,
    Join,
    Nest,
    Reduce,
    Scan,
    SelectOp,
    Unnest,
)
from repro.algebra.physical import ExecutionStats, Executor
from repro.calculus import const, ge, proj, var
from repro.calculus.ast import MonoidRef
from repro.eval import Evaluator
from repro.obs.metrics import OperatorMetrics, PlanMetrics
from repro.values import Record


@pytest.fixture
def world():
    ls = frozenset({Record(k=1, x=10), Record(k=2, x=20), Record(k=3, x=30)})
    rs = frozenset({Record(k=1, y="a"), Record(k=1, y="b"), Record(k=4, y="c")})
    cs = frozenset(
        {Record(name="c1", xs=(1, 2, 3)), Record(name="c2", xs=(4,))}
    )
    return {"Ls": ls, "Rs": rs, "Cs": cs}


def run_with_metrics(plan, world, indexes=None):
    metrics = PlanMetrics()
    executor = Executor(Evaluator(world), indexes, metrics=metrics)
    value = executor.execute(plan)
    return value, metrics, executor.stats


def node_snap(metrics, plan, op_type):
    for snap in metrics.walk(plan):
        if isinstance(snap.node, op_type):
            return snap
    raise AssertionError(f"no {op_type.__name__} in plan")


class TestPerOperator:
    def test_scan(self, world):
        plan = Reduce(MonoidRef("set"), proj(var("a"), "x"), Scan("a", var("Ls")))
        value, metrics, _ = run_with_metrics(plan, world)
        snap = node_snap(metrics, plan, Scan)
        assert snap.rows_in == 0
        assert snap.rows_out == 3
        assert snap.metrics.invocations == 1
        assert value == frozenset({10, 20, 30})

    def test_select(self, world):
        plan = Reduce(
            MonoidRef("set"),
            proj(var("a"), "k"),
            SelectOp(Scan("a", var("Ls")), ge(proj(var("a"), "x"), const(20))),
        )
        _, metrics, _ = run_with_metrics(plan, world)
        snap = node_snap(metrics, plan, SelectOp)
        assert snap.rows_in == 3
        assert snap.rows_out == 2  # x=10 filtered out

    def test_hash_join(self, world):
        plan = Reduce(
            MonoidRef("set"),
            proj(var("b"), "y"),
            Join(
                Scan("a", var("Ls")),
                Scan("b", var("Rs")),
                (proj(var("a"), "k"),),
                (proj(var("b"), "k"),),
            ),
        )
        value, metrics, stats = run_with_metrics(plan, world)
        snap = node_snap(metrics, plan, Join)
        assert snap.rows_in == 6  # both scans feed the join
        assert snap.rows_out == 2  # k=1 matches twice
        assert snap.metrics.hash_builds == 3  # whole right side built
        assert snap.metrics.hash_builds == stats.hash_builds
        assert value == frozenset({"a", "b"})

    def test_nested_loop_join(self, world):
        plan = Reduce(
            MonoidRef("sum"),
            const(1),
            Join(Scan("a", var("Ls")), Scan("b", var("Rs"))),
        )
        value, metrics, _ = run_with_metrics(plan, world)
        snap = node_snap(metrics, plan, Join)
        assert snap.rows_out == 9  # full cross product
        assert snap.metrics.hash_builds == 0
        assert value == 9

    def test_unnest(self, world):
        plan = Reduce(
            MonoidRef("bag"),
            var("x"),
            Unnest(Scan("c", var("Cs")), "x", proj(var("c"), "xs")),
        )
        _, metrics, _ = run_with_metrics(plan, world)
        snap = node_snap(metrics, plan, Unnest)
        assert snap.rows_in == 2  # two outer records
        assert snap.rows_out == 4  # four inner elements total

    def test_index_scan(self, world):
        indexes = {
            ("Ls", "k"): {
                1: [Record(k=1, x=10)],
                2: [Record(k=2, x=20)],
                3: [Record(k=3, x=30)],
            }
        }
        plan = Reduce(
            MonoidRef("set"),
            proj(var("a"), "x"),
            IndexScan("a", "Ls", "k", const(2)),
        )
        value, metrics, stats = run_with_metrics(plan, world, indexes)
        snap = node_snap(metrics, plan, IndexScan)
        assert snap.metrics.index_probes == 1
        assert snap.rows_out == 1
        assert stats.index_probes == 1
        assert value == frozenset({20})

    def test_nest(self, world):
        plan = Reduce(
            MonoidRef("set"),
            var("g"),
            Nest(
                Scan("b", var("Rs")),
                keys=(("g", proj(var("b"), "k")),),
                part_var="partition",
                part_head=proj(var("b"), "y"),
                part_monoid=MonoidRef("bag"),
            ),
        )
        value, metrics, _ = run_with_metrics(plan, world)
        snap = node_snap(metrics, plan, Nest)
        assert snap.rows_in == 3
        assert snap.rows_out == 2  # two distinct keys: 1 and 4
        assert value == frozenset({1, 4})

    def test_reduce_collection_cardinality(self, world):
        plan = Reduce(MonoidRef("set"), proj(var("a"), "k"), Scan("a", var("Ls")))
        value, metrics, _ = run_with_metrics(plan, world)
        snap = node_snap(metrics, plan, Reduce)
        assert snap.rows_in == 3
        assert snap.rows_out == len(value) == 3

    def test_reduce_primitive_is_one_row(self, world):
        plan = Reduce(MonoidRef("sum"), proj(var("a"), "x"), Scan("a", var("Ls")))
        value, metrics, _ = run_with_metrics(plan, world)
        assert value == 60
        assert node_snap(metrics, plan, Reduce).rows_out == 1


class TestSnapshotDerivations:
    def test_self_time_at_most_inclusive_and_non_negative(self, world):
        plan = Reduce(
            MonoidRef("set"),
            proj(var("a"), "k"),
            SelectOp(Scan("a", var("Ls")), ge(proj(var("a"), "x"), const(0))),
        )
        _, metrics, _ = run_with_metrics(plan, world)
        for snap in metrics.walk(plan):
            assert 0 <= snap.self_time_ns <= max(snap.metrics.time_ns, snap.self_time_ns)

    def test_equal_nodes_in_different_positions_do_not_share_counters(self, world):
        # structurally-equal scans must be metered separately (id-keyed)
        left = Scan("a", var("Ls"))
        right = Scan("b", var("Rs"))
        plan = Reduce(MonoidRef("sum"), const(1), Join(left, right))
        _, metrics, _ = run_with_metrics(plan, world)
        assert metrics.get(left).rows_out == 3
        assert metrics.get(right).rows_out == 3
        assert metrics.get(left) is not metrics.get(right)

    def test_execute_resets_metrics_between_runs(self, world):
        plan = Reduce(MonoidRef("set"), proj(var("a"), "k"), Scan("a", var("Ls")))
        metrics = PlanMetrics()
        executor = Executor(Evaluator(world), metrics=metrics)
        executor.execute(plan)
        executor.execute(plan)
        assert node_snap(metrics, plan, Scan).rows_out == 3  # not 6


class TestSeedPathUntouched:
    QUERY = (
        "select distinct h.name from c in Cities, h in c.hotels "
        "where h.stars >= 2"
    )

    def test_disabled_tracing_is_byte_identical(self):
        from repro.db import demo_travel_database

        plain = demo_travel_database(num_cities=5, seed=3)
        traced = demo_travel_database(num_cities=5, seed=3)
        # Telemetry forces phase spans on; this test is about the seed
        # path, so pin it off (robust under REPRO_TELEMETRY=1).
        plain.disable_telemetry()
        traced.disable_telemetry()
        traced.profile(True)

        off = plain.run_detailed(self.QUERY)
        on = traced.run_detailed(self.QUERY)

        assert off.span is None and off.metrics is None
        assert on.span is not None and on.metrics is not None
        assert off.value == on.value
        assert off.stats.as_dict() == on.stats.as_dict()
        assert off.engine == on.engine == "algebra"

    def test_profile_off_restores_untraced_pipeline(self):
        from repro.db import demo_travel_database

        db = demo_travel_database(num_cities=4, seed=1)
        db.disable_telemetry()
        db.profile(True)
        assert db.run_detailed("count(Cities)").span is not None
        db.profile(False)
        result = db.run_detailed("count(Cities)")
        assert result.span is None
        assert result.metrics is None
        assert db.query_log is None

    def test_metrics_flag_without_tracing(self):
        from repro.db import demo_travel_database

        db = demo_travel_database(num_cities=4, seed=1)
        db.disable_telemetry()
        result = db.run_detailed(self.QUERY, metrics=True)
        assert result.span is None  # no tracer involved
        assert result.metrics is not None
        assert node_snap(result.metrics, result.plan, Scan).rows_out == 4


class TestStatsAsDict:
    def test_derived_from_dataclass_fields(self):
        stats = ExecutionStats(rows_scanned=7, hash_builds=2)
        expected = {f.name for f in dataclasses.fields(ExecutionStats)}
        assert set(stats.as_dict()) == expected
        assert stats.as_dict()["rows_scanned"] == 7
        assert stats.as_dict()["hash_builds"] == 2

    def test_operator_metrics_as_dict_is_field_complete(self):
        block = OperatorMetrics(rows_out=5, index_probes=1)
        expected = {f.name for f in dataclasses.fields(OperatorMetrics)}
        assert set(block.as_dict()) == expected
        assert block.as_dict()["rows_out"] == 5
