"""The metrics registry: counters, gauges, histograms, windows,
fingerprints — including exactness under concurrent threads."""

import threading

import pytest

from repro.errors import TelemetryError
from repro.obs.telemetry.fingerprint import FingerprintTable, fingerprint_term
from repro.obs.telemetry.registry import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    RollingWindow,
    activation,
    current_registry,
    disable_telemetry,
    enable_telemetry,
    get_registry,
    resolve_telemetry,
    telemetry_enabled,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_total(self, registry):
        c = registry.counter("t_total", "help")
        c.inc()
        c.inc(4)
        assert c.value() == 5
        assert c.total() == 5

    def test_labels_split_children(self, registry):
        c = registry.counter("t_by_engine", "", labels=("engine",))
        c.inc(engine="algebra")
        c.inc(2, engine="interpret")
        assert c.labels(engine="algebra").value == 1
        assert c.labels(engine="interpret").value == 2
        assert c.total() == 3

    def test_negative_increment_rejected(self, registry):
        c = registry.counter("t_mono", "")
        with pytest.raises(TelemetryError):
            c.inc(-1)

    def test_get_or_create_shares_family(self, registry):
        a = registry.counter("t_shared", "")
        b = registry.counter("t_shared", "")
        a.inc()
        b.inc()
        assert a.value() == 2

    def test_kind_mismatch_rejected(self, registry):
        registry.counter("t_kind", "")
        with pytest.raises(TelemetryError):
            registry.gauge("t_kind", "")

    def test_label_mismatch_rejected(self, registry):
        registry.counter("t_labels", "", labels=("a",))
        with pytest.raises(TelemetryError):
            registry.counter("t_labels", "", labels=("b",))


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("t_gauge", "")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value() == 12


class TestHistogram:
    def test_default_buckets_are_log_scale(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-5)
        assert DEFAULT_LATENCY_BUCKETS[-1] == pytest.approx(500.0)
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)

    def test_observe_updates_count_sum_minmax(self, registry):
        h = registry.histogram("t_hist", "").labels()
        for v in (0.001, 0.002, 0.004):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(0.007)
        assert h.min == pytest.approx(0.001)
        assert h.max == pytest.approx(0.004)

    def test_quantile_within_one_bucket(self, registry):
        # With known bounds, the interpolated estimate must land in the
        # same bucket as the exact quantile.
        bounds = (0.001, 0.01, 0.1, 1.0)
        h = registry.histogram("t_q", "", buckets=bounds).labels()
        samples = [0.0005] * 50 + [0.05] * 40 + [0.5] * 10
        for v in samples:
            h.observe(v)
        # exact p50 = 0.0005 (bucket le=0.001); estimate must be <= 0.001
        assert h.quantile(0.5) <= 0.001
        # exact p90 = 0.05 (bucket (0.01, 0.1]); estimate in that bucket
        assert 0.01 < h.quantile(0.9) <= 0.1
        # exact p99 = 0.5 (bucket (0.1, 1.0])
        assert 0.1 < h.quantile(0.99) <= 1.0

    def test_overflow_quantile_reports_max(self, registry):
        h = registry.histogram("t_over", "", buckets=(0.1,)).labels()
        h.observe(5.0)
        assert h.quantile(0.99) == pytest.approx(5.0)

    def test_bad_quantile_rejected(self, registry):
        h = registry.histogram("t_badq", "").labels()
        with pytest.raises(TelemetryError):
            h.quantile(1.5)

    def test_duplicate_buckets_rejected(self, registry):
        with pytest.raises(TelemetryError):
            registry.histogram("t_bad", "", buckets=(0.5, 0.5))

    def test_unsorted_buckets_normalized(self, registry):
        h = registry.histogram("t_sorts", "", buckets=(1.0, 0.5))
        assert h.bounds == (0.5, 1.0)


class TestRollingWindow:
    def test_rate_and_mean_with_fake_clock(self):
        now = [100.0]
        w = RollingWindow(width=10, clock=lambda: now[0])
        for _ in range(20):
            w.add(0.002)
        count, total = w.totals()
        assert count == 20
        assert w.rate() == pytest.approx(2.0)
        assert w.mean() == pytest.approx(0.002)
        # Advance past the window: everything expires.
        now[0] += 11
        assert w.totals() == (0, 0.0)
        assert w.rate() == 0.0

    def test_slots_expire_individually(self):
        now = [0.0]
        w = RollingWindow(width=5, clock=lambda: now[0])
        w.add(1.0)
        now[0] = 3.0
        w.add(1.0)
        assert w.totals()[0] == 2
        now[0] = 6.0  # first slot (t=0) fell out, second (t=3) remains
        assert w.totals()[0] == 1


class TestRegistryCollect:
    def test_collect_sorted_and_snapshot_shape(self, registry):
        registry.counter("t_b", "bb").inc()
        registry.counter("t_a", "aa").inc()
        names = [f.name for f in registry.collect()]
        assert names == sorted(names)

    def test_windows_materialize_as_gauges(self, registry):
        registry.window("t_win").add(0.01)
        fams = {f.name: f for f in registry.collect()}
        assert "t_win_qps" in fams
        assert "t_win_latency_seconds" in fams

    def test_bridge_deltas(self, registry):
        class Stats:
            pass

        src = Stats()
        assert registry.bridge_deltas(src, {"hits": 2}) == {"hits": 2}
        assert registry.bridge_deltas(src, {"hits": 5}) == {"hits": 3}
        assert registry.bridge_deltas(src, {"hits": 5}) == {}

    def test_reset_clears_everything(self, registry):
        registry.counter("t_r", "").inc()
        registry.fingerprints.record("abc", oql="q", seconds=0.1, rows=1)
        registry.reset()
        assert registry.collect() == []
        assert len(registry.fingerprints) == 0


class TestFingerprints:
    def test_alpha_equivalent_terms_share_fingerprint(self):
        from repro.oql.parser import parse
        from repro.oql.translate import Translator
        from repro.types.schema import Schema

        t = Translator(Schema())
        a = t.translate(parse("select distinct c.name from c in Cities"))
        b = t.translate(parse("select distinct x.name from x in Cities"))
        assert fingerprint_term(a) == fingerprint_term(b)

    def test_distinct_queries_differ(self):
        from repro.oql.parser import parse
        from repro.oql.translate import Translator
        from repro.types.schema import Schema

        t = Translator(Schema())
        a = t.translate(parse("select c.name from c in Cities"))
        b = t.translate(parse("select c.zip from c in Cities"))
        assert fingerprint_term(a) != fingerprint_term(b)

    def test_top_orders_by_total_time(self):
        table = FingerprintTable()
        table.record("cold", oql="a", seconds=0.1, rows=1)
        table.record("hot", oql="b", seconds=1.0, rows=1)
        table.record("hot", oql="b", seconds=1.0, rows=1)
        top = table.top(2)
        assert [e.fingerprint for e in top] == ["hot", "cold"]
        assert top[0].count == 2
        assert top[0].mean_seconds == pytest.approx(1.0)

    def test_eviction_keeps_hottest(self):
        table = FingerprintTable(max_entries=2)
        table.record("a", oql="a", seconds=5.0, rows=1)
        table.record("b", oql="b", seconds=0.001, rows=1)
        table.record("c", oql="c", seconds=1.0, rows=1)
        fps = {e.fingerprint for e in table.top(10)}
        assert "a" in fps and "c" in fps and "b" not in fps
        assert len(table) == 2


class TestEnablement:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        disable_telemetry()
        assert not telemetry_enabled()
        assert resolve_telemetry(None) is None

    def test_env_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        assert telemetry_enabled()
        assert resolve_telemetry(None) is get_registry()
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        disable_telemetry()
        assert not telemetry_enabled()

    def test_process_switch(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        reg = MetricsRegistry()
        try:
            assert enable_telemetry(reg) is reg
            assert resolve_telemetry(None) is reg
        finally:
            disable_telemetry()
        assert resolve_telemetry(None) is None

    def test_explicit_values(self):
        reg = MetricsRegistry()
        assert resolve_telemetry(reg) is reg
        assert resolve_telemetry(False) is None
        assert resolve_telemetry(True) is get_registry()
        with pytest.raises(TelemetryError):
            resolve_telemetry("yes")

    def test_activation_is_thread_local(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        disable_telemetry()
        reg = MetricsRegistry()
        seen = {}
        with activation(reg):
            assert current_registry() is reg

            def probe():
                seen["other"] = current_registry()

            t = threading.Thread(target=probe)
            t.start()
            t.join()
        assert seen["other"] is None
        assert current_registry() is None


class TestThreadedStress:
    def test_exact_totals_under_contention(self, registry):
        threads, per_thread = 8, 500
        counter = registry.counter("t_stress", "", labels=("worker",))
        hist = registry.histogram("t_stress_lat", "")
        window = registry.window("t_stress_win")

        def work(worker):
            child = hist.labels()
            for _ in range(per_thread):
                counter.inc(worker=str(worker % 2))
                child.observe(0.001)
                window.add(0.001)

        pool = [threading.Thread(target=work, args=(i,)) for i in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        total = threads * per_thread
        assert counter.total() == total
        child = hist.labels()
        assert child.count == total
        assert child.sum == pytest.approx(total * 0.001)
        assert window.totals()[0] == total

    def test_fingerprint_table_threaded(self):
        table = FingerprintTable()
        threads, per_thread = 6, 300

        def work(i):
            for _ in range(per_thread):
                table.record(f"fp{i % 3}", oql="q", seconds=0.001, rows=1)

        pool = [threading.Thread(target=work, args=(i,)) for i in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert sum(e.count for e in table.top(10)) == threads * per_thread
