"""Lint through the facade: Database.lint, strict mode, the REPL, and
the error-type satellites (spans on syntax errors, did-you-mean)."""

import pytest

from repro.db.database import demo_travel_database
from repro.errors import LintError, OQLSyntaxError, UnboundVariableError
from repro.oql.parser import parse
from repro.repl import Repl
from repro.span import span_of


@pytest.fixture(scope="module")
def db():
    return demo_travel_database(num_cities=3, seed=1)


class TestDatabaseLint:
    def test_returns_batch(self, db):
        diags = db.lint("select h.name from c in Cities, h in Citees where 1 = 1")
        codes = {d.code for d in diags}
        assert {"QL003", "QL102"} <= codes

    def test_clean_query(self, db):
        assert db.lint("select distinct c.name from c in Cities") == []

    def test_never_raises_on_garbage(self, db):
        diags = db.lint("select ??? from")
        assert [d.code for d in diags] == ["QL000"]

    def test_views_are_known_names(self, db):
        db.define("BigCities",
                  "select distinct c from c in Cities where c.population > 0")
        try:
            assert db.lint("count(BigCities)") == []
        finally:
            db._views.pop("BigCities", None)

    def test_registered_functions_are_known_names(self, db):
        db.register_function("shout", lambda s: s.upper())
        try:
            diags = db.lint("select distinct shout(c.name) from c in Cities")
            assert "QL003" not in {d.code for d in diags}
        finally:
            db.functions.pop("shout", None)


class TestStrictMode:
    def test_strict_raises_before_evaluation(self, db):
        with pytest.raises(LintError) as err:
            db.run("select distinct c.name from c in Citees", strict=True)
        assert err.value.diagnostics[0].code == "QL003"
        assert "lint failed" in str(err.value)

    def test_strict_allows_clean_query(self, db):
        value = db.run("select distinct c.name from c in Cities", strict=True)
        assert value

    def test_strict_allows_warnings(self, db):
        # always-true filter is only a warning
        value = db.run("select distinct c.name from c in Cities where 1 = 1",
                       strict=True)
        assert value

    def test_default_path_unchanged(self, db):
        # no strict: the bad name surfaces as the evaluator's fail-fast
        # UnboundVariableError, exactly as before the linter existed
        with pytest.raises(UnboundVariableError):
            db.run("select distinct c.name from c in Citees")


class TestReplLint:
    def run_repl(self, db, lines):
        out = []
        repl = Repl(db, out=out.append)
        for line in lines:
            repl.handle(line)
        return repl, "\n".join(out)

    def test_warning_printed_after_query(self, db):
        _, out = self.run_repl(
            db, ["select distinct c.name from c in Cities where 1 = 1"])
        assert "warning[QL102]" in out

    def test_hint_printed(self, db):
        # the query still runs (population exists) but shadows nothing;
        # use an unbound name inside a runnable query via catalog-known
        # extents: a clean query prints no diagnostics at all
        _, out = self.run_repl(db, ["select distinct c.name from c in Cities"])
        assert "warning[" not in out and "error[" not in out

    def test_toggle_off(self, db):
        _, out = self.run_repl(
            db,
            [":lint off",
             "select distinct c.name from c in Cities where 1 = 1"])
        assert "lint is off" in out
        assert "QL102" not in out

    def test_toggle_back_on(self, db):
        repl, out = self.run_repl(
            db,
            [":lint off", ":lint on",
             "select distinct c.name from c in Cities where 1 = 1"])
        assert repl.lint_enabled
        assert "QL102" in out

    def test_backslash_spelling(self, db):
        repl, out = self.run_repl(db, ["\\lint off"])
        assert not repl.lint_enabled

    def test_status_query(self, db):
        _, out = self.run_repl(db, [":lint"])
        assert "lint is on" in out

    def test_usage_on_bad_argument(self, db):
        _, out = self.run_repl(db, [":lint sideways"])
        assert "usage" in out


class TestSyntaxErrorSpans:
    def test_parse_error_carries_location(self):
        with pytest.raises(OQLSyntaxError) as err:
            parse("select from Cities")
        assert err.value.line == 1
        assert err.value.column == 8
        assert err.value.span is not None
        assert "at line 1, column 8" in str(err.value)

    def test_lexer_error_carries_location(self):
        with pytest.raises(OQLSyntaxError) as err:
            parse("select 'unterminated")
        assert err.value.line == 1
        assert err.value.span is not None

    def test_eof_error_names_end_of_input(self):
        with pytest.raises(OQLSyntaxError) as err:
            parse("select distinct c.name from c in")
        assert "end of input" in str(err.value)


class TestSpanThreading:
    def test_generator_spans_reach_calculus(self):
        from repro.oql.translate import Translator

        term = Translator().translate_text(
            "select distinct h.name\nfrom c in Cities, h in c.hotels")
        spans = [span_of(q) for q in term.qualifiers]
        assert all(s is not None for s in spans)
        assert spans[0].line == 2 and spans[0].column == 6
        assert spans[1].line == 2 and spans[1].column == 19

    def test_spans_do_not_affect_equality(self):
        from repro.oql.translate import Translator

        a = Translator().translate_text("select distinct c.name from c in Cities")
        b = Translator().translate_text(
            "select distinct c.name\n\n  from c in Cities")
        assert a == b
        assert span_of(a.qualifiers[0]) != span_of(b.qualifiers[0])


class TestDidYouMean:
    def test_unbound_variable_error_suggests(self):
        err = UnboundVariableError("Citeis", candidates=["Cities", "Hotels"])
        assert "did you mean 'Cities'?" in str(err)
        assert err.suggestion == "Cities"

    def test_no_suggestion_when_far(self):
        err = UnboundVariableError("zzz", candidates=["Cities"])
        assert err.suggestion is None
        assert "did you mean" not in str(err)

    def test_evaluator_lookup_suggests(self, db):
        with pytest.raises(UnboundVariableError) as err:
            db.run("count(Citees)")
        assert err.value.suggestion == "Cities"
