"""Property-based soundness of normalization and planning.

Random *well-formed* comprehension terms (generator monoid properties
always a subset of the output monoid's, mirroring what the type checker
admits) are evaluated three ways:

1. directly (reference evaluator);
2. after normalization;
3. through the logical algebra + pipelined executor.

All three must agree. This is the strongest statement the library makes
about Table 3 and the evaluation sketch, so it gets the heaviest
randomized coverage.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import Executor, build_plan
from repro.calculus import (
    add,
    and_,
    comp,
    const,
    eq,
    filt,
    gen,
    gt,
    if_,
    lt,
    merge,
    mul,
    unit,
    var,
)
from repro.calculus.ast import Comprehension, Term
from repro.eval import Evaluator, evaluate
from repro.normalize import normalize
from repro.values import Bag

# The three base extents. Their monoids drive the well-formedness table.
_EXTENTS = {
    "Xs": ("list", lambda xs: tuple(xs)),
    "Ys": ("bag", lambda xs: Bag(xs)),
    "Zs": ("set", lambda xs: frozenset(xs)),
}

#: output monoid -> extent names usable as generator sources
_ALLOWED_SOURCES = {
    "list": ["Xs"],
    "bag": ["Xs", "Ys"],
    "sum": ["Xs", "Ys"],
    "set": ["Xs", "Ys", "Zs"],
    "max": ["Xs", "Ys", "Zs"],
    "some": ["Xs", "Ys", "Zs"],
}


def _head_strategy(bound_vars: list[str]):
    base = st.sampled_from([var(v) for v in bound_vars] + [const(1), const(3)])
    def widen(children):
        return st.one_of(
            st.tuples(children, children).map(lambda p: add(p[0], p[1])),
            st.tuples(children, children).map(lambda p: mul(p[0], p[1])),
            st.tuples(children, children, children).map(
                lambda p: if_(lt(p[0], p[1]), p[2], const(0))
            ),
        )
    return st.recursive(base, widen, max_leaves=4)


def _pred_strategy(bound_vars: list[str]):
    operand = st.sampled_from([var(v) for v in bound_vars] + [const(2), const(5)])
    simple = st.one_of(
        st.tuples(operand, operand).map(lambda p: lt(p[0], p[1])),
        st.tuples(operand, operand).map(lambda p: eq(p[0], p[1])),
        st.tuples(operand, operand).map(lambda p: gt(p[0], p[1])),
    )
    return st.one_of(
        simple,
        st.tuples(simple, simple).map(lambda p: and_(p[0], p[1])),
    )


@st.composite
def _source_strategy(draw, output_monoid: str, depth: int) -> Term:
    """A generator source: extent, nested comprehension, merge, or unit."""
    allowed = _ALLOWED_SOURCES[output_monoid]
    choice = draw(st.integers(0, 3 if depth > 0 else 1))
    extent = draw(st.sampled_from(allowed))
    if choice == 0 or choice == 1:
        return var(extent)
    if choice == 2:
        inner_monoid = _EXTENTS[extent][0]
        inner = draw(_comprehension_strategy(inner_monoid, depth - 1))
        return inner
    return merge(
        _EXTENTS[extent][0] if False else output_monoid_source(extent),
        var(extent),
        var(extent),
    )


def output_monoid_source(extent: str):
    return _EXTENTS[extent][0]


@st.composite
def _comprehension_strategy(draw, output_monoid: str, depth: int) -> Comprehension:
    n_gens = draw(st.integers(1, 2))
    qualifiers = []
    bound: list[str] = []
    for i in range(n_gens):
        name = f"v{depth}{i}"
        source = draw(_source_strategy(output_monoid, depth))
        qualifiers.append(gen(name, source))
        bound.append(name)
        if draw(st.booleans()):
            qualifiers.append(filt(draw(_pred_strategy(bound))))
    if output_monoid == "some":
        head = draw(_pred_strategy(bound))
    else:
        head = draw(_head_strategy(bound))
    return comp(output_monoid, head, qualifiers)


@st.composite
def _term_and_data(draw):
    output_monoid = draw(st.sampled_from(list(_ALLOWED_SOURCES)))
    term = draw(_comprehension_strategy(output_monoid, depth=2))
    data = {}
    for name, (_, build) in _EXTENTS.items():
        data[name] = build(draw(st.lists(st.integers(0, 6), max_size=5)))
    return term, data


@settings(max_examples=120, deadline=None)
@given(case=_term_and_data())
def test_normalization_preserves_semantics(case):
    term, data = case
    direct = evaluate(term, data)
    normalized = normalize(term)
    assert evaluate(normalized, data) == direct


@settings(max_examples=120, deadline=None)
@given(case=_term_and_data())
def test_algebra_agrees_with_evaluator(case):
    term, data = case
    direct = evaluate(term, data)
    plan = build_plan(term)
    executor = Executor(Evaluator(data))
    assert executor.execute(plan) == direct


@settings(max_examples=60, deadline=None)
@given(case=_term_and_data())
def test_normalization_is_idempotent(case):
    term, _ = case
    once = normalize(term)
    assert normalize(once) == once
