"""Unit tests for the primitive monoids (Table 1, lower half)."""


from repro.monoids import ALL, MAX, MIN, PROD, SOME, SUM


def test_sum_monoid():
    assert SUM.zero() == 0
    assert SUM.unit(5) == 5
    assert SUM.merge(2, 3) == 5
    assert SUM.commutative and not SUM.idempotent


def test_prod_monoid():
    assert PROD.zero() == 1
    assert PROD.merge(2, 3) == 6
    assert PROD.commutative and not PROD.idempotent


def test_max_monoid_with_identity():
    assert MAX.zero() is None
    assert MAX.merge(None, 5) == 5
    assert MAX.merge(5, None) == 5
    assert MAX.merge(3, 7) == 7
    assert MAX.commutative and MAX.idempotent


def test_min_monoid():
    assert MIN.merge(3, 7) == 3
    assert MIN.merge(None, 7) == 7
    assert MIN.commutative and MIN.idempotent


def test_max_over_strings():
    assert MAX.merge("apple", "pear") == "pear"


def test_some_monoid():
    assert SOME.zero() is False
    assert SOME.merge(False, True) is True
    assert SOME.merge(False, False) is False
    assert SOME.commutative and SOME.idempotent


def test_all_monoid():
    assert ALL.zero() is True
    assert ALL.merge(True, False) is False
    assert ALL.merge(True, True) is True


def test_merge_all_folds_from_zero():
    assert SUM.merge_all([1, 2, 3]) == 6
    assert MAX.merge_all([]) is None
    assert ALL.merge_all([True, True]) is True


def test_properties_sets():
    assert SUM.properties == frozenset({"commutative"})
    assert MAX.properties == frozenset({"commutative", "idempotent"})


def test_primitive_monoids_are_not_collections():
    assert not SUM.is_collection
    assert not SOME.is_collection


def test_monoid_equality_by_signature():
    assert SUM == SUM
    assert SUM != PROD
    assert len({SUM, SUM, PROD}) == 2


def test_repr():
    assert repr(SUM) == "<monoid sum>"
