"""Unit tests for OrderedSet — the oset monoid carrier."""

import pytest

from repro.values import OrderedSet


def test_deduplicates_preserving_first_occurrence():
    assert list(OrderedSet([1, 2, 1, 3, 2])) == [1, 2, 3]


def test_paper_merge_example():
    # The paper: [2,5,3,1] merged with [3,2,6] = [2,5,3,1,6]
    left = OrderedSet([2, 5, 3, 1])
    right = OrderedSet([3, 2, 6])
    assert list(left.union(right)) == [2, 5, 3, 1, 6]


def test_union_is_idempotent():
    x = OrderedSet([1, 2, 3])
    assert x.union(x) == x


def test_union_is_not_commutative():
    a = OrderedSet([1, 2])
    b = OrderedSet([2, 3])
    assert a.union(b) != b.union(a)


def test_union_is_associative():
    a, b, c = OrderedSet([1, 2]), OrderedSet([2, 3]), OrderedSet([3, 4, 1])
    assert a.union(b).union(c) == a.union(b.union(c))


def test_add_operator():
    assert (OrderedSet([1]) + OrderedSet([2])) == OrderedSet([1, 2])


def test_contains_is_fast_path():
    s = OrderedSet(range(100))
    assert 99 in s
    assert 100 not in s


def test_indexing_and_slicing():
    s = OrderedSet([10, 20, 30])
    assert s[0] == 10
    assert s[-1] == 30
    assert s[1:] == OrderedSet([20, 30])


def test_equality_respects_order():
    assert OrderedSet([1, 2]) != OrderedSet([2, 1])
    assert OrderedSet([1, 2]) == OrderedSet([1, 2, 2])


def test_hashable():
    assert len({OrderedSet([1, 2]), OrderedSet([1, 2])}) == 1


def test_empty():
    assert len(OrderedSet()) == 0
    assert list(OrderedSet()) == []


def test_immutability():
    s = OrderedSet([1])
    with pytest.raises(AttributeError):
        s.x = 1
