"""Exporters and the strict Prometheus parser: the round-trip
contract, OTLP document shape, StatsD lines, and the HTTP endpoint."""

import json
import math
import urllib.request

import pytest

from repro.obs.telemetry.export import (
    PROMETHEUS_CONTENT_TYPE,
    otlp_json,
    otlp_text,
    prometheus_text,
    statsd_lines,
)
from repro.obs.telemetry.promparse import PromParseError, parse_prometheus_text
from repro.obs.telemetry.registry import MetricsRegistry
from repro.obs.telemetry.server import MetricsServer


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    c = reg.counter("repro_queries_total", "queries", labels=("engine", "status"))
    c.inc(3, engine="algebra", status="ok")
    c.inc(engine="none", status="error")
    reg.gauge("repro_cache_entries", "entries", labels=("store",)).set(
        7, store="compiled"
    )
    h = reg.histogram("repro_query_seconds", "latency", buckets=(0.001, 0.01, 0.1))
    for v in (0.0005, 0.005, 0.05, 5.0):
        h.observe(v)
    reg.fingerprints.record("deadbeef0123", oql="count(Cities)", seconds=0.5, rows=1)
    return reg


class TestPrometheusRoundTrip:
    def test_scrape_parses_strictly(self, registry):
        families = parse_prometheus_text(prometheus_text(registry))
        assert set(families) >= {
            "repro_queries_total",
            "repro_cache_entries",
            "repro_query_seconds",
        }

    def test_counter_values_survive(self, registry):
        fams = parse_prometheus_text(prometheus_text(registry))
        q = fams["repro_queries_total"]
        assert q.type == "counter"
        assert q.value(engine="algebra", status="ok") == 3
        assert q.value(engine="none", status="error") == 1

    def test_histogram_buckets_cumulative(self, registry):
        fams = parse_prometheus_text(prometheus_text(registry))
        h = fams["repro_query_seconds"]
        assert h.type == "histogram"
        assert h.value("repro_query_seconds_count") == 4
        assert h.value("repro_query_seconds_bucket", le="0.001") == 1
        assert h.value("repro_query_seconds_bucket", le="0.1") == 3
        assert h.value("repro_query_seconds_bucket", le="+Inf") == 4
        assert h.value("repro_query_seconds_sum") == pytest.approx(5.0555)

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        weird = 'a"b\\c\nd'
        reg.counter("t_esc", "", labels=("x",)).inc(x=weird)
        fams = parse_prometheus_text(prometheus_text(reg))
        assert fams["t_esc"].value(x=weird) == 1

    def test_empty_registry_is_valid(self):
        assert parse_prometheus_text(prometheus_text(MetricsRegistry())) == {}

    def test_content_type_pinned(self):
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE


class TestStrictParser:
    def test_bad_metric_name(self):
        with pytest.raises(PromParseError):
            parse_prometheus_text("9bad_name 1\n")

    def test_unquoted_label_value(self):
        with pytest.raises(PromParseError):
            parse_prometheus_text("m{a=1} 1\n")

    def test_bad_escape(self):
        with pytest.raises(PromParseError):
            parse_prometheus_text('m{a="\\x"} 1\n')

    def test_duplicate_sample(self):
        with pytest.raises(PromParseError):
            parse_prometheus_text("m 1\nm 2\n")

    def test_non_contiguous_family(self):
        with pytest.raises(PromParseError):
            parse_prometheus_text("a 1\nb 1\na{x=\"y\"} 2\n")

    def test_bad_value(self):
        with pytest.raises(PromParseError):
            parse_prometheus_text("m one\n")

    def test_type_after_samples(self):
        with pytest.raises(PromParseError):
            parse_prometheus_text("m 1\n# TYPE m counter\n")

    def test_histogram_without_inf_bucket(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 1\n'
            "h_sum 0.05\n"
            "h_count 1\n"
        )
        with pytest.raises(PromParseError):
            parse_prometheus_text(text)

    def test_histogram_non_cumulative(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 0.05\n"
            "h_count 3\n"
        )
        with pytest.raises(PromParseError):
            parse_prometheus_text(text)

    def test_histogram_count_mismatch(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 0.05\n"
            "h_count 4\n"
        )
        with pytest.raises(PromParseError):
            parse_prometheus_text(text)

    def test_error_carries_line_number(self):
        try:
            parse_prometheus_text("ok 1\nbad@name 2\n")
        except PromParseError as err:
            assert err.lineno == 2
        else:  # pragma: no cover
            pytest.fail("expected PromParseError")

    def test_inf_and_nan_values(self):
        fams = parse_prometheus_text("m +Inf\nn NaN\n")
        assert fams["m"].value() == math.inf
        assert math.isnan(fams["n"].value())


class TestOtlp:
    def test_document_shape(self, registry):
        doc = otlp_json(registry, now_ns=123)
        scopes = doc["resourceMetrics"][0]["scopeMetrics"]
        metrics = {m["name"]: m for m in scopes[0]["metrics"]}
        counter = metrics["repro_queries_total"]
        assert counter["sum"]["isMonotonic"] is True
        assert counter["sum"]["aggregationTemporality"] == 2
        assert all(
            p["timeUnixNano"] == "123" for p in counter["sum"]["dataPoints"]
        )
        gauge = metrics["repro_cache_entries"]
        assert gauge["gauge"]["dataPoints"][0]["asDouble"] == 7.0

    def test_histogram_points(self, registry):
        doc = otlp_json(registry, now_ns=1)
        metrics = {
            m["name"]: m
            for m in doc["resourceMetrics"][0]["scopeMetrics"][0]["metrics"]
        }
        point = metrics["repro_query_seconds"]["histogram"]["dataPoints"][0]
        assert point["count"] == "4"
        assert len(point["bucketCounts"]) == len(point["explicitBounds"]) + 1
        assert point["min"] == pytest.approx(0.0005)
        assert point["max"] == pytest.approx(5.0)

    def test_hot_queries_attached(self, registry):
        doc = otlp_json(registry, now_ns=1)
        metrics = {
            m["name"]: m
            for m in doc["resourceMetrics"][0]["scopeMetrics"][0]["metrics"]
        }
        hot = metrics["repro.hot_queries"]["gauge"]["dataPoints"]
        attrs = {
            a["key"]: a["value"]["stringValue"] for a in hot[0]["attributes"]
        }
        assert attrs["fingerprint"] == "deadbeef0123"

    def test_text_is_json(self, registry):
        json.loads(otlp_text(registry, now_ns=1))


class TestStatsd:
    def test_counter_gauge_and_timer_lines(self, registry):
        lines = statsd_lines(registry)
        assert "repro.queries_total:3|c|#engine:algebra,status:ok" in lines
        assert "repro.cache_entries:7|g|#store:compiled" in lines
        assert any(
            line.startswith("repro.query_seconds.count:4|c") for line in lines
        )
        assert any(".p99:" in line and "|ms" in line for line in lines)


class TestHttpEndpoint:
    def test_scrape_and_health(self, registry):
        server = MetricsServer(registry, port=0).start()
        try:
            with urllib.request.urlopen(server.url) as resp:
                assert resp.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
                body = resp.read().decode("utf-8")
            fams = parse_prometheus_text(body)
            assert fams["repro_queries_total"].value(
                engine="algebra", status="ok"
            ) == 3
            base = server.url[: -len("/metrics")]
            with urllib.request.urlopen(base + "/healthz") as resp:
                assert resp.read() == b"ok\n"
            with urllib.request.urlopen(base + "/metrics.json") as resp:
                doc = json.loads(resp.read().decode("utf-8"))
            assert "resourceMetrics" in doc
        finally:
            server.stop()

    def test_404(self, registry):
        server = MetricsServer(registry, port=0).start()
        try:
            base = server.url[: -len("/metrics")]
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(base + "/nope")
        finally:
            server.stop()
