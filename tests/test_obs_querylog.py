"""The structured query log: fingerprints, entries, thresholds, sinks."""

import json

import pytest

from repro.db import demo_travel_database
from repro.obs.querylog import QueryLog, oql_fingerprint, query_log_entry

QUERY = (
    "select distinct h.name from c in Cities, h in c.hotels "
    "where h.stars >= 2"
)


@pytest.fixture
def db():
    return demo_travel_database(num_cities=4, seed=7)


class TestFingerprint:
    def test_stable_and_short(self):
        assert oql_fingerprint("count(Cities)") == oql_fingerprint("count(Cities)")
        assert len(oql_fingerprint("count(Cities)")) == 12
        int(oql_fingerprint("count(Cities)"), 16)  # hex

    def test_whitespace_insensitive(self):
        assert oql_fingerprint(" count(Cities)\n") == oql_fingerprint("count(Cities)")

    def test_distinct_queries_differ(self):
        assert oql_fingerprint("count(Cities)") != oql_fingerprint("count(Hotels)")


class TestEntry:
    def test_full_entry_shape(self, db):
        db.profile(True, slow_ms=60_000.0)
        result = db.run_detailed(QUERY)
        entry = db.query_log.entries[-1]
        assert entry["event"] == "query"
        assert entry["oql_sha256"] == oql_fingerprint(QUERY)
        assert entry["engine"] == "algebra"
        assert entry["total_ms"] >= 0
        assert "execute" in entry["phases_ms"]
        assert entry["stats"] == result.stats.as_dict()
        assert entry["rule_fires"] == dict(
            sorted(result.trace.rule_counts().items())
        )
        assert entry["slow"] is False
        json.dumps(entry)

    def test_no_threshold_no_slow_key(self, db):
        db.profile(True)
        db.run(QUERY)
        assert "slow" not in db.query_log.entries[-1]

    def test_entry_without_span_degrades(self, db):
        result = db.run_detailed(QUERY)
        entry = query_log_entry(result, None, slow_ms=1.0)
        assert entry["engine"] == "algebra"
        assert "total_ms" not in entry
        assert "phases_ms" not in entry
        assert "slow" not in entry


class TestThreshold:
    def test_zero_threshold_marks_everything_slow(self, db):
        db.profile(True, slow_ms=0.0)
        db.run(QUERY)
        db.run("count(Cities)")
        assert [e["slow"] for e in db.query_log.entries] == [True, True]
        assert db.query_log.slow_queries() == db.query_log.entries

    def test_high_threshold_marks_nothing(self, db):
        db.profile(True, slow_ms=60_000.0)
        db.run(QUERY)
        assert db.query_log.slow_queries() == []


class TestSink:
    def test_streams_one_json_line_per_query(self, db):
        lines = []
        db.profile(True, sink=lines.append)
        db.run(QUERY)
        db.run("count(Cities)")
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed == db.query_log.entries
        assert parsed[1]["oql_sha256"] == oql_fingerprint("count(Cities)")

    def test_sorted_keys_for_stable_diffs(self, db):
        lines = []
        db.profile(True, sink=lines.append)
        db.run("count(Cities)")
        keys = list(json.loads(lines[0]))
        assert keys == sorted(keys)


class TestLifecycle:
    def test_record_returns_the_entry(self, db):
        db.profile(True)
        result = db.run_detailed("count(Cities)")
        log = QueryLog()
        entry = log.record(result, result.span)
        assert log.entries == [entry]

    def test_clear(self, db):
        db.profile(True)
        db.run("count(Cities)")
        db.query_log.clear()
        assert db.query_log.entries == []

    def test_interpreter_queries_are_logged_too(self, db):
        db.profile(True)
        db.run("count(Cities)")  # Call term: reference interpreter
        entry = db.query_log.entries[-1]
        assert entry["engine"] == "interpret"
        assert "execute" in entry["phases_ms"]
        assert "plan" not in entry["phases_ms"]


class TestFileRotation:
    def test_writes_jsonl_to_path(self, db, tmp_path):
        log_path = tmp_path / "query.log"
        db.profile(True, path=str(log_path))
        db.run(QUERY)
        db.run("count(Cities)")
        lines = log_path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        assert [json.loads(l) for l in lines] == db.query_log.entries

    def test_rotates_before_crossing_max_bytes(self, db, tmp_path):
        log_path = tmp_path / "query.log"
        db.profile(True, path=str(log_path), max_bytes=400, backups=2)
        for _ in range(12):
            db.run("count(Cities)")
        log = db.query_log
        assert log.rotations >= 1
        # Current file stays under the cap; backups exist, newest first.
        assert log_path.stat().st_size <= 400
        files = log.log_files()
        assert files[0] == str(log_path)
        assert len(files) >= 2
        # No entry was split: every line in every file parses.
        total_lines = 0
        for path in files:
            for line in open(path, encoding="utf-8"):
                json.loads(line)
                total_lines += 1
        # backups=2 bounds retention, so we keep at most 3 files' worth
        assert total_lines <= 12
        assert total_lines == sum(
            len(open(p, encoding="utf-8").readlines()) for p in files
        )

    def test_backup_count_bounded(self, db, tmp_path):
        log_path = tmp_path / "query.log"
        db.profile(True, path=str(log_path), max_bytes=200, backups=1)
        for _ in range(20):
            db.run("count(Cities)")
        assert not (tmp_path / "query.log.2").exists()
        assert (tmp_path / "query.log.1").exists()

    def test_zero_backups_discards_old_files(self, db, tmp_path):
        log_path = tmp_path / "query.log"
        db.profile(True, path=str(log_path), max_bytes=200, backups=0)
        for _ in range(10):
            db.run("count(Cities)")
        assert db.query_log.rotations >= 1
        assert not (tmp_path / "query.log.1").exists()

    def test_manual_rotate_without_path_is_noop(self):
        log = QueryLog()
        log.rotate()
        assert log.rotations == 0

    def test_no_max_bytes_never_rotates(self, db, tmp_path):
        log_path = tmp_path / "query.log"
        db.profile(True, path=str(log_path))
        for _ in range(10):
            db.run("count(Cities)")
        assert db.query_log.rotations == 0
        assert db.query_log.log_files() == [str(log_path)]
