"""Registry lookups and the regenerated Table 1."""

import pytest

from repro.errors import MonoidError, UnknownMonoidError
from repro.monoids import (
    MonoidRegistry,
    PrimitiveMonoid,
    default_registry,
    get_monoid,
    table1,
)


def test_default_registry_has_table1_monoids():
    registry = default_registry()
    for name in ("list", "set", "bag", "oset", "string",
                 "sum", "prod", "max", "min", "some", "all"):
        assert name in registry
        assert registry.get(name).name == name


def test_get_monoid_shorthand():
    assert get_monoid("bag").name == "bag"


def test_unknown_monoid_error_lists_known():
    with pytest.raises(UnknownMonoidError) as err:
        get_monoid("nope")
    assert "nope" in str(err.value)
    assert "bag" in str(err.value)


def test_user_registration():
    registry = MonoidRegistry()
    gcd_monoid = PrimitiveMonoid(
        "gcd", 0, lambda a, b: _gcd(a, b), commutative=True, idempotent=True
    )
    registry.register(gcd_monoid)
    assert registry.get("gcd").merge(12, 18) == 6


def test_duplicate_registration_rejected():
    registry = MonoidRegistry()
    m = PrimitiveMonoid("m", 0, lambda a, b: a + b)
    registry.register(m)
    with pytest.raises(MonoidError):
        registry.register(m)
    registry.register(m, replace=True)  # explicit replace is fine


def test_names_sorted():
    registry = default_registry()
    assert registry.names() == sorted(registry.names())


class TestTable1:
    def test_row_count_and_columns(self):
        rows = table1()
        assert len(rows) == 12
        for row in rows:
            assert set(row) == {"monoid", "type", "zero", "unit", "merge", "C/I"}

    def test_ci_column_matches_paper(self):
        flags = {row["monoid"]: row["C/I"] for row in table1()}
        assert flags["list"] == "-"
        assert flags["set"] == "CI"
        assert flags["bag"] == "C"
        assert flags["oset"] == "I"
        assert flags["string"] == "-"
        assert flags["sorted[f]"] == "CI"
        assert flags["sum"] == "C"
        assert flags["max"] == "CI"
        assert flags["some"] == "CI"
        assert flags["all"] == "CI"

    def test_type_column_sorted_and_oset_are_lists(self):
        types = {row["monoid"]: row["type"] for row in table1()}
        assert types["oset"] == "list(a)"
        assert types["sorted[f]"] == "list(a)"


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a
