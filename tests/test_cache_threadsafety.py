"""Threaded interleaving harness for the cache layer.

The LRU stores and the QueryCache's lookup + version-check + stats
sequences must be atomic under concurrent ``Database.run``: no corrupt
``OrderedDict`` state, no lost counter increments, no capacity
overshoot, no stale entry surviving an invalidation.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.cache.core import (
    MISSING,
    CacheConfig,
    CompiledQuery,
    LRUCache,
    QueryCache,
)

THREADS = 8
ROUNDS = 300


def run_threads(work):
    """Start THREADS workers on ``work(thread_index)`` simultaneously."""
    barrier = threading.Barrier(THREADS)

    def go(index):
        barrier.wait()
        return work(index)

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        futures = [pool.submit(go, i) for i in range(THREADS)]
        return [future.result() for future in futures]


# -- LRUCache ----------------------------------------------------------------


def test_lru_concurrent_put_get_respects_capacity():
    cache = LRUCache(max_entries=16)

    def work(index):
        for round_no in range(ROUNDS):
            key = (index * ROUNDS + round_no) % 40
            cache.put(key, key)
            value = cache.get(key)
            assert value is MISSING or value == key
            len(cache)
            cache.keys()

    run_threads(work)
    assert len(cache) <= 16


def test_lru_eviction_callback_fires_once_per_displacement():
    evicted = []
    lock = threading.Lock()

    def on_evict(key, value):
        with lock:
            evicted.append(key)

    cache = LRUCache(max_entries=4, on_evict=on_evict)
    total = THREADS * ROUNDS

    def work(index):
        for round_no in range(ROUNDS):
            cache.put((index, round_no), round_no)

    run_threads(work)
    # every put except the 4 survivors displaced exactly one entry
    assert len(evicted) == total - len(cache)
    assert len(cache) == 4


def test_lru_concurrent_remove_and_clear_are_safe():
    cache = LRUCache(max_entries=64)

    def work(index):
        for round_no in range(ROUNDS):
            cache.put(round_no % 50, index)
            if round_no % 7 == 0:
                cache.remove(round_no % 50)
            if index == 0 and round_no % 97 == 0:
                cache.clear()
            assert len(cache) <= 64

    run_threads(work)


# -- QueryCache --------------------------------------------------------------


def entry(version):
    return CompiledQuery(
        oql="q",
        engine="algebra",
        typecheck=False,
        key="canon",
        calculus=None,
        normalized=None,
        trace=None,
        kind="algebra",
        plan=None,
        phases=(),
        extents=frozenset(),
        result_cacheable=True,
        params=(),
        version=version,
    )


def test_querycache_compile_counters_are_exact():
    cache = QueryCache(CacheConfig(max_entries=128))
    cache.remember("text", "canon", entry(version=1))

    def work(index):
        hits = 0
        for _ in range(ROUNDS):
            if cache.compiled_by_text("text", version=1) is not None:
                hits += 1
        return hits

    results = run_threads(work)
    assert sum(results) == THREADS * ROUNDS
    assert cache.stats.compile_hits == THREADS * ROUNDS
    assert cache.stats.compile_misses == 1


def test_querycache_result_counters_are_exact():
    cache = QueryCache(CacheConfig(result_max_entries=64))
    cache.remember_result("key", versions=(1,), value=42)

    def work(index):
        hits = misses = 0
        for round_no in range(ROUNDS):
            hit, value = cache.result_for("key", versions=(1,))
            if hit:
                assert value == 42
                hits += 1
            ok, _ = cache.result_for(("miss", index, round_no), versions=(1,))
            assert not ok
            misses += 1
        return hits, misses

    results = run_threads(work)
    assert sum(h for h, _ in results) == THREADS * ROUNDS
    assert cache.stats.result_hits == THREADS * ROUNDS
    assert cache.stats.result_misses == THREADS * ROUNDS


def test_querycache_concurrent_invalidation_drops_entry_exactly_once():
    cache = QueryCache(CacheConfig(max_entries=32))

    def work(index):
        invalidated = 0
        for round_no in range(ROUNDS // 10):
            cache.remember(f"t{index}", "canon", entry(version=round_no))
            # probing with a different version invalidates atomically
            if cache.compiled_by_canon("canon", version=round_no + 1) is None:
                invalidated += 1
        return invalidated

    run_threads(work)
    # the stats sequence never lost an update: every recorded event is
    # one of the four counters, and sizes stay within capacity
    sizes = cache.sizes()
    assert sizes["compiled_entries"] <= 32
    stats = cache.stats_dict()
    assert stats["invalidations"] <= stats["compile_misses"]


def test_querycache_clear_races_with_lookups():
    cache = QueryCache(CacheConfig(max_entries=32, result_max_entries=32))

    def work(index):
        for round_no in range(ROUNDS):
            cache.remember_result((index, round_no % 8), (1,), round_no)
            cache.result_for((index, round_no % 8), (1,))
            if index == 0 and round_no % 50 == 0:
                cache.clear()
            cache.stats_dict()

    run_threads(work)
    assert cache.sizes()["result_entries"] <= 32
