"""Property-style equivalence: for every monoid in the catalog, a
partitioned parallel fold equals the serial fold — over randomized
data, randomized predicates and randomized partition shapes, including
more workers than elements, one-element extents and empty extents.

This is the executable form of the paper's section-2 argument: Reduce
is a monoid homomorphism, so any partition of the input recombined
with ``combine_partials`` (in partition order for non-commutative
monoids) is the same homomorphism.
"""

import random

import pytest

from repro.algebra import Executor, Reduce, Scan, SelectOp
from repro.calculus import const, gt, lam, proj, tup, var
from repro.calculus.ast import MonoidRef
from repro.eval import Evaluator
from repro.parallel import ParallelConfig, ParallelExecutor
from repro.values import Record, to_python

SIZES = [0, 1, 3, 7, 40, 101]
WORKER_COUNTS = [2, 3, 5, 8, 200]  # 200 > every extent size used here


def records(rng, n):
    return tuple(
        Record(v=rng.randint(-50, 50), s=rng.choice("abcde")) for _ in range(n)
    )


def run_both(plan, env, workers, morsel_size=None):
    serial = Executor(Evaluator(env)).execute(plan)
    pex = ParallelExecutor(
        Evaluator(env),
        config=ParallelConfig(
            max_workers=workers, min_partition_rows=1, morsel_size=morsel_size
        ),
    )
    return serial, pex.execute(plan)


def spine(rng):
    """A scan, sometimes behind a randomized filter."""
    scan = Scan("x", var("Xs"))
    if rng.random() < 0.5:
        return SelectOp(scan, gt(proj(var("x"), "v"), const(rng.randint(-50, 50))))
    return scan


# -- Table 1 primitive monoids ------------------------------------------------

INT_PRIMITIVES = ["sum", "prod", "max", "min"]
BOOL_PRIMITIVES = ["some", "all"]


@pytest.mark.parametrize("name", INT_PRIMITIVES)
def test_int_primitive_monoids(name):
    rng = random.Random(f"prim-{name}")
    for n in SIZES:
        env = {"Xs": records(rng, n)}
        plan = Reduce(MonoidRef(name), proj(var("x"), "v"), spine(rng))
        workers = rng.choice(WORKER_COUNTS)
        serial, par = run_both(plan, env, workers, rng.choice([None, 1, 3]))
        assert serial == par, (name, n, workers)


@pytest.mark.parametrize("name", BOOL_PRIMITIVES)
def test_bool_primitive_monoids(name):
    rng = random.Random(f"bool-{name}")
    for n in SIZES:
        env = {"Xs": records(rng, n)}
        plan = Reduce(
            MonoidRef(name),
            gt(proj(var("x"), "v"), const(rng.randint(-50, 50))),
            spine(rng),
        )
        serial, par = run_both(plan, env, rng.choice(WORKER_COUNTS))
        assert serial == par, (name, n)


# -- collection monoids -------------------------------------------------------

COLLECTIONS = ["set", "bag", "list", "oset"]


@pytest.mark.parametrize("name", COLLECTIONS)
def test_collection_monoids(name):
    rng = random.Random(f"coll-{name}")
    for n in SIZES:
        env = {"Xs": records(rng, n)}
        plan = Reduce(MonoidRef(name), proj(var("x"), "v"), spine(rng))
        workers = rng.choice(WORKER_COUNTS)
        serial, par = run_both(plan, env, workers, rng.choice([None, 1, 5]))
        assert to_python(serial) == to_python(par), (name, n, workers)


def test_string_monoid_preserves_order():
    rng = random.Random("string")
    for n in SIZES:
        env = {"Xs": records(rng, n)}
        plan = Reduce(MonoidRef("string"), proj(var("x"), "s"), spine(rng))
        serial, par = run_both(plan, env, rng.choice(WORKER_COUNTS))
        assert serial == par, n


@pytest.mark.parametrize("name", ["sorted", "sortedbag"])
def test_sorted_monoids(name):
    rng = random.Random(f"sorted-{name}")
    for n in SIZES:
        env = {"Xs": records(rng, n)}
        ref = MonoidRef(name, key=lam("e", var("e")))
        plan = Reduce(ref, proj(var("x"), "v"), spine(rng))
        serial, par = run_both(plan, env, rng.choice(WORKER_COUNTS))
        assert to_python(serial) == to_python(par), (name, n)


def test_vector_monoid():
    rng = random.Random("vec")
    for n in SIZES:
        env = {"Xs": records(rng, n)}
        ref = MonoidRef("vec", element=MonoidRef("sum"), size=const(n))
        plan = Reduce(
            ref,
            tup(proj(var("x"), "v"), var("i")),
            Scan("x", var("Xs"), "i"),
        )
        serial, par = run_both(plan, env, rng.choice(WORKER_COUNTS))
        assert to_python(serial) == to_python(par), n


# -- partition-shape edge cases ----------------------------------------------


def test_single_row_extent():
    env = {"Xs": (Record(v=7, s="a"),)}
    plan = Reduce(MonoidRef("list"), proj(var("x"), "v"), Scan("x", var("Xs")))
    serial, par = run_both(plan, env, 8)
    assert serial == par == (7,)


def test_empty_extent_every_monoid():
    env = {"Xs": ()}
    for name in INT_PRIMITIVES + BOOL_PRIMITIVES + COLLECTIONS + ["string"]:
        plan = Reduce(MonoidRef(name), proj(var("x"), "v"), Scan("x", var("Xs")))
        serial, par = run_both(plan, env, 4)
        assert serial == par, name


def test_morsel_size_one_means_one_partition_per_row():
    rng = random.Random("morsel-1")
    env = {"Xs": records(rng, 23)}
    plan = Reduce(MonoidRef("list"), proj(var("x"), "v"), Scan("x", var("Xs")))
    serial = Executor(Evaluator(env)).execute(plan)
    pex = ParallelExecutor(
        Evaluator(env),
        config=ParallelConfig(max_workers=4, min_partition_rows=1, morsel_size=1),
    )
    assert pex.execute(plan) == serial
    assert pex.stats.partitions == 23
