"""Section 4.1: vector comprehensions and the example library."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calculus import comp, const, gen, sub, var
from repro.errors import MonoidError
from repro.eval import evaluate
from repro.values import Vector
from repro.vectors import (
    at,
    fft_query,
    histogram_query,
    inner_product_query,
    matmul_query,
    permute_query,
    reverse_query,
    subsequence_query,
    transpose_query,
    vcomp,
)


class TestVectorComprehensionCore:
    def test_reverse_comprehension_term(self):
        """The paper's vec[n]{ a @ (n-1-i) | a[i] <- x }."""
        n = 4
        term = vcomp(
            "sum", n, var("a"), sub(const(n - 1), var("i")), [gen("a", var("x"), at="i")]
        )
        out = evaluate(term, {"x": Vector.from_dense([1, 2, 3, 4])})
        assert out.to_list() == [4, 3, 2, 1]

    def test_head_must_be_pair(self):
        term = comp("sum", var("a"), [gen("a", var("x"), at="i")])
        # plain sum head is fine; but a vec monoid demands (value, index)
        bad = vcomp("sum", 2, var("a"), var("i"), [gen("a", var("x"), at="i")])
        from repro.calculus.ast import Comprehension

        broken = Comprehension(bad.monoid, var("a"), bad.qualifiers)
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError):
            evaluate(broken, {"x": Vector.from_dense([1, 2])})

    def test_collisions_merge_with_element_monoid(self):
        term = vcomp("sum", 1, var("a"), const(0), [gen("a", var("x"), at="i")])
        out = evaluate(term, {"x": Vector.from_dense([1, 2, 3])})
        assert out.to_list() == [6]

    def test_vector_size_may_be_expression(self):
        term = vcomp("sum", var("n"), var("a"), var("i"), [gen("a", var("x"), at="i")])
        out = evaluate(term, {"n": 2, "x": Vector.from_dense([5, 6])})
        assert out.to_list() == [5, 6]

    def test_bad_vector_size(self):
        from repro.errors import EvaluationError

        term = vcomp("sum", const(-1), const(1), const(0), [])
        with pytest.raises(EvaluationError):
            evaluate(term)


class TestExampleLibrary:
    def test_reverse(self):
        assert reverse_query([1, 2, 3, 4]) == [4, 3, 2, 1]
        assert reverse_query([]) == []

    def test_subsequence(self):
        assert subsequence_query([10, 20, 30, 40, 50], 1, 4) == [20, 30, 40]
        assert subsequence_query([1, 2], 0, 0) == []

    def test_permute(self):
        assert permute_query(["a", "b", "c"], [2, 0, 1]) == ["b", "c", "a"]

    def test_permute_rejects_non_bijection(self):
        with pytest.raises(ValueError):
            permute_query([1, 2], [0, 0])

    def test_cell_monoid_collision_is_error(self):
        from repro.monoids import get_monoid

        cell = get_monoid("cell")
        with pytest.raises(MonoidError):
            cell.merge(1, 2)
        assert cell.merge(None, 5) == 5

    def test_inner_product(self):
        assert inner_product_query([1, 2, 3], [4, 5, 6]) == 32
        assert inner_product_query([], []) == 0

    def test_inner_product_length_mismatch(self):
        with pytest.raises(ValueError):
            inner_product_query([1], [1, 2])

    def test_transpose(self):
        assert transpose_query([[1, 2, 3], [4, 5, 6]]) == [[1, 4], [2, 5], [3, 6]]

    def test_matmul(self):
        assert matmul_query([[1, 2], [3, 4]], [[5, 6], [7, 8]]) == [[19, 22], [43, 50]]

    def test_matmul_dimension_check(self):
        with pytest.raises(ValueError):
            matmul_query([[1, 2, 3]], [[1], [2]])

    def test_matmul_matches_numpy(self):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 9, (3, 4)).tolist()
        b = rng.integers(0, 9, (4, 2)).tolist()
        assert matmul_query(a, b) == (np.array(a) @ np.array(b)).tolist()

    def test_histogram(self):
        assert histogram_query([0, 1, 1, 2, 5], buckets=3, width=2) == [3, 1, 1]


class TestFFT:
    def test_impulse(self):
        out = fft_query([1, 0, 0, 0])
        assert all(abs(v - 1) < 1e-12 for v in out)

    def test_constant_signal(self):
        out = fft_query([1, 1, 1, 1])
        assert abs(out[0] - 4) < 1e-12
        assert all(abs(v) < 1e-12 for v in out[1:])

    def test_matches_numpy_various_sizes(self):
        rng = np.random.default_rng(7)
        for n in (1, 2, 4, 8, 16, 32):
            xs = rng.normal(size=n).tolist()
            mine = fft_query(xs)
            ref = np.fft.fft(xs)
            assert max(abs(m - r) for m, r in zip(mine, ref)) < 1e-9

    def test_complex_input(self):
        xs = [1 + 2j, -1j, 0.5, 2]
        mine = fft_query(xs)
        ref = np.fft.fft(xs)
        assert max(abs(m - r) for m, r in zip(mine, ref)) < 1e-9

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            fft_query([1, 2, 3])

    def test_empty(self):
        assert fft_query([]) == []


@settings(max_examples=40, deadline=None)
@given(xs=st.lists(st.integers(-10, 10), min_size=1, max_size=12))
def test_reverse_is_involution(xs):
    assert reverse_query(reverse_query(xs)) == xs


@settings(max_examples=40, deadline=None)
@given(xs=st.lists(st.integers(-5, 5), min_size=1, max_size=8))
def test_inner_product_with_self_is_nonnegative(xs):
    assert inner_product_query(xs, xs) == sum(x * x for x in xs)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(1, 4).flatmap(
        lambda n: st.permutations(list(range(n))).map(lambda p: (n, p))
    )
)
def test_permutation_is_invertible(case):
    n, p = case
    values = [f"v{i}" for i in range(n)]
    permuted = permute_query(values, p)
    inverse = [0] * n
    for i, target in enumerate(p):
        inverse[target] = i
    assert permute_query(permuted, inverse) == values
