"""Unit tests for canonical ordering and to_python conversion."""

from repro.values import (
    Bag,
    OrderedSet,
    Record,
    Vector,
    canonical_key,
    canonical_sorted,
    to_python,
)


def test_total_order_across_types():
    values = ["z", 3, True, None, (1,)]
    ordered = canonical_sorted(values)
    assert ordered == [None, True, 3, "z", (1,)]


def test_bool_ranks_before_numbers():
    assert canonical_sorted([1, False]) == [False, 1]


def test_numbers_sort_numerically():
    assert canonical_sorted([2.5, 1, 3]) == [1, 2.5, 3]


def test_tuples_sort_lexicographically():
    assert canonical_sorted([(2, 1), (1, 9), (1, 2)]) == [(1, 2), (1, 9), (2, 1)]


def test_sets_sort_by_sorted_contents():
    a = frozenset({3, 1})
    b = frozenset({2})
    assert canonical_sorted([a, b]) == [a, b] or canonical_sorted([a, b]) == [b, a]
    # deterministic across calls
    assert canonical_sorted([a, b]) == canonical_sorted([b, a])


def test_records_sort_by_fields():
    a = Record(x=1)
    b = Record(x=2)
    assert canonical_sorted([b, a]) == [a, b]


def test_bags_and_osets_have_keys():
    assert canonical_key(Bag([1, 1]))[0] != canonical_key(OrderedSet([1]))[0]


def test_sorting_is_deterministic_for_mixed_nested_values():
    values = [Bag([1]), frozenset({1}), (1,), OrderedSet([1]), Record(a=1)]
    assert canonical_sorted(values) == canonical_sorted(list(reversed(values)))


def test_to_python_list_monoid_tuple():
    assert to_python((1, 2, 3)) == [1, 2, 3]


def test_to_python_nested():
    value = Record(a=(1, 2), b=Bag(["x"]))
    assert to_python(value) == {"a": [1, 2], "b": ["x"]}


def test_to_python_set_of_tuples():
    out = to_python(frozenset({(1, 2)}))
    assert out == {(1, 2)}


def test_to_python_vector():
    assert to_python(Vector.from_dense([1, 2])) == [1, 2]


def test_to_python_scalars_pass_through():
    assert to_python(42) == 42
    assert to_python("s") == "s"
    assert to_python(None) is None
