"""Phase spans: nesting, export forms, and the disabled no-op path."""

import json

from repro.obs.tracer import Tracer, TraceSpan, _NULL_SPAN, render_span


class TestDisabledTracer:
    def test_span_is_the_shared_null_context(self):
        tracer = Tracer()
        assert tracer.span("query") is _NULL_SPAN
        assert tracer.span("other", key="value") is _NULL_SPAN

    def test_null_context_yields_none_and_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("query") as span:
            assert span is None
        assert tracer.roots == []
        assert tracer.to_events() == []
        assert tracer.render() == ""


class TestEnabledTracer:
    def test_nesting_and_roots(self):
        tracer = Tracer(enabled=True)
        with tracer.span("query") as q:
            with tracer.span("parse"):
                pass
            with tracer.span("execute"):
                pass
        assert tracer.roots == [q]
        assert [c.name for c in q.children] == ["parse", "execute"]
        assert q.duration > 0
        assert all(c.duration <= q.duration for c in q.children)

    def test_meta_is_kept_per_span(self):
        tracer = Tracer(enabled=True)
        with tracer.span("query", oql_sha256="abc123") as q:
            pass
        assert q.meta == {"oql_sha256": "abc123"}

    def test_span_finishes_on_exception(self):
        tracer = Tracer(enabled=True)
        try:
            with tracer.span("query"):
                with tracer.span("parse"):
                    raise ValueError("boom")
        except ValueError:
            pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.duration > 0
        assert [c.name for c in root.children] == ["parse"]
        # the stack unwound: a new span is a fresh root, not a child
        with tracer.span("next"):
            pass
        assert [r.name for r in tracer.roots] == ["query", "next"]

    def test_reset_drops_finished_roots(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.roots == []


class TestTraceSpan:
    def test_child_lookup(self):
        span = TraceSpan("query", 0.0)
        parse = TraceSpan("parse", 0.0, 0.001)
        span.children.append(parse)
        assert span.child("parse") is parse
        assert span.child("missing") is None

    def test_phase_times_accumulate_repeated_names(self):
        span = TraceSpan("query", 0.0)
        span.children.append(TraceSpan("execute", 0.0, 0.001))
        span.children.append(TraceSpan("execute", 0.0, 0.002))
        span.children.append(TraceSpan("parse", 0.0, 0.0005))
        phases = span.phase_times_ms()
        assert abs(phases["execute"] - 3.0) < 1e-9
        assert abs(phases["parse"] - 0.5) < 1e-9

    def test_duration_ms(self):
        assert TraceSpan("x", 0.0, 0.25).duration_ms == 250.0

    def test_to_dict_shape(self):
        span = TraceSpan("query", 0.0, 0.001, meta={"k": "v"})
        span.children.append(TraceSpan("parse", 0.0, 0.0002))
        doc = span.to_dict()
        assert doc["name"] == "query"
        assert doc["meta"] == {"k": "v"}
        assert [c["name"] for c in doc["children"]] == ["parse"]
        # leaves omit the optional keys entirely
        assert set(doc["children"][0]) == {"name", "duration_ms"}
        json.dumps(doc)  # JSON-ready


class TestEvents:
    def make_tracer(self):
        tracer = Tracer(enabled=True)
        with tracer.span("query", oql_sha256="aa"):
            with tracer.span("parse"):
                pass
            with tracer.span("execute"):
                pass
        with tracer.span("query"):
            pass
        return tracer

    def test_preorder_and_parent_indices(self):
        events = self.make_tracer().to_events()
        assert [e["name"] for e in events] == ["query", "parse", "execute", "query"]
        assert [e["parent"] for e in events] == [None, 0, 0, None]

    def test_start_ms_relative_to_first_root(self):
        events = self.make_tracer().to_events()
        assert events[0]["start_ms"] == 0.0
        assert all(e["start_ms"] >= 0.0 for e in events)
        json.dumps(events)  # JSON-ready

    def test_meta_only_where_present(self):
        events = self.make_tracer().to_events()
        assert events[0]["meta"] == {"oql_sha256": "aa"}
        assert "meta" not in events[1]


class TestRender:
    def test_render_span_indents_children(self):
        span = TraceSpan("query", 0.0, 0.002)
        span.children.append(TraceSpan("parse", 0.0, 0.001))
        text = render_span(span)
        lines = text.splitlines()
        assert lines[0].startswith("query")
        assert lines[1].startswith("  parse")
        assert "ms" in lines[0]

    def test_tracer_render_joins_roots(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        rendered = tracer.render()
        assert rendered.splitlines()[0].startswith("a")
        assert rendered.splitlines()[1].startswith("b")
