"""The result cache never serves a stale answer.

Every mutation path the object layer offers — update programs
(``set_field`` / ``add_to_field`` / ``update_where``), direct registry
creates and removes, store-level assigns and deletes, extent reloads,
index creation — runs against a warm cache, and the cached database is
asserted value-equal to an uncached twin after every step (the
property-style suite drives a seeded random interleaving of the lot).
"""

import random

import pytest

from repro.calculus import const, eq, gt, proj, var
from repro.db.database import Database
from repro.db.sample_data import travel_schema
from repro.objects import add_to_field, run_update, set_field, update_where
from repro.values import to_python

QUERIES = (
    "select distinct c.name from c in Cities",
    "sum(select c.hotel_count from c in Cities)",
    "select distinct c.name from c in Cities where c.hotel_count > 2",
    "count(Cities)",
)


def _rows(n):
    return [
        {"name": f"C{i}", "hotels": set(), "hotel_count": i % 4,
         "population": 1000 * (i + 1), "state": "OR" if i % 2 else "WA"}
        for i in range(n)
    ]


def _object_db(n=8):
    db = Database(travel_schema())
    db.load_objects("Cities", "City", _rows(n))
    return db


def _twin_pair(n=8):
    plain = _object_db(n)
    cached = _object_db(n)
    cached.enable_cache()
    return plain, cached


def _assert_agree(plain, cached):
    for oql in QUERIES:
        assert to_python(cached.run(oql)) == to_python(plain.run(oql)), oql


class TestUpdatePrograms:
    def test_add_to_field_invalidates(self):
        plain, cached = _twin_pair()
        _assert_agree(plain, cached)  # cold
        _assert_agree(plain, cached)  # warm (result hits)
        program = update_where(
            "Cities", "c", gt(proj(var("c"), "population"), const(3000)),
            [add_to_field("hotel_count", const(10))],
        )
        run_update(program, plain.evaluator())
        run_update(program, cached.evaluator())
        _assert_agree(plain, cached)
        assert cached.cache.stats.invalidations > 0

    def test_set_field_invalidates(self):
        plain, cached = _twin_pair()
        _assert_agree(plain, cached)
        program = update_where(
            "Cities", "c", eq(proj(var("c"), "name"), const("C0")),
            [set_field("name", const("Renamed"))],
        )
        run_update(program, plain.evaluator())
        run_update(program, cached.evaluator())
        _assert_agree(plain, cached)
        assert "Renamed" in to_python(cached.run(QUERIES[0]))


class TestDirectStoreMutations:
    def test_registry_create_invalidates(self):
        plain, cached = _twin_pair()
        _assert_agree(plain, cached)
        attrs = {"name": "New", "hotels": set(), "hotel_count": 9,
                 "population": 1, "state": "OR"}
        plain.registry.create("City", dict(attrs))
        cached.registry.create("City", dict(attrs))
        _assert_agree(plain, cached)
        assert "New" in to_python(cached.run(QUERIES[0]))

    def test_registry_remove_invalidates(self):
        plain, cached = _twin_pair()
        _assert_agree(plain, cached)
        def remove_named(db, name):
            for obj in db.registry.extent("Cities"):
                if db.store.deref(obj)["name"] == name:
                    db.registry.remove(obj)
                    return

        remove_named(plain, "C3")
        remove_named(cached, "C3")
        _assert_agree(plain, cached)
        assert "C3" not in to_python(cached.run(QUERIES[0]))

    def test_store_assign_invalidates(self):
        plain, cached = _twin_pair()
        _assert_agree(plain, cached)
        for db in (plain, cached):
            obj = next(iter(db.registry.extent("Cities")))
            state = db.store.deref(obj)
            db.store.assign(obj, state.with_field("hotel_count", 99))
        _assert_agree(plain, cached)


class TestCatalogChanges:
    def test_load_extents_replace_invalidates(self):
        def fresh():
            db = Database(travel_schema())
            db.load_extents({"Ns": [1, 2, 3]})
            return db

        plain, cached = fresh(), fresh()
        cached.enable_cache()
        q = "sum(select n from n in Ns)"
        assert cached.run(q) == plain.run(q) == 6
        assert cached.run(q) == 6  # warm
        for db in (plain, cached):
            db.load_extents({"Ns": [10, 20]}, replace=True)
        assert cached.run(q) == plain.run(q) == 30

    def test_create_index_recompiles(self):
        def fresh():
            db = Database(travel_schema())
            db.load_extents(
                {"Rs": [{"k": i % 3, "v": i} for i in range(9)]}
            )
            return db

        plain, cached = fresh(), fresh()
        cached.enable_cache()
        q = "select distinct r.v from r in Rs where r.k = 1"
        assert cached.run(q) == plain.run(q)
        for db in (plain, cached):
            db.create_index("Rs", "k")
        # compile version moved: entry recompiles (now index-aware)
        assert cached.run(q) == plain.run(q)
        assert cached.cache.stats.invalidations >= 0


class TestPropertyStyleInterleaving:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_mutation_query_interleaving(self, seed):
        rng = random.Random(seed)
        plain, cached = _twin_pair(10)

        def mutate_add():
            threshold = rng.choice([2000, 5000, 8000])
            program = update_where(
                "Cities", "c", gt(proj(var("c"), "population"), const(threshold)),
                [add_to_field("hotel_count", const(1))],
            )
            run_update(program, plain.evaluator())
            run_update(program, cached.evaluator())

        def mutate_set():
            name = f"C{rng.randrange(10)}"
            program = update_where(
                "Cities", "c", eq(proj(var("c"), "name"), const(name)),
                [set_field("state", const(rng.choice(["OR", "WA", "CA"])))],
            )
            run_update(program, plain.evaluator())
            run_update(program, cached.evaluator())

        def create():
            attrs = {"name": f"X{rng.randrange(1000)}", "hotels": set(),
                     "hotel_count": rng.randrange(5),
                     "population": rng.randrange(10000), "state": "OR"}
            plain.registry.create("City", dict(attrs))
            cached.registry.create("City", dict(attrs))

        def query():
            oql = rng.choice(QUERIES)
            assert to_python(cached.run(oql)) == to_python(plain.run(oql)), oql

        ops = [mutate_add, mutate_set, create, query, query, query]
        for _ in range(40):
            rng.choice(ops)()
        _assert_agree(plain, cached)
        stats = cached.cache.stats_dict()
        assert stats["result_hits"] > 0  # the cache did real work
        assert stats["invalidations"] > 0  # and was really invalidated
