"""End-to-end integration: a catalogue of OQL queries through every path.

Each query is answered three ways — interpreter on the raw translation,
interpreter on the normalized term, and the optimized algebra plan — and
all answers must coincide. This pins down the whole pipeline at once.
"""

import pytest

from repro.db import Database, demo_travel_database
from repro.eval import evaluate
from repro.normalize import normalize

TRAVEL_QUERIES = [
    "select distinct c.name from c in Cities",
    "select distinct c.name from c in Cities where c.population > 100000",
    "select h.name from c in Cities, h in c.hotels",
    "select distinct h.name from c in Cities, h in c.hotels "
    "where c.name = 'Portland' and h.stars >= 3",
    "select distinct r.beds from c in Cities, h in c.hotels, r in h.rooms",
    "select distinct c.name from c in Cities "
    "where exists h in c.hotels : h.stars = 5",
    "select distinct c.name from c in Cities "
    "where for all h in c.hotels : h.stars >= 1",
    "sum(select h.stars from c in Cities, h in c.hotels)",
    "max(select r.price from c in Cities, h in c.hotels, r in h.rooms)",
    "min(select r.price from c in Cities, h in c.hotels, r in h.rooms)",
    "count(select h from c in Cities, h in c.hotels)",
    "avg(select h.stars from c in Cities, h in c.hotels)",
    "select distinct struct(city: c.name, hotel: h.name) "
    "from c in Cities, h in c.hotels where h.stars = 5",
    "select distinct f from c in Cities, h in c.hotels, f in h.facilities",
    "select distinct c.name from c in Cities where 'pool' in "
    "flatten(select h.facilities from h in c.hotels)",
    "select h.name from c in Cities, h in c.hotels order by h.stars desc",
    "select distinct c.name from c in Cities where c.has_luxury()",
    "select struct(s: stars, n: count(partition)) "
    "from c in Cities, h in c.hotels group by stars: h.stars",
    "select distinct h.name from h in "
    "(select distinct x from c in Cities, x in c.hotels where c.name = 'Portland')",
    "element(select distinct c from c in Cities where c.name = 'Portland')",
]

COMPANY_QUERIES = [
    "select e.name from e in Employees where e.salary > 100000",
    "select distinct struct(e: e.name, d: d.name) "
    "from e in Employees, d in Departments where e.dno = d.dno",
    "select distinct d.name from d in Departments "
    "where exists e in Employees : e.dno = d.dno and e.salary > 150000",
    "sum(select e.salary from e in Employees)",
    "count(Employees)",
    "select distinct e.name from e in Employees where 'oql' in e.skills",
    "select struct(d: dno, total: sum(select p.salary from p in partition)) "
    "from e in Employees group by dno: e.dno",
    "select e.name from e in Employees order by e.salary desc, e.name",
    "select distinct e.name from e in Employees, d in Departments "
    "where e.dno = d.dno and d.floor > 5",
]


@pytest.mark.parametrize("query", TRAVEL_QUERIES)
def test_travel_queries_all_paths_agree(travel_db, query):
    _assert_paths_agree(travel_db, query)


@pytest.mark.parametrize("query", COMPANY_QUERIES)
def test_company_queries_all_paths_agree(company_db, query):
    _assert_paths_agree(company_db, query)


@pytest.mark.parametrize("query", COMPANY_QUERIES)
def test_company_queries_with_indexes(company_db, query):
    baseline = company_db.run(query, engine="interpret")
    company_db.create_index("Departments", "dno")
    company_db.create_index("Employees", "dno")
    assert company_db.run(query, engine="auto") == baseline


def test_results_scale_with_data():
    small = demo_travel_database(num_cities=2, seed=3)
    large = demo_travel_database(num_cities=8, seed=3)
    q = "count(select h from c in Cities, h in c.hotels)"
    assert small.run(q) < large.run(q)


def test_normalization_never_changes_results_on_catalogue(travel_db):
    for query in TRAVEL_QUERIES:
        term = travel_db.translate(query)
        ev = travel_db.evaluator()
        assert ev.evaluate(normalize(term)) == ev.evaluate(term), query


def test_company_pipeline_report_is_printable(company_db):
    result = company_db.run_detailed(COMPANY_QUERIES[1])
    report = result.pipeline_report()
    assert "Join" in report or "Unnest" in report


def _assert_paths_agree(db: Database, query: str) -> None:
    raw = db.translate(query)
    direct = db.evaluator().evaluate(raw)
    normalized_value = db.evaluator().evaluate(normalize(raw))
    auto = db.run(query, engine="auto")
    interp = db.run(query, engine="interpret")
    assert direct == normalized_value == auto == interp, query
