"""Differential parity: JIT on must equal JIT off, everywhere.

Covers every Table 1 monoid as a Reduce target, the integration
catalogue's §2-style OQL suite, randomized comprehensions from the
normalization property harness, and the two soundness edges of the
binding-dict reuse optimization (lambda capture, downstream retention).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.algebra import Executor, build_plan
from repro.calculus import comp, const, filt, gen, gt, var
from repro.db.database import demo_company_database, demo_travel_database
from repro.eval import Evaluator
from repro.jit import JITConfig
from repro.values import Bag

from tests.test_integration_pipeline import COMPANY_QUERIES, TRAVEL_QUERIES
from tests.test_normalize_property import _term_and_data


def both_ways(term, data):
    """Execute ``term``'s plan with and without the JIT; must agree."""
    plan = build_plan(term)
    off = Executor(Evaluator(data)).execute(plan)
    plan_jit = build_plan(term)
    on = Executor(Evaluator(data), jit=JITConfig()).execute(plan_jit)
    assert off == on, (term, off, on)
    return on


DATA = {"Xs": (3, 1, 4, 1, 5, 9, 2, 6), "Bs": Bag((2, 7, 1, 8, 2, 8))}


class TestTable1Monoids:
    """One Reduce per registered Table 1 monoid, jit on vs off."""

    @pytest.mark.parametrize("monoid", ["sum", "prod", "max", "min"])
    def test_numeric_primitives(self, monoid):
        term = comp(
            monoid,
            var("x"),
            [gen("x", var("Xs")), filt(gt(var("x"), const(1)))],
        )
        both_ways(term, DATA)

    @pytest.mark.parametrize("monoid", ["some", "all"])
    def test_boolean_primitives(self, monoid):
        term = comp(monoid, gt(var("x"), const(4)), [gen("x", var("Xs"))])
        both_ways(term, DATA)

    @pytest.mark.parametrize("monoid", ["list", "set", "bag", "oset"])
    def test_collections(self, monoid):
        term = comp(
            monoid,
            var("x"),
            [gen("x", var("Bs")), filt(gt(var("x"), const(1)))],
        )
        both_ways(term, DATA)

    def test_string(self):
        term = comp("string", const("ab"), [gen("x", var("Xs"))])
        both_ways(term, DATA)


class TestOQLCatalogue:
    """The end-to-end OQL suite, database-level jit on vs off."""

    @pytest.mark.parametrize("oql", TRAVEL_QUERIES)
    def test_travel(self, oql):
        db = demo_travel_database(num_cities=4, seed=3)
        off = db.run(oql)
        db.enable_jit()
        assert db.run(oql) == off

    @pytest.mark.parametrize("oql", COMPANY_QUERIES)
    def test_company(self, oql):
        db = demo_company_database(4, 40, seed=3)
        off = db.run(oql)
        db.enable_jit()
        assert db.run(oql) == off

    @pytest.mark.parametrize("oql", TRAVEL_QUERIES)
    def test_travel_verify_mode(self, oql):
        # The per-row differential check itself must never fire on the
        # honest compiler output.
        db = demo_travel_database(num_cities=3, seed=5)
        db.enable_jit(JITConfig(verify=True))
        db.run(oql)


class TestRandomizedTerms:
    @settings(max_examples=80, deadline=None)
    @given(case=_term_and_data())
    def test_random_comprehensions_agree(self, case):
        term, data = case
        both_ways(term, data)


class TestReuseSoundness:
    """The binding-dict reuse fast path must not leak mutated dicts."""

    def test_lambda_in_head_disables_reuse(self):
        # Normalization beta-reduces most lambdas away, so hand-build a
        # plan whose Reduce head retains one: the analysis must refuse
        # to reuse the scan dict (the closure could capture its env).
        import dataclasses

        from repro.algebra.physical import _collect_reusable_scans
        from repro.calculus.ast import Apply, Lambda

        term = comp("list", var("x"), [gen("x", var("Xs"))])
        plan = build_plan(term)
        captured = dataclasses.replace(
            plan, head=Apply(Lambda("v", var("v")), var("x"))
        )
        assert _collect_reusable_scans(captured) == frozenset()
        # and the plain head is reusable on the same shape
        assert _collect_reusable_scans(plan) != frozenset()

    def test_plain_scan_reuses_and_stays_correct(self):
        from repro.algebra.ops import Scan
        from repro.algebra.physical import _collect_reusable_scans

        term = comp(
            "list",
            var("x"),
            [gen("x", var("Xs")), filt(gt(var("x"), const(1)))],
        )
        plan = build_plan(term)
        reusable = _collect_reusable_scans(plan)
        scans = [
            node
            for node in _walk(plan)
            if isinstance(node, Scan) and id(node) in reusable
        ]
        assert scans, "expected the single scan to be reusable"
        both_ways(term, DATA)

    def test_join_right_side_never_reused(self):
        from repro.algebra.ops import Join, Scan
        from repro.algebra.physical import _collect_reusable_scans
        from repro.calculus import and_, eq
        from repro.calculus.ast import TupleCons

        term = comp(
            "bag",
            TupleCons((var("x"), var("y"))),
            [
                gen("x", var("Xs")),
                gen("y", var("Bs")),
                filt(eq(var("x"), var("y"))),
            ],
        )
        plan = build_plan(term)
        joins = [n for n in _walk(plan) if isinstance(n, Join)]
        if joins:  # the optimizer built a hash join: its right side's
            # dicts are stored in the build table, never reusable
            reusable = _collect_reusable_scans(plan)
            right_scans = [
                n for n in _walk(joins[0].right) if isinstance(n, Scan)
            ]
            assert all(id(n) not in reusable for n in right_scans)
        both_ways(term, DATA)

    def test_collection_valued_rows_survive_reuse(self):
        # Rows whose values are themselves collections: reuse mutates
        # only the dict, never the values, so results hold references
        # safely.
        data = {"Rows": (((1, 2), 3), ((4, 5), 6))}
        term = comp("list", var("r"), [gen("r", var("Rows"))])
        both_ways(term, data)

    def test_explain_analyze_disables_reuse(self):
        from repro.algebra.physical import Executor
        from repro.obs.metrics import PlanMetrics

        term = comp("list", var("x"), [gen("x", var("Xs"))])
        plan = build_plan(term)
        executor = Executor(Evaluator(DATA), metrics=PlanMetrics())
        executor.execute(plan)
        assert executor._reusable_scans == frozenset()


def _walk(node):
    yield node
    for child in node.children():
        yield from _walk(child)
