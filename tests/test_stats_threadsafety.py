"""Concurrent ``Database.run``: stats, tracing, query log and
telemetry must accumulate exactly — no lost updates, no cross-thread
span leakage — when one database is shared by many threads."""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.db import Database, company_schema, make_company
from repro.values import to_python

THREADS = 8
PER_THREAD = 6


@pytest.fixture
def db():
    database = Database(company_schema())
    database.load_extents(
        make_company(num_departments=4, num_employees=40, seed=11)
    )
    return database


def hammer(db, oql):
    """Run ``oql`` from many threads at once; return every result."""
    barrier = threading.Barrier(THREADS)

    def work():
        barrier.wait()
        return [db.run_detailed(oql) for _ in range(PER_THREAD)]

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        futures = [pool.submit(work) for _ in range(THREADS)]
        return [result for future in futures for result in future.result()]


def test_per_run_stats_are_private(db):
    results = hammer(db, "sum(select e.salary from e in Employees)")
    expected = to_python(db.run("sum(select e.salary from e in Employees)"))
    for result in results:
        assert to_python(result.value) == expected
        # every run gets its own ExecutionStats block — a shared or
        # doubly-merged block would show multiples of the extent size
        assert result.stats.rows_scanned == 40
        assert result.stats.rows_reduced == 40


def test_traced_runs_do_not_leak_spans_across_threads(db):
    lines = []
    db.profile(True, sink=lambda line: lines.append(line))
    results = hammer(db, "select e.name from e in Employees where e.age < 40")
    db.profile(False)
    assert len(results) == THREADS * PER_THREAD
    for result in results:
        span = result.span
        assert span.name == "query"
        # exactly one pipeline per span tree: children are this run's
        # phases, not another thread's
        names = [child.name for child in span.children]
        assert names.count("parse") == 1
        assert names.count("execute") == 1
    assert len(lines) == THREADS * PER_THREAD


def test_query_log_records_every_run_exactly_once(db):
    db.profile(True)
    hammer(db, "count(select e from e in Employees)")
    entries = db.query_log.entries
    db.profile(False)
    assert len(entries) == THREADS * PER_THREAD


def test_query_log_file_lines_are_whole(db, tmp_path):
    path = tmp_path / "queries.jsonl"
    db.profile(True, path=str(path))
    hammer(db, "count(select e from e in Employees)")
    db.profile(False)
    import json

    lines = path.read_text().splitlines()
    assert len(lines) == THREADS * PER_THREAD
    for line in lines:
        json.loads(line)  # interleaved writes would corrupt a line


def test_telemetry_totals_are_exact(db):
    from repro.obs.telemetry.registry import MetricsRegistry

    registry = MetricsRegistry()
    db.enable_telemetry(registry)
    hammer(db, "sum(select e.salary from e in Employees)")
    db.disable_telemetry()
    queries = registry.counter(
        "repro_queries_total",
        "queries answered, by engine and outcome",
        labels=("engine", "status"),
    )
    assert queries.total() == THREADS * PER_THREAD
    rows = registry.counter(
        "repro_executor_rows_total",
        "executor row counters (ExecutionStats), by counter name",
        labels=("counter",),
    )
    by_counter = {key[0]: child.value for key, child in rows.items()}
    assert by_counter["rows_scanned"] == 40 * THREADS * PER_THREAD


def test_parallel_engine_under_concurrent_runs(db):
    from repro.parallel import ParallelConfig

    db.enable_parallel(ParallelConfig(max_workers=4, min_partition_rows=1))
    expected = to_python(db.run("sum(select e.salary from e in Employees)"))
    results = hammer(db, "sum(select e.salary from e in Employees)")
    for result in results:
        assert to_python(result.value) == expected
        assert result.stats.partitions == 4
        assert result.stats.rows_scanned == 40
