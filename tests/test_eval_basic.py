"""Reference evaluator: operators, data constructors, errors."""

import pytest

from repro.calculus import (
    add,
    and_,
    apply,
    binop,
    call,
    const,
    div,
    eq,
    ge,
    gt,
    if_,
    in_,
    index,
    lam,
    le,
    let,
    lt,
    mul,
    ne,
    neg,
    not_,
    or_,
    proj,
    rec,
    sub,
    tup,
    var,
)
from repro.errors import EvaluationError, UnboundVariableError
from repro.eval import Evaluator, evaluate
from repro.values import Bag, OrderedSet, Record, Vector


class TestLiteralsAndVariables:
    def test_const(self):
        assert evaluate(const(42)) == 42
        assert evaluate(const("s")) == "s"
        assert evaluate(const(None)) is None

    def test_const_freezes_python_literals(self):
        assert evaluate(const([1, [2]])) == (1, (2,))
        assert evaluate(const({"a": 1})) == Record(a=1)
        assert evaluate(const({1, 2})) == frozenset({1, 2})

    def test_global_bindings(self):
        assert evaluate(var("x"), {"x": 9}) == 9

    def test_unbound_variable(self):
        with pytest.raises(UnboundVariableError):
            evaluate(var("nope"))


class TestArithmeticAndComparison:
    def test_arithmetic(self):
        assert evaluate(add(const(2), const(3))) == 5
        assert evaluate(sub(const(2), const(3))) == -1
        assert evaluate(mul(const(2), const(3))) == 6
        assert evaluate(div(const(7), const(2))) == 3.5
        assert evaluate(binop("div", const(7), const(2))) == 3
        assert evaluate(binop("mod", const(7), const(2))) == 1

    def test_string_concatenation(self):
        assert evaluate(add(const("a"), const("b"))) == "ab"

    def test_division_by_zero(self):
        with pytest.raises(EvaluationError, match="division by zero"):
            evaluate(div(const(1), const(0)))

    def test_arithmetic_type_errors(self):
        with pytest.raises(EvaluationError):
            evaluate(add(const(1), const("x")))
        with pytest.raises(EvaluationError):
            evaluate(add(const(True), const(1)))

    def test_comparisons(self):
        assert evaluate(lt(const(1), const(2))) is True
        assert evaluate(le(const(2), const(2))) is True
        assert evaluate(gt(const(1), const(2))) is False
        assert evaluate(ge(const(3), const(2))) is True
        assert evaluate(eq(const(1), const(1))) is True
        assert evaluate(ne(const(1), const(2))) is True

    def test_equality_is_deep(self):
        assert evaluate(eq(const((1, 2)), const([1, 2]))) is True

    def test_incomparable_types(self):
        with pytest.raises(EvaluationError):
            evaluate(lt(const(1), const("x")))

    def test_negation(self):
        assert evaluate(neg(const(3))) == -3
        with pytest.raises(EvaluationError):
            evaluate(neg(const("x")))


class TestBooleans:
    def test_short_circuit_and(self):
        # right side would raise if evaluated
        term = and_(const(False), div(const(1), const(0)))
        assert evaluate(term) is False

    def test_short_circuit_or(self):
        term = or_(const(True), div(const(1), const(0)))
        assert evaluate(term) is True

    def test_boolean_strictness(self):
        with pytest.raises(EvaluationError):
            evaluate(and_(const(1), const(True)))
        with pytest.raises(EvaluationError):
            evaluate(not_(const(0)))

    def test_not(self):
        assert evaluate(not_(const(False))) is True


class TestMembershipAndSetOps:
    def test_in_list(self):
        assert evaluate(in_(const(2), const((1, 2)))) is True
        assert evaluate(in_(const(5), const((1, 2)))) is False

    def test_in_set_and_bag(self):
        assert evaluate(in_(const(1), const(frozenset({1})))) is True
        assert evaluate(in_(const(1), const(Bag([1, 1])))) is True

    def test_union_sets(self):
        term = binop("union", const(frozenset({1})), const(frozenset({2})))
        assert evaluate(term) == frozenset({1, 2})

    def test_intersect_and_except_bags(self):
        a, b = Bag([1, 1, 2]), Bag([1, 2, 2])
        assert evaluate(binop("intersect", const(a), const(b))) == Bag([1, 2])
        assert evaluate(binop("except", const(a), const(b))) == Bag([1])

    def test_union_type_mismatch(self):
        with pytest.raises(EvaluationError):
            evaluate(binop("intersect", const(frozenset()), const(Bag())))


class TestDataConstructors:
    def test_record_construction_and_projection(self):
        term = proj(rec(a=const(1), b=const(2)), "b")
        assert evaluate(term) == 2

    def test_projection_from_non_record(self):
        with pytest.raises(EvaluationError):
            evaluate(proj(const(3), "a"))

    def test_tuple_construction_and_indexing(self):
        assert evaluate(index(tup(const("a"), const("b")), const(1))) == "b"

    def test_vector_indexing(self):
        v = Vector.from_dense([9, 8, 7])
        assert evaluate(index(var("v"), const(2)), {"v": v}) == 7

    def test_oset_indexing(self):
        assert evaluate(index(var("s"), const(0)), {"s": OrderedSet([5, 6])}) == 5

    def test_bad_index(self):
        with pytest.raises(EvaluationError):
            evaluate(index(const((1,)), const(5)))


class TestFunctions:
    def test_lambda_and_apply(self):
        term = apply(lam("x", add(var("x"), const(1))), const(41))
        assert evaluate(term) == 42

    def test_closure_captures_environment(self):
        term = let("y", const(10), apply(lam("x", add(var("x"), var("y"))), const(1)))
        assert evaluate(term) == 11

    def test_let(self):
        assert evaluate(let("x", const(5), mul(var("x"), var("x")))) == 25

    def test_if(self):
        assert evaluate(if_(const(True), const(1), const(2))) == 1
        assert evaluate(if_(const(False), const(1), const(2))) == 2

    def test_if_requires_boolean(self):
        with pytest.raises(EvaluationError):
            evaluate(if_(const(1), const(1), const(2)))

    def test_apply_non_function(self):
        with pytest.raises(EvaluationError):
            evaluate(apply(const(3), const(4)))


class TestBuiltins:
    def test_count_and_length(self):
        assert evaluate(call("count", const((1, 1, 2)))) == 3
        assert evaluate(call("count", const(Bag([1, 1])))) == 2
        assert evaluate(call("count", const(frozenset({1, 2})))) == 2

    def test_element(self):
        assert evaluate(call("element", const((7,)))) == 7
        with pytest.raises(EvaluationError):
            evaluate(call("element", const((1, 2))))

    def test_flatten_follows_outer_monoid(self):
        nested = Bag([(1, 2), (2,)])
        assert evaluate(call("flatten", const(nested))) == Bag([1, 2, 2])

    def test_conversions(self):
        assert evaluate(call("to_set", const((1, 1)))) == frozenset({1})
        assert evaluate(call("to_bag", const((1, 1)))) == Bag([1, 1])
        assert evaluate(call("to_list", const(frozenset({2, 1})))) == (1, 2)

    def test_first_last_range(self):
        assert evaluate(call("first", const((4, 5)))) == 4
        assert evaluate(call("last", const((4, 5)))) == 5
        assert evaluate(call("range", const(3))) == (0, 1, 2)

    def test_avg(self):
        assert evaluate(call("avg", const((2, 4)))) == 3.0
        with pytest.raises(EvaluationError):
            evaluate(call("avg", const(())))

    def test_unknown_function(self):
        with pytest.raises(EvaluationError, match="unknown function"):
            evaluate(call("mystery", const(1)))

    def test_user_function_registration(self):
        ev = Evaluator(functions={"double": lambda x: 2 * x})
        assert ev.evaluate(call("double", const(21))) == 42

    def test_env_function_shadows_builtin(self):
        ev = Evaluator({"count": lambda x: -1})
        assert ev.evaluate(call("count", const((1,)))) == -1
