"""Unit tests for the Record value."""

import pytest

from repro.errors import EvaluationError
from repro.values import Record


def test_field_access_by_key():
    r = Record(name="Portland", population=500)
    assert r["name"] == "Portland"
    assert r["population"] == 500


def test_field_access_by_attribute():
    r = Record(name="Portland")
    assert r.name == "Portland"


def test_missing_field_raises_evaluation_error():
    r = Record(a=1)
    with pytest.raises(EvaluationError, match="no field 'b'"):
        r["b"]


def test_missing_attribute_raises_attribute_error():
    r = Record(a=1)
    with pytest.raises(AttributeError):
        r.b


def test_equality_is_order_insensitive():
    assert Record(a=1, b=2) == Record(b=2, a=1)


def test_inequality_on_values():
    assert Record(a=1) != Record(a=2)


def test_not_equal_to_plain_dict():
    assert Record(a=1) != {"a": 1}


def test_hash_consistent_with_equality():
    assert hash(Record(a=1, b=2)) == hash(Record(b=2, a=1))
    assert len({Record(a=1), Record(a=1)}) == 1


def test_records_nest_in_sets():
    s = frozenset({Record(x=1), Record(x=2)})
    assert Record(x=1) in s


def test_immutability():
    r = Record(a=1)
    with pytest.raises(AttributeError):
        r.a = 2


def test_replace_creates_new_record():
    r = Record(a=1, b=2)
    r2 = r.replace(b=3)
    assert r2 == Record(a=1, b=3)
    assert r == Record(a=1, b=2)


def test_replace_unknown_field_raises():
    with pytest.raises(EvaluationError, match="no field 'c'"):
        Record(a=1).replace(c=9)


def test_with_field_adds_and_overwrites():
    r = Record(a=1)
    assert r.with_field("b", 2) == Record(a=1, b=2)
    assert r.with_field("a", 9) == Record(a=9)


def test_fields_preserve_declaration_order():
    assert Record(z=1, a=2).fields() == ("z", "a")


def test_mapping_protocol():
    r = Record(a=1, b=2)
    assert len(r) == 2
    assert set(r) == {"a", "b"}
    assert dict(r) == {"a": 1, "b": 2}


def test_repr_shows_fields():
    assert repr(Record(a=1)) == "<a=1>"


def test_record_from_mapping():
    r = Record({"x": 1}, y=2)
    assert r.x == 1 and r.y == 2
