"""Setup shim.

The execution environment has no network and no ``wheel`` package, so
PEP-517 editable installs (which build a wheel) fail. This shim lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
