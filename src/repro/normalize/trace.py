"""Normalization traces: a record of every rewrite step.

The paper argues manipulability by exhibiting the normalization
algorithm; the trace makes each derivation inspectable — benchmarks
print it to regenerate the paper's worked derivation of the
Portland-hotels query, and tests assert on which rules fired.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.calculus.ast import Term


@dataclass(frozen=True)
class NormalizationStep:
    """One rewrite: which rule fired, on what, producing what."""

    rule: str
    before: Term
    after: Term

    def __str__(self) -> str:
        return f"[{self.rule}] {self.before}  ==>  {self.after}"


@dataclass
class NormalizationTrace:
    """The full derivation from source term to normal form."""

    source: Term
    steps: list[NormalizationStep] = field(default_factory=list)

    @property
    def result(self) -> Term:
        return self.steps[-1].after if self.steps else self.source

    def record(self, rule: str, before: Term, after: Term) -> None:
        self.steps.append(NormalizationStep(rule, before, after))

    def rules_fired(self) -> list[str]:
        """Rule names in firing order (with repeats)."""
        return [step.rule for step in self.steps]

    def rule_counts(self) -> dict[str, int]:
        """How many times each rule fired."""
        counts: dict[str, int] = {}
        for step in self.steps:
            counts[step.rule] = counts.get(step.rule, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.steps)

    def render(self) -> str:
        """A printable derivation, one step per line."""
        lines = [f"source: {self.source}"]
        for i, step in enumerate(self.steps, 1):
            lines.append(f"  {i:3d}. [{step.rule}] => {step.after}")
        return "\n".join(lines)
