"""The normalization engine: apply Table 3 rules to a fixpoint.

Strategy: repeatedly locate the outermost-leftmost position where any
rule applies (rules are tried in priority order at each node, pre-order
over the term), rewrite, record a trace step, and continue until no
rule applies anywhere or the step budget is exhausted. The default
budget is generous; the rule set is terminating on pure terms (each
rule either strictly shrinks the term or eliminates a construct no
other rule reintroduces), so hitting the budget signals a bug and
raises.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.calculus.ast import (
    Apply,
    Assign,
    Bind,
    BinOp,
    Call,
    Comprehension,
    Const,
    Deref,
    Empty,
    Filter,
    Generator,
    Hom,
    If,
    Index,
    Lambda,
    Let,
    Merge,
    MethodCall,
    New,
    Proj,
    RecordCons,
    Singleton,
    Term,
    TupleCons,
    UnOp,
    Update,
    Var,
)
from repro.analysis.verifier import RewriteVerifier, resolve_verify
from repro.errors import NormalizationError
from repro.normalize.rules import DEFAULT_RULES, Rule
from repro.normalize.trace import NormalizationTrace

#: Safety budget. Real queries normalize in tens of steps; anything in
#: the tens of thousands indicates non-termination.
DEFAULT_MAX_STEPS = 20_000


def normalize(
    term: Term,
    rules: Sequence[Rule] = DEFAULT_RULES,
    max_steps: int = DEFAULT_MAX_STEPS,
    verify: Optional[bool] = None,
) -> Term:
    """Normalize ``term`` and return the canonical form.

    ``verify=True`` checks every rule fire against the soundness
    invariants (see :mod:`repro.analysis`); ``None`` defers to the
    global switch (``REPRO_VERIFY`` / the ``verification`` context).

    >>> from repro.calculus import alpha_equal, comp, gen, var, const
    >>> inner = comp("set", var("x"), [gen("x", var("db"))])
    >>> outer = comp("set", var("y"), [gen("y", inner)])
    >>> alpha_equal(normalize(outer), inner)
    True
    """
    result, _ = normalize_with_trace(term, rules, max_steps, verify)
    return result


def normalize_with_trace(
    term: Term,
    rules: Sequence[Rule] = DEFAULT_RULES,
    max_steps: int = DEFAULT_MAX_STEPS,
    verify: Optional[bool] = None,
) -> tuple[Term, NormalizationTrace]:
    """Normalize and return ``(normal_form, trace)``.

    With verification on, each rewrite step is checked before it is
    accepted and :class:`~repro.errors.VerificationError` is raised on
    the first unsound fire.
    """
    verifier = RewriteVerifier() if resolve_verify(verify) else None
    trace = NormalizationTrace(term)
    current = term
    for _ in range(max_steps):
        rewritten = _rewrite_once(current, rules, trace, verifier)
        if rewritten is None:
            return current, trace
        current = rewritten
    raise NormalizationError(
        f"normalization exceeded {max_steps} steps; last term: {current}"
    )


def _rewrite_once(
    term: Term,
    rules: Sequence[Rule],
    trace: NormalizationTrace,
    verifier: Optional[RewriteVerifier] = None,
) -> Optional[Term]:
    """One outermost-leftmost rewrite, or None if in normal form."""
    for rule in rules:
        result = rule.apply(term)
        if result is not None:
            if verifier is not None:
                verifier.check_rewrite(rule, term, result)
            trace.record(rule.name, term, result)
            return result
    return _rewrite_in_children(term, rules, trace, verifier)


def _rewrite_in_children(
    term: Term,
    rules: Sequence[Rule],
    trace: NormalizationTrace,
    verifier: Optional[RewriteVerifier] = None,
) -> Optional[Term]:
    """Try to rewrite exactly one child subterm; rebuild if one changed."""

    def visit(child: Term) -> Optional[Term]:
        return _rewrite_once(child, rules, trace, verifier)

    return _rebuild_first(term, visit)


def _rebuild_first(
    term: Term, visit: Callable[[Term], Optional[Term]]
) -> Optional[Term]:
    """Apply ``visit`` to children left-to-right; rebuild on first change."""
    if isinstance(term, (Const, Var, Empty)):
        return None
    if isinstance(term, Lambda):
        body = visit(term.body)
        return Lambda(term.param, body) if body is not None else None
    if isinstance(term, Apply):
        fn = visit(term.fn)
        if fn is not None:
            return Apply(fn, term.arg)
        arg = visit(term.arg)
        return Apply(term.fn, arg) if arg is not None else None
    if isinstance(term, Let):
        value = visit(term.value)
        if value is not None:
            return Let(term.var, value, term.body)
        body = visit(term.body)
        return Let(term.var, term.value, body) if body is not None else None
    if isinstance(term, RecordCons):
        for i, (name, value) in enumerate(term.fields):
            new_value = visit(value)
            if new_value is not None:
                fields = (
                    term.fields[:i] + ((name, new_value),) + term.fields[i + 1 :]
                )
                return RecordCons(fields)
        return None
    if isinstance(term, TupleCons):
        for i, item in enumerate(term.items):
            new_item = visit(item)
            if new_item is not None:
                return TupleCons(term.items[:i] + (new_item,) + term.items[i + 1 :])
        return None
    if isinstance(term, Proj):
        base = visit(term.base)
        return Proj(base, term.name) if base is not None else None
    if isinstance(term, Index):
        base = visit(term.base)
        if base is not None:
            return Index(base, term.index)
        idx = visit(term.index)
        return Index(term.base, idx) if idx is not None else None
    if isinstance(term, BinOp):
        left = visit(term.left)
        if left is not None:
            return BinOp(term.op, left, term.right)
        right = visit(term.right)
        return BinOp(term.op, term.left, right) if right is not None else None
    if isinstance(term, UnOp):
        operand = visit(term.operand)
        return UnOp(term.op, operand) if operand is not None else None
    if isinstance(term, If):
        cond = visit(term.cond)
        if cond is not None:
            return If(cond, term.then_branch, term.else_branch)
        then_branch = visit(term.then_branch)
        if then_branch is not None:
            return If(term.cond, then_branch, term.else_branch)
        else_branch = visit(term.else_branch)
        if else_branch is not None:
            return If(term.cond, term.then_branch, else_branch)
        return None
    if isinstance(term, Singleton):
        element = visit(term.element)
        if element is not None:
            return Singleton(term.monoid, element, term.index)
        if term.index is not None:
            idx = visit(term.index)
            if idx is not None:
                return Singleton(term.monoid, term.element, idx)
        return None
    if isinstance(term, Merge):
        left = visit(term.left)
        if left is not None:
            return Merge(term.monoid, left, term.right)
        right = visit(term.right)
        return Merge(term.monoid, term.left, right) if right is not None else None
    if isinstance(term, Comprehension):
        for i, qual in enumerate(term.qualifiers):
            if isinstance(qual, Generator):
                source = visit(qual.source)
                if source is not None:
                    quals = (
                        term.qualifiers[:i]
                        + (Generator(qual.var, source, qual.index_var),)
                        + term.qualifiers[i + 1 :]
                    )
                    return Comprehension(term.monoid, term.head, quals)
            elif isinstance(qual, Bind):
                value = visit(qual.value)
                if value is not None:
                    quals = (
                        term.qualifiers[:i]
                        + (Bind(qual.var, value),)
                        + term.qualifiers[i + 1 :]
                    )
                    return Comprehension(term.monoid, term.head, quals)
            else:
                pred = visit(qual.pred)
                if pred is not None:
                    quals = (
                        term.qualifiers[:i]
                        + (Filter(pred),)
                        + term.qualifiers[i + 1 :]
                    )
                    return Comprehension(term.monoid, term.head, quals)
        head = visit(term.head)
        if head is not None:
            return Comprehension(term.monoid, head, term.qualifiers)
        return None
    if isinstance(term, Hom):
        body = visit(term.body)
        if body is not None:
            return Hom(term.source, term.target, term.var, body, term.arg)
        arg = visit(term.arg)
        if arg is not None:
            return Hom(term.source, term.target, term.var, term.body, arg)
        return None
    if isinstance(term, Call):
        for i, arg in enumerate(term.args):
            new_arg = visit(arg)
            if new_arg is not None:
                return Call(term.name, term.args[:i] + (new_arg,) + term.args[i + 1 :])
        return None
    if isinstance(term, MethodCall):
        base = visit(term.base)
        if base is not None:
            return MethodCall(base, term.name, term.args)
        for i, arg in enumerate(term.args):
            new_arg = visit(arg)
            if new_arg is not None:
                return MethodCall(
                    term.base, term.name, term.args[:i] + (new_arg,) + term.args[i + 1 :]
                )
        return None
    if isinstance(term, New):
        state = visit(term.state)
        return New(state) if state is not None else None
    if isinstance(term, Deref):
        target = visit(term.target)
        return Deref(target) if target is not None else None
    if isinstance(term, Assign):
        target = visit(term.target)
        if target is not None:
            return Assign(target, term.value)
        value = visit(term.value)
        return Assign(term.target, value) if value is not None else None
    if isinstance(term, Update):
        base = visit(term.base)
        if base is not None:
            return Update(base, term.field_name, term.op, term.value)
        value = visit(term.value)
        if value is not None:
            return Update(term.base, term.field_name, term.op, value)
        return None
    raise NormalizationError(f"rewrite: unknown term {type(term).__name__}")


# ---------------------------------------------------------------------------
# Canonical form predicates
# ---------------------------------------------------------------------------


def is_simple_path(term: Term) -> bool:
    """True for ``v``, ``v.a.b`` ... — the canonical generator sources."""
    while isinstance(term, Proj):
        term = term.base
    return isinstance(term, Var)


def is_canonical(term: Term, rules: Sequence[Rule] = DEFAULT_RULES) -> bool:
    """True when no rule applies anywhere in ``term``."""
    trace = NormalizationTrace(term)
    return _rewrite_once(term, rules, trace) is None


def is_canonical_comprehension(term: Term) -> bool:
    """The paper's canonical form: a comprehension whose generators all
    range over simple paths, with no bindings left."""
    if not isinstance(term, Comprehension):
        return False
    for qual in term.qualifiers:
        if isinstance(qual, Bind):
            return False
        if isinstance(qual, Generator) and not is_simple_path(qual.source):
            return False
    return True
