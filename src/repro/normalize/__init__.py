"""Normalization of comprehensions — Table 3 of the paper."""

from repro.normalize.engine import (
    DEFAULT_MAX_STEPS,
    is_canonical,
    is_canonical_comprehension,
    is_simple_path,
    normalize,
    normalize_with_trace,
)
from repro.normalize.rules import DEFAULT_RULES, RULES_BY_NAME, Rule, count_occurrences
from repro.normalize.trace import NormalizationStep, NormalizationTrace

__all__ = [
    "DEFAULT_MAX_STEPS",
    "DEFAULT_RULES",
    "RULES_BY_NAME",
    "NormalizationStep",
    "NormalizationTrace",
    "Rule",
    "count_occurrences",
    "is_canonical",
    "is_canonical_comprehension",
    "is_simple_path",
    "normalize",
    "normalize_with_trace",
]
