"""The Table 3 rewrite rules.

Each rule is a small class with a ``name``, a ``description`` quoting
the paper's schema, and an ``apply(term) -> Term | None`` method that
returns the rewritten term when the rule matches at this node (and
``None`` otherwise). The engine in :mod:`repro.normalize.engine`
applies rules at every position to a fixpoint.

Soundness notes baked into the guards:

- Substitution-based rules (beta, binding elimination, singleton
  generators, flattening heads) may duplicate or drop the substituted
  expression, so they require it to be *pure* (no heap effects) unless
  the variable occurs exactly once.
- Rules that erase a whole comprehension (false predicate, empty
  generator) require the comprehension to be pure.
- The merge-split and conditional-split rules change enumeration order,
  so they require the output monoid to be commutative unless no other
  generator is involved.
- The flattening rule N9 — the paper's key rule — carries the side
  condition ``props(N) ⊆ props(M)``, which is exactly the comprehension
  well-formedness condition the type checker enforces; the rule
  re-checks it locally so normalization is sound even on unchecked
  terms.
- Existential fusion (N13) additionally needs the outer monoid to be
  idempotent, since splicing an inner ``some`` multiplies outer
  elements by the number of witnesses.
"""

from __future__ import annotations

from typing import Optional

from repro.calculus.ast import (
    Apply,
    Bind,
    BinOp,
    Comprehension,
    Const,
    Empty,
    Filter,
    Generator,
    If,
    Index,
    Lambda,
    Let,
    Merge,
    MonoidRef,
    Proj,
    Qualifier,
    RecordCons,
    Singleton,
    Term,
    TupleCons,
    UnOp,
)
from repro.analysis.dataflow import use_count
from repro.calculus.traversal import fresh_var, has_effects, substitute
from repro.calculus.ast import Var
from repro.types.infer import MONOID_PROPS, monoid_props


def count_occurrences(term: Term, name: str) -> int:
    """Free occurrences of ``name`` in ``term`` (shadowing-aware).

    Delegates to the :mod:`repro.analysis.dataflow` layer's scoped
    walk, which counts occurrences without building a substituted copy
    of the term.
    """
    return use_count(term, name)


def _monoid_static_props(ref: MonoidRef) -> Optional[frozenset[str]]:
    """Static C/I properties of a monoid reference, or None if unknown."""
    if ref.is_vector:
        element = ref.element.name if ref.element is not None else None
        if element in MONOID_PROPS:
            return monoid_props(element)
        return None
    if ref.name in MONOID_PROPS:
        return monoid_props(ref.name)
    return None


def _is_commutative(ref: MonoidRef) -> bool:
    props = _monoid_static_props(ref)
    return props is not None and "commutative" in props


def _is_idempotent(ref: MonoidRef) -> bool:
    props = _monoid_static_props(ref)
    return props is not None and "idempotent" in props


def _splice_coherent(
    quals: tuple[Qualifier, ...], outer_props: Optional[frozenset[str]]
) -> bool:
    """May these qualifiers be spliced into a comprehension with
    ``outer_props``? Any generator whose source monoid is syntactically
    known must satisfy the §3 restriction ``props(N) ⊆ props(M)`` in
    its new home (unknown sources — extents, paths — are unconstrained
    statically, matching the type checker)."""
    if outer_props is None:
        return False
    for qual in quals:
        if not isinstance(qual, Generator):
            continue
        source = qual.source
        if not isinstance(source, (Empty, Singleton, Merge, Comprehension)):
            continue
        src_props = _monoid_static_props(source.monoid)
        if src_props is not None and not src_props <= outer_props:
            return False
    return True


def _rest_comprehension(comp: Comprehension, start: int) -> Comprehension:
    """The comprehension formed by the qualifiers after position ``start``."""
    return Comprehension(comp.monoid, comp.head, comp.qualifiers[start + 1 :])


def _rebuild(
    comp: Comprehension, prefix: tuple[Qualifier, ...], rest: Comprehension
) -> Comprehension:
    """Reattach a prefix to a rewritten suffix comprehension."""
    return Comprehension(comp.monoid, rest.head, prefix + rest.qualifiers)


def _substitute_suffix(
    comp: Comprehension, position: int, var_name: str, value: Term
) -> Comprehension:
    """Substitute ``value`` for ``var_name`` in everything after ``position``.

    ``var_name``'s binder at ``position`` is removed; prior qualifiers
    are untouched.
    """
    rest = _rest_comprehension(comp, position)
    rest = substitute(rest, var_name, value)
    assert isinstance(rest, Comprehension)
    return _rebuild(comp, comp.qualifiers[:position], rest)


def _freshen(comp: Comprehension) -> Comprehension:
    """Alpha-rename every variable bound by ``comp``'s qualifiers.

    Used before splicing an inner comprehension's qualifiers into an
    outer one (rules N9/N13), so inner binders can never capture outer
    variables. Fresh names are globally unique.
    """
    quals = list(comp.qualifiers)
    head = comp.head
    for i, qual in enumerate(quals):
        if isinstance(qual, Generator):
            names = [qual.var] + ([qual.index_var] if qual.index_var else [])
        elif isinstance(qual, Bind):
            names = [qual.var]
        else:
            continue
        for old in names:
            new = fresh_var(old.split("~")[0])
            replacement = Var(new)
            for j in range(i, len(quals)):
                q = quals[j]
                if j == i:
                    if isinstance(q, Generator):
                        quals[j] = Generator(
                            new if q.var == old else q.var,
                            q.source,
                            (
                                new
                                if q.index_var == old
                                else q.index_var
                            ),
                        )
                    else:
                        quals[j] = Bind(new, q.value)
                else:
                    if isinstance(q, Generator):
                        quals[j] = Generator(
                            q.var, substitute(q.source, old, replacement), q.index_var
                        )
                    elif isinstance(q, Bind):
                        quals[j] = Bind(q.var, substitute(q.value, old, replacement))
                    else:
                        quals[j] = Filter(substitute(q.pred, old, replacement))
            head = substitute(head, old, replacement)
    return Comprehension(comp.monoid, head, tuple(quals))


class Rule:
    """Base class: a named rewrite with an ``apply`` partial function."""

    name: str = "rule"
    description: str = ""

    def apply(self, term: Term) -> Optional[Term]:  # pragma: no cover - abstract
        raise NotImplementedError


class BetaReduction(Rule):
    """N1: ``(\\v. e1) e2  ==>  e1[e2/v]``."""

    name = "N1-beta"
    description = "(\\v. e1) e2 => e1[e2/v]"

    def apply(self, term: Term) -> Optional[Term]:
        if not isinstance(term, Apply) or not isinstance(term.fn, Lambda):
            return None
        if has_effects(term.arg) and count_occurrences(term.fn.body, term.fn.param) != 1:
            return None
        return substitute(term.fn.body, term.fn.param, term.arg)


class LetInline(Rule):
    """N1b: ``let v = e1 in e2  ==>  e2[e1/v]`` (same guard as beta)."""

    name = "N1-let"
    description = "let v = e1 in e2 => e2[e1/v]"

    def apply(self, term: Term) -> Optional[Term]:
        if not isinstance(term, Let):
            return None
        if has_effects(term.value) and count_occurrences(term.body, term.var) != 1:
            return None
        return substitute(term.body, term.var, term.value)


class RecordProjection(Rule):
    """N2: ``<..., a=e, ...>.a  ==>  e``."""

    name = "N2-proj"
    description = "<..., a=e, ...>.a => e"

    def apply(self, term: Term) -> Optional[Term]:
        if not isinstance(term, Proj) or not isinstance(term.base, RecordCons):
            return None
        fields = term.base.field_map()
        if term.name not in fields:
            return None
        others = [v for k, v in fields.items() if k != term.name]
        if any(has_effects(v) for v in others):
            return None
        return fields[term.name]


class TupleProjection(Rule):
    """N2b: ``(e0, ..., en)[i]  ==>  ei`` for a constant index."""

    name = "N2-tuple"
    description = "(e0, ..., en)[i] => ei"

    def apply(self, term: Term) -> Optional[Term]:
        if not isinstance(term, Index) or not isinstance(term.base, TupleCons):
            return None
        if not isinstance(term.index, Const) or not isinstance(term.index.value, int):
            return None
        i = term.index.value
        items = term.base.items
        if not 0 <= i < len(items):
            return None
        if any(has_effects(item) for j, item in enumerate(items) if j != i):
            return None
        return items[i]


class BindingElimination(Rule):
    """N3: ``M{ e | q, v == u, s }  ==>  M{ e[u/v] | q, s[u/v] }``."""

    name = "N3-bind"
    description = "M{ e | q, v == u, s } => M{ e[u/v] | q, s[u/v] }"

    def apply(self, term: Term) -> Optional[Term]:
        if not isinstance(term, Comprehension):
            return None
        for i, qual in enumerate(term.qualifiers):
            if not isinstance(qual, Bind):
                continue
            rest = _rest_comprehension(term, i)
            if has_effects(qual.value) and count_occurrences(rest, qual.var) != 1:
                continue
            return _substitute_suffix(term, i, qual.var, qual.value)
        return None


class TruePredicate(Rule):
    """N4: ``M{ e | q, true, s }  ==>  M{ e | q, s }``."""

    name = "N4-true"
    description = "M{ e | q, true, s } => M{ e | q, s }"

    def apply(self, term: Term) -> Optional[Term]:
        if not isinstance(term, Comprehension):
            return None
        for i, qual in enumerate(term.qualifiers):
            if isinstance(qual, Filter) and qual.pred == Const(True):
                quals = term.qualifiers[:i] + term.qualifiers[i + 1 :]
                return Comprehension(term.monoid, term.head, quals)
        return None


class FalsePredicate(Rule):
    """N5: ``M{ e | q, false, s }  ==>  zero(M)``."""

    name = "N5-false"
    description = "M{ e | q, false, s } => zero(M)"

    def apply(self, term: Term) -> Optional[Term]:
        if not isinstance(term, Comprehension):
            return None
        if not any(
            isinstance(q, Filter) and q.pred == Const(False) for q in term.qualifiers
        ):
            return None
        if has_effects(term):
            return None
        return Empty(term.monoid)


class EmptyGenerator(Rule):
    """N6: ``M{ e | q, v <- zero(N), s }  ==>  zero(M)``."""

    name = "N6-empty"
    description = "M{ e | q, v <- zero(N), s } => zero(M)"

    def apply(self, term: Term) -> Optional[Term]:
        if not isinstance(term, Comprehension):
            return None
        if not any(
            isinstance(q, Generator) and isinstance(q.source, Empty)
            for q in term.qualifiers
        ):
            return None
        if has_effects(term):
            return None
        return Empty(term.monoid)


class SingletonGenerator(Rule):
    """N7: ``M{ e | q, v <- unit(N)(u), s }  ==>  M{ e[u/v] | q, s[u/v] }``."""

    name = "N7-unit"
    description = "M{ e | q, v <- unit(N)(u), s } => M{ e[u/v] | q, s[u/v] }"

    def apply(self, term: Term) -> Optional[Term]:
        if not isinstance(term, Comprehension):
            return None
        for i, qual in enumerate(term.qualifiers):
            if not isinstance(qual, Generator):
                continue
            if not isinstance(qual.source, Singleton):
                continue
            if qual.source.index is not None or qual.index_var is not None:
                continue  # vector units keep their positional structure
            value = qual.source.element
            rest = _rest_comprehension(term, i)
            if has_effects(value) and count_occurrences(rest, qual.var) != 1:
                continue
            return _substitute_suffix(term, i, qual.var, value)
        return None


class MergeSplit(Rule):
    """N8: ``M{ e | q, v <- e1 (+) e2, s } ==>
    M{ e | q, v <- e1, s } (+)M M{ e | q, v <- e2, s }``.

    Requires M commutative when other generators surround the split one
    (otherwise enumeration order changes), and purity (q and s are
    duplicated).
    """

    name = "N8-merge"
    description = "M{e | q, v <- e1 (+) e2, s} => M{e|q,v<-e1,s} (+)M M{e|q,v<-e2,s}"

    def apply(self, term: Term) -> Optional[Term]:
        if not isinstance(term, Comprehension):
            return None
        for i, qual in enumerate(term.qualifiers):
            if not isinstance(qual, Generator) or not isinstance(qual.source, Merge):
                continue
            others_generate = any(
                isinstance(q, Generator)
                for j, q in enumerate(term.qualifiers)
                if j != i
            )
            if others_generate and not _is_commutative(term.monoid):
                continue
            if has_effects(term):
                continue
            left = Comprehension(
                term.monoid,
                term.head,
                term.qualifiers[:i]
                + (Generator(qual.var, qual.source.left, qual.index_var),)
                + term.qualifiers[i + 1 :],
            )
            right = Comprehension(
                term.monoid,
                term.head,
                term.qualifiers[:i]
                + (Generator(qual.var, qual.source.right, qual.index_var),)
                + term.qualifiers[i + 1 :],
            )
            return Merge(term.monoid, left, right)
        return None


class FlattenGenerator(Rule):
    """N9 — the key rule: unnest a comprehension in generator position.

    ``M{ e | q, v <- N{ e' | r }, s }  ==>  M{ e | q, r, v == e', s }``

    Side condition: ``props(N) ⊆ props(M)``. The inner comprehension's
    qualifiers are alpha-renamed before splicing. The binding
    ``v == e'`` is left for N3 to eliminate, keeping each step small
    and auditable (the paper composes rules the same way).
    """

    name = "N9-flatten"
    description = "M{ e | q, v <- N{e'|r}, s } => M{ e | q, r, v == e', s }"

    def apply(self, term: Term) -> Optional[Term]:
        if not isinstance(term, Comprehension):
            return None
        outer_props = _monoid_static_props(term.monoid)
        for i, qual in enumerate(term.qualifiers):
            if not isinstance(qual, Generator):
                continue
            inner = qual.source
            if not isinstance(inner, Comprehension):
                continue
            if qual.index_var is not None:
                continue  # indexed generators need the materialized vector
            inner_props = _monoid_static_props(inner.monoid)
            if inner_props is None or outer_props is None:
                continue
            if not inner.monoid.name or inner.monoid.is_vector:
                continue
            if not inner_props <= outer_props:
                continue
            fresh_inner = _freshen(inner)
            spliced = (
                term.qualifiers[:i]
                + fresh_inner.qualifiers
                + (Bind(qual.var, fresh_inner.head),)
                + term.qualifiers[i + 1 :]
            )
            return Comprehension(term.monoid, term.head, spliced)
        return None


class ConditionalGenerator(Rule):
    """N10: ``M{ e | q, v <- if p then e1 else e2, s }  ==>``
    guarded two-branch merge. Same commutativity/purity guards as N8."""

    name = "N10-if-gen"
    description = (
        "M{e | q, v <- if p then e1 else e2, s} => "
        "M{e | q, p, v <- e1, s} (+)M M{e | q, not p, v <- e2, s}"
    )

    def apply(self, term: Term) -> Optional[Term]:
        if not isinstance(term, Comprehension):
            return None
        for i, qual in enumerate(term.qualifiers):
            if not isinstance(qual, Generator) or not isinstance(qual.source, If):
                continue
            others_generate = any(
                isinstance(q, Generator)
                for j, q in enumerate(term.qualifiers)
                if j != i
            )
            if others_generate and not _is_commutative(term.monoid):
                continue
            if has_effects(term):
                continue
            cond = qual.source.cond
            left = Comprehension(
                term.monoid,
                term.head,
                term.qualifiers[:i]
                + (Filter(cond), Generator(qual.var, qual.source.then_branch, qual.index_var))
                + term.qualifiers[i + 1 :],
            )
            right = Comprehension(
                term.monoid,
                term.head,
                term.qualifiers[:i]
                + (
                    Filter(UnOp("not", cond)),
                    Generator(qual.var, qual.source.else_branch, qual.index_var),
                )
                + term.qualifiers[i + 1 :],
            )
            return Merge(term.monoid, left, right)
        return None


class PredicateConjunction(Rule):
    """N12: ``M{ e | q, p1 and p2, s }  ==>  M{ e | q, p1, p2, s }``."""

    name = "N12-and"
    description = "M{ e | q, p1 and p2, s } => M{ e | q, p1, p2, s }"

    def apply(self, term: Term) -> Optional[Term]:
        if not isinstance(term, Comprehension):
            return None
        for i, qual in enumerate(term.qualifiers):
            if not isinstance(qual, Filter):
                continue
            pred = qual.pred
            if isinstance(pred, BinOp) and pred.op == "and":
                quals = (
                    term.qualifiers[:i]
                    + (Filter(pred.left), Filter(pred.right))
                    + term.qualifiers[i + 1 :]
                )
                return Comprehension(term.monoid, term.head, quals)
        return None


class ExistentialFusion(Rule):
    """N11: fuse a ``some``-comprehension predicate into the outer query.

    ``M{ e | q, some{ p | r }, s }  ==>  M{ e | q, r, p, s }``

    Sound only when M is idempotent: each witness found by ``r``
    re-emits the outer head, and idempotence collapses the duplicates.
    This is the paper's flattening of nested ``exists`` subqueries into
    joins. Inner binders are alpha-renamed before splicing, and the
    spliced generators must stay coherent in their new home: inside
    ``some`` (commutative *and* idempotent) any collection source is
    well-formed, but M may be weaker (e.g. ``oset``), so a generator
    whose source monoid is known must satisfy ``props(N) ⊆ props(M)``
    after the move.
    """

    name = "N11-exists"
    description = "M{ e | q, some{p | r}, s } => M{ e | q, r, p, s } (M idempotent)"

    def apply(self, term: Term) -> Optional[Term]:
        if not isinstance(term, Comprehension):
            return None
        if not _is_idempotent(term.monoid):
            return None
        outer_props = _monoid_static_props(term.monoid)
        for i, qual in enumerate(term.qualifiers):
            if not isinstance(qual, Filter):
                continue
            pred = qual.pred
            if not isinstance(pred, Comprehension) or pred.monoid.name != "some":
                continue
            if has_effects(pred):
                continue
            if not _splice_coherent(pred.qualifiers, outer_props):
                continue
            inner = _freshen(pred)
            spliced = (
                term.qualifiers[:i]
                + inner.qualifiers
                + (Filter(inner.head),)
                + term.qualifiers[i + 1 :]
            )
            return Comprehension(term.monoid, term.head, spliced)
        return None


class EmptyComprehension(Rule):
    """N0: ``M{ e | }  ==>  unit(M)(e)`` — the base case of the sugar."""

    name = "N0-unit"
    description = "M{ e | } => unit(M)(e)"

    def apply(self, term: Term) -> Optional[Term]:
        if not isinstance(term, Comprehension) or term.qualifiers:
            return None
        if term.monoid.is_vector:
            return None  # vector heads carry an index; keep structure
        if term.monoid.name in ("sum", "prod", "max", "min", "some", "all"):
            return term.head
        return Singleton(term.monoid, term.head)


class IdentityMerge(Rule):
    """N14: ``zero (+) e => e`` and ``e (+) zero => e``."""

    name = "N14-zero"
    description = "zero(M) (+)M e => e;  e (+)M zero(M) => e"

    def apply(self, term: Term) -> Optional[Term]:
        if not isinstance(term, Merge):
            return None
        if isinstance(term.left, Empty) and term.left.monoid.name == term.monoid.name:
            return term.right
        if isinstance(term.right, Empty) and term.right.monoid.name == term.monoid.name:
            return term.left
        return None


class ConstantFolding(Rule):
    """N15: fold operators over constants (``3 < 5 => true``, ``not true
    => false``, ``if true then a else b => a``)."""

    name = "N15-const"
    description = "fold constant operators and conditionals"

    def apply(self, term: Term) -> Optional[Term]:
        if isinstance(term, If) and isinstance(term.cond, Const):
            if term.cond.value is True:
                return term.then_branch
            if term.cond.value is False:
                return term.else_branch
            return None
        if isinstance(term, UnOp) and term.op == "not" and isinstance(term.operand, Const):
            if isinstance(term.operand.value, bool):
                return Const(not term.operand.value)
            return None
        if isinstance(term, BinOp):
            left, right = term.left, term.right
            if term.op == "and":
                if left == Const(True):
                    return right
                if right == Const(True):
                    return left
                if Const(False) in (left, right):
                    return Const(False)
                return None
            if term.op == "or":
                if left == Const(False):
                    return right
                if right == Const(False):
                    return left
                if Const(True) in (left, right):
                    return Const(True)
                return None
            if isinstance(left, Const) and isinstance(right, Const):
                return self._fold(term.op, left.value, right.value)
        return None

    @staticmethod
    def _fold(op: str, a, b) -> Optional[Term]:
        try:
            if op == "=":
                return Const(a == b)
            if op == "!=":
                return Const(a != b)
            numeric = (
                isinstance(a, (int, float))
                and isinstance(b, (int, float))
                and not isinstance(a, bool)
                and not isinstance(b, bool)
            )
            if op in ("<", "<=", ">", ">=") and numeric:
                return Const({"<": a < b, "<=": a <= b, ">": a > b, ">=": a >= b}[op])
            if op in ("+", "-", "*") and numeric:
                return Const({"+": a + b, "-": a - b, "*": a * b}[op])
        except TypeError:
            return None
        return None


#: The default Table 3 rule set, in application priority order.
DEFAULT_RULES: tuple[Rule, ...] = (
    BetaReduction(),
    LetInline(),
    RecordProjection(),
    TupleProjection(),
    ConstantFolding(),
    TruePredicate(),
    FalsePredicate(),
    EmptyGenerator(),
    IdentityMerge(),
    SingletonGenerator(),
    BindingElimination(),
    PredicateConjunction(),
    FlattenGenerator(),
    ExistentialFusion(),
    MergeSplit(),
    ConditionalGenerator(),
)

#: Rules safe to report in Table 3 benchmarks, indexed by name.
RULES_BY_NAME: dict[str, Rule] = {rule.name: rule for rule in DEFAULT_RULES}
RULES_BY_NAME[EmptyComprehension().name] = EmptyComprehension()

#: Rule set used before algebra planning: the merge-split and
#: conditional-split rules are omitted because they rewrite a single
#: comprehension into a *merge of* comprehensions, which has no single
#: operator-tree plan. The executor simply evaluates such generator
#: sources inline, which stays pipelined.
PLANNING_RULES: tuple[Rule, ...] = tuple(
    rule
    for rule in DEFAULT_RULES
    if not isinstance(rule, (MergeSplit, ConditionalGenerator))
)
