"""Heuristic logical-plan optimizer.

Three classic rewrites, each visible in ``explain`` output:

1. **Index selection** — ``Select (v.attr = const) over Scan v <- Extent``
   becomes an :class:`IndexScan` when a hash index exists on
   ``(Extent, attr)``.
2. **Selection pushdown** — selections sink below joins/unnests to the
   lowest operator that binds their variables (plans built by
   :func:`repro.algebra.translate.build_plan` are already pushed; this
   pass re-establishes the property after other rewrites).
3. **Join key promotion** — residual equality predicates directly above
   a Join move into its hash keys.

The optimizer is pure: it returns a new plan tree.
"""

from __future__ import annotations

from typing import Optional

from repro.algebra.ops import (
    IndexScan,
    Join,
    Nest,
    PlanNode,
    Reduce,
    Scan,
    SelectOp,
    Unnest,
)
from repro.algebra.translate import _try_join_keys
from repro.analysis.verifier import resolve_verify
from repro.calculus.ast import BinOp, Proj, Term, Var
from repro.calculus.traversal import free_vars


class Optimizer:
    """Applies the heuristic rewrites to a logical plan.

    ``extent_sizes`` (element counts per extent) enables the build-side
    heuristic: hash joins build their table on the smaller input, so a
    Join whose right (build) side is estimated larger than its left
    (probe) side is flipped. Flipping reorders the output stream, so it
    is applied only when the plan's output monoid is commutative.

    ``verify=True`` checks both the input and the rewritten plan for
    schema/scoping consistency (see :mod:`repro.analysis.plancheck`);
    ``None`` defers to the global verification switch.
    """

    def __init__(
        self,
        available_indexes: Optional[set[tuple[str, str]]] = None,
        extent_sizes: Optional[dict[str, int]] = None,
        verify: Optional[bool] = None,
    ) -> None:
        self.available_indexes = available_indexes or set()
        self.extent_sizes = extent_sizes or {}
        self.verify = verify

    def optimize(self, plan: Reduce) -> Reduce:
        """Rewrite the plan; the result is executable by the Executor."""
        child = self._opt(plan.child)
        if self.extent_sizes and _monoid_is_commutative(plan.monoid):
            child = self._choose_build_sides(child)
        result = Reduce(plan.monoid, plan.head, child)
        if resolve_verify(self.verify):
            from repro.analysis.plancheck import check_plan_rewrite

            check_plan_rewrite("optimizer", plan, result)
        return result

    def _choose_build_sides(self, node: PlanNode) -> PlanNode:
        if isinstance(node, Join):
            left = self._choose_build_sides(node.left)
            right = self._choose_build_sides(node.right)
            join = Join(left, right, node.left_keys, node.right_keys, node.residual)
            if join.left_keys:
                left_est = estimate_cardinality(left, self.extent_sizes)
                right_est = estimate_cardinality(right, self.extent_sizes)
                if right_est > left_est:
                    return Join(
                        right, left, join.right_keys, join.left_keys, join.residual
                    )
            return join
        if isinstance(node, SelectOp):
            return SelectOp(self._choose_build_sides(node.child), node.pred)
        if isinstance(node, Unnest):
            return Unnest(
                self._choose_build_sides(node.child),
                node.var,
                node.path,
                node.index_var,
            )
        return node

    # -- recursive rewrite -------------------------------------------------------

    def _opt(self, node: PlanNode) -> PlanNode:
        if isinstance(node, SelectOp):
            child = self._opt(node.child)
            return self._place_select(child, node.pred)
        if isinstance(node, Join):
            return Join(
                self._opt(node.left),
                self._opt(node.right),
                node.left_keys,
                node.right_keys,
                node.residual,
            )
        if isinstance(node, Unnest):
            return Unnest(self._opt(node.child), node.var, node.path, node.index_var)
        return node

    def _place_select(self, child: PlanNode, pred: Term) -> PlanNode:
        """Sink one selection as deep as its variables allow."""
        # Index selection on a direct scan.
        if isinstance(child, Scan):
            index_scan = self._match_index(child, pred)
            if index_scan is not None:
                return index_scan
            return SelectOp(child, pred)
        if isinstance(child, SelectOp):
            placed = self._place_select(child.child, pred)
            return SelectOp(placed, child.pred)
        if isinstance(child, Join):
            needed = free_vars(pred)
            if needed & child.columns() <= child.left.columns():
                return Join(
                    self._place_select(child.left, pred),
                    child.right,
                    child.left_keys,
                    child.right_keys,
                    child.residual,
                )
            if needed & child.columns() <= child.right.columns():
                return Join(
                    child.left,
                    self._place_select(child.right, pred),
                    child.left_keys,
                    child.right_keys,
                    child.residual,
                )
            keyed = _try_join_keys(child, pred)
            if keyed is not None:
                return keyed
            return SelectOp(child, pred)
        if isinstance(child, Unnest):
            needed = free_vars(pred)
            inner_cols = child.child.columns()
            if needed & child.columns() <= inner_cols:
                return Unnest(
                    self._place_select(child.child, pred),
                    child.var,
                    child.path,
                    child.index_var,
                )
            return SelectOp(child, pred)
        return SelectOp(child, pred)

    # -- index matching -------------------------------------------------------------

    def _match_index(self, scan: Scan, pred: Term) -> Optional[IndexScan]:
        """``Scan v <- Extent`` + ``v.attr = const-expr`` -> IndexScan."""
        if scan.index_var is not None or not isinstance(scan.source, Var):
            return None
        extent = scan.source.name
        match = _equality_on_var(pred, scan.var)
        if match is None:
            return None
        attribute, key = match
        if (extent, attribute) not in self.available_indexes:
            return None
        if scan.var in free_vars(key):
            return None
        return IndexScan(scan.var, extent, attribute, key)


def _monoid_is_primitive(ref) -> bool:
    from repro.monoids.registry import PRIMITIVE_MONOIDS

    return not ref.is_vector and ref.name in {m.name for m in PRIMITIVE_MONOIDS}


def _monoid_is_commutative(ref) -> bool:
    from repro.types.infer import MONOID_PROPS

    name = ref.element.name if ref.is_vector and ref.element is not None else ref.name
    entry = MONOID_PROPS.get(name)
    return entry is not None and entry[0]


def _equality_on_var(pred: Term, var_name: str) -> Optional[tuple[str, Term]]:
    """Match ``v.attr = key`` or ``key = v.attr``; return (attr, key)."""
    if not isinstance(pred, BinOp) or pred.op != "=":
        return None
    for attr_side, key_side in ((pred.left, pred.right), (pred.right, pred.left)):
        if (
            isinstance(attr_side, Proj)
            and isinstance(attr_side.base, Var)
            and attr_side.base.name == var_name
            and var_name not in free_vars(key_side)
        ):
            return attr_side.name, key_side
    return None


# ---------------------------------------------------------------------------
# Cardinality estimation (used by explain and by benchmarks)
# ---------------------------------------------------------------------------

#: Default guesses where statistics are unavailable.
DEFAULT_SELECTIVITY = 0.25
DEFAULT_FANOUT = 4.0
DEFAULT_EXTENT_SIZE = 1000.0
#: Fraction of input rows surviving a Nest as distinct groups.
DEFAULT_GROUP_FACTOR = 0.1


def estimate_cardinality(
    node: PlanNode,
    extent_sizes: Optional[dict[str, int]] = None,
    stats: Optional[dict] = None,
) -> float:
    """Output-cardinality estimate for a plan subtree.

    Without ``stats`` (a :class:`repro.db.stats.ExtentStats` mapping),
    fixed default selectivities/fan-outs apply; with it, equality
    selections use ``1/distinct(attr)`` and unnests the measured average
    fan-out of the navigated attribute.
    """
    sizes = extent_sizes or {}
    var_extents = _scan_var_extents(node)
    return _estimate(node, sizes, stats or {}, var_extents)


def _scan_var_extents(node: PlanNode) -> dict[str, str]:
    """Map plan variables to the extents their Scan reads, where known."""
    out: dict[str, str] = {}

    def walk(n: PlanNode) -> None:
        if isinstance(n, Scan) and isinstance(n.source, Var):
            out[n.var] = n.source.name
        elif isinstance(n, IndexScan):
            out[n.var] = n.extent
        for child in _plan_children(n):
            walk(child)

    walk(node)
    return out


def _estimate(
    node: PlanNode,
    sizes: dict[str, int],
    stats: dict,
    var_extents: dict[str, str],
) -> float:
    if isinstance(node, Reduce):
        base = _estimate(node.child, sizes, stats, var_extents)
        # A primitive-monoid reduce (sum/count/max/some...) emits one
        # value regardless of input; collection reduces keep the stream.
        if _monoid_is_primitive(node.monoid):
            return 1.0
        return base
    if isinstance(node, Scan):
        if isinstance(node.source, Var):
            return float(sizes.get(node.source.name, DEFAULT_EXTENT_SIZE))
        return DEFAULT_EXTENT_SIZE
    if isinstance(node, IndexScan):
        base = float(sizes.get(node.extent, DEFAULT_EXTENT_SIZE))
        selectivity = _stat_selectivity(stats, node.extent, node.attribute)
        if selectivity is not None:
            return max(1.0, base * selectivity)
        return max(1.0, base * 0.01)
    if isinstance(node, SelectOp):
        base = _estimate(node.child, sizes, stats, var_extents)
        selectivity = _pred_selectivity(node.pred, stats, var_extents)
        return base * (selectivity if selectivity is not None else DEFAULT_SELECTIVITY)
    if isinstance(node, Join):
        left = _estimate(node.left, sizes, stats, var_extents)
        right = _estimate(node.right, sizes, stats, var_extents)
        if node.left_keys:
            return max(left, right)
        return left * right
    if isinstance(node, Unnest):
        base = _estimate(node.child, sizes, stats, var_extents)
        fanout = _path_fanout(node.path, stats, var_extents)
        return base * (fanout if fanout is not None else DEFAULT_FANOUT)
    if isinstance(node, Nest):
        base = _estimate(node.child, sizes, stats, var_extents)
        distinct = _keys_distinct(node, stats, var_extents)
        if distinct is not None:
            return max(1.0, min(base, distinct))
        return max(1.0, base * DEFAULT_GROUP_FACTOR)
    return DEFAULT_EXTENT_SIZE


def _keys_distinct(
    node: Nest, stats: dict, var_extents: dict[str, str]
) -> Optional[float]:
    """Distinct-count bound for a Nest whose keys are all ``v.attr``
    projections with statistics: the product of per-key distincts."""
    product = 1.0
    for _, term in node.keys:
        if not (
            isinstance(term, Proj)
            and isinstance(term.base, Var)
            and term.base.name in var_extents
        ):
            return None
        extent_stats = stats.get(var_extents[term.base.name])
        if extent_stats is None:
            return None
        attr = extent_stats.attributes.get(term.name)
        if attr is None or attr.distinct <= 0:
            return None
        product *= attr.distinct
    return product


def _stat_selectivity(stats: dict, extent: str, attribute: str) -> Optional[float]:
    extent_stats = stats.get(extent)
    if extent_stats is None:
        return None
    attr = extent_stats.attributes.get(attribute)
    if attr is None or attr.distinct == 0:
        return None
    return 1.0 / attr.distinct


def _pred_selectivity(
    pred: Term, stats: dict, var_extents: dict[str, str]
) -> Optional[float]:
    """Selectivity of ``v.attr = const`` when statistics know the attr."""
    if not isinstance(pred, BinOp) or pred.op != "=":
        return None
    for side in (pred.left, pred.right):
        if (
            isinstance(side, Proj)
            and isinstance(side.base, Var)
            and side.base.name in var_extents
        ):
            return _stat_selectivity(stats, var_extents[side.base.name], side.name)
    return None


def _path_fanout(
    path: Term, stats: dict, var_extents: dict[str, str]
) -> Optional[float]:
    if (
        isinstance(path, Proj)
        and isinstance(path.base, Var)
        and path.base.name in var_extents
    ):
        extent_stats = stats.get(var_extents[path.base.name])
        if extent_stats is not None:
            attr = extent_stats.attributes.get(path.name)
            if attr is not None and attr.avg_fanout is not None:
                return attr.avg_fanout
    return None


def explain(
    plan: Reduce,
    extent_sizes: Optional[dict[str, int]] = None,
    stats: Optional[dict] = None,
) -> str:
    """Readable plan rendering with cardinality estimates per node."""
    lines: list[str] = []

    def walk(node: PlanNode, indent: int) -> None:
        pad = "  " * indent
        est = estimate_cardinality(node, extent_sizes, stats)
        label = node.render(0).splitlines()[0]
        lines.append(f"{pad}{label}   ~{est:.0f} rows")
        for child in _plan_children(node):
            walk(child, indent + 1)

    walk(plan, 0)
    return "\n".join(lines)


def _plan_children(node: PlanNode) -> tuple[PlanNode, ...]:
    return node.children()
