"""Logical algebra, optimizer and pipelined physical execution."""

from repro.algebra.groupby import build_group_by_plan
from repro.algebra.ops import (
    IndexScan,
    Join,
    Nest,
    PlanNode,
    Reduce,
    Scan,
    SelectOp,
    Unnest,
)
from repro.algebra.optimizer import (
    Optimizer,
    estimate_cardinality,
    explain,
)
from repro.algebra.physical import ExecutionStats, Executor, execute_plan
from repro.algebra.translate import build_plan

__all__ = [
    "ExecutionStats",
    "Executor",
    "IndexScan",
    "Join",
    "Nest",
    "Optimizer",
    "PlanNode",
    "Reduce",
    "Scan",
    "SelectOp",
    "Unnest",
    "build_group_by_plan",
    "build_plan",
    "estimate_cardinality",
    "execute_plan",
    "explain",
]
