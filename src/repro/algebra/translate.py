"""Canonical comprehension -> logical algebra plan.

The translation follows the paper's evaluation sketch: generators
become a left-deep chain — :class:`Scan` / :class:`Join` for
independent sources, :class:`Unnest` for path-dependent ones —
predicates are pushed to the earliest operator where their variables
are bound (with conjunctive equalities across a Join recognized as
hash keys), and the comprehension's monoid/head become the final
:class:`Reduce`.

Terms that are not canonical are normalized first; anything the
rewrite rules could not flatten (e.g. a ``bag`` comprehension over a
``set`` subquery, which must stay nested for correctness) simply
remains an opaque source term that the physical layer evaluates with
the reference evaluator — plans degrade gracefully instead of
rejecting queries.
"""

from __future__ import annotations

from repro.calculus.ast import (
    Bind,
    BinOp,
    Comprehension,
    Filter,
    Generator,
    Term,
)
from repro.calculus.traversal import free_vars, has_effects
from repro.errors import PlanError
from repro.normalize.engine import normalize
from repro.normalize.rules import PLANNING_RULES
from repro.algebra.ops import Join, PlanNode, Reduce, Scan, SelectOp, Unnest


def build_plan(term: Term, pre_normalize: bool = True) -> Reduce:
    """Build a logical plan for a comprehension term.

    >>> from repro.oql import translate_oql
    >>> plan = build_plan(translate_oql(
    ...     "select distinct c.name from c in Cities where c.zip = 97201"))
    >>> print(plan.render())
    Reduce set{ c.name }
      Select (c.zip = 97201)
        Scan c <- Cities
    """
    if pre_normalize:
        term = normalize(term, rules=PLANNING_RULES)
    if not isinstance(term, Comprehension):
        degenerate = _degenerate_plan(term)
        if degenerate is not None:
            return degenerate
        raise PlanError(
            f"only comprehensions have algebra plans, got {type(term).__name__}"
        )
    if has_effects(term):
        raise PlanError("effectful comprehensions (new/:=/+=) are not plannable")
    return _build(term)


def _build(comp: Comprehension) -> Reduce:
    plan: PlanNode | None = None
    bound: set[str] = set()
    all_vars = _generator_vars(comp)
    # Plannable comprehensions are pure (checked above), so predicates can
    # be hoisted ahead of their source position and attached at the first
    # operator that binds their variables — build-time pushdown.
    pending: list[Term] = [
        qual.pred for qual in comp.qualifiers if isinstance(qual, Filter)
    ]

    for qual in comp.qualifiers:
        if isinstance(qual, Generator):
            plan = _add_generator(plan, qual, bound)
            bound.add(qual.var)
            if qual.index_var is not None:
                bound.add(qual.index_var)
            plan, pending = _attach_ready(plan, pending, bound, all_vars)
        elif isinstance(qual, Bind):
            # Canonical forms have no bindings; a leftover Bind (kept by a
            # purity guard) is treated as a dependent singleton generator.
            plan = _add_bind(plan, qual)
            bound.add(qual.var)
            plan, pending = _attach_ready(plan, pending, bound, all_vars)

    if pending:
        if plan is None:
            # Predicates with no generators guard the whole comprehension.
            plan = Scan("_unit", _unit_source())
            for pred in pending:
                plan = SelectOp(plan, pred)
            pending = []
        else:  # pragma: no cover - _attach_ready drains everything bindable
            for pred in pending:
                plan = SelectOp(plan, pred)
    if plan is None:
        plan = Scan("_unit", _unit_source())
    return Reduce(comp.monoid, comp.head, plan)


def _unit_source() -> Term:
    from repro.calculus.ast import Const

    return Const((None,))


def _degenerate_plan(term: Term) -> Reduce | None:
    """Plans for terms normalization collapsed below comprehension level.

    ``zero(M)`` becomes a Reduce over zero rows (which yields ``zero(M)``)
    and ``unit(M)(e)`` a Reduce over exactly one row with head ``e``.
    """
    from repro.calculus.ast import Const, Empty as EmptyTerm, Singleton

    if isinstance(term, EmptyTerm):
        return Reduce(term.monoid, Const(None), Scan("_unit", Const(())))
    if isinstance(term, Singleton) and term.index is None:
        return Reduce(term.monoid, term.element, Scan("_unit", _unit_source()))
    return None


def _generator_vars(comp: Comprehension) -> frozenset[str]:
    out: set[str] = set()
    for qual in comp.qualifiers:
        if isinstance(qual, Generator):
            out.add(qual.var)
            if qual.index_var is not None:
                out.add(qual.index_var)
        elif isinstance(qual, Bind):
            out.add(qual.var)
    return frozenset(out)


def _add_generator(
    plan: PlanNode | None, qual: Generator, bound: set[str]
) -> PlanNode:
    deps = free_vars(qual.source) & bound
    if deps:
        if plan is None:
            raise PlanError(
                f"generator {qual.var} depends on unbound variables {sorted(deps)}"
            )
        return Unnest(plan, qual.var, qual.source, qual.index_var)
    scan = Scan(qual.var, qual.source, qual.index_var)
    if plan is None:
        return scan
    return Join(plan, scan)


def _add_bind(plan: PlanNode | None, qual: Bind) -> PlanNode:
    from repro.calculus.ast import MonoidRef, Singleton

    singleton = Singleton(MonoidRef("list"), qual.value)
    if plan is None:
        return Scan(qual.var, singleton)
    return Unnest(plan, qual.var, singleton)


def _attach_ready(
    plan: PlanNode | None,
    pending: list[Term],
    bound: set[str],
    all_vars: frozenset[str],
) -> tuple[PlanNode | None, list[Term]]:
    """Attach every pending predicate whose plan variables are bound."""
    remaining: list[Term] = []
    for pred in pending:
        needed = free_vars(pred) & all_vars
        if plan is not None and needed <= bound:
            plan = _attach(plan, pred)
        else:
            remaining.append(pred)
    return plan, remaining


def _attach(plan: PlanNode, pred: Term) -> PlanNode:
    """Attach one predicate as deep as its variables allow.

    Predicates local to one join input sink into it; equalities across
    both inputs become hash keys; everything else becomes a selection at
    this level.
    """
    if isinstance(plan, SelectOp):
        return SelectOp(_attach(plan.child, pred), plan.pred)
    if isinstance(plan, Join):
        needed = free_vars(pred) & plan.columns()
        if needed and needed <= plan.left.columns():
            return Join(
                _attach(plan.left, pred),
                plan.right,
                plan.left_keys,
                plan.right_keys,
                plan.residual,
            )
        if needed and needed <= plan.right.columns():
            return Join(
                plan.left,
                _attach(plan.right, pred),
                plan.left_keys,
                plan.right_keys,
                plan.residual,
            )
        keyed = _try_join_keys(plan, pred)
        if keyed is not None:
            return keyed
        return SelectOp(plan, pred)
    if isinstance(plan, Unnest):
        needed = free_vars(pred) & plan.columns()
        if needed and needed <= plan.child.columns():
            return Unnest(
                _attach(plan.child, pred), plan.var, plan.path, plan.index_var
            )
        return SelectOp(plan, pred)
    return SelectOp(plan, pred)


def _try_join_keys(join: Join, pred: Term) -> Join | None:
    """Recognize ``l = r`` with each side local to one join input."""
    if not isinstance(pred, BinOp) or pred.op != "=":
        return None
    left_cols = join.left.columns()
    right_cols = join.right.columns()
    lv = free_vars(pred.left)
    rv = free_vars(pred.right)
    left_term, right_term = None, None
    if lv & left_cols and not lv & right_cols and rv & right_cols and not rv & left_cols:
        left_term, right_term = pred.left, pred.right
    elif lv & right_cols and not lv & left_cols and rv & left_cols and not rv & right_cols:
        left_term, right_term = pred.right, pred.left
    if left_term is None:
        return None
    return Join(
        join.left,
        join.right,
        join.left_keys + (left_term,),
        join.right_keys + (right_term,),
        join.residual,
    )
