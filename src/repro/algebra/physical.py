"""Pipelined (Volcano-style) execution of algebra plans.

Every logical operator compiles to a Python generator over *bindings*
(dicts mapping plan variables to values). Nothing is materialized
except hash-join build sides and the final Reduce accumulator — this
is the evaluation style the paper's canonical forms are designed to
enable.

Join strategy: when a :class:`Join` carries equi-keys, a hash join is
used (build on the right input, probe from the left); otherwise a
block nested-loop join (the right side is materialized once). The
:class:`ExecutionStats` counter block lets benchmarks report rows
flowing through each operator, making the pipelining-vs-materialization
comparison concrete. For *per-node* attribution (rows, wall time, probe
counts on each operator instead of whole-query totals), construct the
Executor with a :class:`repro.obs.metrics.PlanMetrics`; without one the
binding streams are exactly the seed generators, untouched.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, Iterator, Optional

from repro.algebra.ops import (
    IndexScan,
    Join,
    Nest,
    PlanNode,
    Reduce,
    Scan,
    SelectOp,
    Unnest,
)
from repro.calculus.ast import Lambda, Term
from repro.calculus.traversal import subterms
from repro.errors import EvaluationError, PlanError
from repro.eval.builtins import runtime_monoid_of
from repro.eval.env import Env
from repro.eval.evaluator import Evaluator
from repro.monoids import CollectionMonoid, VectorMonoid
from repro.objects.store import Obj
from repro.values import OrderedSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.obs.metrics import PlanMetrics


@dataclass
class ExecutionStats:
    """Per-operator row counters collected during one execution.

    One instance belongs to one :class:`Executor`, which belongs to one
    query execution — counters are plain ints and are **not** safe to
    share across threads. Concurrent executions (including the
    per-partition workers of :mod:`repro.parallel`) each own a private
    block and combine them afterwards with :meth:`merge_from`.
    """

    rows_scanned: int = 0
    rows_joined: int = 0
    rows_unnested: int = 0
    rows_selected_out: int = 0
    rows_reduced: int = 0
    rows_grouped: int = 0
    hash_builds: int = 0
    index_probes: int = 0
    #: partitions executed by the parallel engine (0 on the serial path)
    partitions: int = 0
    #: worker threads the parallel engine ran those partitions on
    parallel_workers: int = 0

    def as_dict(self) -> dict[str, int]:
        # Derived from the dataclass fields so a counter added later can
        # never be silently dropped from reports.
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def merge_from(self, other: "ExecutionStats") -> None:
        """Add another block's row counters into this one.

        Used to fold per-partition worker stats back into the query's
        block after the workers have finished — summation is
        order-insensitive, so the combined totals are deterministic
        however the workers interleaved. The parallel bookkeeping
        fields (``partitions``/``parallel_workers``) describe the whole
        query, not one partition, and are deliberately not summed.
        """
        for f in fields(self):
            if f.name in ("partitions", "parallel_workers"):
                continue
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))


class Executor:
    """Executes logical plans against an :class:`Evaluator`'s world.

    The evaluator supplies global bindings (extents), builtins, methods
    and the object store; ``indexes`` optionally maps
    ``(extent, attribute)`` to a hash index (dict key -> list of
    elements) used by :class:`IndexScan` nodes.
    """

    def __init__(
        self,
        evaluator: Evaluator,
        indexes: Optional[dict[tuple[str, str], dict[Any, list]]] = None,
        metrics: Optional["PlanMetrics"] = None,
        jit: Any = None,
    ) -> None:
        self.evaluator = evaluator
        self.indexes = indexes or {}
        self.stats = ExecutionStats()
        #: optional per-operator collector; None keeps the seed fast path
        self.metrics = metrics
        #: optional repro.jit.JITConfig; None keeps the interpreted path
        self.jit = jit
        if jit is not None:
            from repro.analysis.verifier import resolve_verify
            from repro.jit.runtime import Runtime

            self._rt = Runtime(evaluator)
            self._jit_verify = resolve_verify(getattr(jit, "verify", None))
        else:
            self._rt = None
            self._jit_verify = False
        self._reusable_scans: frozenset[int] = frozenset()

    # -- public API --------------------------------------------------------------

    def execute(self, plan: Reduce) -> Any:
        """Run the plan to completion and return the reduced value."""
        self.stats = ExecutionStats()
        if self.metrics is None:
            self._reusable_scans = _collect_reusable_scans(plan)
            return self._reduce(plan)
        # EXPLAIN ANALYZE keeps the seed's fresh-dict-per-row streams.
        self._reusable_scans = frozenset()
        self.metrics.reset()
        block = self.metrics.for_node(plan)
        block.invocations += 1
        start = time.perf_counter_ns()
        try:
            value = self._reduce(plan)
        finally:
            block.time_ns += time.perf_counter_ns() - start
        block.rows_out += _result_cardinality(value)
        return value

    def _reduce(self, plan: Reduce) -> Any:
        monoid = self.evaluator.resolve_monoid(plan.monoid, self.evaluator.global_env)
        return self._fold_plan(plan, monoid, self._iter(plan.child))

    def _fold_plan(
        self, plan: Reduce, monoid, bindings: Iterator[dict[str, Any]]
    ) -> Any:
        """Fold a Reduce node's head, through its compiled closure when
        the JIT is on. The parallel engine calls this per partition."""
        if self.jit is not None:
            return self._fold_jit(monoid, self._jit_head(plan), bindings)
        return self._fold(monoid, plan.head, bindings)

    def _fold(self, monoid, head, bindings: Iterator[dict[str, Any]]) -> Any:
        """Fold ``head`` over a binding stream into ``monoid``."""
        if isinstance(monoid, CollectionMonoid):
            acc = monoid.accumulator()
            is_vector = isinstance(monoid, VectorMonoid)
            for binding in bindings:
                self.stats.rows_reduced += 1
                value = self._eval(head, binding)
                if is_vector and (not isinstance(value, tuple) or len(value) != 2):
                    raise EvaluationError(
                        "a vector reduce head must be a (value, index) pair"
                    )
                acc.add(value)
            return acc.finish()
        result = monoid.zero()
        for binding in bindings:
            self.stats.rows_reduced += 1
            result = monoid.merge(result, self._eval(head, binding))
        return result

    def _fold_jit(self, monoid, head_fn, bindings: Iterator[dict[str, Any]]) -> Any:
        """`_fold` with the head as a compiled closure."""
        rt = self._rt
        if isinstance(monoid, CollectionMonoid):
            acc = monoid.accumulator()
            is_vector = isinstance(monoid, VectorMonoid)
            for binding in bindings:
                self.stats.rows_reduced += 1
                value = head_fn(binding, rt)
                if is_vector and (not isinstance(value, tuple) or len(value) != 2):
                    raise EvaluationError(
                        "a vector reduce head must be a (value, index) pair"
                    )
                acc.add(value)
            return acc.finish()
        result = monoid.zero()
        for binding in bindings:
            self.stats.rows_reduced += 1
            result = monoid.merge(result, head_fn(binding, rt))
        return result

    # -- JIT helpers -----------------------------------------------------------------

    def _jit_node(self, node: PlanNode) -> None:
        """Ensure ``node`` carries compiled closures (lazy: cached plans
        compiled by the pipeline's jit phase skip this; plan nodes
        rebuilt by the parallel spine walk compile here on first use)."""
        if not node.jit_ready:
            from repro.jit.plan import compile_node

            compile_node(node)

    def _jit_wrap(self, fn, term: Term):
        """Under verify mode, wrap a compiled closure with a per-row
        differential check against the reference interpreter."""
        if not self._jit_verify:
            return fn
        rt = self._rt

        def checked(binding: dict[str, Any], _rt, _fn=fn, _term=term) -> Any:
            value = _fn(binding, _rt)
            expected = rt.eval_fallback(_term, binding)
            if type(value) is not type(expected) or value != expected:
                from repro.errors import VerificationError

                raise VerificationError(
                    "jit-compile",
                    _term,
                    violations=[f"compiled {value!r} != interpreted {expected!r}"],
                )
            return value

        return checked

    def _jit_head(self, plan: Reduce):
        self._jit_node(plan)
        return self._jit_wrap(plan.head_fn, plan.head)

    # -- binding streams -------------------------------------------------------------

    def _iter(self, node: PlanNode) -> Iterator[dict[str, Any]]:
        if self.metrics is None:
            return self._dispatch(node)
        return self.metrics.instrument(node, self._dispatch(node))

    def _dispatch(self, node: PlanNode) -> Iterator[dict[str, Any]]:
        if isinstance(node, Scan):
            yield from self._iter_scan(node)
        elif isinstance(node, SelectOp):
            yield from self._iter_select(node)
        elif isinstance(node, Join):
            yield from self._iter_join(node)
        elif isinstance(node, Unnest):
            yield from self._iter_unnest(node)
        elif isinstance(node, IndexScan):
            yield from self._iter_index_scan(node)
        elif isinstance(node, Nest):
            yield from self._iter_nest(node)
        else:
            raise PlanError(f"unknown plan node {type(node).__name__}")

    def _iter_scan(self, node: Scan) -> Iterator[dict[str, Any]]:
        source = self._eval(node.source, {})
        if id(node) in self._reusable_scans:
            yield from self._iter_scan_reused(node, source)
            return
        for binding in self._bindings_of(source, node.var, node.index_var):
            self.stats.rows_scanned += 1
            yield binding

    def _iter_scan_reused(self, node: Scan, source: Any) -> Iterator[dict[str, Any]]:
        """`_iter_scan` yielding ONE binding dict mutated in place.

        Only used when :func:`_collect_reusable_scans` proved nothing
        downstream retains the dict past the row (no merge-copying
        operator stores it and no expression evaluated on it can
        allocate a closure). Inlines ``_bindings_of`` so the per-row
        cost is two dict stores instead of an allocation.
        """
        if isinstance(source, Obj):
            source = self.evaluator.store.deref(source)
        monoid = runtime_monoid_of(source)
        stats = self.stats
        var, index_var = node.var, node.index_var
        binding: dict[str, Any] = {}
        if index_var is None:
            if isinstance(monoid, VectorMonoid):
                for _, value in monoid.iterate(source):
                    stats.rows_scanned += 1
                    binding[var] = value
                    yield binding
            else:
                for value in monoid.iterate(source):
                    stats.rows_scanned += 1
                    binding[var] = value
                    yield binding
        elif isinstance(monoid, VectorMonoid):
            for position, value in monoid.iterate(source):
                stats.rows_scanned += 1
                binding[var] = value
                binding[index_var] = position
                yield binding
        elif isinstance(source, (tuple, list, str, OrderedSet)):
            for position, value in enumerate(monoid.iterate(source)):
                stats.rows_scanned += 1
                binding[var] = value
                binding[index_var] = position
                yield binding
        else:
            raise EvaluationError(
                "indexed scan requires an ordered collection, got "
                f"{type(source).__name__}"
            )

    def _iter_select(self, node: SelectOp) -> Iterator[dict[str, Any]]:
        if self.jit is not None:
            yield from self._iter_select_jit(node)
            return
        for binding in self._iter(node.child):
            value = self._eval(node.pred, binding)
            if not isinstance(value, bool):
                raise EvaluationError(
                    f"selection predicate produced non-boolean {value!r}"
                )
            if value:
                yield binding
            else:
                self.stats.rows_selected_out += 1

    def _iter_select_jit(self, node: SelectOp) -> Iterator[dict[str, Any]]:
        self._jit_node(node)
        pred_fn = self._jit_wrap(node.pred_fn, node.pred)
        rt = self._rt
        stats = self.stats
        for binding in self._iter(node.child):
            value = pred_fn(binding, rt)
            if value is True:
                yield binding
            elif value is False:
                stats.rows_selected_out += 1
            else:
                raise EvaluationError(
                    f"selection predicate produced non-boolean {value!r}"
                )

    def _iter_join(self, node: Join) -> Iterator[dict[str, Any]]:
        if node.left_keys:
            yield from self._hash_join(node)
        else:
            yield from self._nested_loop_join(node)

    def _join_fns(self, node: Join):
        """The (left key, right key, residual) closures for a Join."""
        self._jit_node(node)
        left_fns = tuple(
            self._jit_wrap(fn, term)
            for fn, term in zip(node.left_key_fns, node.left_keys)
        )
        right_fns = tuple(
            self._jit_wrap(fn, term)
            for fn, term in zip(node.right_key_fns, node.right_keys)
        )
        residual_fn = None
        if node.residual is not None:
            residual_fn = self._jit_wrap(node.residual_fn, node.residual)
        return left_fns, right_fns, residual_fn

    def _hash_join(self, node: Join) -> Iterator[dict[str, Any]]:
        if self.jit is not None:
            yield from self._hash_join_jit(node)
            return
        table: dict[Any, list[dict[str, Any]]] = {}
        for right_binding in self._iter(node.right):
            key = tuple(self._eval(k, right_binding) for k in node.right_keys)
            table.setdefault(key, []).append(right_binding)
            self.stats.hash_builds += 1
        if self.metrics is not None:
            self.metrics.for_node(node).hash_builds += sum(
                len(bucket) for bucket in table.values()
            )
        for left_binding in self._iter(node.left):
            key = tuple(self._eval(k, left_binding) for k in node.left_keys)
            for right_binding in table.get(key, ()):
                merged = {**left_binding, **right_binding}
                if node.residual is not None and not self._eval(node.residual, merged):
                    continue
                self.stats.rows_joined += 1
                yield merged

    def _hash_join_jit(self, node: Join) -> Iterator[dict[str, Any]]:
        left_fns, right_fns, residual_fn = self._join_fns(node)
        rt = self._rt
        table: dict[Any, list[dict[str, Any]]] = {}
        for right_binding in self._iter(node.right):
            key = tuple(fn(right_binding, rt) for fn in right_fns)
            table.setdefault(key, []).append(right_binding)
            self.stats.hash_builds += 1
        if self.metrics is not None:
            self.metrics.for_node(node).hash_builds += sum(
                len(bucket) for bucket in table.values()
            )
        for left_binding in self._iter(node.left):
            key = tuple(fn(left_binding, rt) for fn in left_fns)
            for right_binding in table.get(key, ()):
                merged = {**left_binding, **right_binding}
                if residual_fn is not None and not residual_fn(merged, rt):
                    continue
                self.stats.rows_joined += 1
                yield merged

    def _nested_loop_join(self, node: Join) -> Iterator[dict[str, Any]]:
        if self.jit is not None:
            yield from self._nested_loop_join_jit(node)
            return
        right = list(self._iter(node.right))
        for left_binding in self._iter(node.left):
            for right_binding in right:
                merged = {**left_binding, **right_binding}
                if node.residual is not None and not self._eval(node.residual, merged):
                    continue
                self.stats.rows_joined += 1
                yield merged

    def _nested_loop_join_jit(self, node: Join) -> Iterator[dict[str, Any]]:
        _, _, residual_fn = self._join_fns(node)
        rt = self._rt
        right = list(self._iter(node.right))
        for left_binding in self._iter(node.left):
            for right_binding in right:
                merged = {**left_binding, **right_binding}
                if residual_fn is not None and not residual_fn(merged, rt):
                    continue
                self.stats.rows_joined += 1
                yield merged

    def _iter_unnest(self, node: Unnest) -> Iterator[dict[str, Any]]:
        if self.jit is not None:
            yield from self._iter_unnest_jit(node)
            return
        for binding in self._iter(node.child):
            source = self._eval(node.path, binding)
            for inner in self._bindings_of(source, node.var, node.index_var):
                self.stats.rows_unnested += 1
                yield {**binding, **inner}

    def _iter_unnest_jit(self, node: Unnest) -> Iterator[dict[str, Any]]:
        self._jit_node(node)
        src_fn = self._jit_wrap(node.src_fn, node.path)
        rt = self._rt
        for binding in self._iter(node.child):
            source = src_fn(binding, rt)
            for inner in self._bindings_of(source, node.var, node.index_var):
                self.stats.rows_unnested += 1
                yield {**binding, **inner}

    def _iter_nest(self, node: Nest) -> Iterator[dict[str, Any]]:
        """Single-pass grouping: hash on the key tuple, fold partitions."""
        monoid = self.evaluator.resolve_monoid(
            node.part_monoid, self.evaluator.global_env
        )
        if not isinstance(monoid, CollectionMonoid):
            raise PlanError("Nest requires a collection partition monoid")
        groups: dict[tuple, Any] = {}
        if self.jit is not None:
            self._jit_node(node)
            key_fns = tuple(
                self._jit_wrap(fn, term)
                for fn, (_, term) in zip(node.key_fns, node.keys)
            )
            head_fn = self._jit_wrap(node.head_fn, node.part_head)
            rt = self._rt
            for binding in self._iter(node.child):
                key = tuple(fn(binding, rt) for fn in key_fns)
                acc = groups.get(key)
                if acc is None:
                    acc = groups[key] = monoid.accumulator()
                acc.add(head_fn(binding, rt))
        else:
            for binding in self._iter(node.child):
                key = tuple(self._eval(term, binding) for _, term in node.keys)
                acc = groups.get(key)
                if acc is None:
                    acc = groups[key] = monoid.accumulator()
                acc.add(self._eval(node.part_head, binding))
        from repro.values import canonical_key

        for key in sorted(groups, key=canonical_key):
            out = {label: value for (label, _), value in zip(node.keys, key)}
            out[node.part_var] = groups[key].finish()
            self.stats.rows_grouped += 1
            yield out

    def _iter_index_scan(self, node: IndexScan) -> Iterator[dict[str, Any]]:
        index = self.indexes.get((node.extent, node.attribute))
        if index is None:
            raise PlanError(
                f"no index on {node.extent}.{node.attribute} for IndexScan"
            )
        key = self._eval(node.key, {})
        self.stats.index_probes += 1
        if self.metrics is not None:
            self.metrics.for_node(node).index_probes += 1
        for element in index.get(key, ()):
            self.stats.rows_scanned += 1
            yield {node.var: element}

    # -- helpers ------------------------------------------------------------------------

    def _bindings_of(
        self, source: Any, var: str, index_var: Optional[str]
    ) -> Iterator[dict[str, Any]]:
        if isinstance(source, Obj):
            source = self.evaluator.store.deref(source)
        monoid = runtime_monoid_of(source)
        if index_var is None:
            if isinstance(monoid, VectorMonoid):
                for _, value in monoid.iterate(source):
                    yield {var: value}
            else:
                for value in monoid.iterate(source):
                    yield {var: value}
        else:
            if isinstance(monoid, VectorMonoid):
                for position, value in monoid.iterate(source):
                    yield {var: value, index_var: position}
            elif isinstance(source, (tuple, list, str, OrderedSet)):
                for position, value in enumerate(monoid.iterate(source)):
                    yield {var: value, index_var: position}
            else:
                raise EvaluationError(
                    "indexed scan requires an ordered collection, got "
                    f"{type(source).__name__}"
                )

    def _eval(self, term, binding: dict[str, Any]) -> Any:
        env = self.evaluator.global_env
        if binding:
            # No-copy wrap: binding dicts here are either fresh per row
            # or proven non-retained by _collect_reusable_scans, so
            # aliasing them in an Env is safe and saves a dict copy per
            # expression per row.
            env = Env.wrapping(binding, env)
        return self.evaluator.evaluate(term, env)


def _may_capture(term: Term) -> bool:
    """Could evaluating ``term`` allocate a closure (and thus retain the
    environment — i.e. the binding dict — past the current row)? Any
    ``Lambda`` subterm counts, including monoid key functions."""
    return any(isinstance(sub, Lambda) for sub in subterms(term))


def _collect_reusable_scans(plan: PlanNode) -> frozenset[int]:
    """ids of Scan nodes whose binding dict can be mutated in place.

    A scan's dict may be reused iff every value computed *directly on
    that dict* before the next merge point is closure-free. Merge
    points (Unnest / Join-probe ``{**l, **r}``, Nest regrouping) copy
    into fresh dicts, so safety resets below them; hash-join build and
    nested-loop right sides store their input dicts outright and are
    never safe. Scans feeding a metrics-collecting (EXPLAIN ANALYZE)
    execution are excluded by the caller.
    """
    out: set[int] = set()
    _walk_reuse(plan, False, out)
    return frozenset(out)


def _walk_reuse(node: PlanNode, safe: bool, out: set[int]) -> None:
    if isinstance(node, Reduce):
        _walk_reuse(node.child, not _may_capture(node.head), out)
    elif isinstance(node, SelectOp):
        _walk_reuse(node.child, safe and not _may_capture(node.pred), out)
    elif isinstance(node, Unnest):
        _walk_reuse(node.child, not _may_capture(node.path), out)
    elif isinstance(node, Join):
        left_safe = all(not _may_capture(k) for k in node.left_keys)
        _walk_reuse(node.left, left_safe, out)
        _walk_reuse(node.right, False, out)
    elif isinstance(node, Nest):
        child_safe = all(not _may_capture(t) for _, t in node.keys) and not (
            _may_capture(node.part_head)
        )
        _walk_reuse(node.child, child_safe, out)
    elif isinstance(node, Scan):
        if safe:
            out.add(id(node))
    # IndexScan dicts are single-binding and cheap; leave them fresh.


def _result_cardinality(value: Any) -> int:
    """Rows a Reduce 'emitted': the collection size, or 1 for scalars."""
    from repro.values import Bag, Vector

    if isinstance(value, (frozenset, tuple, Bag, OrderedSet, Vector)):
        return len(value)
    return 1


def execute_plan(
    plan: Reduce,
    bindings: dict[str, Any] | None = None,
    evaluator: Optional[Evaluator] = None,
) -> Any:
    """One-shot plan execution convenience."""
    ev = evaluator if evaluator is not None else Evaluator(bindings)
    return Executor(ev).execute(plan)
