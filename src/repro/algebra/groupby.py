"""Group-by planning through the Nest operator.

The OQL translator renders ``group by`` as nested comprehensions (one
partition subquery per distinct key), which is the faithful *semantics*
but evaluates quadratically. This module builds the equivalent
single-pass plan::

    Reduce set{ head }
      [Select having]
        Nest [l1=k1, ...] partition <- bag{ elems }
          <plan of the from/where clauses>

``build_group_by_plan`` works directly from the OQL syntax tree (the
calculus form is the reference; integration tests assert both paths
agree on every group-by query).
"""

from __future__ import annotations

from repro.algebra.ops import Nest, PlanNode, Reduce, SelectOp
from repro.algebra.translate import build_plan
from repro.calculus.ast import Comprehension, Const, MonoidRef
from repro.errors import PlanError
from repro.oql.ast import Select
from repro.oql.translate import Translator


def build_group_by_plan(select: Select, translator: Translator) -> Reduce:
    """A Nest-based plan for a ``group by`` select.

    Raises :class:`PlanError` for shapes the operator does not cover
    (``order by`` on top of grouping); callers fall back to the
    interpreted calculus form.
    """
    if not select.group_by:
        raise PlanError("build_group_by_plan requires a group_by clause")
    if select.order_by:
        raise PlanError("group by + order by falls back to the interpreter")

    base_qualifiers = translator._tr_from_where(select)  # noqa: SLF001 — same layer
    synthetic = Comprehension(MonoidRef("bag"), Const(0), base_qualifiers)
    base_plan = build_plan(synthetic, pre_normalize=False).child

    keys = tuple(
        (item.label, translator.translate(item.key)) for item in select.group_by
    )
    part_head = translator._partition_head(select.from_clauses)  # noqa: SLF001
    plan: PlanNode = Nest(base_plan, keys, "partition", part_head, MonoidRef("bag"))

    if select.having is not None:
        plan = SelectOp(plan, translator.translate(select.having))

    head = translator.translate(select.head)
    return Reduce(MonoidRef("set"), head, plan)
