"""Logical algebra operators.

Section 3 of the paper sketches evaluating canonical comprehensions by
translation into a logical algebra; this module provides that algebra.
A plan is a tree of operators producing streams of *binding
environments* (variable name -> value mappings):

- :class:`Scan` — bind a variable to each element of an extent or any
  independent collection expression;
- :class:`SelectOp` — filter bindings by a predicate term;
- :class:`Join` — combine two independent streams (with an optional
  predicate; equi-join keys are detected for hash execution);
- :class:`Unnest` — the dependent join: bind a variable to each element
  of a path expression over existing bindings (e.g. ``h <- c.hotels``);
- :class:`Reduce` — fold the head expression of the comprehension into
  the output monoid (the final homomorphism).

The tree shape mirrors the canonical comprehension exactly, which is
the paper's point: after normalization, generators become a left-deep
chain of scans/joins/unnests that pipelines without materializing
intermediate collections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.calculus.ast import MonoidRef, Term


class PlanNode:
    """Base class of logical plan operators."""

    __slots__ = ()

    def columns(self) -> frozenset[str]:
        """Variables bound in the binding environments this node emits."""
        raise NotImplementedError

    def children(self) -> tuple["PlanNode", ...]:
        """Child operators in plan order (leaves return ())."""
        return ()

    def label(self) -> str:
        """The one-line operator description (first line of render)."""
        return self.render(0).splitlines()[0]

    def render(self, indent: int = 0) -> str:
        """Explain-style tree rendering."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.render()


@dataclass(frozen=True)
class Scan(PlanNode):
    """Bind ``var`` to each element of an independent collection.

    ``source`` is a calculus term with no free plan variables — usually
    an extent name. ``index_var`` supports the vector generator form.
    """

    var: str
    source: Term
    index_var: Optional[str] = None

    def columns(self) -> frozenset[str]:
        out = {self.var}
        if self.index_var:
            out.add(self.index_var)
        return frozenset(out)

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        suffix = f" [{self.index_var}]" if self.index_var else ""
        return f"{pad}Scan {self.var}{suffix} <- {self.source}"


@dataclass(frozen=True)
class SelectOp(PlanNode):
    """Filter bindings by a boolean predicate term."""

    child: PlanNode
    pred: Term

    # JIT slots (class-level defaults, not dataclass fields): populated
    # in place by repro.jit.plan.compile_node. ``jit_ready`` is set last
    # so concurrent readers either see a fully compiled node or fall
    # back to compiling it themselves (idempotent).
    pred_fn = None
    jit_ready = False
    jit_stats = None

    def columns(self) -> frozenset[str]:
        return self.child.columns()

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        return f"{pad}Select {self.pred}\n{self.child.render(indent + 1)}"


@dataclass(frozen=True)
class Join(PlanNode):
    """Combine two independent streams.

    ``left_keys``/``right_keys`` hold the sides of conjunctive equality
    predicates usable as hash keys (``left_keys[i] = right_keys[i]``);
    ``residual`` is whatever predicate remains. A Join with no keys and
    ``residual None`` is a cross product.
    """

    left: PlanNode
    right: PlanNode
    left_keys: tuple[Term, ...] = ()
    right_keys: tuple[Term, ...] = ()
    residual: Optional[Term] = None

    # JIT slots — see SelectOp.
    left_key_fns = ()
    right_key_fns = ()
    residual_fn = None
    jit_ready = False
    jit_stats = None

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        if self.left_keys:
            keys = ", ".join(
                f"{l} = {r}" for l, r in zip(self.left_keys, self.right_keys)
            )
            head = f"{pad}Join [{keys}]"
        else:
            head = f"{pad}Join [cross]"
        if self.residual is not None:
            head += f" where {self.residual}"
        return f"{head}\n{self.left.render(indent + 1)}\n{self.right.render(indent + 1)}"


@dataclass(frozen=True)
class Unnest(PlanNode):
    """Dependent join: bind ``var`` to elements of ``path`` per binding.

    This is the pipelining operator the canonical form enables: e.g.
    ``h <- c.hotels`` never materializes the set of all hotels.
    """

    child: PlanNode
    var: str
    path: Term
    index_var: Optional[str] = None

    # JIT slots — see SelectOp.
    src_fn = None
    jit_ready = False
    jit_stats = None

    def columns(self) -> frozenset[str]:
        out = set(self.child.columns()) | {self.var}
        if self.index_var:
            out.add(self.index_var)
        return frozenset(out)

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        suffix = f" [{self.index_var}]" if self.index_var else ""
        return f"{pad}Unnest {self.var}{suffix} <- {self.path}\n{self.child.render(indent + 1)}"


@dataclass(frozen=True)
class Reduce(PlanNode):
    """The final homomorphism: fold ``head`` into the output monoid."""

    monoid: MonoidRef
    head: Term
    child: PlanNode

    # JIT slots — see SelectOp.
    head_fn = None
    jit_ready = False
    jit_stats = None

    def columns(self) -> frozenset[str]:
        return self.child.columns()

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        return f"{pad}Reduce {self.monoid}{{ {self.head} }}\n{self.child.render(indent + 1)}"


@dataclass(frozen=True)
class Nest(PlanNode):
    """Grouping: one output binding per distinct key tuple.

    For each input binding, ``keys`` (label -> term) are evaluated to
    form the group key and ``part_head`` is folded into that group's
    ``part_monoid`` collection. After the input is exhausted, one
    binding per group is emitted carrying the key labels and
    ``part_var`` (the ODMG ``partition``). This is the blocking
    operator that makes OQL ``group by`` a single pass instead of one
    re-scan per distinct key.
    """

    child: PlanNode
    keys: tuple[tuple[str, Term], ...]
    part_var: str
    part_head: Term
    part_monoid: MonoidRef

    # JIT slots — see SelectOp.
    key_fns = ()
    head_fn = None
    jit_ready = False
    jit_stats = None

    def columns(self) -> frozenset[str]:
        return frozenset({label for label, _ in self.keys} | {self.part_var})

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        keys = ", ".join(f"{label}={term}" for label, term in self.keys)
        return (
            f"{pad}Nest [{keys}] {self.part_var} <- "
            f"{self.part_monoid}{{ {self.part_head} }}\n"
            f"{self.child.render(indent + 1)}"
        )


@dataclass(frozen=True)
class IndexScan(PlanNode):
    """Scan an extent through a hash index: ``var <- extent[attr = key]``.

    Produced by the optimizer when a selection on a scanned extent
    matches an available index; ``key`` may reference outer constants
    only (it is evaluated once).
    """

    var: str
    extent: str
    attribute: str
    key: Term

    def columns(self) -> frozenset[str]:
        return frozenset({self.var})

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        return f"{pad}IndexScan {self.var} <- {self.extent}[{self.attribute} = {self.key}]"
