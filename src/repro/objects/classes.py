"""Runtime class instances and extents (object mode).

The database facade can store extents either as plain records (fast,
value-semantics queries) or as *objects*: OIDs whose states are records,
giving the section 4.2 identity and update semantics. This module keeps
the bookkeeping for object mode:

- :func:`instantiate` creates a class instance in a store, validating
  declared attributes against the schema;
- :class:`ExtentRegistry` tracks which OIDs belong to which class
  extent, including membership of subclass instances in superclass
  extents (the ODMG rule).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.errors import SchemaError
from repro.objects.store import Obj, ObjectStore
from repro.types.schema import Schema
from repro.values import Record


def instantiate(
    store: ObjectStore,
    schema: Schema,
    class_name: str,
    attributes: dict[str, Any],
) -> Obj:
    """Create an object of ``class_name`` with the given attribute record.

    Unknown attribute names are rejected; attributes declared on the
    class (or inherited) but not supplied are allowed to be absent —
    OQL paths touching them will raise at evaluation, which mirrors a
    null-pointer dereference.
    """
    declared: set[str] = set()
    current: Optional[str] = class_name
    while current is not None:
        cls = schema.class_def(current)
        declared.update(cls.attributes)
        current = cls.superclass
    unknown = set(attributes) - declared
    if unknown:
        raise SchemaError(
            f"unknown attributes for class {class_name}: {sorted(unknown)}"
        )
    state = Record({**attributes, "_class": class_name})
    return store.new(state)


def class_of(store: ObjectStore, obj: Obj) -> Optional[str]:
    """The class tag of an object created by :func:`instantiate`."""
    state = store.deref(obj)
    if isinstance(state, Record) and "_class" in state:
        return state["_class"]
    return None


class ExtentRegistry:
    """Tracks OID membership of class extents, with inheritance.

    >>> from repro.types.types import TSTRING
    >>> schema = Schema()
    >>> _ = schema.define_class("Person", {"name": TSTRING}, extent="Persons")
    >>> _ = schema.define_class("Employee", {"salary": TSTRING},
    ...                          extent="Employees", superclass="Person")
    >>> store = ObjectStore()
    >>> registry = ExtentRegistry(schema, store)
    >>> e = registry.create("Employee", {"name": "Ann", "salary": "10"})
    >>> len(registry.extent("Persons"))  # subclass member shows up
    1
    """

    def __init__(self, schema: Schema, store: ObjectStore) -> None:
        self.schema = schema
        self.store = store
        self._members: dict[str, list[Obj]] = {}  # class name -> OIDs

    def create(self, class_name: str, attributes: dict[str, Any]) -> Obj:
        """Instantiate and register an object in its class extent."""
        obj = instantiate(self.store, self.schema, class_name, attributes)
        self._members.setdefault(class_name, []).append(obj)
        return obj

    def remove(self, obj: Obj) -> None:
        """Drop an object from its extent (the state stays in the store)."""
        for members in self._members.values():
            if obj in members:
                members.remove(obj)
        # Membership changed without any heap write; the store's version
        # counter is what query caches watch, so bump it by hand.
        self.store.touch()

    def extent(self, extent_name: str) -> tuple[Obj, ...]:
        """All members of an extent, including subclass instances."""
        target = self.schema.extent_class(extent_name).name
        out: list[Obj] = []
        for class_name, members in self._members.items():
            if self.schema.is_subclass(class_name, target):
                out.extend(members)
        return tuple(out)

    def members_of_class(self, class_name: str) -> tuple[Obj, ...]:
        """Direct instances of exactly this class."""
        return tuple(self._members.get(class_name, ()))

    def all_objects(self) -> Iterator[Obj]:
        for members in self._members.values():
            yield from members
