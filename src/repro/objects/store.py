"""The object heap: OIDs, ``new``, dereference and assignment.

Section 4.2 of the paper extends the calculus with a type ``obj(α)`` and
three operations — ``new(s)``, ``!e`` and ``e := s`` — whose semantics
is a state transformer threading the heap (OID -> state bindings)
through every operation in an expression. Here the heap is a concrete
:class:`ObjectStore`; the evaluator owns one and threads it by
evaluating qualifiers in deterministic left-to-right order.

Identity semantics: two OIDs are equal only if they are the *same*
object (the paper's first example: ``some{ x = y | x <- new(1),
y <- new(1) }`` is false), while their states may be equal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import ObjectStoreError


@dataclass(frozen=True)
class Obj:
    """An object identity (OID). Hashable; equality is identity of id."""

    oid: int

    def __repr__(self) -> str:
        return f"obj#{self.oid}"


class ObjectStore:
    """A heap mapping OIDs to states.

    >>> store = ObjectStore()
    >>> x = store.new(1)
    >>> y = store.new(1)
    >>> x == y
    False
    >>> store.deref(x) == store.deref(y)
    True
    >>> _ = store.assign(x, 2)
    >>> store.deref(x)
    2

    The store keeps a monotonic :attr:`version`, bumped by every
    mutation (``new``, ``assign``, ``delete``, ``restore``, ``touch``).
    The result cache uses it to invalidate entries whose plans read
    object state — heap reads happen through implicit dereferences, so
    one counter over the whole heap is the sound granularity.
    """

    def __init__(self) -> None:
        self._states: dict[int, Any] = {}
        self._next_oid = 1
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic mutation counter (see the class docstring)."""
        return self._version

    def touch(self) -> None:
        """Bump :attr:`version` without changing any state.

        For mutations the store cannot see itself — e.g. dropping an
        object from an extent registry changes what queries observe
        while every heap state stays identical.
        """
        self._version += 1

    def new(self, state: Any) -> Obj:
        """Allocate a fresh object with the given initial state."""
        obj = Obj(self._next_oid)
        self._next_oid += 1
        self._states[obj.oid] = state
        self._version += 1
        return obj

    def deref(self, obj: Any) -> Any:
        """``!obj`` — the object's current state."""
        self._check(obj)
        return self._states[obj.oid]

    def assign(self, obj: Any, state: Any) -> bool:
        """``obj := state`` — replace the state; returns True (the paper's
        convention, so assignments can stand as qualifiers)."""
        self._check(obj)
        self._states[obj.oid] = state
        self._version += 1
        return True

    def delete(self, obj: Any) -> None:
        """Remove an object's state from the heap (a direct delete).

        Later dereferences of the OID raise (a dangling reference).
        """
        self._check(obj)
        del self._states[obj.oid]
        self._version += 1

    def contains(self, obj: Obj) -> bool:
        return isinstance(obj, Obj) and obj.oid in self._states

    def __len__(self) -> int:
        return len(self._states)

    def objects(self) -> Iterator[Obj]:
        """All live OIDs, in allocation order."""
        for oid in sorted(self._states):
            yield Obj(oid)

    def snapshot(self) -> dict[int, Any]:
        """A copy of the heap (used by tests and speculative evaluation)."""
        return dict(self._states)

    def restore(self, snapshot: dict[int, Any]) -> None:
        """Reset the heap to a previous :meth:`snapshot`."""
        self._states = dict(snapshot)
        self._version += 1

    def _check(self, obj: Any) -> None:
        if not isinstance(obj, Obj):
            raise ObjectStoreError(
                f"expected an object (OID), got {type(obj).__name__}: {obj!r}"
            )
        if obj.oid not in self._states:
            raise ObjectStoreError(f"dangling OID {obj!r}")
