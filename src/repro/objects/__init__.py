"""Object identity, heaps, class extents and update programs (section 4.2)."""

from repro.objects.classes import ExtentRegistry, class_of, instantiate
from repro.objects.store import Obj, ObjectStore
from repro.objects.updates import (
    FieldUpdate,
    add_to_field,
    run_update,
    set_field,
    update_where,
)

__all__ = [
    "ExtentRegistry",
    "FieldUpdate",
    "Obj",
    "ObjectStore",
    "add_to_field",
    "class_of",
    "instantiate",
    "run_update",
    "set_field",
    "update_where",
]
