"""Update programs as comprehensions (section 4.2's final example).

The paper shows an imperative update

.. code-block:: text

    for c in db.cities where c.name = city_name:
        c.hotels += <name=..., address=..., facilities={}, ...>;
        c.hotel#  += 1

and its comprehension form

.. code-block:: text

    set{ c | c <- set{ c | c <- db.cities, c.name = city_name },
             c.hotels += <...>,
             c.hotel# += 1 }

This module provides :func:`update_where`, a builder producing exactly
that shape, plus :func:`run_update` to execute it against an evaluator
and report the touched objects. Updates require *object mode* extents
(OIDs with record states); the ``+=``/``:=`` qualifiers evaluate to
true, so they slot into the comprehension as ordinary qualifiers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Sequence

from repro.calculus.ast import Comprehension, Filter, Generator, MonoidRef, Term, Update, Var
from repro.calculus.builders import as_term, comp, filt, gen

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.eval.evaluator import Evaluator


class FieldUpdate:
    """One field update clause: ``field op value`` with op ``+=``/``:=``."""

    def __init__(self, field_name: str, op: str, value: Any) -> None:
        if op not in (":=", "+="):
            raise ValueError(f"update operator must be ':=' or '+=', got {op!r}")
        self.field_name = field_name
        self.op = op
        self.value = as_term(value)

    def to_qualifier(self, target: str) -> Filter:
        return Filter(Update(Var(target), self.field_name, self.op, self.value))


def set_field(field_name: str, value: Any) -> FieldUpdate:
    """``field := value``."""
    return FieldUpdate(field_name, ":=", value)


def add_to_field(field_name: str, value: Any) -> FieldUpdate:
    """``field += value`` (numeric add or collection insert/merge)."""
    return FieldUpdate(field_name, "+=", value)


def update_where(
    extent: Term | str,
    var: str,
    predicate: Optional[Term],
    updates: Sequence[FieldUpdate],
) -> Comprehension:
    """Build the paper's update-program comprehension.

    >>> from repro.calculus import eq, proj, var as v, rec, const
    >>> program = update_where("cities", "c",
    ...     eq(proj(v("c"), "name"), const("Portland")),
    ...     [add_to_field("hotel_count", const(1))])
    >>> print(program)
    set{ c | c <- set{ c | c <- cities, (c.name = 'Portland') }, (c.hotel_count += 1) }
    """
    source = Var(extent) if isinstance(extent, str) else extent
    inner_quals: list = [gen(var, source)]
    if predicate is not None:
        inner_quals.append(filt(predicate))
    inner = comp("set", Var(var), inner_quals)
    qualifiers: list = [Generator(var, inner)]
    qualifiers.extend(update.to_qualifier(var) for update in updates)
    return Comprehension(MonoidRef("set"), Var(var), tuple(qualifiers))


def run_update(program: Comprehension, evaluator: "Evaluator") -> Any:
    """Execute an update comprehension; returns the set of touched objects.

    The materialized inner set makes the update well-behaved even when
    the predicate reads fields the updates write (the paper's reason
    for the nested shape): the victims are chosen before any mutation.
    """
    return evaluator.evaluate(program)
