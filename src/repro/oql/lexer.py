"""Tokenizer for the OQL subset.

Hand-written single-pass scanner producing a list of :class:`Token`.
Keywords are case-insensitive (ODMG style); identifiers keep their
case. ``#`` is allowed inside identifiers (the paper's travel-agency
schema uses attributes like ``bed#`` and ``hotel#``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import OQLSyntaxError
from repro.span import Span

KEYWORDS = frozenset(
    {
        "select",
        "distinct",
        "from",
        "where",
        "in",
        "as",
        "and",
        "or",
        "not",
        "exists",
        "for",
        "all",
        "order",
        "group",
        "by",
        "having",
        "asc",
        "desc",
        "union",
        "intersect",
        "except",
        "struct",
        "set",
        "bag",
        "list",
        "array",
        "sort",
        "true",
        "false",
        "nil",
        "if",
        "then",
        "else",
        "mod",
        "div",
        "like",
        "element",
        "flatten",
        "count",
        "sum",
        "avg",
        "max",
        "min",
        "partition",
    }
)

#: Multi-character operators, longest first so the scanner is greedy.
_OPERATORS = ("<=", ">=", "!=", "<>", ":=", "+=", "..", "=", "<", ">", "+", "-", "*", "/")
_PUNCT = "(),[].:"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str  # 'keyword' | 'ident' | 'number' | 'string' | 'param' | 'op' | 'punct' | 'eof'
    text: str
    line: int
    column: int
    #: Column just past the token's source text. 0 means "unknown"
    #: (hand-built tokens); ``end_column``/``span`` then fall back to
    #: ``column + len(text)``.
    raw_end: int = 0

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.text == word

    @property
    def end_column(self) -> int:
        """Column one past the last source character of this token."""
        if self.raw_end:
            return self.raw_end
        return self.column + max(len(self.text), 1)

    @property
    def span(self) -> Span:
        """The source region this token occupies."""
        return Span(self.line, self.column, self.line, self.end_column)

    def __str__(self) -> str:
        return f"{self.kind}:{self.text!r}"


def tokenize(source: str) -> list[Token]:
    """Scan ``source`` into tokens, ending with an ``eof`` token.

    >>> [t.text for t in tokenize("select c.name from c in Cities")][:4]
    ['select', 'c', '.', 'name']
    """
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    i = 0
    line = 1
    line_start = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("--", i):  # SQL-style comment to end of line
            while i < n and source[i] != "\n":
                i += 1
            continue
        column = i - line_start + 1
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (source[j].isdigit() or (source[j] == "." and not seen_dot)):
                if source[j] == ".":
                    # ".." is a range/punct, not a decimal point
                    if j + 1 < n and source[j + 1] == ".":
                        break
                    seen_dot = True
                j += 1
            text = source[i:j]
            if text.endswith("."):
                text = text[:-1]
                j -= 1
                seen_dot = False
            yield Token("number", text, line, column, column + (j - i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] in "_#"):
                j += 1
            text = source[i:j]
            lowered = text.lower()
            if lowered in KEYWORDS:
                yield Token("keyword", lowered, line, column, column + (j - i))
            else:
                yield Token("ident", text, line, column, column + (j - i))
            i = j
            continue
        if ch == "$":  # $name — a prepared-statement parameter
            j = i + 1
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            if j == i + 1:
                raise OQLSyntaxError("expected a parameter name after '$'", line, column)
            yield Token("param", source[i + 1 : j], line, column, column + (j - i))
            i = j
            continue
        if ch in "\"'":
            quote = ch
            j = i + 1
            parts: list[str] = []
            while j < n and source[j] != quote:
                if source[j] == "\\" and j + 1 < n:
                    parts.append(source[j + 1])
                    j += 2
                else:
                    parts.append(source[j])
                    j += 1
            if j >= n:
                raise OQLSyntaxError("unterminated string literal", line, column)
            yield Token("string", "".join(parts), line, column, column + (j + 1 - i))
            i = j + 1
            continue
        matched = False
        for op in _OPERATORS:
            if source.startswith(op, i):
                yield Token("op", op, line, column, column + len(op))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            yield Token("punct", ch, line, column, column + 1)
            i += 1
            continue
        raise OQLSyntaxError(f"unexpected character {ch!r}", line, column)
    yield Token("eof", "", line, (n - line_start) + 1)
