"""OQL abstract syntax (the ODMG-93 subset the paper covers).

The parser produces these nodes; :mod:`repro.oql.translate` maps them
into the monoid calculus. Expressions deliberately mirror OQL's surface
forms (select-from-where, quantifiers, aggregates, sorting, grouping,
constructors, paths) rather than the calculus, so the translation rules
of section 3 are visible as code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional


class OQLNode:
    """Base class of OQL syntax nodes.

    Nodes produced by :mod:`repro.oql.parser` carry a source
    :class:`~repro.span.Span` in their instance ``__dict__`` (read it
    with ``repro.span.span_of``); the span is attached out-of-band so
    it never affects structural equality or hashing. Hand-built nodes
    simply have no span (``span_of`` returns None via this class
    attribute).
    """

    __slots__ = ()

    # Unannotated on purpose: an annotation would turn this into an
    # inherited dataclass *field* and break positional constructors.
    span = None


@dataclass(frozen=True)
class Literal(OQLNode):
    """A constant: number, string, boolean or nil."""

    value: Any


@dataclass(frozen=True)
class Name(OQLNode):
    """An identifier: a variable, extent or named object."""

    name: str


@dataclass(frozen=True)
class Param(OQLNode):
    """``$name`` — a prepared-statement parameter (see ``db.prepare``)."""

    name: str


@dataclass(frozen=True)
class Path(OQLNode):
    """``base.field`` — attribute navigation (implicit deref on objects)."""

    base: OQLNode
    field: str


@dataclass(frozen=True)
class IndexOp(OQLNode):
    """``base[index]`` — list/vector indexing."""

    base: OQLNode
    index: OQLNode


@dataclass(frozen=True)
class CallOp(OQLNode):
    """Function call ``name(args...)`` — builtins and aggregates."""

    name: str
    args: tuple[OQLNode, ...]


@dataclass(frozen=True)
class MethodOp(OQLNode):
    """Method invocation ``base.name(args...)``."""

    base: OQLNode
    name: str
    args: tuple[OQLNode, ...]


@dataclass(frozen=True)
class BinaryOp(OQLNode):
    """Binary operator (arithmetic, comparison, boolean, set ops, in)."""

    op: str
    left: OQLNode
    right: OQLNode


@dataclass(frozen=True)
class UnaryOp(OQLNode):
    """``not e`` or ``-e``."""

    op: str
    operand: OQLNode


@dataclass(frozen=True)
class IfExpr(OQLNode):
    """``if c then a else b`` (an OQL extension used by the paper)."""

    cond: OQLNode
    then_branch: OQLNode
    else_branch: OQLNode


@dataclass(frozen=True)
class StructExpr(OQLNode):
    """``struct(a: e1, b: e2, ...)``."""

    fields: tuple[tuple[str, OQLNode], ...]


@dataclass(frozen=True)
class CollectionExpr(OQLNode):
    """``set(...)``, ``bag(...)``, ``list(...)`` literal constructors."""

    kind: str  # "set" | "bag" | "list"
    items: tuple[OQLNode, ...]


@dataclass(frozen=True)
class FromClause(OQLNode):
    """One ``x in E`` (or ``E as x``) binding of a from list."""

    var: str
    source: OQLNode


@dataclass(frozen=True)
class OrderItem(OQLNode):
    """One ``order by`` key with direction."""

    key: OQLNode
    descending: bool = False


@dataclass(frozen=True)
class GroupItem(OQLNode):
    """One ``group by`` key: ``label: expr``."""

    label: str
    key: OQLNode


@dataclass(frozen=True)
class Select(OQLNode):
    """``select [distinct] head from ... where ... group by ... order by``."""

    head: OQLNode
    from_clauses: tuple[FromClause, ...]
    where: Optional[OQLNode] = None
    distinct: bool = False
    order_by: tuple[OrderItem, ...] = ()
    group_by: tuple[GroupItem, ...] = ()
    having: Optional[OQLNode] = None


@dataclass(frozen=True)
class Exists(OQLNode):
    """``exists x in E : p``."""

    var: str
    source: OQLNode
    pred: OQLNode


@dataclass(frozen=True)
class ForAll(OQLNode):
    """``for all x in E : p``."""

    var: str
    source: OQLNode
    pred: OQLNode


@dataclass(frozen=True)
class ExistsQuery(OQLNode):
    """``exists(select ...)`` — non-emptiness of a subquery."""

    query: OQLNode


@dataclass(frozen=True)
class Aggregate(OQLNode):
    """``count/sum/avg/max/min (e)`` over a collection-valued ``e``."""

    op: str
    arg: OQLNode


@dataclass(frozen=True)
class SortExpr(OQLNode):
    """``sort x in E by k1, k2, ...`` — the ODMG sort operator."""

    var: str
    source: OQLNode
    keys: tuple[OrderItem, ...]
