"""Translation of OQL into the monoid calculus (section 3 of the paper).

The major rules, quoted in calculus notation:

===============================  =============================================
OQL                              calculus
===============================  =============================================
select distinct e from x1 in     ``set{ e | x1 <- E1, ..., p }``
E1, ... where p
select e from ... where p        ``bag{ e | ..., p }``
exists x in E : p                ``some{ p | x <- E }``
for all x in E : p               ``all{ p | x <- E }``
e1 in e2                         ``some{ x = e1 | x <- e2 }``
sum(E)                           ``sum{ x | x <- E }``
count(E)                         builtin ``count`` — the paper notes
                                 ``hom[set -> sum]`` is *not* well formed,
                                 so cardinality is a primitive, not a hom
sort x in E by f                 ``sorted[f]{ x | x <- E }`` (set inputs) or
                                 ``sortedbag[f]{ x | x <- E }`` (bags/lists)
order by k1, ...                 sort of ``<k=keys, v=head>`` pairs followed
                                 by a projection comprehension
group by l1: k1, ... [having h]  a comprehension over the *set of distinct
                                 key tuples*, each with a nested ``bag``
                                 partition — showing off nested queries
exists(select ...)               ``some{ true | x <- (select ...) }``
===============================  =============================================

Every translation produces a plain calculus term; the normalizer then
flattens whatever nesting the translation introduced (that division of
labour — naive translation, powerful normalization — is the paper's
architecture).
"""

from __future__ import annotations

from typing import Optional

from repro.calculus.ast import (
    BinOp,
    Comprehension,
    Const,
    Empty,
    Filter,
    Generator,
    Lambda,
    Merge,
    MonoidRef,
    Proj,
    Qualifier,
    Singleton,
    Term,
    TupleCons,
    UnOp,
    Var,
)
from repro.calculus.builders import bind, call, comp, eq, gen, method, proj, rec, var
from repro.calculus.traversal import fresh_var
from repro.errors import TranslationError, TypingError
from repro.oql.ast import (
    Aggregate,
    BinaryOp,
    CallOp,
    CollectionExpr,
    Exists,
    ExistsQuery,
    ForAll,
    FromClause,
    IfExpr,
    IndexOp,
    Literal,
    MethodOp,
    Name,
    OQLNode,
    OrderItem,
    Param,
    Path,
    Select,
    SortExpr,
    StructExpr,
    UnaryOp,
)
from repro.oql.parser import parse
from repro.span import set_span, span_of
from repro.types.infer import TypeChecker
from repro.types.schema import Schema
from repro.types.types import TColl

_SIMPLE_AGGREGATES = {"sum": "sum", "max": "max", "min": "min"}


class Translator:
    """Maps OQL syntax trees into calculus terms.

    A :class:`Schema` is optional; when present it is used to decide
    whether ``sort``/``order by`` inputs are sets (choosing the
    duplicate-eliminating ``sorted`` monoid) or bags/lists (choosing
    ``sortedbag``), mirroring the paper's well-formedness lattice.
    """

    def __init__(self, schema: Optional[Schema] = None) -> None:
        self.schema = schema
        self._checker = TypeChecker(schema) if schema is not None else None

    # -- public API -----------------------------------------------------------

    def translate(self, node: OQLNode) -> Term:
        """Translate an OQL syntax tree into a calculus term."""
        return self._tr(node)

    def translate_text(self, source: str) -> Term:
        """Parse and translate OQL text.

        >>> t = Translator().translate_text(
        ...     "select distinct c.name from c in Cities")
        >>> str(t)
        'set{ c.name | c <- Cities }'
        """
        return self._tr(parse(source))

    # -- dispatcher --------------------------------------------------------------

    def _tr(self, node: OQLNode) -> Term:
        """Translate one node, copying its source span onto the term.

        Spans make :mod:`repro.lint` diagnostics point back into the
        OQL text; terms synthesized during translation (fresh
        comprehensions, witnesses) inherit the span of the OQL
        construct they came from.
        """
        term = self._tr_node(node)
        if span_of(term) is None:
            set_span(term, span_of(node))
        return term

    def _tr_node(self, node: OQLNode) -> Term:
        if isinstance(node, Literal):
            return Const(node.value)
        if isinstance(node, Name):
            return Var(node.name)
        if isinstance(node, Param):
            # The '$' prefix survives into the calculus: no identifier
            # can collide with it, and the evaluator resolves it from a
            # per-execution binding installed by Prepared.run.
            return Var("$" + node.name)
        if isinstance(node, Path):
            return Proj(self._tr(node.base), node.field)
        if isinstance(node, IndexOp):
            from repro.calculus.ast import Index

            return Index(self._tr(node.base), self._tr(node.index))
        if isinstance(node, CallOp):
            return call(node.name, *[self._tr(a) for a in node.args])
        if isinstance(node, MethodOp):
            return method(self._tr(node.base), node.name, *[self._tr(a) for a in node.args])
        if isinstance(node, UnaryOp):
            return UnOp(node.op, self._tr(node.operand))
        if isinstance(node, BinaryOp):
            return self._tr_binary(node)
        if isinstance(node, IfExpr):
            from repro.calculus.ast import If

            return If(self._tr(node.cond), self._tr(node.then_branch), self._tr(node.else_branch))
        if isinstance(node, StructExpr):
            from repro.calculus.ast import RecordCons

            return RecordCons(tuple((name, self._tr(value)) for name, value in node.fields))
        if isinstance(node, CollectionExpr):
            return self._tr_collection(node)
        if isinstance(node, Select):
            return self._tr_select(node)
        if isinstance(node, Exists):
            return comp("some", self._tr(node.pred), [gen(node.var, self._tr(node.source))])
        if isinstance(node, ForAll):
            return comp("all", self._tr(node.pred), [gen(node.var, self._tr(node.source))])
        if isinstance(node, ExistsQuery):
            witness = fresh_var("w")
            return comp("some", Const(True), [gen(witness, self._tr(node.query))])
        if isinstance(node, Aggregate):
            return self._tr_aggregate(node)
        if isinstance(node, SortExpr):
            return self._tr_sort(node)
        raise TranslationError(f"cannot translate {type(node).__name__}")

    # -- operators ------------------------------------------------------------------

    def _tr_binary(self, node: BinaryOp) -> Term:
        left = self._tr(node.left)
        right = self._tr(node.right)
        if node.op == "in":
            # e1 in e2  =>  some{ x = e1 | x <- e2 }
            witness = fresh_var("x")
            return comp("some", eq(var(witness), left), [gen(witness, right)])
        if node.op == "like":
            return call("like", left, right)
        return BinOp(node.op, left, right)

    def _tr_collection(self, node: CollectionExpr) -> Term:
        monoid = MonoidRef(node.kind)
        result: Term = Empty(monoid)
        for item in reversed(node.items):
            result = Merge(monoid, Singleton(monoid, self._tr(item)), result)
        return result

    # -- aggregates --------------------------------------------------------------------

    def _tr_aggregate(self, node: Aggregate) -> Term:
        arg = self._tr(node.arg)
        if node.op in _SIMPLE_AGGREGATES:
            element = fresh_var("a")
            return comp(_SIMPLE_AGGREGATES[node.op], var(element), [gen(element, arg)])
        if node.op == "count":
            # Set cardinality is not a well-formed hom[set -> sum]; OQL's
            # count is therefore a language primitive (builtin).
            return call("count", arg)
        if node.op == "avg":
            return call("avg", arg)
        raise TranslationError(f"unknown aggregate {node.op!r}")

    # -- sorting ------------------------------------------------------------------------

    def _sorted_kind(self, source: Term) -> str:
        """``sorted`` when the input is statically a set, else ``sortedbag``."""
        if self._checker is not None:
            try:
                ty = self._checker.infer(source)
            except (TypingError, Exception):
                return "sortedbag"
            if isinstance(ty, TColl) and ty.monoid == "set":
                return "sorted"
        return "sortedbag"

    def _order_key(self, items: tuple[OrderItem, ...], translate) -> Term:
        """Build the sort-key tuple; ``desc`` negates (numeric keys)."""
        keys = []
        for item in items:
            key = translate(item.key)
            if item.descending:
                key = UnOp("-", key)
            keys.append(key)
        if len(keys) == 1:
            return keys[0]
        return TupleCons(tuple(keys))

    def _tr_sort(self, node: SortExpr) -> Term:
        source = self._tr(node.source)
        key = self._order_key(node.keys, self._tr)
        kind = self._sorted_kind(source)
        ref = MonoidRef(kind, key=Lambda(node.var, key))
        return Comprehension(ref, Var(node.var), (Generator(node.var, source),))

    # -- select-from-where ------------------------------------------------------------------

    def _tr_select(self, node: Select) -> Term:
        if node.group_by:
            return self._tr_group_select(node)
        qualifiers = self._tr_from_where(node)
        head = self._tr(node.head)
        if node.order_by:
            return self._tr_ordered_select(node, head, qualifiers)
        monoid = "set" if node.distinct else "bag"
        result = Comprehension(MonoidRef(monoid), head, qualifiers)
        if node.distinct:
            # The duplicate elimination was asked for in the source
            # (``select distinct``); the linter's implicit-dedup pass
            # (QL101) must not flag it.
            object.__setattr__(result, "explicit_dedup", True)
        return result

    def _tr_from_where(self, node: Select) -> tuple[Qualifier, ...]:
        qualifiers: list[Qualifier] = []
        for clause in node.from_clauses:
            generator = Generator(clause.var, self._tr(clause.source))
            set_span(generator, span_of(clause))
            qualifiers.append(generator)
        if node.where is not None:
            where = Filter(self._tr(node.where))
            set_span(where, span_of(node.where))
            qualifiers.append(where)
        return tuple(qualifiers)

    def _tr_ordered_select(
        self, node: Select, head: Term, qualifiers: tuple[Qualifier, ...]
    ) -> Term:
        # sorted/sortedbag of <k=key, v=head> pairs, then project v.
        key = self._order_key(node.order_by, self._tr)
        pair_head = rec(k=key, v=head)
        pair_var = fresh_var("p")
        kind = "sorted" if node.distinct else "sortedbag"
        ref = MonoidRef(kind, key=Lambda(pair_var, proj(var(pair_var), "k")))
        pairs = Comprehension(ref, pair_head, qualifiers)
        out = fresh_var("r")
        return comp("list", proj(var(out), "v"), [gen(out, pairs)])

    # -- group by -----------------------------------------------------------------------------

    def _tr_group_select(self, node: Select) -> Term:
        """ODMG group-by via nested comprehensions.

        ``select H from x in E where P group by l1: k1, ... having G``
        becomes::

            set{ H' | g <- set{ <l1=k1', ...> | x <- E', P' },
                      l1 == g.l1, ...,
                      partition == bag{ x | x <- E', P', k1'=l1, ... },
                      G' }

        where H' and G' may reference the group labels and
        ``partition`` — a faithful rendering of the ODMG semantics that
        exercises nested comprehensions exactly as the paper advertises.
        """
        base_quals = self._tr_from_where(node)
        key_record = rec(**{item.label: self._tr(item.key) for item in node.group_by})
        key_set = Comprehension(MonoidRef("set"), key_record, base_quals)
        # Group keys deduplicate by design: not an implicit-dedup hazard.
        object.__setattr__(key_set, "explicit_dedup", True)
        group_var = fresh_var("g")

        qualifiers: list[Qualifier] = [Generator(group_var, key_set)]
        for item in node.group_by:
            qualifiers.append(bind(item.label, proj(var(group_var), item.label)))

        partition_quals = list(base_quals)
        for item in node.group_by:
            partition_quals.append(Filter(eq(self._tr(item.key), Var(item.label))))
        partition_head = self._partition_head(node.from_clauses)
        partition = Comprehension(
            MonoidRef("bag"), partition_head, tuple(partition_quals)
        )
        # The partition is a bag by ODMG fiat even over set sources;
        # the linter must not pin that C/I mismatch on the user.
        object.__setattr__(partition, "implicit_collection", True)
        qualifiers.append(bind("partition", partition))

        if node.having is not None:
            qualifiers.append(Filter(self._tr(node.having)))

        head = self._tr(node.head)
        return Comprehension(MonoidRef("set"), head, tuple(qualifiers))

    @staticmethod
    def _partition_head(from_clauses: tuple[FromClause, ...]) -> Term:
        if len(from_clauses) == 1:
            return Var(from_clauses[0].var)
        return rec(**{clause.var: var(clause.var) for clause in from_clauses})


def translate_oql(source: str, schema: Optional[Schema] = None) -> Term:
    """Parse and translate one OQL query.

    >>> str(translate_oql("exists h in hotels : h.stars > 4"))
    'some{ (h.stars > 4) | h <- hotels }'
    """
    return Translator(schema).translate_text(source)
