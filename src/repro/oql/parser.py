"""Recursive-descent parser for the OQL subset.

Covers the features the paper maps into the calculus: select-from-where
with ``distinct``, nested subqueries at any expression position,
quantifiers (``exists x in E : p``, ``for all x in E : p``,
``exists(select ...)``), membership ``in``, aggregates (``count``,
``sum``, ``avg``, ``max``, ``min``), ``element``, ``flatten``,
``struct`` and collection constructors, path expressions and method
calls, set operators (``union``/``intersect``/``except``), ``sort x in
E by keys``, ``order by``, ``group by ... having`` and conditional
expressions.

Operator precedence, loosest to tightest::

    or < and < not < comparison/in < +,-,union,except
       < *,/,mod,div,intersect < unary - < postfix (. [ ()) < primary
"""

from __future__ import annotations

from repro.errors import OQLSyntaxError
from repro.oql.ast import (
    Aggregate,
    BinaryOp,
    CallOp,
    CollectionExpr,
    Exists,
    ExistsQuery,
    ForAll,
    FromClause,
    GroupItem,
    IfExpr,
    IndexOp,
    Literal,
    MethodOp,
    Name,
    OQLNode,
    OrderItem,
    Param,
    Path,
    Select,
    SortExpr,
    StructExpr,
    UnaryOp,
)
from repro.oql.lexer import Token, tokenize
from repro.span import Span, set_span, span_of

_AGGREGATES = ("count", "sum", "avg", "max", "min")
_COMPARISONS = {"=": "=", "!=": "!=", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


def parse(source: str) -> OQLNode:
    """Parse one OQL query.

    >>> node = parse("select distinct c.name from c in Cities where c.pop > 10")
    >>> type(node).__name__
    'Select'
    """
    return _Parser(tokenize(source)).parse_query()


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        if token.kind != "eof":
            self._pos += 1
        return token

    def _check_keyword(self, *words: str) -> bool:
        return self._current.kind == "keyword" and self._current.text in words

    def _accept_keyword(self, *words: str) -> bool:
        if self._check_keyword(*words):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            self._fail(f"expected {word!r}")

    def _check(self, kind: str, text: str) -> bool:
        return self._current.kind == kind and self._current.text == text

    def _accept(self, kind: str, text: str) -> bool:
        if self._check(kind, text):
            self._advance()
            return True
        return False

    def _expect(self, kind: str, text: str) -> None:
        if not self._accept(kind, text):
            self._fail(f"expected {text!r}")

    def _expect_ident(self) -> str:
        if self._current.kind == "ident":
            return self._advance().text
        self._fail("expected an identifier")
        raise AssertionError  # pragma: no cover

    def _fail(self, message: str) -> None:
        token = self._current
        found = "end of input" if token.kind == "eof" else f"{token.kind} {token.text!r}"
        raise OQLSyntaxError(f"{message}, found {found}", span=token.span)

    # -- span plumbing --------------------------------------------------------

    def _spanned(self, node: OQLNode, start: Token) -> OQLNode:
        """Attach a span from ``start`` to the last consumed token."""
        last = self._tokens[self._pos - 1] if self._pos > 0 else start
        end_line, end_column = last.line, last.end_column
        if (end_line, end_column) < (start.line, start.end_column):
            end_line, end_column = start.line, start.end_column
        set_span(node, Span(start.line, start.column, end_line, end_column))
        return node

    # -- entry ----------------------------------------------------------------

    def parse_query(self) -> OQLNode:
        node = self._expression()
        if self._current.kind != "eof":
            self._fail("unexpected trailing input")
        return node

    # -- expression grammar -------------------------------------------------------

    def _expression(self) -> OQLNode:
        return self._or_expr()

    def _or_expr(self) -> OQLNode:
        start = self._current
        node = self._and_expr()
        while self._accept_keyword("or"):
            node = self._spanned(BinaryOp("or", node, self._and_expr()), start)
        return node

    def _and_expr(self) -> OQLNode:
        start = self._current
        node = self._not_expr()
        while self._accept_keyword("and"):
            node = self._spanned(BinaryOp("and", node, self._not_expr()), start)
        return node

    def _not_expr(self) -> OQLNode:
        start = self._current
        if self._accept_keyword("not"):
            return self._spanned(UnaryOp("not", self._not_expr()), start)
        return self._comparison()

    def _comparison(self) -> OQLNode:
        start = self._current
        node = self._additive()
        if self._current.kind == "op" and self._current.text in _COMPARISONS:
            op = _COMPARISONS[self._advance().text]
            return self._spanned(BinaryOp(op, node, self._additive()), start)
        if self._accept_keyword("in"):
            return self._spanned(BinaryOp("in", node, self._additive()), start)
        if self._accept_keyword("like"):
            return self._spanned(BinaryOp("like", node, self._additive()), start)
        return node

    def _additive(self) -> OQLNode:
        start = self._current
        node = self._multiplicative()
        while True:
            if self._accept("op", "+"):
                node = BinaryOp("+", node, self._multiplicative())
            elif self._accept("op", "-"):
                node = BinaryOp("-", node, self._multiplicative())
            elif self._accept_keyword("union"):
                node = BinaryOp("union", node, self._multiplicative())
            elif self._accept_keyword("except"):
                node = BinaryOp("except", node, self._multiplicative())
            else:
                return node
            self._spanned(node, start)

    def _multiplicative(self) -> OQLNode:
        start = self._current
        node = self._unary()
        while True:
            if self._accept("op", "*"):
                node = BinaryOp("*", node, self._unary())
            elif self._accept("op", "/"):
                node = BinaryOp("/", node, self._unary())
            elif self._accept_keyword("mod"):
                node = BinaryOp("mod", node, self._unary())
            elif self._accept_keyword("div"):
                node = BinaryOp("div", node, self._unary())
            elif self._accept_keyword("intersect"):
                node = BinaryOp("intersect", node, self._unary())
            else:
                return node
            self._spanned(node, start)

    def _unary(self) -> OQLNode:
        start = self._current
        if self._accept("op", "-"):
            return self._spanned(UnaryOp("-", self._unary()), start)
        return self._postfix()

    def _postfix(self) -> OQLNode:
        start = self._current
        node = self._primary()
        while True:
            if self._accept("punct", "."):
                name = self._field_name()
                if self._accept("punct", "("):
                    args = self._arguments()
                    node = MethodOp(node, name, args)
                else:
                    node = Path(node, name)
            elif self._accept("punct", "["):
                index = self._expression()
                self._expect("punct", "]")
                node = IndexOp(node, index)
            else:
                return node
            self._spanned(node, start)

    def _field_name(self) -> str:
        # Field names may collide with keywords (e.g. ``partition``,
        # ``count``): accept both token kinds after a dot.
        token = self._current
        if token.kind in ("ident", "keyword"):
            self._advance()
            return token.text
        self._fail("expected a field name")
        raise AssertionError  # pragma: no cover

    def _arguments(self) -> tuple[OQLNode, ...]:
        if self._accept("punct", ")"):
            return ()
        args = [self._expression()]
        while self._accept("punct", ","):
            args.append(self._expression())
        self._expect("punct", ")")
        return tuple(args)

    # -- primaries --------------------------------------------------------------------

    def _primary(self) -> OQLNode:
        start = self._current
        node = self._primary_inner()
        if span_of(node) is None:
            self._spanned(node, start)
        return node

    def _primary_inner(self) -> OQLNode:
        token = self._current
        if token.kind == "number":
            self._advance()
            text = token.text
            return Literal(float(text) if "." in text else int(text))
        if token.kind == "string":
            self._advance()
            return Literal(token.text)
        if token.kind == "param":
            self._advance()
            return Param(token.text)
        if token.kind == "keyword":
            return self._keyword_primary(token)
        if token.kind == "ident":
            self._advance()
            if self._accept("punct", "("):
                args = self._arguments()
                return CallOp(token.text, args)
            return Name(token.text)
        if self._accept("punct", "("):
            node = self._expression()
            self._expect("punct", ")")
            return node
        self._fail("expected an expression")
        raise AssertionError  # pragma: no cover

    def _keyword_primary(self, token: Token) -> OQLNode:
        word = token.text
        if word == "true":
            self._advance()
            return Literal(True)
        if word == "false":
            self._advance()
            return Literal(False)
        if word == "nil":
            self._advance()
            return Literal(None)
        if word == "select":
            return self._select()
        if word == "exists":
            return self._exists()
        if word == "for":
            return self._forall()
        if word == "struct":
            return self._struct()
        if word in ("set", "bag", "list", "array"):
            return self._collection(word)
        if word in _AGGREGATES:
            self._advance()
            self._expect("punct", "(")
            arg = self._expression()
            self._expect("punct", ")")
            return Aggregate(word, arg)
        if word in ("element", "flatten", "distinct"):
            self._advance()
            self._expect("punct", "(")
            arg = self._expression()
            self._expect("punct", ")")
            return CallOp("to_set" if word == "distinct" else word, (arg,))
        if word == "sort":
            return self._sort()
        if word == "if":
            self._advance()
            cond = self._expression()
            self._expect_keyword("then")
            then_branch = self._expression()
            self._expect_keyword("else")
            else_branch = self._expression()
            return IfExpr(cond, then_branch, else_branch)
        if word == "partition":
            self._advance()
            return Name("partition")
        self._fail("unexpected keyword")
        raise AssertionError  # pragma: no cover

    def _select(self) -> Select:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct")
        head = self._expression()
        self._expect_keyword("from")
        from_clauses = [self._from_clause()]
        while self._accept("punct", ","):
            from_clauses.append(self._from_clause())
        where = None
        if self._accept_keyword("where"):
            where = self._expression()
        group_by: tuple[GroupItem, ...] = ()
        having = None
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by = self._group_items()
            if self._accept_keyword("having"):
                having = self._expression()
        order_by: tuple[OrderItem, ...] = ()
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by = self._order_items()
        return Select(
            head,
            tuple(from_clauses),
            where=where,
            distinct=distinct,
            order_by=order_by,
            group_by=group_by,
            having=having,
        )

    def _from_clause(self) -> FromClause:
        # Preferred ODMG form: ``x in E``. Alternative: ``E as x``.
        start = self._current
        if self._current.kind == "ident":
            next_token = self._tokens[self._pos + 1]
            if next_token.is_keyword("in"):
                var = self._expect_ident()
                self._expect_keyword("in")
                source = self._expression()
                return self._spanned(FromClause(var, source), start)
        source = self._expression()
        if self._accept_keyword("as"):
            var = self._expect_ident()
            return self._spanned(FromClause(var, source), start)
        if self._current.kind == "ident":
            # ``E x`` — SQL-style alias without AS
            var = self._expect_ident()
            return self._spanned(FromClause(var, source), start)
        self._fail("from clause needs a variable: use `x in E` or `E as x`")
        raise AssertionError  # pragma: no cover

    def _order_items(self) -> tuple[OrderItem, ...]:
        items = [self._order_item()]
        while self._accept("punct", ","):
            items.append(self._order_item())
        return tuple(items)

    def _order_item(self) -> OrderItem:
        key = self._expression()
        descending = False
        if self._accept_keyword("desc"):
            descending = True
        else:
            self._accept_keyword("asc")
        return OrderItem(key, descending)

    def _group_items(self) -> tuple[GroupItem, ...]:
        items = [self._group_item()]
        while self._accept("punct", ","):
            items.append(self._group_item())
        return tuple(items)

    def _group_item(self) -> GroupItem:
        label = self._expect_ident()
        self._expect("punct", ":")
        key = self._expression()
        return GroupItem(label, key)

    def _exists(self) -> OQLNode:
        self._expect_keyword("exists")
        if self._accept("punct", "("):
            query = self._expression()
            self._expect("punct", ")")
            return ExistsQuery(query)
        var = self._expect_ident()
        self._expect_keyword("in")
        source = self._expression()
        self._expect("punct", ":")
        pred = self._expression()
        return Exists(var, source, pred)

    def _forall(self) -> ForAll:
        self._expect_keyword("for")
        self._expect_keyword("all")
        var = self._expect_ident()
        self._expect_keyword("in")
        source = self._expression()
        self._expect("punct", ":")
        pred = self._expression()
        return ForAll(var, source, pred)

    def _struct(self) -> StructExpr:
        self._expect_keyword("struct")
        self._expect("punct", "(")
        fields = [self._struct_field()]
        while self._accept("punct", ","):
            fields.append(self._struct_field())
        self._expect("punct", ")")
        return StructExpr(tuple(fields))

    def _struct_field(self) -> tuple[str, OQLNode]:
        name = self._expect_ident()
        self._expect("punct", ":")
        return name, self._expression()

    def _collection(self, kind: str) -> CollectionExpr:
        self._advance()
        self._expect("punct", "(")
        if self._accept("punct", ")"):
            return CollectionExpr("list" if kind == "array" else kind, ())
        items = [self._expression()]
        while self._accept("punct", ","):
            items.append(self._expression())
        self._expect("punct", ")")
        return CollectionExpr("list" if kind == "array" else kind, tuple(items))

    def _sort(self) -> SortExpr:
        self._expect_keyword("sort")
        var = self._expect_ident()
        self._expect_keyword("in")
        source = self._expression()
        self._expect_keyword("by")
        keys = self._order_items()
        return SortExpr(var, source, keys)
