"""Types of the monoid calculus.

The paper's type language: base types, record types ``<a1: t1, ...>``,
collection types ``M(t)`` for each collection monoid ``M``, function
types, class (object) types with a subtype hierarchy, ``obj(t)`` for
section 4.2 identities, and vector types ``t[n]`` for section 4.1.

``TAny`` is the gradual-typing escape hatch: the checker is permissive
where the paper's formal system would demand annotations Python cannot
supply (e.g. the state type of a raw ``new``), but is strict about the
things the paper makes static guarantees about — above all the C/I
restriction on comprehensions and homomorphisms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class Type:
    """Base class of all calculus types."""

    __slots__ = ()

    def __str__(self) -> str:  # pragma: no cover - subclasses override
        return type(self).__name__


@dataclass(frozen=True)
class TBase(Type):
    """A base type: bool, int, float, string, or the unit/none type."""

    name: str

    def __str__(self) -> str:
        return self.name


TBOOL = TBase("bool")
TINT = TBase("int")
TFLOAT = TBase("float")
TSTRING = TBase("string")
TNONE = TBase("none")


@dataclass(frozen=True)
class TAny(Type):
    """Unknown type — compatible with everything (gradual typing)."""

    def __str__(self) -> str:
        return "any"


ANY = TAny()


@dataclass(frozen=True)
class TRecord(Type):
    """Record type ``<a1: t1, ..., an: tn>``."""

    fields: tuple[tuple[str, Type], ...]

    def __str__(self) -> str:
        inner = ", ".join(f"{name}: {ty}" for name, ty in self.fields)
        return f"<{inner}>"

    def field_type(self, name: str) -> Optional[Type]:
        for field_name, ty in self.fields:
            if field_name == name:
                return ty
        return None


@dataclass(frozen=True)
class TTuple(Type):
    """Tuple type ``(t1, ..., tn)``."""

    items: tuple[Type, ...]

    def __str__(self) -> str:
        return f"({', '.join(str(t) for t in self.items)})"


@dataclass(frozen=True)
class TColl(Type):
    """Collection type ``M(t)`` — carrier of collection monoid ``M``.

    ``monoid`` is the monoid name (list/set/bag/oset/string/sorted/
    sortedbag); ``element`` the element type.
    """

    monoid: str
    element: Type

    def __str__(self) -> str:
        return f"{self.monoid}({self.element})"


@dataclass(frozen=True)
class TVector(Type):
    """Vector type ``t[n]``; ``size`` is None when statically unknown."""

    element: Type
    size: Optional[int] = None

    def __str__(self) -> str:
        size = "?" if self.size is None else str(self.size)
        return f"{self.element}[{size}]"


@dataclass(frozen=True)
class TFunc(Type):
    """Function type ``t1 -> t2``."""

    param: Type
    result: Type

    def __str__(self) -> str:
        return f"({self.param} -> {self.result})"


@dataclass(frozen=True)
class TClass(Type):
    """A named class from the schema; attributes live in the schema."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TObj(Type):
    """``obj(t)`` — an object identity whose state has type ``t``."""

    state: Type

    def __str__(self) -> str:
        return f"obj({self.state})"


def is_numeric(ty: Type) -> bool:
    """True for int, float or any."""
    return ty in (TINT, TFLOAT) or isinstance(ty, TAny)


def is_bool(ty: Type) -> bool:
    return ty == TBOOL or isinstance(ty, TAny)


def join_numeric(left: Type, right: Type) -> Type:
    """The wider of two numeric types (int joins to float)."""
    if isinstance(left, TAny) or isinstance(right, TAny):
        return ANY
    if TFLOAT in (left, right):
        return TFLOAT
    return TINT
