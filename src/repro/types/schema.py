"""ODL-style schema declarations: classes, attributes, extents, methods.

OQL queries range over named *extents* (the persistent collections of a
class) and navigate *attributes* and *relationships* declared on
classes, possibly through an inheritance hierarchy — the paper's OQL
examples use a travel-agency schema of Cities, Hotels and Rooms. A
:class:`Schema` collects those declarations and is consulted by the
type checker, the OQL translator (to resolve extent names) and the
database facade (to validate loaded data).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.errors import SchemaError
from repro.types.types import ANY, TClass, TColl, Type


@dataclass
class MethodDef:
    """A method on a class: a Python callable over the receiver's record.

    ``result`` is the declared result type (ANY when unknown).
    """

    name: str
    fn: Callable[..., Any]
    result: Type = ANY
    doc: str = ""

    def __post_init__(self) -> None:
        if not callable(self.fn):
            raise SchemaError(f"method {self.name!r} is not callable")


@dataclass
class ClassDef:
    """A class declaration: attributes, optional extent, superclass."""

    name: str
    attributes: dict[str, Type] = field(default_factory=dict)
    extent: Optional[str] = None
    extent_monoid: str = "set"
    superclass: Optional[str] = None
    methods: dict[str, MethodDef] = field(default_factory=dict)

    def attribute(self, name: str) -> Optional[Type]:
        return self.attributes.get(name)


class Schema:
    """A set of class declarations with an extent namespace.

    >>> schema = Schema()
    >>> from repro.types.types import TSTRING, TINT
    >>> _ = schema.define_class("City", {"name": TSTRING, "population": TINT},
    ...                          extent="Cities")
    >>> schema.extent_type("Cities")
    TColl(monoid='set', element=TClass(name='City'))
    """

    def __init__(self) -> None:
        self._classes: dict[str, ClassDef] = {}
        self._extents: dict[str, str] = {}  # extent name -> class name

    def define_class(
        self,
        name: str,
        attributes: dict[str, Type] | None = None,
        extent: str | None = None,
        extent_monoid: str = "set",
        superclass: str | None = None,
    ) -> ClassDef:
        """Declare a class; optionally give it a named extent."""
        if name in self._classes:
            raise SchemaError(f"class {name!r} already defined")
        if superclass is not None and superclass not in self._classes:
            raise SchemaError(f"superclass {superclass!r} of {name!r} is not defined")
        cls = ClassDef(
            name,
            dict(attributes or {}),
            extent=extent,
            extent_monoid=extent_monoid,
            superclass=superclass,
        )
        self._classes[name] = cls
        if extent is not None:
            if extent in self._extents:
                raise SchemaError(f"extent {extent!r} already defined")
            self._extents[extent] = name
        return cls

    def define_method(
        self,
        class_name: str,
        method_name: str,
        fn: Callable[..., Any],
        result: Type = ANY,
        doc: str = "",
    ) -> MethodDef:
        """Attach a method to a class."""
        cls = self.class_def(class_name)
        method = MethodDef(method_name, fn, result, doc)
        cls.methods[method_name] = method
        return method

    # -- lookups ------------------------------------------------------------

    def class_def(self, name: str) -> ClassDef:
        try:
            return self._classes[name]
        except KeyError:
            raise SchemaError(f"unknown class {name!r}") from None

    def has_class(self, name: str) -> bool:
        return name in self._classes

    def classes(self) -> Iterator[ClassDef]:
        return iter(self._classes.values())

    def extents(self) -> dict[str, str]:
        """Extent name -> class name."""
        return dict(self._extents)

    def has_extent(self, name: str) -> bool:
        return name in self._extents

    def extent_class(self, name: str) -> ClassDef:
        try:
            return self._classes[self._extents[name]]
        except KeyError:
            raise SchemaError(f"unknown extent {name!r}") from None

    def extent_type(self, name: str) -> TColl:
        cls = self.extent_class(name)
        return TColl(cls.extent_monoid, TClass(cls.name))

    # -- inheritance ------------------------------------------------------------

    def attribute_type(self, class_name: str, attribute: str) -> Optional[Type]:
        """Attribute type, searching up the superclass chain."""
        current: Optional[str] = class_name
        while current is not None:
            cls = self.class_def(current)
            ty = cls.attribute(attribute)
            if ty is not None:
                return ty
            current = cls.superclass
        return None

    def method_def(self, class_name: str, method: str) -> Optional[MethodDef]:
        """Method definition, searching up the superclass chain."""
        current: Optional[str] = class_name
        while current is not None:
            cls = self.class_def(current)
            if method in cls.methods:
                return cls.methods[method]
            current = cls.superclass
        return None

    def is_subclass(self, sub: str, sup: str) -> bool:
        """True if ``sub`` equals or transitively extends ``sup``."""
        current: Optional[str] = sub
        while current is not None:
            if current == sup:
                return True
            current = self.class_def(current).superclass
        return False

    def all_methods(self) -> dict[str, Callable[..., Any]]:
        """Flat method-name -> callable map for the evaluator.

        Name collisions across classes resolve to the last definition;
        the database facade wraps receiver dispatch where needed.
        """
        methods: dict[str, Callable[..., Any]] = {}
        for cls in self._classes.values():
            for name, mdef in cls.methods.items():
                methods[name] = mdef.fn
        return methods
