"""Type inference and checking for calculus terms.

Two jobs:

1. **Inference** — compute the type of a term from the types of its free
   variables (supplied by the schema's extents or explicit bindings).
   Inference is *gradual*: anything unknowable becomes ``any`` and
   checking continues, so partially-annotated programs still get the
   important guarantees.

2. **Well-formedness** — the paper's static C/I restriction. For every
   comprehension ``M{ e | ..., v <- u, ... }`` the collection monoid
   ``N`` of ``u`` must satisfy ``props(N) ⊆ props(M)`` (comprehensions
   are sugar for ``hom[N -> M]``), and every explicit ``hom`` is checked
   the same way. Violations raise :class:`WellFormednessError` at check
   time, never at run time — this is the property the paper holds up
   against SRU.
"""

from __future__ import annotations

from typing import Optional

from repro.calculus.ast import (
    Apply,
    Assign,
    Bind,
    BinOp,
    Call,
    Comprehension,
    Const,
    Deref,
    Empty,
    Generator,
    Hom,
    If,
    Index,
    Lambda,
    Let,
    Merge,
    MethodCall,
    MonoidRef,
    New,
    Proj,
    RecordCons,
    Singleton,
    Term,
    TupleCons,
    UnOp,
    Update,
    Var,
)
from repro.errors import TypingError, WellFormednessError
from repro.types.schema import Schema
from repro.types.types import (
    ANY,
    TAny,
    TBase,
    TBOOL,
    TClass,
    TColl,
    TFLOAT,
    TFunc,
    TINT,
    TNONE,
    TObj,
    TRecord,
    TSTRING,
    TTuple,
    TVector,
    Type,
    is_bool,
    is_numeric,
    join_numeric,
)
from repro.values import Bag, OrderedSet, Record, Vector

# Static monoid property table: name -> (commutative, idempotent, collection).
MONOID_PROPS: dict[str, tuple[bool, bool, bool]] = {
    "list": (False, False, True),
    "set": (True, True, True),
    "bag": (True, False, True),
    "oset": (False, True, True),
    "string": (False, False, True),
    "sorted": (True, True, True),
    "sortedbag": (True, False, True),
    "sum": (True, False, False),
    "prod": (True, False, False),
    "max": (True, True, False),
    "min": (True, True, False),
    "some": (True, True, False),
    "all": (True, True, False),
}


def monoid_props(name: str) -> frozenset[str]:
    """The static C/I property set of a monoid name."""
    try:
        commutative, idempotent, _ = MONOID_PROPS[name]
    except KeyError:
        raise TypingError(f"unknown monoid {name!r} in type check") from None
    props = set()
    if commutative:
        props.add("commutative")
    if idempotent:
        props.add("idempotent")
    return frozenset(props)


def is_collection_monoid(name: str) -> bool:
    entry = MONOID_PROPS.get(name)
    return entry is not None and entry[2]


def check_generator_well_formed(source_monoid: str, output: MonoidRef) -> None:
    """The comprehension form of the paper's restriction.

    A generator over an ``N`` collection inside an ``M``-comprehension
    desugars to ``hom[N -> M]``, so ``props(N) ⊆ props(M)`` must hold.
    """
    output_name = "vec" if output.is_vector else output.name
    if output.is_vector:
        # M[n] inherits its element monoid's properties.
        element = output.element.name if output.element is not None else "sum"
        target_props = monoid_props(element)
    else:
        target_props = monoid_props(output_name)
    missing = monoid_props(source_monoid) - target_props
    if missing:
        raise WellFormednessError(
            f"comprehension over {output} has a generator ranging over a "
            f"{source_monoid} collection, but {output} lacks "
            f"{{{', '.join(sorted(missing))}}}: the implied "
            f"hom[{source_monoid} -> {output}] is not well formed"
        )


class TypeChecker:
    """Infers types and enforces well-formedness for calculus terms.

    By default the checker is fail-fast: the first violation raises
    (the behavior the evaluation path relies on). When ``on_error`` is
    supplied — a callable ``(error, node) -> None`` — the checker
    instead *collects*: every violation is reported to the callback at
    the node that caused it, inference of that node degrades to
    ``any``, and checking continues. This is what lets
    :mod:`repro.lint` surface all static errors in one pass instead of
    stopping at the first.
    """

    def __init__(self, schema: Optional[Schema] = None, on_error=None) -> None:
        self.schema = schema
        self._on_error = on_error

    # -- public API ----------------------------------------------------------

    def infer(self, term: Term, tenv: dict[str, Type] | None = None) -> Type:
        """Infer the type of ``term``; raise on static errors.

        >>> from repro.calculus import comp, gen, var, const
        >>> TypeChecker().infer(comp("sum", var("a"), [gen("a", const((1, 2)))]))
        TBase(name='int')
        """
        env = dict(tenv or {})
        if self.schema is not None:
            for extent, _ in self.schema.extents().items():
                env.setdefault(extent, self.schema.extent_type(extent))
        return self._infer(term, env)

    def check(self, term: Term, tenv: dict[str, Type] | None = None) -> Type:
        """Alias of :meth:`infer`, emphasising the checking role."""
        return self.infer(term, tenv)

    # -- dispatcher --------------------------------------------------------------

    def _infer(self, term: Term, env: dict[str, Type]) -> Type:
        if self._on_error is None:
            return self._dispatch(term, env)
        try:
            return self._dispatch(term, env)
        except (TypingError, WellFormednessError) as err:
            self._on_error(err, term)
            return ANY

    def _dispatch(self, term: Term, env: dict[str, Type]) -> Type:
        if isinstance(term, Const):
            return type_of_value(term.value)
        if isinstance(term, Var):
            if term.name in env:
                return env[term.name]
            raise TypingError(f"unbound variable {term.name!r} in type check")
        if isinstance(term, Lambda):
            body = self._infer(term.body, {**env, term.param: ANY})
            return TFunc(ANY, body)
        if isinstance(term, Apply):
            fn = self._infer(term.fn, env)
            self._infer(term.arg, env)
            if isinstance(fn, TFunc):
                return fn.result
            if isinstance(fn, TAny):
                return ANY
            raise TypingError(f"application of non-function type {fn}")
        if isinstance(term, Let):
            value = self._infer(term.value, env)
            return self._infer(term.body, {**env, term.var: value})
        if isinstance(term, RecordCons):
            return TRecord(
                tuple((name, self._infer(value, env)) for name, value in term.fields)
            )
        if isinstance(term, TupleCons):
            return TTuple(tuple(self._infer(item, env) for item in term.items))
        if isinstance(term, Proj):
            return self._infer_proj(term, env)
        if isinstance(term, Index):
            return self._infer_index(term, env)
        if isinstance(term, BinOp):
            return self._infer_binop(term, env)
        if isinstance(term, UnOp):
            return self._infer_unop(term, env)
        if isinstance(term, If):
            return self._infer_if(term, env)
        if isinstance(term, Empty):
            return self._monoid_result_type(term.monoid, ANY, env)
        if isinstance(term, Singleton):
            element = self._infer(term.element, env)
            if term.index is not None:
                index_ty = self._infer(term.index, env)
                if not is_numeric(index_ty):
                    raise TypingError(f"vector unit index must be numeric, got {index_ty}")
            return self._monoid_result_type(term.monoid, element, env)
        if isinstance(term, Merge):
            left = self._infer(term.left, env)
            right = self._infer(term.right, env)
            self._require_compatible(left, right, "merge operands")
            return left if not isinstance(left, TAny) else right
        if isinstance(term, Comprehension):
            return self._infer_comprehension(term, env)
        if isinstance(term, Hom):
            return self._infer_hom(term, env)
        if isinstance(term, Call):
            return self._infer_call(term, env)
        if isinstance(term, MethodCall):
            return self._infer_method(term, env)
        if isinstance(term, New):
            state = self._infer(term.state, env)
            return TObj(state)
        if isinstance(term, Deref):
            target = self._infer(term.target, env)
            if isinstance(target, TObj):
                return target.state
            if isinstance(target, (TAny, TClass)):
                return ANY
            raise TypingError(f"dereference of non-object type {target}")
        if isinstance(term, Assign):
            target = self._infer(term.target, env)
            value = self._infer(term.value, env)
            if isinstance(target, TObj):
                self._require_compatible(target.state, value, "assignment")
            elif not isinstance(target, (TAny, TClass)):
                raise TypingError(f"assignment to non-object type {target}")
            return TBOOL
        if isinstance(term, Update):
            self._infer(term.base, env)
            self._infer(term.value, env)
            return TBOOL
        raise TypingError(f"cannot type {type(term).__name__}")

    # -- structured cases ----------------------------------------------------------

    def _infer_proj(self, term: Proj, env: dict[str, Type]) -> Type:
        base = self._infer(term.base, env)
        if isinstance(base, TObj):
            base = base.state  # implicit dereference, as in OQL paths
        if isinstance(base, TRecord):
            ty = base.field_type(term.name)
            if ty is None:
                raise TypingError(
                    f"record type {base} has no field {term.name!r}"
                )
            return ty
        if isinstance(base, TClass):
            if self.schema is not None:
                ty = self.schema.attribute_type(base.name, term.name)
                if ty is not None:
                    return ty
                if self.schema.has_class(base.name):
                    raise TypingError(
                        f"class {base.name} has no attribute {term.name!r}"
                    )
            return ANY
        if isinstance(base, TAny):
            return ANY
        raise TypingError(f"cannot project {term.name!r} from type {base}")

    def _infer_index(self, term: Index, env: dict[str, Type]) -> Type:
        base = self._infer(term.base, env)
        position = self._infer(term.index, env)
        if not is_numeric(position):
            raise TypingError(f"index must be numeric, got {position}")
        if isinstance(base, TVector):
            return base.element
        if isinstance(base, TColl) and base.monoid in ("list", "oset", "sorted", "sortedbag"):
            return base.element
        if isinstance(base, TColl) and base.monoid == "string":
            return TSTRING
        if isinstance(base, (TAny, TTuple)):
            return ANY
        raise TypingError(f"cannot index type {base}")

    def _infer_binop(self, term: BinOp, env: dict[str, Type]) -> Type:
        op = term.op
        left = self._infer(term.left, env)
        right = self._infer(term.right, env)
        if op in ("and", "or"):
            if not is_bool(left) or not is_bool(right):
                raise TypingError(f"{op} requires booleans, got {left}, {right}")
            return TBOOL
        if op in ("=", "!="):
            return TBOOL
        if op in ("<", "<=", ">", ">="):
            self._require_compatible(left, right, f"comparison {op}")
            return TBOOL
        if op in ("+", "-", "*", "/", "div", "mod"):
            if op == "+" and left == TSTRING and right == TSTRING:
                return TSTRING
            if not is_numeric(left) or not is_numeric(right):
                raise TypingError(f"arithmetic {op} on {left}, {right}")
            if op == "/":
                return TFLOAT
            if op == "div":
                return TINT
            return join_numeric(left, right)
        if op == "in":
            element = self._element_type(right, "right operand of `in`")
            self._require_compatible(left, element, "`in` membership")
            return TBOOL
        if op in ("union", "intersect", "except"):
            self._require_compatible(left, right, op)
            return left if not isinstance(left, TAny) else right
        raise TypingError(f"unknown operator {op!r}")

    def _infer_unop(self, term: UnOp, env: dict[str, Type]) -> Type:
        operand = self._infer(term.operand, env)
        if term.op == "not":
            if not is_bool(operand):
                raise TypingError(f"not of non-boolean {operand}")
            return TBOOL
        if not is_numeric(operand):
            raise TypingError(f"negation of non-number {operand}")
        return operand

    def _infer_if(self, term: If, env: dict[str, Type]) -> Type:
        cond = self._infer(term.cond, env)
        if not is_bool(cond):
            raise TypingError(f"if condition must be boolean, got {cond}")
        then_ty = self._infer(term.then_branch, env)
        else_ty = self._infer(term.else_branch, env)
        if then_ty == else_ty:
            return then_ty
        if is_numeric(then_ty) and is_numeric(else_ty):
            return join_numeric(then_ty, else_ty)
        if isinstance(then_ty, TAny):
            return else_ty
        if isinstance(else_ty, TAny):
            return then_ty
        # Subclass join through the schema.
        if (
            isinstance(then_ty, TClass)
            and isinstance(else_ty, TClass)
            and self.schema is not None
        ):
            if self.schema.is_subclass(then_ty.name, else_ty.name):
                return else_ty
            if self.schema.is_subclass(else_ty.name, then_ty.name):
                return then_ty
        return ANY

    def _infer_comprehension(self, term: Comprehension, env: dict[str, Type]) -> Type:
        scope = dict(env)
        for qual in term.qualifiers:
            if isinstance(qual, Generator):
                source = self._infer(qual.source, scope)
                element, source_monoid = self._generator_element(source)
                if source_monoid is not None:
                    try:
                        check_generator_well_formed(source_monoid, term.monoid)
                    except WellFormednessError as err:
                        if self._on_error is None:
                            raise
                        # Report at the generator (it carries the span of
                        # its from-clause) and keep checking the rest.
                        # Translator-made collections (a group-by
                        # partition is a bag by ODMG fiat, whatever the
                        # sources) are not the user's doing — skip them
                        # when collecting.
                        if not getattr(term, "implicit_collection", False):
                            self._on_error(err, qual)
                scope[qual.var] = element
                if qual.index_var is not None:
                    scope[qual.index_var] = TINT
            elif isinstance(qual, Bind):
                scope[qual.var] = self._infer(qual.value, scope)
            else:
                pred = self._infer(qual.pred, scope)
                if not is_bool(pred):
                    raise TypingError(
                        f"comprehension predicate must be boolean, got {pred}"
                    )
        head = self._infer(term.head, scope)
        return self._monoid_result_type(term.monoid, head, env)

    def _infer_hom(self, term: Hom, env: dict[str, Type]) -> Type:
        source_name = term.source.name
        target_name = term.target.name
        if is_collection_monoid(source_name):
            missing = monoid_props(source_name) - monoid_props(target_name)
            if missing:
                raise WellFormednessError(
                    f"hom[{source_name} -> {target_name}] is not well formed: "
                    f"target lacks {{{', '.join(sorted(missing))}}}"
                )
        else:
            raise TypingError(f"hom source {source_name} must be a collection monoid")
        arg = self._infer(term.arg, env)
        element, arg_monoid = self._generator_element(arg)
        if arg_monoid is not None and arg_monoid != source_name:
            raise TypingError(
                f"hom[{source_name} -> ...] applied to a {arg_monoid} collection"
            )
        body = self._infer(term.body, {**env, term.var: element})
        if is_collection_monoid(target_name):
            # body must itself be a target-monoid collection
            if isinstance(body, TColl) and body.monoid == target_name:
                return body
            if isinstance(body, TAny):
                return TColl(target_name, ANY)
            raise TypingError(
                f"hom body must produce a {target_name} collection, got {body}"
            )
        return body

    def _infer_call(self, term: Call, env: dict[str, Type]) -> Type:
        arg_types = [self._infer(arg, env) for arg in term.args]
        name = term.name
        if name in ("count", "length"):
            self._element_type(arg_types[0], name)
            return TINT
        if name == "element":
            return self._element_type(arg_types[0], name)
        if name in ("avg", "sqrt"):
            return TFLOAT
        if name == "abs":
            return arg_types[0]
        if name == "range":
            return TColl("list", TINT)
        if name == "flatten":
            outer = self._element_type(arg_types[0], name)
            return self._element_flatten(arg_types[0], outer)
        if name in ("to_set", "distinct"):
            return TColl("set", self._element_type(arg_types[0], name))
        if name == "to_bag":
            return TColl("bag", self._element_type(arg_types[0], name))
        if name == "to_list":
            return TColl("list", self._element_type(arg_types[0], name))
        if name in ("first", "last"):
            return self._element_type(arg_types[0], name)
        if name == "like":
            for ty in arg_types:
                if not isinstance(ty, TAny) and ty != TSTRING:
                    raise TypingError(f"like requires strings, got {ty}")
            return TBOOL
        return ANY

    def _element_flatten(self, outer: Type, inner: Type) -> Type:
        if isinstance(outer, TColl) and isinstance(inner, TColl):
            return TColl(outer.monoid, inner.element)
        return ANY

    def _infer_method(self, term: MethodCall, env: dict[str, Type]) -> Type:
        base = self._infer(term.base, env)
        for arg in term.args:
            self._infer(arg, env)
        if isinstance(base, TClass) and self.schema is not None:
            mdef = self.schema.method_def(base.name, term.name)
            if mdef is not None:
                return mdef.result
            if self.schema.has_class(base.name):
                raise TypingError(f"class {base.name} has no method {term.name!r}")
        return ANY

    # -- helpers ---------------------------------------------------------------------

    def _generator_element(self, source: Type) -> tuple[Type, Optional[str]]:
        """Element type and monoid name of a generator's source type."""
        if isinstance(source, TColl):
            return source.element, source.monoid
        if isinstance(source, TVector):
            return source.element, None  # vectors impose no C/I constraint
        if isinstance(source, TAny):
            return ANY, None
        if isinstance(source, TObj):
            return self._generator_element(source.state)
        raise TypingError(f"generator ranges over non-collection type {source}")

    def _element_type(self, source: Type, where: str) -> Type:
        if isinstance(source, TColl):
            return source.element
        if isinstance(source, TVector):
            return source.element
        if isinstance(source, TAny):
            return ANY
        raise TypingError(f"{where} requires a collection, got {source}")

    def _monoid_result_type(
        self, ref: MonoidRef, element: Type, env: dict[str, Type]
    ) -> Type:
        name = ref.name
        if ref.is_vector:
            size = None
            if ref.size is not None and isinstance(ref.size, Const):
                size = ref.size.value
            return TVector(element, size)
        if name in ("sum", "prod"):
            if not is_numeric(element):
                raise TypingError(f"{name} aggregates numbers, got {element}")
            return element if not isinstance(element, TAny) else ANY
        if name in ("max", "min"):
            return element
        if name in ("some", "all"):
            if not is_bool(element):
                raise TypingError(f"{name} aggregates booleans, got {element}")
            return TBOOL
        if name == "string":
            return TSTRING
        if name in ("sorted", "sortedbag", "oset"):
            # Table 1: these monoids have *type* list(a) — consumers see
            # an ordered list, so no C/I restriction survives construction.
            return TColl("list", element)
        if is_collection_monoid(name):
            return TColl(name, element)
        raise TypingError(f"unknown monoid {name!r}")

    def _require_compatible(self, left: Type, right: Type, where: str) -> None:
        if not compatible(left, right):
            raise TypingError(f"incompatible types in {where}: {left} vs {right}")


def compatible(left: Type, right: Type) -> bool:
    """Structural compatibility, treating ``any`` as a wildcard."""
    if isinstance(left, TAny) or isinstance(right, TAny):
        return True
    if left == right:
        return True
    if is_numeric(left) and is_numeric(right):
        return True
    if isinstance(left, TColl) and isinstance(right, TColl):
        return left.monoid == right.monoid and compatible(left.element, right.element)
    if isinstance(left, TRecord) and isinstance(right, TRecord):
        lnames = {n for n, _ in left.fields}
        rnames = {n for n, _ in right.fields}
        if lnames != rnames:
            return False
        rmap = dict(right.fields)
        return all(compatible(ty, rmap[name]) for name, ty in left.fields)
    if isinstance(left, TTuple) and isinstance(right, TTuple):
        return len(left.items) == len(right.items) and all(
            compatible(l, r) for l, r in zip(left.items, right.items)
        )
    if isinstance(left, TObj) and isinstance(right, TObj):
        return compatible(left.state, right.state)
    if isinstance(left, TClass) and isinstance(right, TClass):
        return True  # subclass relation is checked where a schema exists
    return False


def type_of_value(value) -> Type:
    """The type of a runtime value (used for constants and loaded data)."""
    if value is None:
        return TNONE
    if isinstance(value, bool):
        return TBOOL
    if isinstance(value, int):
        return TINT
    if isinstance(value, float):
        return TFLOAT
    if isinstance(value, str):
        return TSTRING
    if isinstance(value, Record):
        return TRecord(tuple((k, type_of_value(v)) for k, v in value.items()))
    if isinstance(value, (tuple, list)):
        return TColl("list", _common_element_type(value))
    if isinstance(value, frozenset) or isinstance(value, set):
        return TColl("set", _common_element_type(value))
    if isinstance(value, Bag):
        return TColl("bag", _common_element_type(value.distinct()))
    if isinstance(value, OrderedSet):
        return TColl("oset", _common_element_type(value))
    if isinstance(value, Vector):
        return TVector(_common_element_type(value.to_list()), len(value))
    return ANY


def _common_element_type(values) -> Type:
    element: Optional[Type] = None
    for value in values:
        ty = type_of_value(value)
        if element is None:
            element = ty
        elif element != ty:
            if is_numeric(element) and is_numeric(ty):
                element = join_numeric(element, ty)
            else:
                return ANY
    return element if element is not None else ANY
