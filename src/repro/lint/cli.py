"""``python -m repro lint`` — batch-lint OQL files.

Each file may hold several queries separated by ``;`` (and ``--``
comments, which the lexer already understands). Every query is linted
independently; spans are shifted back to absolute file positions so a
diagnostic always points into the file as written.

Exit status is 1 when any *error*-severity diagnostic was produced,
0 otherwise (warnings and infos don't fail the run — mirror of how
compilers treat ``-Wall`` without ``-Werror``). ``--json`` swaps the
human renderer for one JSON array (one element per file, each
diagnostic with its code, severity, message, span and hint) so CI and
editors can consume diagnostics alongside the ``repro.obs`` trace
exports.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Iterator, Optional

from repro.lint.cachelint import run_batch
from repro.lint.diagnostics import Diagnostic, sort_diagnostics
from repro.lint.linter import Linter
from repro.lint.render import render_all


def split_queries(source: str) -> Iterator[tuple[int, int, str]]:
    """Split ``;``-separated queries, yielding (line0, col0, text).

    ``line0``/``col0`` are 0-based offsets of the segment's start, used
    to shift spans back to file coordinates. Semicolons inside string
    literals and ``--`` comments do not split.
    """
    line = 0
    column = 0
    seg_start = (0, 0)
    buffer: list[str] = []
    i = 0
    n = len(source)
    in_string: Optional[str] = None
    in_comment = False
    while i < n:
        ch = source[i]
        if in_comment:
            if ch == "\n":
                in_comment = False
        elif in_string is not None:
            if ch == "\\" and i + 1 < n:
                buffer.append(ch)
                i += 1
                column += 1
                ch = source[i]
            elif ch == in_string:
                in_string = None
        elif ch in "\"'":
            in_string = ch
        elif ch == "-" and source.startswith("--", i):
            in_comment = True
        elif ch == ";":
            text = "".join(buffer)
            if text.strip():
                yield (*seg_start, text)
            buffer = []
            i += 1
            column += 1
            seg_start = (line, column)
            continue
        buffer.append(ch)
        if ch == "\n":
            line += 1
            column = 0
        else:
            column += 1
        i += 1
    text = "".join(buffer)
    if text.strip():
        yield (*seg_start, text)


def lint_text(
    source: str, linter: Linter
) -> list[Diagnostic]:
    """Lint every query in ``source``, spans in file coordinates.

    Runs the per-query pass pipeline over each ``;``-separated query,
    then the batch passes (``QL4xx``, :mod:`repro.lint.cachelint`) over
    the file's queries as a group.
    """
    findings: list[Diagnostic] = []
    segments = list(split_queries(source))
    for line0, col0, text in segments:
        for diag in linter.lint_source(text):
            if diag.span is not None and (line0 or col0):
                diag = Diagnostic(
                    diag.code,
                    diag.severity,
                    diag.message,
                    diag.span.shifted(line0, col0),
                    diag.hint,
                )
            findings.append(diag)
    findings.extend(run_batch(segments, linter.schema))
    return sort_diagnostics(findings)


def _make_linter(schema_name: str) -> Linter:
    if schema_name == "travel":
        from repro.db.sample_data import travel_schema

        return Linter(travel_schema())
    if schema_name == "company":
        from repro.db.sample_data import company_schema

        return Linter(company_schema())
    return Linter()


def main(argv: Optional[list[str]] = None, out: Callable[[str], None] = print) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Statically analyze OQL files and report diagnostics.",
    )
    parser.add_argument("files", nargs="+", help="OQL files (';'-separated queries)")
    parser.add_argument(
        "--schema",
        choices=("travel", "company", "none"),
        default="travel",
        help="schema to resolve extents against (default: travel)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="print only the per-file summary lines",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON array of per-file diagnostic lists",
    )
    args = parser.parse_args(argv)

    linter = _make_linter(args.schema)
    exit_code = 0
    reports = []
    for path in args.files:
        try:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
        except OSError as err:
            if args.json:
                reports.append({"file": path, "error": str(err), "diagnostics": []})
            else:
                out(f"error: cannot read {path}: {err}")
            exit_code = 1
            continue
        findings = lint_text(source, linter)
        if any(d.is_error for d in findings):
            exit_code = 1
        if args.json:
            reports.append(
                {
                    "file": path,
                    "errors": sum(1 for d in findings if d.severity == "error"),
                    "warnings": sum(1 for d in findings if d.severity == "warning"),
                    "diagnostics": [d.as_dict() for d in findings],
                }
            )
        elif args.quiet:
            errors = sum(1 for d in findings if d.severity == "error")
            warnings = sum(1 for d in findings if d.severity == "warning")
            out(f"{path}: {errors} errors, {warnings} warnings")
        else:
            out(f"== {path}")
            out(render_all(findings, source, path))
    if args.json:
        out(json.dumps(reports, indent=2, sort_keys=True))
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
