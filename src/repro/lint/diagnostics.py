"""Diagnostic objects and the error-code registry.

Every finding the analyzer can produce has a stable ``QLxxx`` code.
Codes are grouped by hundreds:

- ``QL0xx`` — front-end and well-formedness *errors* (the query is
  wrong and will be rejected or misbehave);
- ``QL1xx`` — semantics *warnings* (the query is legal but probably
  does not mean what was written);
- ``QL2xx`` — performance warnings (the query is legal but will be
  evaluated worse than an equivalent phrasing);
- ``QL3xx`` — dataflow findings (powered by :mod:`repro.analysis`):
  redundant or degenerate data flow between generators, and
  opportunities the optimizer could exploit with a physical hint;
- ``QL4xx`` — caching findings (powered by :mod:`repro.cache`): query
  shapes that defeat or under-use the compiled-query cache. These are
  *batch* findings — they compare the queries of one file against each
  other, so they come from ``python -m repro lint`` rather than the
  per-query pass pipeline;
- ``QL5xx`` — JIT findings (powered by :mod:`repro.jit`): hot-path
  expressions that fall outside the compilable fragment and silently
  drop back to per-row interpretation. Telemetry-informed, surfaced by
  ``:stats`` / ``python -m repro metrics top`` like QL402.

``docs/LINT.md`` catalogues every code with examples; a test asserts
the registry and the document stay in sync.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.span import Span

#: Severity levels, strongest first (used for sorting).
SEVERITIES = ("error", "warning", "info")

#: code -> (severity, one-line summary). The single source of truth:
#: passes must use these codes, docs/LINT.md must document them all.
CODES: dict[str, tuple[str, str]] = {
    "QL000": ("error", "OQL syntax error: the query could not be tokenized or parsed"),
    "QL001": (
        "error",
        "ill-formed comprehension: a generator ranges over a collection whose "
        "monoid properties are not a subset of the output monoid's (C/I restriction)",
    ),
    "QL002": (
        "error",
        "ill-formed homomorphism: hom[N -> M] where props(N) is not a subset of "
        "props(M), e.g. an idempotent source into a non-idempotent target",
    ),
    "QL003": ("error", "unbound variable: a name is used that no binder or extent defines"),
    "QL004": ("warning", "shadowed variable: a binder reuses a name already in scope"),
    "QL005": ("warning", "unused generator: a generator binds a variable nothing reads"),
    "QL006": ("error", "type error: static type checking failed outside the C/I rules"),
    "QL101": (
        "warning",
        "implicit duplicate elimination: a set comprehension ranges over a "
        "bag or list source, silently deduplicating it",
    ),
    "QL102": ("warning", "always-true predicate: a filter can never reject anything"),
    "QL103": ("warning", "always-false predicate: the comprehension can never produce output"),
    "QL201": (
        "warning",
        "uncorrelated cartesian product: a generator is never correlated with "
        "any earlier generator by its source or by a predicate",
    ),
    "QL202": (
        "warning",
        "filter after uncorrelated generator: a predicate only depends on "
        "earlier generators and could run before an expensive independent scan",
    ),
    "QL203": (
        "info",
        "pipelining blocked: the Table 3 rules cannot fully flatten this "
        "query, leaving a nested loop the executor cannot pipeline",
    ),
    "QL301": (
        "warning",
        "duplicate generator: a generator ranges over the same source as an "
        "earlier one with no predicate distinguishing the two variables",
    ),
    "QL302": (
        "warning",
        "cross product without an equi-join: two independent generators are "
        "related only by non-equality predicates, so the join cannot be hashed",
    ),
    "QL303": (
        "info",
        "index-probe candidate: an equality selection on an extent attribute "
        "could be served by a hash index (Database.create_index)",
    ),
    "QL401": (
        "info",
        "literal-only query variants: several queries differ only in their "
        "literals, so each one compiles separately instead of sharing a "
        "prepared statement",
    ),
    "QL402": (
        "info",
        "hot query without index probes: a query class dominates measured "
        "runtime while scanning an extent an index could probe "
        "(telemetry-informed QL303)",
    ),
    "QL501": (
        "warning",
        "interpreter fallback in hot loop: a query class dominates measured "
        "runtime but contains per-row expressions the JIT cannot compile, "
        "so they re-enter the reference interpreter on every row",
    ),
}


def severity_of(code: str) -> str:
    """The registered severity of ``code``."""
    return CODES[code][0]


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding: code, severity, message and source span.

    >>> d = Diagnostic("QL003", "error", "unbound variable 'Citeis'",
    ...                Span(1, 8, 1, 14), hint="did you mean 'Cities'?")
    >>> str(d)
    "error[QL003]: unbound variable 'Citeis' at line 1, column 8"
    """

    code: str
    severity: str  # 'error' | 'warning' | 'info'
    message: str
    span: Optional[Span] = None
    hint: Optional[str] = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unregistered diagnostic code {self.code!r}")
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def __str__(self) -> str:
        where = f" at {self.span}" if self.span is not None else ""
        return f"{self.severity}[{self.code}]: {self.message}{where}"

    @property
    def is_error(self) -> bool:
        return self.severity == "error"

    def as_dict(self) -> dict:
        """JSON-ready form (used by ``repro lint --json``)."""
        out: dict = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.span is not None:
            out["span"] = {
                "line": self.span.line,
                "column": self.span.column,
                "end_line": self.span.end_line,
                "end_column": self.span.end_column,
            }
        if self.hint is not None:
            out["hint"] = self.hint
        return out

    def sort_key(self) -> tuple:
        position = (
            (self.span.line, self.span.column) if self.span is not None else (1 << 30, 0)
        )
        return (*position, SEVERITIES.index(self.severity), self.code)


def make(code: str, message: str, span: Optional[Span] = None, hint: Optional[str] = None) -> Diagnostic:
    """Build a diagnostic with the severity registered for its code."""
    return Diagnostic(code, severity_of(code), message, span, hint)


def sort_diagnostics(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    """Stable order: by source position, then severity, then code."""
    return sorted(diagnostics, key=Diagnostic.sort_key)
