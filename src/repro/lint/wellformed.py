"""Pass 1 — well-formedness: the paper's C/I restriction, batched.

Runs the type checker in collecting mode, so *every* violation in the
term is reported instead of just the first:

- ``QL001`` — a comprehension generator ranges over a collection whose
  properties exceed the output monoid's (``props(N) ⊄ props(M)``);
- ``QL002`` — an explicit ``hom[N -> M]`` with the same defect (the
  classic idempotent-set into non-idempotent-sum inconsistency);
- ``QL006`` — any other static type error.

Unbound variables also surface as typing errors here, but the scope
pass (QL003) owns them — with did-you-mean hints — so they are
filtered out.
"""

from __future__ import annotations

from repro.calculus.ast import Hom, Term, Var
from repro.errors import ReproError, WellFormednessError
from repro.lint.base import LintContext
from repro.lint.diagnostics import Diagnostic, make
from repro.span import span_of

name = "wellformed"


def run(term: Term, ctx: LintContext) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []

    def report(err: ReproError, node) -> None:
        if isinstance(node, Var):
            # The scope pass reports unbound variables as QL003.
            return
        if isinstance(err, WellFormednessError):
            code = "QL002" if isinstance(node, Hom) else "QL001"
        else:
            code = "QL006"
        diagnostics.append(make(code, str(err), span_of(node) or span_of(term)))

    checker = ctx.checker(on_error=report)
    try:
        checker.infer(term, dict(ctx.name_types))
    except ReproError:  # pragma: no cover - collect mode swallows these
        pass
    return diagnostics
