"""Shared infrastructure for lint passes.

A :class:`LintContext` carries everything a pass may consult: the
schema, the names that are legitimately free in a query (extents,
views, registered functions), static types for those names, and the
original source text. Passes are stateless callables from
``(term, context)`` to a list of diagnostics, so the linter can run
them independently and merge the results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol

from repro.calculus.ast import Comprehension, Empty, Merge, MonoidRef, Singleton, Term
from repro.errors import ReproError
from repro.lint.diagnostics import Diagnostic
from repro.types.infer import MONOID_PROPS, TypeChecker
from repro.types.schema import Schema
from repro.types.types import TColl, Type


@dataclass
class LintContext:
    """Everything the passes may look at besides the term itself."""

    schema: Optional[Schema] = None
    #: Names a query may use free: extents, views, registered functions.
    known_names: frozenset[str] = frozenset()
    #: Static types for known names (extent types, value-derived types).
    name_types: dict[str, Type] = field(default_factory=dict)
    #: The OQL source text, when the query came from text.
    source: Optional[str] = None

    def checker(self, **kwargs) -> TypeChecker:
        return TypeChecker(self.schema, **kwargs)


class LintPass(Protocol):
    """A single analysis: term + context -> diagnostics."""

    name: str

    def __call__(self, term: Term, ctx: LintContext) -> list[Diagnostic]: ...


def is_fresh_name(name: str) -> bool:
    """True for translator-invented variables (``w~3``), which the
    scope lints skip — the user never wrote them."""
    return "~" in name


def monoid_ref_name(ref: MonoidRef) -> Optional[str]:
    """The plain monoid name of a reference, None for vector monoids."""
    return None if ref.is_vector else ref.name


def collection_kind(
    term: Term, ctx: LintContext, env: Optional[dict[str, Type]] = None
) -> Optional[str]:
    """Best-effort collection monoid of ``term`` (``set``/``bag``/...).

    Syntactic shapes answer directly; everything else falls back to the
    type checker over ``env`` (default: the context's known names).
    Returns None when the kind cannot be established — lints must then
    stay silent rather than guess.
    """
    if isinstance(term, (Empty, Singleton, Merge, Comprehension)):
        name = monoid_ref_name(term.monoid)
        if name is None or name not in MONOID_PROPS:
            return None
        return name
    ty = infer_type(term, ctx, env)
    if isinstance(ty, TColl):
        return ty.monoid
    return None


def infer_type(
    term: Term, ctx: LintContext, env: Optional[dict[str, Type]] = None
) -> Optional[Type]:
    """Type of ``term`` under ``env``, None when inference fails."""
    try:
        return ctx.checker().infer(
            term, dict(ctx.name_types) if env is None else dict(env)
        )
    except ReproError:
        return None
    except RecursionError:  # pragma: no cover - pathological nesting
        return None


def props_of(name: str) -> frozenset[str]:
    """C/I properties of a monoid name, empty set when unknown."""
    entry = MONOID_PROPS.get(name)
    if entry is None:
        return frozenset()
    commutative, idempotent, _ = entry
    out = set()
    if commutative:
        out.add("commutative")
    if idempotent:
        out.add("idempotent")
    return frozenset(out)
