"""Pass 4 — performance lints: queries the engine will run badly.

- ``QL201`` — an uncorrelated cartesian product: a generator that no
  other generator's source and no predicate ever ties to the rest of
  the comprehension. Cost is the full cross product.
- ``QL202`` — a filter that only depends on generators bound *before*
  an independent (extent-scanning) generator, yet is written after it.
  Normalization/optimization can push it down, but the query as
  written hides that, and the interpreter path pays for it.
- ``QL203`` (info) — pipelining blocked: after running the Table 3
  rules to a fixpoint, some generator still ranges over a non-path
  source (typically a nested query that cannot be unnested, e.g. a
  group-by partition). The executor must materialize that inner
  collection instead of pipelining it.
"""

from __future__ import annotations

from repro.calculus.ast import Bind, Comprehension, Filter, Generator, Term
from repro.calculus.traversal import free_vars, subterms
from repro.errors import ReproError
from repro.lint.base import LintContext, is_fresh_name
from repro.lint.diagnostics import Diagnostic, make
from repro.lint.semantics import constant_truth
from repro.normalize.engine import is_simple_path, normalize
from repro.span import span_of

name = "performance"


def run(term: Term, ctx: LintContext) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    for sub in subterms(term):
        if isinstance(sub, Comprehension):
            _check_cartesian(sub, diagnostics)
            _check_filter_placement(sub, diagnostics)
    _check_pipelining(term, diagnostics)
    return diagnostics


def _display(var_name: str) -> str:
    return var_name.split("~")[0]


def _check_cartesian(comp: Comprehension, diagnostics: list[Diagnostic]) -> None:
    gens = [q for q in comp.qualifiers if isinstance(q, Generator)]
    if len(gens) < 2:
        return
    gen_vars = {g.var for g in gens}
    # Correlation edges: a generator's source mentioning another
    # generator's variable, or a predicate mentioning two of them.
    correlated: set[str] = set()
    for gen in gens:
        deps = free_vars(gen.source) & gen_vars
        if deps:
            correlated.add(gen.var)
            correlated.update(deps)
    for qual in comp.qualifiers:
        if isinstance(qual, Filter):
            mentioned = free_vars(qual.pred) & gen_vars
            if len(mentioned) >= 2:
                correlated.update(mentioned)
    for gen in gens:
        if gen.var in correlated or is_fresh_name(gen.var):
            continue
        others = ", ".join(
            repr(_display(g.var)) for g in gens if g.var != gen.var
        )
        diagnostics.append(
            make(
                "QL201",
                f"generator {gen.var!r} is never correlated with {others}: "
                "this is a cartesian product; add a join predicate or make "
                "the nesting explicit",
                span_of(gen) or span_of(comp),
            )
        )


def _check_filter_placement(comp: Comprehension, diagnostics: list[Diagnostic]) -> None:
    quals = comp.qualifiers
    binder_pos: dict[str, int] = {}
    for i, qual in enumerate(quals):
        if isinstance(qual, (Generator, Bind)):
            binder_pos[qual.var] = i
            if isinstance(qual, Generator) and qual.index_var is not None:
                binder_pos[qual.index_var] = i
    bound_here = frozenset(binder_pos)
    for i, qual in enumerate(quals):
        if not isinstance(qual, Filter):
            continue
        if constant_truth(qual.pred) is not None:
            continue  # QL102/QL103 own constant predicates
        deps = free_vars(qual.pred) & bound_here
        last_needed = max((binder_pos[v] for v in deps), default=-1)
        skipped = [
            q
            for q in quals[last_needed + 1 : i]
            if isinstance(q, Generator)
            and not (free_vars(q.source) & bound_here)
            and not is_fresh_name(q.var)
        ]
        if skipped:
            over = ", ".join(repr(_display(g.var)) for g in skipped)
            if deps:
                needs = ", ".join(sorted(repr(_display(v)) for v in deps))
                what = f"predicate only depends on {needs}"
            else:
                what = "predicate depends on no generator variable"
            diagnostics.append(
                make(
                    "QL202",
                    f"{what} but runs after the "
                    f"independent generator(s) {over}; it could filter before "
                    "that scan",
                    span_of(qual.pred) or span_of(qual),
                )
            )


def _check_pipelining(term: Term, diagnostics: list[Diagnostic]) -> None:
    try:
        normal = normalize(term)
    except ReproError:
        return
    seen: set[int] = set()
    for sub in subterms(normal):
        if not isinstance(sub, Comprehension) or id(sub) in seen:
            continue
        seen.add(id(sub))
        for qual in sub.qualifiers:
            if isinstance(qual, Generator) and not is_simple_path(qual.source):
                diagnostics.append(
                    make(
                        "QL203",
                        f"generator {_display(qual.var)!r} still ranges over a "
                        "computed collection after normalization; the Table 3 "
                        "rules cannot flatten it, so the executor materializes "
                        "it instead of pipelining",
                        span_of(qual) or span_of(qual.source) or span_of(term),
                    )
                )
