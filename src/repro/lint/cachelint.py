"""Batch pass — QL401: literal-only query variants.

The compiled-query cache (:mod:`repro.cache`) keys entries by the
alpha-renamed calculus term, so two queries that differ **only in their
literals** — ``... where c.name = 'Portland'`` vs ``... where c.name =
'Salem'`` — each compile separately and each occupy a cache entry,
even though one prepared statement (``... where c.name = $city`` via
:meth:`Database.prepare <repro.db.database.Database.prepare>`) would
compile once and bind per execution.

Detecting this needs *several* queries to compare, so unlike the
``QL0xx``–``QL3xx`` passes this one runs over a whole file's queries at
once — it is wired into ``python -m repro lint`` (:mod:`repro.lint.cli`)
rather than into :data:`~repro.lint.linter.DEFAULT_PASSES`. Queries are
grouped by their literal *skeleton* (the canonical term with every
constant replaced by a hole); a group with at least two members, at
least two distinct literal vectors and at least one literal gets one
info diagnostic per member.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.cache.keys import literal_skeleton, literal_vector
from repro.errors import ReproError
from repro.lint.diagnostics import Diagnostic, make
from repro.oql.parser import parse
from repro.oql.translate import Translator
from repro.span import span_of
from repro.types.schema import Schema

name = "cachelint"

_HINT = (
    "parameterize the differing literals with $name and compile once "
    "via db.prepare(...), binding values per execution"
)


def find_literal_variants(
    segments: Iterable[tuple[int, int, str]],
    schema: Optional[Schema] = None,
) -> list[Diagnostic]:
    """QL401 findings for one file's queries, spans in file coordinates.

    ``segments`` are ``(line0, col0, text)`` triples as produced by
    :func:`repro.lint.cli.split_queries`. Queries that fail to parse or
    translate are skipped here — the per-query passes already report
    them as ``QL000``.
    """
    translator = Translator(schema)
    groups: dict = {}
    for line0, col0, text in segments:
        try:
            term = translator.translate(parse(text))
            skeleton = literal_skeleton(term)
            literals = literal_vector(term)
        except ReproError:
            continue
        groups.setdefault(skeleton, []).append((line0, col0, text, term, literals))

    diagnostics: list[Diagnostic] = []
    for members in groups.values():
        if len(members) < 2:
            continue
        distinct = {literals for _, _, _, _, literals in members}
        if len(distinct) < 2 or not any(literals for *_, literals in members):
            continue
        for line0, col0, text, term, _ in members:
            span = span_of(term)
            if span is not None and (line0 or col0):
                span = span.shifted(line0, col0)
            diagnostics.append(
                make(
                    "QL401",
                    f"{len(members)} queries in this file differ only in "
                    "their literals; each compiles and caches separately",
                    span,
                    hint=_HINT,
                )
            )
    return diagnostics


def run_batch(
    segments: Sequence[tuple[int, int, str]],
    schema: Optional[Schema] = None,
) -> list[Diagnostic]:
    """All batch findings for one file (currently just QL401)."""
    return find_literal_variants(segments, schema)
