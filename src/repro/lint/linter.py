"""The linter: parse, translate, run every pass, batch the findings.

Unlike the evaluation path — which stays fail-fast — the linter never
raises on a bad query: syntax errors become ``QL000`` diagnostics,
every pass runs to completion, and the caller gets one sorted,
de-duplicated list of :class:`Diagnostic` objects.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.calculus.ast import Term
from repro.errors import OQLSyntaxError, ReproError, TranslationError
from repro.lint import dataflow, performance, scope, semantics, wellformed
from repro.lint.base import LintContext
from repro.lint.diagnostics import Diagnostic, make, sort_diagnostics
from repro.oql.parser import parse
from repro.oql.translate import Translator
from repro.span import span_of
from repro.types.schema import Schema
from repro.types.types import Type

#: The default pipeline, in documentation order.
DEFAULT_PASSES = (wellformed.run, scope.run, semantics.run, performance.run, dataflow.run)


class Linter:
    """A multi-pass static analyzer for OQL queries and calculus terms.

    >>> diags = Linter(known_names={"Cities"}).lint_source(
    ...     "select c.name from c in Citeis")
    >>> [d.code for d in diags]
    ['QL003']
    >>> diags[0].hint
    "did you mean 'Cities'?"
    """

    def __init__(
        self,
        schema: Optional[Schema] = None,
        known_names: Optional[Sequence[str]] = None,
        name_types: Optional[dict[str, Type]] = None,
        passes: Sequence[Callable] = DEFAULT_PASSES,
    ) -> None:
        self.schema = schema
        self.passes = tuple(passes)
        names = set(known_names or ())
        types = dict(name_types or {})
        if schema is not None:
            for extent in schema.extents():
                names.add(extent)
                types.setdefault(extent, schema.extent_type(extent))
        self._context = LintContext(
            schema=schema,
            known_names=frozenset(names),
            name_types=types,
        )

    # -- entry points ---------------------------------------------------------

    def lint_source(self, source: str) -> list[Diagnostic]:
        """Lint one OQL query given as text.

        Parse/translate failures produce a single ``QL000`` diagnostic;
        otherwise the translated term goes through every pass.
        """
        try:
            node = parse(source)
            term = Translator(self.schema).translate(node)
        except OQLSyntaxError as err:
            return [make("QL000", _strip_location(str(err), err.span), err.span)]
        except TranslationError as err:
            return [make("QL000", str(err))]
        self._context.source = source
        return self.lint_term(term)

    def lint_term(self, term: Term) -> list[Diagnostic]:
        """Run every pass over an already-translated calculus term."""
        findings: list[Diagnostic] = []
        for lint_pass in self.passes:
            try:
                findings.extend(lint_pass(term, self._context))
            except ReproError as err:  # a pass must never sink the batch
                findings.append(
                    make("QL006", f"analysis failed: {err}", span_of(term))
                )
        return sort_diagnostics(_dedupe(findings))


def _dedupe(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    """Drop repeated findings at the same source location.

    Two passes reporting the same code at the same span is one finding,
    even when they word it differently — the first (pipeline-order)
    message wins. Group-by translation also legitimately duplicates
    qualifier lists into the key-set and partition comprehensions;
    without this, each finding there would appear twice. Span-less
    diagnostics fall back to the message as the distinguishing key.
    """
    seen: set[tuple] = set()
    out: list[Diagnostic] = []
    for diag in diagnostics:
        if diag.span is not None:
            key = (diag.code, diag.span)
        else:
            key = (diag.code, diag.message)
        if key not in seen:
            seen.add(key)
            out.append(diag)
    return out


def _strip_location(message: str, span) -> str:
    """Remove the ``at line L, column C`` suffix (the span carries it)."""
    suffix = f" at {span}"
    return message[: -len(suffix)] if message.endswith(suffix) else message


def lint_oql(
    source: str,
    schema: Optional[Schema] = None,
    known_names: Optional[Sequence[str]] = None,
) -> list[Diagnostic]:
    """One-shot convenience: lint OQL text against an optional schema."""
    return Linter(schema, known_names=known_names).lint_source(source)
