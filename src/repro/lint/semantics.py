"""Pass 3 — semantics lints: legal queries that lie about their intent.

- ``QL101`` — a ``set`` comprehension ranges over a bag or list
  source. That is well formed (``props(bag) ⊂ props(set)``) but it
  *silently* deduplicates; the Albert/Grumbach-style set/bag mixing
  hazard. Queries that asked for it (``select distinct``) are exempt —
  the translator marks those comprehensions.
- ``QL102`` — an always-true predicate: the filter never rejects.
- ``QL103`` — an always-false predicate: the comprehension is the
  monoid's zero, almost certainly a typo (e.g. ``x != x``).

Truth analysis is purely syntactic (constants, constant folding over
literals, and reflexive comparisons of effect-free terms) — no
evaluation happens here.
"""

from __future__ import annotations

from typing import Optional

from repro.calculus.ast import (
    BinOp,
    Bind,
    Comprehension,
    Const,
    Filter,
    Generator,
    Hom,
    Lambda,
    Let,
    Term,
    UnOp,
)
from repro.calculus.traversal import alpha_equal, children, has_effects
from repro.lint.base import LintContext, collection_kind, infer_type
from repro.lint.diagnostics import Diagnostic, make
from repro.span import span_of
from repro.types.types import ANY, TColl, Type

name = "semantics"

#: Sources whose elements may carry duplicates a set output would drop.
_DUP_SOURCES = frozenset({"bag", "list", "sortedbag", "string"})


def run(term: Term, ctx: LintContext) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    _walk(term, ctx, dict(ctx.name_types), diagnostics)
    return diagnostics


def _walk(
    term: Term,
    ctx: LintContext,
    env: dict[str, Type],
    diagnostics: list[Diagnostic],
) -> None:
    """Recurse carrying a type environment so generator variables
    (``h`` in ``h.rooms``) resolve when classifying sources."""
    if isinstance(term, Comprehension):
        is_set = not term.monoid.is_vector and term.monoid.name == "set"
        flag_dedup = is_set and not getattr(term, "explicit_dedup", False)
        inner = dict(env)
        for qual in term.qualifiers:
            if isinstance(qual, Generator):
                _walk(qual.source, ctx, inner, diagnostics)
                kind = collection_kind(qual.source, ctx, inner)
                if flag_dedup and kind in _DUP_SOURCES:
                    diagnostics.append(
                        make(
                            "QL101",
                            f"set comprehension over a {kind} source silently "
                            f"deduplicates; write 'select distinct' if that "
                            f"is intended, or keep the result a {kind}",
                            span_of(qual) or span_of(term),
                        )
                    )
                source_ty = infer_type(qual.source, ctx, inner)
                inner[qual.var] = (
                    source_ty.element if isinstance(source_ty, TColl) else ANY
                )
                if qual.index_var is not None:
                    inner[qual.index_var] = ANY
            elif isinstance(qual, Filter):
                _check_constant_predicate(qual, diagnostics)
                _walk(qual.pred, ctx, inner, diagnostics)
            elif isinstance(qual, Bind):
                _walk(qual.value, ctx, inner, diagnostics)
                inner[qual.var] = infer_type(qual.value, ctx, inner) or ANY
        _walk(term.head, ctx, inner, diagnostics)
        return
    if isinstance(term, Lambda):
        inner = dict(env)
        inner[term.param] = ANY
        _walk(term.body, ctx, inner, diagnostics)
        return
    if isinstance(term, Let):
        _walk(term.value, ctx, env, diagnostics)
        inner = dict(env)
        inner[term.var] = infer_type(term.value, ctx, env) or ANY
        _walk(term.body, ctx, inner, diagnostics)
        return
    if isinstance(term, Hom):
        _walk(term.arg, ctx, env, diagnostics)
        inner = dict(env)
        inner[term.var] = ANY
        _walk(term.body, ctx, inner, diagnostics)
        return
    for child in children(term):
        _walk(child, ctx, env, diagnostics)


def _check_constant_predicate(qual: Filter, diagnostics: list[Diagnostic]) -> None:
    truth = constant_truth(qual.pred)
    span = span_of(qual.pred) or span_of(qual)
    if truth is True:
        diagnostics.append(
            make("QL102", "predicate is always true; the filter is redundant", span)
        )
    elif truth is False:
        diagnostics.append(
            make(
                "QL103",
                "predicate is always false; the comprehension can never "
                "produce anything",
                span,
            )
        )


_FOLDABLE = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

#: Comparisons that hold / fail on syntactically identical operands.
_REFLEXIVE_TRUE = frozenset({"=", "<=", ">="})
_REFLEXIVE_FALSE = frozenset({"!=", "<", ">"})


def constant_truth(pred: Term) -> Optional[bool]:
    """True/False when the predicate's value is statically known.

    >>> from repro.calculus.builders import var, const
    >>> constant_truth(BinOp("=", var("x"), var("x")))
    True
    >>> constant_truth(BinOp("<", const(1), const(2)))
    True
    >>> constant_truth(BinOp("!=", var("x"), var("y"))) is None
    True
    """
    if isinstance(pred, Const) and isinstance(pred.value, bool):
        return pred.value
    if isinstance(pred, UnOp) and pred.op == "not":
        inner = constant_truth(pred.operand)
        return None if inner is None else not inner
    if isinstance(pred, BinOp):
        if pred.op == "and":
            left, right = constant_truth(pred.left), constant_truth(pred.right)
            if left is False or right is False:
                return False
            if left is True and right is True:
                return True
            return None
        if pred.op == "or":
            left, right = constant_truth(pred.left), constant_truth(pred.right)
            if left is True or right is True:
                return True
            if left is False and right is False:
                return False
            return None
        fold = _FOLDABLE.get(pred.op)
        if fold is None:
            return None
        if isinstance(pred.left, Const) and isinstance(pred.right, Const):
            try:
                return bool(fold(pred.left.value, pred.right.value))
            except TypeError:
                return None
        if alpha_equal(pred.left, pred.right) and not has_effects(pred.left):
            if pred.op in _REFLEXIVE_TRUE:
                return True
            if pred.op in _REFLEXIVE_FALSE:
                return False
    return None
