"""Static analysis for the monoid calculus (the ``repro.lint`` subsystem).

The paper's headline claim is that the calculus makes inconsistencies
*statically detectable*; this package takes that seriously at
production scale: a pipeline of independent passes runs over a query
and returns **all** findings as :class:`Diagnostic` objects — stable
``QLxxx`` codes, severities, messages and source spans — instead of
raising on the first failure.

Entry points:

- :func:`lint_oql` / :class:`Linter` — the library API;
- ``Database.lint(query)`` and ``Database.run(query, strict=True)`` —
  the facade integration;
- ``python -m repro lint file.oql`` — the CLI with a rustc-style
  renderer (see :mod:`repro.lint.cli`).

See ``docs/LINT.md`` for the full code catalogue.
"""

from repro.lint.diagnostics import CODES, Diagnostic, sort_diagnostics
from repro.lint.linter import DEFAULT_PASSES, Linter, lint_oql
from repro.lint.render import render_all, render_diagnostic

__all__ = [
    "CODES",
    "DEFAULT_PASSES",
    "Diagnostic",
    "Linter",
    "lint_oql",
    "render_all",
    "render_diagnostic",
    "sort_diagnostics",
]
