"""Pass 2 — scope analysis: unbound, shadowed and unused variables.

- ``QL003`` (error) — a variable occurs free that neither a binder nor
  the database (extents, views, registered functions) defines; carries
  a did-you-mean hint built from what *is* in scope;
- ``QL004`` (warning) — a binder reuses a name already in scope, which
  in a comprehension silently hides the outer binding;
- ``QL005`` (warning) — a generator binds a variable that no later
  qualifier and no head ever reads: dead iteration (and, in a bag
  comprehension, a cardinality multiplier). Prefix the variable with
  ``_`` to state the intent.

Translator-invented variables (``w~3``) are skipped throughout — the
user never wrote them.
"""

from __future__ import annotations

from repro.calculus.ast import (
    Bind,
    Comprehension,
    Generator,
    Hom,
    Lambda,
    Let,
    Term,
    Var,
)
from repro.analysis.dataflow import use_count
from repro.calculus.traversal import children
from repro.errors import did_you_mean
from repro.lint.base import LintContext, is_fresh_name
from repro.lint.diagnostics import Diagnostic, make
from repro.span import Span, span_of

name = "scope"


def run(term: Term, ctx: LintContext) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    _walk(term, frozenset(ctx.known_names), frozenset(), ctx, diagnostics)
    return diagnostics


def _check_binder(
    var_name: str,
    span: Span | None,
    bound: frozenset[str],
    known: frozenset[str],
    diagnostics: list[Diagnostic],
) -> None:
    if is_fresh_name(var_name):
        return
    if var_name in bound or var_name in known:
        what = "an outer binding" if var_name in bound else "a database name"
        diagnostics.append(
            make(
                "QL004",
                f"variable {var_name!r} shadows {what} of the same name",
                span,
            )
        )


def _walk(
    term: Term,
    known: frozenset[str],
    bound: frozenset[str],
    ctx: LintContext,
    diagnostics: list[Diagnostic],
) -> None:
    if isinstance(term, Var):
        if term.name.startswith("$"):
            # a prepared-statement parameter — bound at execution time
            return
        if term.name not in bound and term.name not in known and not is_fresh_name(term.name):
            candidates = sorted(n for n in (bound | known) if not is_fresh_name(n))
            suggestion = did_you_mean(term.name, candidates)
            hint = f"did you mean {suggestion!r}?" if suggestion else None
            diagnostics.append(
                make("QL003", f"unbound variable {term.name!r}", span_of(term), hint)
            )
        return
    if isinstance(term, Lambda):
        _check_binder(term.param, span_of(term), bound, known, diagnostics)
        _walk(term.body, known, bound | {term.param}, ctx, diagnostics)
        return
    if isinstance(term, Let):
        _walk(term.value, known, bound, ctx, diagnostics)
        _check_binder(term.var, span_of(term), bound, known, diagnostics)
        _walk(term.body, known, bound | {term.var}, ctx, diagnostics)
        return
    if isinstance(term, Hom):
        _walk(term.arg, known, bound, ctx, diagnostics)
        _check_binder(term.var, span_of(term), bound, known, diagnostics)
        _walk(term.body, known, bound | {term.var}, ctx, diagnostics)
        return
    if isinstance(term, Comprehension):
        _walk_comprehension(term, known, bound, ctx, diagnostics)
        return
    for child in children(term):
        _walk(child, known, bound, ctx, diagnostics)


def _walk_comprehension(
    term: Comprehension,
    known: frozenset[str],
    bound: frozenset[str],
    ctx: LintContext,
    diagnostics: list[Diagnostic],
) -> None:
    ref = term.monoid
    if ref.key is not None:
        _walk(ref.key, known, bound, ctx, diagnostics)
    if ref.size is not None:
        _walk(ref.size, known, bound, ctx, diagnostics)
    scope = bound
    quals = term.qualifiers
    for i, qual in enumerate(quals):
        if isinstance(qual, Generator):
            _walk(qual.source, known, scope, ctx, diagnostics)
            _check_binder(qual.var, span_of(qual), scope, known, diagnostics)
            if not _used_later(term, i, qual.var):
                diagnostics.append(
                    make(
                        "QL005",
                        f"generator variable {qual.var!r} is never used; "
                        "the iteration is dead (prefix with '_' if intended)",
                        span_of(qual),
                    )
                )
            scope = scope | {qual.var}
            if qual.index_var is not None:
                _check_binder(qual.index_var, span_of(qual), scope, known, diagnostics)
                scope = scope | {qual.index_var}
        elif isinstance(qual, Bind):
            _walk(qual.value, known, scope, ctx, diagnostics)
            _check_binder(qual.var, span_of(qual), scope, known, diagnostics)
            scope = scope | {qual.var}
        else:
            _walk(qual.pred, known, scope, ctx, diagnostics)
    _walk(term.head, known, scope, ctx, diagnostics)


def _used_later(term: Comprehension, index: int, var_name: str) -> bool:
    """Does anything after qualifier ``index`` read ``var_name``?

    Skips the check for fresh or underscore-prefixed names. Built by
    forming the tail of the comprehension (same monoid, so sort keys
    count as uses) and counting free occurrences with the dataflow
    layer — later binders of the same name correctly shadow.
    """
    if is_fresh_name(var_name) or var_name.startswith("_"):
        return True
    tail = Comprehension(term.monoid, term.head, term.qualifiers[index + 1 :])
    return use_count(tail, var_name) > 0
