"""Rustc-style diagnostic rendering: the message plus an underlined
source excerpt.

::

    error[QL003]: unbound variable 'Citeis'
      --> queries.oql:2:28
       |
     2 | select c.name from c in Citeis
       |                         ^^^^^^
       = help: did you mean 'Cities'?
"""

from __future__ import annotations

from typing import Optional

from repro.lint.diagnostics import Diagnostic


def render_diagnostic(
    diag: Diagnostic,
    source: Optional[str] = None,
    filename: str = "<query>",
) -> str:
    """One diagnostic as a multi-line, human-facing block."""
    lines = [f"{diag.severity}[{diag.code}]: {diag.message}"]
    span = diag.span
    if span is not None:
        lines.append(f"  --> {filename}:{span.line}:{span.column}")
        excerpt = _excerpt(source, span) if source is not None else None
        if excerpt is not None:
            source_line, underline = excerpt
            gutter = f"{span.line:4d}"
            pad = " " * len(gutter)
            lines.append(f"{pad} |")
            lines.append(f"{gutter} | {source_line}")
            lines.append(f"{pad} | {underline}")
    if diag.hint:
        lines.append(f"   = help: {diag.hint}")
    return "\n".join(lines)


def render_all(
    diagnostics: list[Diagnostic],
    source: Optional[str] = None,
    filename: str = "<query>",
) -> str:
    """Every diagnostic, blank-line separated, with a summary footer."""
    if not diagnostics:
        return "no diagnostics"
    blocks = [render_diagnostic(d, source, filename) for d in diagnostics]
    errors = sum(1 for d in diagnostics if d.severity == "error")
    warnings = sum(1 for d in diagnostics if d.severity == "warning")
    infos = len(diagnostics) - errors - warnings
    parts = []
    if errors:
        parts.append(f"{errors} error{'s' if errors != 1 else ''}")
    if warnings:
        parts.append(f"{warnings} warning{'s' if warnings != 1 else ''}")
    if infos:
        parts.append(f"{infos} info{'s' if infos != 1 else ''}")
    blocks.append(", ".join(parts))
    return "\n\n".join(blocks)


def _excerpt(source: str, span) -> Optional[tuple[str, str]]:
    """The source line the span starts on, plus a caret underline."""
    lines = source.splitlines()
    if not 1 <= span.line <= len(lines):
        return None
    text = lines[span.line - 1].expandtabs(1)
    start = max(span.column - 1, 0)
    if span.end_line == span.line:
        end = max(span.end_column - 1, start + 1)
    else:
        end = len(text)  # multi-line span: underline to end of first line
    end = min(max(end, start + 1), max(len(text), start + 1))
    underline = " " * start + "^" * (end - start)
    return text, underline
