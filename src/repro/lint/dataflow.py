"""Pass 5 — dataflow lints: findings powered by :mod:`repro.analysis`.

- ``QL301`` (warning) — duplicate generator: two generators range over
  the *same* (pure) source and no predicate ever relates their
  variables, so the second iteration is either redundant or an
  unconstrained self-join.
- ``QL302`` (warning) — cross product without an equi-join: two
  independent generators are related only by non-equality predicates
  (``<``, ``!=``, arithmetic on both sides, ...). The optimizer's
  hash-join matcher needs a pure equality with one side per generator;
  anything else degrades to a filtered nested loop.
- ``QL303`` (info) — index-probe candidate: an equality selection
  ``v.attr = key`` where ``v`` ranges directly over a named extent and
  ``key`` is invariant in the comprehension. A hash index created with
  ``Database.create_index(extent, attr)`` turns the scan into a probe.

All three skip translator-invented (``w~3``) and ``_``-prefixed
variables, and decompose ``and``-conjunctions before classifying
predicates, so ``where p and q`` and ``where p where q`` lint alike.
"""

from __future__ import annotations

from typing import Iterator

from repro.calculus.ast import (
    BinOp,
    Comprehension,
    Filter,
    Generator,
    Proj,
    Term,
    Var,
)
from repro.calculus.traversal import free_vars, has_effects, subterms
from repro.lint.base import LintContext, is_fresh_name
from repro.lint.diagnostics import Diagnostic, make
from repro.span import span_of

name = "dataflow"


def run(term: Term, ctx: LintContext) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    for sub in subterms(term):
        if isinstance(sub, Comprehension):
            _check_duplicate_generators(sub, diagnostics)
            _check_non_equi_products(sub, diagnostics)
            _check_index_probes(sub, ctx, diagnostics)
    return diagnostics


def _display(var_name: str) -> str:
    return var_name.split("~")[0]


def _skippable(var_name: str) -> bool:
    return is_fresh_name(var_name) or var_name.startswith("_")


def _conjuncts(pred: Term) -> Iterator[Term]:
    """The ``and``-free leaves of a predicate, left to right."""
    if isinstance(pred, BinOp) and pred.op == "and":
        yield from _conjuncts(pred.left)
        yield from _conjuncts(pred.right)
    else:
        yield pred


def _predicates(comp: Comprehension) -> list[Term]:
    return [
        leaf
        for qual in comp.qualifiers
        if isinstance(qual, Filter)
        for leaf in _conjuncts(qual.pred)
    ]


# -- QL301: duplicate generator -----------------------------------------------


def _check_duplicate_generators(
    comp: Comprehension, diagnostics: list[Diagnostic]
) -> None:
    gens = [q for q in comp.qualifiers if isinstance(q, Generator)]
    if len(gens) < 2:
        return
    preds = _predicates(comp)
    for j in range(1, len(gens)):
        for i in range(j):
            first, second = gens[i], gens[j]
            if _skippable(first.var) or _skippable(second.var):
                continue
            if first.source != second.source or has_effects(first.source):
                continue
            pair = {first.var, second.var}
            if any(pair <= free_vars(p) for p in preds):
                continue
            diagnostics.append(
                make(
                    "QL301",
                    f"generator {_display(second.var)!r} ranges over the same "
                    f"source as {_display(first.var)!r} but no predicate "
                    "relates the two variables; the self-join is "
                    "unconstrained (drop one generator or add a predicate)",
                    span_of(second) or span_of(comp),
                )
            )
            break  # one report per duplicate generator is enough


# -- QL302: correlated but not hash-joinable ----------------------------------


def _is_equi_join(pred: Term, left_var: str, right_var: str) -> bool:
    """Is ``pred`` an equality with one side per generator variable?"""
    if not (isinstance(pred, BinOp) and pred.op == "="):
        return False
    pair = {left_var, right_var}
    lhs = free_vars(pred.left) & pair
    rhs = free_vars(pred.right) & pair
    return (lhs == {left_var} and rhs == {right_var}) or (
        lhs == {right_var} and rhs == {left_var}
    )


def _check_non_equi_products(
    comp: Comprehension, diagnostics: list[Diagnostic]
) -> None:
    gens = [q for q in comp.qualifiers if isinstance(q, Generator)]
    if len(gens) < 2:
        return
    gen_vars = {g.var for g in gens}
    independent = [g for g in gens if not (free_vars(g.source) & gen_vars)]
    preds = _predicates(comp)
    for j in range(1, len(independent)):
        for i in range(j):
            first, second = independent[i], independent[j]
            if _skippable(first.var) or _skippable(second.var):
                continue
            relating = [
                p
                for p in preds
                if first.var in free_vars(p) and second.var in free_vars(p)
            ]
            if not relating:
                continue  # fully uncorrelated: QL201's territory
            if any(_is_equi_join(p, first.var, second.var) for p in relating):
                continue
            diagnostics.append(
                make(
                    "QL302",
                    f"generators {_display(first.var)!r} and "
                    f"{_display(second.var)!r} are related only by "
                    "non-equality predicates; without an equi-join "
                    "conjunct the optimizer cannot hash-join them",
                    span_of(second) or span_of(comp),
                )
            )


# -- QL303: index-probe candidate ---------------------------------------------


def _bound_names(comp: Comprehension) -> frozenset[str]:
    names: set[str] = set()
    for qual in comp.qualifiers:
        if isinstance(qual, Generator):
            names.add(qual.var)
            if qual.index_var is not None:
                names.add(qual.index_var)
        elif isinstance(qual, Filter):
            pass
        else:  # Bind
            names.add(qual.var)
    return frozenset(names)


def _probe_candidate(
    pred: Term,
    extent_of: dict[str, str],
    bound: frozenset[str],
) -> tuple[str, str] | None:
    """``(extent, attr)`` when ``pred`` is ``v.attr = invariant-key``."""
    if not (isinstance(pred, BinOp) and pred.op == "="):
        return None
    for side, other in ((pred.left, pred.right), (pred.right, pred.left)):
        if not (isinstance(side, Proj) and isinstance(side.base, Var)):
            continue
        extent = extent_of.get(side.base.name)
        if extent is None:
            continue
        if free_vars(other) & bound:
            continue  # the key varies inside the comprehension
        return (extent, side.name)
    return None


def comp_probe_candidates(
    comp: Comprehension, known_names: frozenset[str]
) -> Iterator[tuple[str, str, Term]]:
    """Every ``(extent, attr, predicate)`` triple of ``comp`` where an
    equality selection on a named extent could become an index probe —
    QL303's detection, shared with the telemetry QL402 advisor."""
    extent_of = {
        q.var: q.source.name
        for q in comp.qualifiers
        if isinstance(q, Generator)
        and isinstance(q.source, Var)
        and q.source.name in known_names
        and not _skippable(q.var)
    }
    if not extent_of:
        return
    bound = _bound_names(comp)
    reported: set[tuple[str, str]] = set()
    for qual in comp.qualifiers:
        if not isinstance(qual, Filter):
            continue
        for leaf in _conjuncts(qual.pred):
            probe = _probe_candidate(leaf, extent_of, bound)
            if probe is None or probe in reported:
                continue
            reported.add(probe)
            extent, attr = probe
            yield extent, attr, leaf


def index_probe_candidates(
    term: Term, known_names: frozenset[str]
) -> list[tuple[str, str]]:
    """All distinct ``(extent, attr)`` probe candidates anywhere in
    ``term`` (the whole-query view the QL402 advisor consumes)."""
    out: list[tuple[str, str]] = []
    for sub in subterms(term):
        if isinstance(sub, Comprehension):
            for extent, attr, _leaf in comp_probe_candidates(sub, known_names):
                if (extent, attr) not in out:
                    out.append((extent, attr))
    return out


def _check_index_probes(
    comp: Comprehension, ctx: LintContext, diagnostics: list[Diagnostic]
) -> None:
    for extent, attr, leaf in comp_probe_candidates(comp, ctx.known_names):
        diagnostics.append(
            make(
                "QL303",
                f"equality on {attr!r} selects from extent {extent!r}; "
                "a hash index would turn the scan into a probe",
                span_of(leaf) or span_of(comp),
                hint=f"Database.create_index({extent!r}, {attr!r})",
            )
        )
