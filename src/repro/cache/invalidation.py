"""What a compiled query reads, and whether its results may be cached.

The result cache is only sound if every input a plan can observe is
covered by a version counter. This module computes, for one
:class:`~repro.cache.core.CompiledQuery`:

- ``extents`` — the named extents the plan reads, found by walking the
  physical plan via :meth:`PlanNode.children` and collecting the free
  variables of every embedded calculus term (minus the plan's own
  binding columns), plus :class:`IndexScan` extents which are named
  directly;
- ``cacheable`` — whether a finished value may be served again later.
  Conservative: any effectful construct (``new``/``:=``/field update —
  two runs would observe different OIDs or states), any call into a
  user-registered Python function or schema method (arbitrary code the
  version counters cannot see), or any free name that is *not* a known
  extent or a ``$`` parameter disables result caching. The object
  heap itself needs no per-extent entry: navigation dereferences are
  implicit, so the store's single version counter is part of every
  result version vector instead.

Compilation caching is unaffected by ``cacheable`` — a plan is a pure
function of the query text and catalog structure either way.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.algebra.ops import IndexScan, PlanNode
from repro.calculus.ast import Assign, Call, MethodCall, New, Term, Update
from repro.calculus.traversal import free_vars, subterms


@dataclass(frozen=True)
class Dependencies:
    """The read set and result-cacheability verdict for one entry."""

    extents: frozenset[str]
    cacheable: bool
    reason: Optional[str] = None  # why result caching is off, if it is


def walk_plan(plan: PlanNode) -> Iterator[PlanNode]:
    """Every operator of a plan tree, pre-order."""
    yield plan
    for child in plan.children():
        yield from walk_plan(child)


def plan_terms(plan: PlanNode) -> Iterator[Term]:
    """Every calculus term embedded in a plan's operators.

    Field-generic on purpose: any operator added later contributes its
    ``Term``-typed fields (and tuples of terms) without touching this.
    """
    for node in walk_plan(plan):
        for spec in dataclasses.fields(node):
            value = getattr(node, spec.name)
            if isinstance(value, Term):
                yield value
            elif isinstance(value, tuple):
                for item in value:
                    if isinstance(item, Term):
                        yield item
                    elif isinstance(item, tuple):  # Nest keys: (label, term)
                        for part in item:
                            if isinstance(part, Term):
                                yield part


def plan_columns(plan: PlanNode) -> frozenset[str]:
    """Every variable any operator of the plan binds."""
    out: set[str] = set()
    for node in walk_plan(plan):
        out.update(node.columns())
    return frozenset(out)


def analyze_dependencies(
    kind: str,
    plan: Optional[PlanNode],
    normalized: Term,
    known_extents: Iterable[str],
    user_functions: Iterable[str],
) -> Dependencies:
    """The :class:`Dependencies` of one compiled query (see module doc)."""
    known = set(known_extents)
    functions = set(user_functions)

    if kind in ("groupby", "algebra") and plan is not None:
        bound = plan_columns(plan)
        free: set[str] = set()
        for term in plan_terms(plan):
            free.update(free_vars(term))
        free -= bound
        extents = {name for name in free if name in known}
        for node in walk_plan(plan):
            if isinstance(node, IndexScan):
                extents.add(node.extent)
    else:
        free = set(free_vars(normalized))
        extents = {name for name in free if name in known}

    cacheable = True
    reason: Optional[str] = None
    unknown = {
        name for name in free if name not in known and not name.startswith("$")
    }
    if unknown:
        cacheable = False
        reason = f"free names outside the catalog: {', '.join(sorted(unknown))}"

    if cacheable:
        verdict = _term_cacheable(normalized, functions)
        if verdict is None and plan is not None:
            for term in plan_terms(plan):
                verdict = _term_cacheable(term, functions)
                if verdict is not None:
                    break
        if verdict is not None:
            cacheable = False
            reason = verdict

    return Dependencies(frozenset(extents), cacheable, reason)


def _term_cacheable(term: Term, user_functions: set[str]) -> Optional[str]:
    """None when the term's value is replayable; else the blocking reason."""
    for sub in subterms(term):
        if isinstance(sub, (New, Assign, Update)):
            return f"effectful construct {type(sub).__name__}"
        if isinstance(sub, Call) and sub.name in user_functions:
            return f"call to registered function {sub.name!r}"
        if isinstance(sub, MethodCall):
            return f"method call {sub.name!r} (arbitrary Python)"
    return None
