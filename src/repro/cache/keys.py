"""Cache keys: canonical alpha-forms and literal skeletons of terms.

The compilation cache must give alpha-equivalent queries (``for x in
Cities`` vs ``for y in Cities``) one shared entry.  Structural equality
of terms is too strict — binder spellings differ — so keys are built in
two steps:

1. :func:`~repro.analysis.dataflow.alpha_rename` freshens every binder,
   which guarantees all bound names are globally unique and
   capture-free (this is the same machinery the rewrite verifier uses);
2. the fresh names are then *renumbered deterministically* — sorted by
   the allocation order their ``~N`` suffixes record, which is exactly
   the renamer's pre-order traversal — onto the stable alphabet ``q0,
   q1, ...``.

The result (:func:`canonical_term`) is a plain calculus term whose
structural equality/hash coincides with alpha-equivalence of the
input, so it can be used directly as a dictionary key.  Free variables
(extents, ``$`` parameters) are untouched: queries over different
extents or with different parameter names never collide.

:func:`literal_skeleton` additionally blanks every constant, giving the
key the ``QL401`` lint uses to spot literal-only query variants that
defeat the compilation cache.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.analysis.dataflow import alpha_rename
from repro.calculus.ast import (
    Apply,
    Assign,
    Bind,
    BinOp,
    Call,
    Comprehension,
    Const,
    Deref,
    Empty,
    Filter,
    Generator,
    Hom,
    If,
    Index,
    Lambda,
    Let,
    Merge,
    MethodCall,
    MonoidRef,
    New,
    Proj,
    Qualifier,
    RecordCons,
    Singleton,
    Term,
    TupleCons,
    UnOp,
    Update,
    Var,
)
from repro.calculus.traversal import subterms
from repro.errors import CalculusError

#: The placeholder every constant collapses to in a literal skeleton.
LITERAL_HOLE = "‹lit›"  # ‹lit›


def canonical_term(term: Term) -> Term:
    """The canonical alpha-variant of ``term``.

    Structural equality of canonical terms is alpha-equivalence of the
    originals, so the result works as a hashable cache key.

    >>> from repro.oql import translate_oql
    >>> a = canonical_term(translate_oql("select distinct x.name from x in Cities"))
    >>> b = canonical_term(translate_oql("select distinct y.name from y in Cities"))
    >>> a == b
    True
    """
    renamed = alpha_rename(term)
    mapping = _canonical_mapping(renamed)
    return _map_term(renamed, mapping, None)


def literal_skeleton(term: Term) -> Term:
    """The canonical term with every constant blanked to one hole.

    Two queries have equal skeletons exactly when they differ only in
    literal values (up to alpha-renaming) — the shape ``QL401`` flags.
    """
    renamed = alpha_rename(term)
    mapping = _canonical_mapping(renamed)
    return _map_term(renamed, mapping, lambda _value: LITERAL_HOLE)


def literal_vector(term: Term) -> tuple:
    """Every constant of ``term`` in deterministic pre-order."""
    return tuple(
        sub.value for sub in subterms(term) if isinstance(sub, Const)
    )


def param_names(term: Term) -> tuple[str, ...]:
    """Sorted ``$``-parameter names occurring (free) in ``term``."""
    names = {
        sub.name[1:]
        for sub in subterms(term)
        if isinstance(sub, Var) and sub.name.startswith("$")
    }
    return tuple(sorted(names))


# ---------------------------------------------------------------------------
# Renumbering
# ---------------------------------------------------------------------------


def _binder_names(term: Term) -> set[str]:
    """Every name bound anywhere in ``term``."""
    names: set[str] = set()
    for sub in subterms(term):
        if isinstance(sub, Lambda):
            names.add(sub.param)
        elif isinstance(sub, (Let, Hom)):
            names.add(sub.var)
        elif isinstance(sub, Comprehension):
            for qual in sub.qualifiers:
                if isinstance(qual, Generator):
                    names.add(qual.var)
                    if qual.index_var is not None:
                        names.add(qual.index_var)
                elif isinstance(qual, Bind):
                    names.add(qual.var)
    return names


def _canonical_mapping(renamed: Term) -> dict[str, str]:
    """Map each fresh binder name of an alpha-renamed term to ``qN``.

    ``alpha_rename`` allocates its ``~N`` suffixes in one deterministic
    pre-order pass, so sorting binder names by suffix recovers binding
    order independent of the original spellings.
    """
    fresh = [name for name in _binder_names(renamed) if "~" in name]
    fresh.sort(key=lambda name: int(name.rsplit("~", 1)[1]))
    return {name: f"q{i}" for i, name in enumerate(fresh)}


# ---------------------------------------------------------------------------
# The uniform structural mapper
# ---------------------------------------------------------------------------


def _map_term(
    term: Term,
    names: dict[str, str],
    const_fn: Optional[Callable[[Any], Any]],
) -> Term:
    """Rename variables/binders via ``names`` and map constants.

    Unlike capture-avoiding substitution this renames *binder* fields
    too — sound here because the input comes out of ``alpha_rename``,
    where every bound name is globally unique.
    """
    mt = _map_term  # local alias, this function recurses heavily
    if isinstance(term, Const):
        if const_fn is None:
            return term
        return Const(const_fn(term.value))
    if isinstance(term, Var):
        return Var(names.get(term.name, term.name))
    if isinstance(term, Lambda):
        return Lambda(names.get(term.param, term.param), mt(term.body, names, const_fn))
    if isinstance(term, Apply):
        return Apply(mt(term.fn, names, const_fn), mt(term.arg, names, const_fn))
    if isinstance(term, Let):
        return Let(
            names.get(term.var, term.var),
            mt(term.value, names, const_fn),
            mt(term.body, names, const_fn),
        )
    if isinstance(term, RecordCons):
        return RecordCons(
            tuple((name, mt(value, names, const_fn)) for name, value in term.fields)
        )
    if isinstance(term, TupleCons):
        return TupleCons(tuple(mt(item, names, const_fn) for item in term.items))
    if isinstance(term, Proj):
        return Proj(mt(term.base, names, const_fn), term.name)
    if isinstance(term, Index):
        return Index(mt(term.base, names, const_fn), mt(term.index, names, const_fn))
    if isinstance(term, BinOp):
        return BinOp(
            term.op, mt(term.left, names, const_fn), mt(term.right, names, const_fn)
        )
    if isinstance(term, UnOp):
        return UnOp(term.op, mt(term.operand, names, const_fn))
    if isinstance(term, If):
        return If(
            mt(term.cond, names, const_fn),
            mt(term.then_branch, names, const_fn),
            mt(term.else_branch, names, const_fn),
        )
    if isinstance(term, Empty):
        return Empty(_map_monoid(term.monoid, names, const_fn))
    if isinstance(term, Singleton):
        return Singleton(
            _map_monoid(term.monoid, names, const_fn),
            mt(term.element, names, const_fn),
            mt(term.index, names, const_fn) if term.index is not None else None,
        )
    if isinstance(term, Merge):
        return Merge(
            _map_monoid(term.monoid, names, const_fn),
            mt(term.left, names, const_fn),
            mt(term.right, names, const_fn),
        )
    if isinstance(term, Comprehension):
        quals: list[Qualifier] = []
        for qual in term.qualifiers:
            if isinstance(qual, Generator):
                index_var = qual.index_var
                if index_var is not None:
                    index_var = names.get(index_var, index_var)
                quals.append(
                    Generator(
                        names.get(qual.var, qual.var),
                        mt(qual.source, names, const_fn),
                        index_var,
                    )
                )
            elif isinstance(qual, Bind):
                quals.append(
                    Bind(names.get(qual.var, qual.var), mt(qual.value, names, const_fn))
                )
            else:
                quals.append(Filter(mt(qual.pred, names, const_fn)))
        return Comprehension(
            _map_monoid(term.monoid, names, const_fn),
            mt(term.head, names, const_fn),
            tuple(quals),
        )
    if isinstance(term, Hom):
        return Hom(
            _map_monoid(term.source, names, const_fn),
            _map_monoid(term.target, names, const_fn),
            names.get(term.var, term.var),
            mt(term.body, names, const_fn),
            mt(term.arg, names, const_fn),
        )
    if isinstance(term, Call):
        return Call(term.name, tuple(mt(a, names, const_fn) for a in term.args))
    if isinstance(term, MethodCall):
        return MethodCall(
            mt(term.base, names, const_fn),
            term.name,
            tuple(mt(a, names, const_fn) for a in term.args),
        )
    if isinstance(term, New):
        return New(mt(term.state, names, const_fn))
    if isinstance(term, Deref):
        return Deref(mt(term.target, names, const_fn))
    if isinstance(term, Assign):
        return Assign(mt(term.target, names, const_fn), mt(term.value, names, const_fn))
    if isinstance(term, Update):
        return Update(
            mt(term.base, names, const_fn),
            term.field_name,
            term.op,
            mt(term.value, names, const_fn),
        )
    raise CalculusError(f"canonical_term: unknown term {type(term).__name__}")


def _map_monoid(
    ref: MonoidRef,
    names: dict[str, str],
    const_fn: Optional[Callable[[Any], Any]],
) -> MonoidRef:
    key = _map_term(ref.key, names, const_fn) if ref.key is not None else None
    size = _map_term(ref.size, names, const_fn) if ref.size is not None else None
    element = (
        _map_monoid(ref.element, names, const_fn) if ref.element is not None else None
    )
    if key is ref.key and size is ref.size and element is ref.element:
        return ref
    return MonoidRef(ref.name, key=key, element=element, size=size)
