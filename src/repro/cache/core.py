"""The query cache: compiled plans, result entries, stats and eviction.

Three cooperating layers (docs/CACHE.md has the full story):

1. **Compilation cache** — maps query text (and, behind it, the
   canonical alpha-form from :mod:`repro.cache.keys`) to a
   :class:`CompiledQuery`: the translated term, normal form and
   optimized physical plan, plus everything needed to execute and
   invalidate it. A hit skips parse → translate → typecheck →
   normalize → plan → optimize entirely.
2. **Prepared statements** (:mod:`repro.cache.prepared`) — a pinned
   :class:`CompiledQuery` with ``$name`` parameters bound per run.
3. **Result cache** — maps (canonical key, parameter bindings) to a
   finished value, guarded by the version vector of everything the plan
   reads; any mutation of a read extent or of the object heap makes the
   stored vector stale and the entry is dropped on the next lookup.

Everything is off by default: a :class:`~repro.db.database.Database`
only consults a cache when constructed with ``cache=...`` or when the
``REPRO_CACHE`` environment flag is set (same convention as
``REPRO_VERIFY``). Both stores are LRU with optional max-entry and TTL
bounds; every hit/miss/eviction/invalidation increments a counter on
:class:`CacheStats`, surfaced through ``repro.obs`` and the
``python -m repro cache`` CLI.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.calculus.ast import Term
from repro.errors import DatabaseError
from repro.normalize.trace import NormalizationTrace

_FALSEY = ("", "0", "false", "off", "no")


def cache_env_enabled() -> bool:
    """Is the ``REPRO_CACHE`` environment flag set (and not falsey)?"""
    return os.environ.get("REPRO_CACHE", "").strip().lower() not in _FALSEY


@dataclass
class CacheStats:
    """Counters for one :class:`QueryCache` (monotonic until reset)."""

    compile_hits: int = 0
    compile_misses: int = 0
    result_hits: int = 0
    result_misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "compile_hits": self.compile_hits,
            "compile_misses": self.compile_misses,
            "result_hits": self.result_hits,
            "result_misses": self.result_misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    def reset(self) -> None:
        for name in self.as_dict():
            setattr(self, name, 0)


@dataclass
class CacheConfig:
    """Tuning knobs for one :class:`QueryCache`.

    ``ttl`` is in seconds and applies to both stores; ``None`` disables
    age-based expiry. ``results=False`` keeps only the compilation
    cache (plans are always safe to reuse; results need the version
    guard). ``clock`` exists so tests can drive TTL deterministically.
    """

    max_entries: int = 128
    result_max_entries: int = 256
    ttl: Optional[float] = None
    results: bool = True
    clock: Callable[[], float] = time.monotonic


class _Missing:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<missing>"


#: Sentinel distinguishing "no entry" from a cached ``None`` value.
MISSING = _Missing()


class LRUCache:
    """An ordered map with least-recently-used + TTL eviction.

    ``on_evict`` fires once per entry displaced by capacity or expired
    by age — *not* for explicit :meth:`remove`/:meth:`clear` calls,
    which are the caller's own bookkeeping.

    Thread-safe: every operation holds an internal reentrant lock.
    ``get`` mutates (``move_to_end``, TTL expiry) and ``put`` evicts, so
    even "read" paths race without it — concurrent unlocked calls can
    corrupt the underlying ``OrderedDict`` or double-fire ``on_evict``.
    The lock is reentrant because ``on_evict`` callbacks may re-enter
    the cache.
    """

    def __init__(
        self,
        max_entries: int,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        on_evict: Optional[Callable[[Any, Any], None]] = None,
    ) -> None:
        if max_entries < 1:
            raise DatabaseError("cache max_entries must be at least 1")
        self.max_entries = max_entries
        self.ttl = ttl
        self._clock = clock
        self._on_evict = on_evict
        self._data: "OrderedDict[Any, tuple[Any, float]]" = OrderedDict()
        self._lock = threading.RLock()

    def get(self, key: Any) -> Any:
        """The stored value, or :data:`MISSING`; refreshes recency."""
        with self._lock:
            record = self._data.get(key)
            if record is None:
                return MISSING
            value, stamp = record
            if self.ttl is not None and self._clock() - stamp > self.ttl:
                del self._data[key]
                if self._on_evict is not None:
                    self._on_evict(key, value)
                return MISSING
            self._data.move_to_end(key)
            return value

    def put(self, key: Any, value: Any) -> None:
        with self._lock:
            self._data[key] = (value, self._clock())
            self._data.move_to_end(key)
            while len(self._data) > self.max_entries:
                evicted_key, (evicted_value, _) = self._data.popitem(last=False)
                if self._on_evict is not None:
                    self._on_evict(evicted_key, evicted_value)

    def remove(self, key: Any) -> None:
        with self._lock:
            self._data.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Any) -> bool:
        with self._lock:
            return key in self._data

    def keys(self) -> list[Any]:
        """Keys oldest-first (the eviction order)."""
        with self._lock:
            return list(self._data)


@dataclass
class CompiledQuery:
    """Everything the pipeline produced for one query, ready to re-run.

    ``kind`` names the execution strategy the entry compiled to:
    ``"groupby"`` (single-pass Nest plan), ``"algebra"`` (optimized
    physical plan) or ``"interpret"`` (normalized term on the reference
    evaluator). ``phases`` lists the pipeline phases a hit skips, in
    :data:`repro.obs.tracer.PIPELINE_PHASES` order. ``extents`` and
    ``result_cacheable`` come from :mod:`repro.cache.invalidation`;
    ``version`` is the compile-time catalog/epoch vector the entry is
    valid for.
    """

    oql: str
    engine: str
    typecheck: bool
    key: Any  # canonical cache key: (canonical term, engine, typecheck)
    calculus: Term
    normalized: Term
    trace: NormalizationTrace
    kind: str  # 'groupby' | 'algebra' | 'interpret'
    plan: Optional[Any]
    phases: tuple[str, ...]
    extents: frozenset[str]
    result_cacheable: bool
    params: tuple[str, ...]
    version: Any
    hits: int = 0
    uncacheable_reason: Optional[str] = None


class QueryCache:
    """The two-level cache one database consults.

    Compiled entries are stored under their *canonical* key (the
    alpha-renamed term, so ``for x in Cities`` and ``for y in Cities``
    share one entry) with a text-key alias layer in front, letting the
    exact-repeat fast path skip even parsing. Result entries live in a
    separate LRU keyed by (canonical key, parameter bindings) and carry
    the version vector they were computed under.

    Thread-safe: a cache may be shared across databases and
    ``Database.run`` may be called from many threads, so every public
    method holds one reentrant lock spanning its whole
    lookup + version-check + stats-update sequence. That keeps the
    counters exact (no lost ``+=``) and the check-then-remove
    invalidation paths atomic. Lock order is QueryCache → LRUCache —
    the inner stores are only ever touched under the outer lock, so the
    eviction callback (which fires under both) cannot deadlock.
    """

    def __init__(self, config: Optional[CacheConfig] = None) -> None:
        self.config = config or CacheConfig()
        self.stats = CacheStats()
        self._lock = threading.RLock()
        clock = self.config.clock
        self._compiled = LRUCache(
            self.config.max_entries, self.config.ttl, clock, self._count_eviction
        )
        # Text aliases are bookkeeping, not cached work: their eviction
        # is silent and their capacity is tied to the entry store's.
        self._aliases = LRUCache(
            max(self.config.max_entries * 4, 4), self.config.ttl, clock
        )
        self._results = LRUCache(
            self.config.result_max_entries, self.config.ttl, clock, self._count_eviction
        )

    def _count_eviction(self, _key: Any, _value: Any) -> None:
        with self._lock:
            self.stats.evictions += 1

    # -- compilation cache ------------------------------------------------------

    def compiled_by_text(self, text_key: Any, version: Any) -> Optional[CompiledQuery]:
        """The entry for an exact query text, or None (counts a hit)."""
        with self._lock:
            canon_key = self._aliases.get(text_key)
            if canon_key is MISSING:
                return None
            return self.compiled_by_canon(canon_key, version)

    def compiled_by_canon(self, canon_key: Any, version: Any) -> Optional[CompiledQuery]:
        """The entry under a canonical key, version-checked (counts a hit)."""
        with self._lock:
            entry = self._compiled.get(canon_key)
            if entry is MISSING:
                return None
            if entry.version != version:
                self.stats.invalidations += 1
                self._compiled.remove(canon_key)
                return None
            self.stats.compile_hits += 1
            entry.hits += 1
            return entry

    def alias(self, text_key: Any, canon_key: Any) -> None:
        """Point a query text at an existing canonical entry."""
        with self._lock:
            self._aliases.put(text_key, canon_key)

    def remember(self, text_key: Any, canon_key: Any, entry: CompiledQuery) -> None:
        """Store a freshly compiled entry (counts the miss that led here)."""
        with self._lock:
            self.stats.compile_misses += 1
            self._compiled.put(canon_key, entry)
            self._aliases.put(text_key, canon_key)

    # -- result cache ----------------------------------------------------------

    def result_for(self, key: Any, versions: Any) -> tuple[bool, Any]:
        """``(hit, value)`` for one result key under current ``versions``."""
        with self._lock:
            record = self._results.get(key)
            if record is MISSING:
                self.stats.result_misses += 1
                return False, None
            value, stored_versions = record
            if stored_versions != versions:
                self.stats.invalidations += 1
                self._results.remove(key)
                self.stats.result_misses += 1
                return False, None
            self.stats.result_hits += 1
            return True, value

    def remember_result(self, key: Any, versions: Any, value: Any) -> None:
        with self._lock:
            self._results.put(key, (value, versions))

    # -- maintenance -----------------------------------------------------------

    def clear(self, reset_stats: bool = False) -> None:
        """Drop every entry (and, optionally, zero the counters)."""
        with self._lock:
            self._compiled.clear()
            self._aliases.clear()
            self._results.clear()
            if reset_stats:
                self.stats.reset()

    def sizes(self) -> dict[str, int]:
        with self._lock:
            return {
                "compiled_entries": len(self._compiled),
                "result_entries": len(self._results),
            }

    def stats_dict(self) -> dict[str, int]:
        """Counters plus current entry counts, JSON-ready."""
        with self._lock:
            out = self.stats.as_dict()
            out.update(self.sizes())
            return out


def resolve_cache(cache: Any) -> Optional[QueryCache]:
    """Normalize ``Database(cache=...)`` to a :class:`QueryCache` or None.

    ``None`` defers to the ``REPRO_CACHE`` environment flag (unset or
    falsey → caching off — the byte-for-byte-unchanged default).
    ``True``/``False`` force it; a :class:`CacheConfig` configures a
    fresh cache; an existing :class:`QueryCache` is shared as-is.
    """
    if cache is None:
        return QueryCache() if cache_env_enabled() else None
    if cache is False:
        return None
    if cache is True:
        return QueryCache()
    if isinstance(cache, CacheConfig):
        return QueryCache(cache)
    if isinstance(cache, QueryCache):
        return cache
    raise DatabaseError(
        "cache must be None, a bool, a CacheConfig or a QueryCache, "
        f"got {type(cache).__name__}"
    )
