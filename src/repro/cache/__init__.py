"""repro.cache — compiled-query cache, prepared statements, result cache.

See docs/CACHE.md. Public surface:

- :class:`QueryCache`, :class:`CacheConfig`, :class:`CacheStats` —
  the cache a :class:`~repro.db.database.Database` consults when
  constructed with ``cache=...`` or under ``REPRO_CACHE=1``;
- :class:`Prepared` — the handle :meth:`Database.prepare` returns;
- :func:`canonical_term` — the alpha-equivalence cache key;
- :func:`analyze_dependencies` — read-set and cacheability analysis.
"""

from repro.cache.core import (
    CacheConfig,
    CacheStats,
    CompiledQuery,
    LRUCache,
    QueryCache,
    cache_env_enabled,
    resolve_cache,
)
from repro.cache.invalidation import Dependencies, analyze_dependencies
from repro.cache.keys import canonical_term, literal_skeleton, param_names
from repro.cache.prepared import Prepared

__all__ = [
    "CacheConfig",
    "CacheStats",
    "CompiledQuery",
    "Dependencies",
    "LRUCache",
    "Prepared",
    "QueryCache",
    "analyze_dependencies",
    "cache_env_enabled",
    "canonical_term",
    "literal_skeleton",
    "param_names",
    "resolve_cache",
]
