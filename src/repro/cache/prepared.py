"""Prepared statements: compile once, bind ``$params`` per execution.

``db.prepare("select distinct c.name from c in Cities where c.state =
$state")`` parses, translates, (optionally) type-checks and plans the
query a single time and returns a :class:`Prepared` handle. Each
``run(state="OR")`` call binds the named parameters into a fresh
evaluator environment and executes the stored plan — no recompilation,
no string formatting, and (unlike interpolating literals) every
execution shares one compilation-cache entry, which is exactly what
lint ``QL401`` nudges literal-variant query families toward.

Parameters are ordinary free variables spelled ``$name`` in OQL; the
translator maps them to calculus variables named ``$name``, a spelling
no user identifier can collide with (``$`` is not an identifier
character). Type checking, when requested, treats every parameter as
``ANY`` unless ``param_types`` narrows it.

A ``Prepared`` is valid across catalog changes: it re-checks the
database's compile version on every run and transparently recompiles
when extents were reloaded or indexes added — the handle never serves
a stale plan. It works with or without a :class:`~repro.cache.core.
QueryCache` on the database; with one, its entry lives in (and counts
toward) the shared compilation cache, and parameterized executions
participate in the result cache keyed by their bindings.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.cache.core import CompiledQuery
from repro.errors import DatabaseError


class Prepared:
    """A compiled, parameterized query bound to one database.

    >>> from repro.db.database import demo_travel_database
    >>> db = demo_travel_database(num_cities=3, seed=1)
    >>> q = db.prepare(
    ...     "select distinct c.name from c in Cities where c.population > $min")
    >>> q.params
    ('min',)
    >>> isinstance(q.run(min=0), frozenset)
    True
    """

    def __init__(
        self,
        db: Any,
        oql: str,
        engine: str = "auto",
        typecheck: bool = False,
        param_types: Optional[dict[str, Any]] = None,
    ) -> None:
        self._db = db
        self.oql = oql
        self.engine = engine
        self.typecheck = typecheck
        self.param_types = dict(param_types or {})
        self._entry: Optional[CompiledQuery] = None
        self._ensure()  # compile eagerly so errors surface at prepare time

    @property
    def params(self) -> tuple[str, ...]:
        """The ``$`` parameter names this statement expects, sorted."""
        return self._ensure().params

    def _ensure(self) -> CompiledQuery:
        """The current entry, recompiling if the catalog moved on."""
        db = self._db
        version = db._compile_version()
        text_key = (self.oql, self.engine, self.typecheck)
        entry: Optional[CompiledQuery] = None
        if db.cache is not None:
            entry = db.cache.compiled_by_text(text_key, version)
        if entry is None and self._entry is not None and self._entry.version == version:
            entry = self._entry
        if entry is None:
            entry = db._compile_entry(
                self.oql,
                self.engine,
                self.typecheck,
                text_key,
                version,
                {},
                param_types=self.param_types,
            )
        self._entry = entry
        return entry

    def _validate(self, bindings: dict[str, Any]) -> None:
        declared = set(self._entry.params if self._entry else ())
        missing = declared - set(bindings)
        extra = set(bindings) - declared
        problems = []
        if missing:
            problems.append(f"missing parameters: {', '.join(sorted(missing))}")
        if extra:
            problems.append(f"unexpected parameters: {', '.join(sorted(extra))}")
        if problems:
            raise DatabaseError(
                f"prepared statement expects ({', '.join(sorted(declared)) or 'none'}): "
                + "; ".join(problems)
            )

    def run_detailed(self, metrics: bool = False, **params: Any):
        """Execute with the given bindings; full :class:`QueryResult`."""
        return self._db._run_prepared(self, params, metrics=metrics)

    def run(self, **params: Any) -> Any:
        """Execute with the given bindings; just the value."""
        return self.run_detailed(**params).value

    __call__ = run

    def __repr__(self) -> str:
        names = ", ".join(f"${p}" for p in self.params)
        return f"<Prepared [{names or 'no params'}] {self.oql.strip()!r}>"
