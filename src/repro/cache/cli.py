"""``python -m repro cache`` — inspect the query cache's counters.

The databases here are in-process, so there is no daemon to query;
instead the subcommand runs a small repeated demo workload (the same
travel queries the benchmarks use) against a cache-enabled database and
reports the resulting counters — the operational shape of ``stats``
without a server. ``clear`` additionally clears the cache afterwards
and shows the emptied stores (counters survive a clear; entry counts
drop to zero). ``--json`` emits the stats dictionary for CI artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Optional

#: The demo workload: a mix of shapes (joins, aggregates, group-by),
#: including an alpha-variant pair that must share one compiled entry.
WORKLOAD = (
    "select distinct c.name from c in Cities",
    "select distinct x.name from x in Cities",  # alpha-variant of the above
    "count(select h.name from c in Cities, h in c.hotels)",
    "select distinct struct(city: c.name, hotel: h.name) "
    "from c in Cities, h in c.hotels where h.stars > 2",
    "select struct(city: city, n: count(partition)) "
    "from c in Cities group by city: c.name",
)


def run_workload(repeats: int = 3):
    """A cache-enabled demo database after ``repeats`` workload passes."""
    from repro.db.database import demo_travel_database

    db = demo_travel_database(num_cities=6, seed=3)
    db.enable_cache()
    for _ in range(repeats):
        for oql in WORKLOAD:
            db.run(oql)
    return db


def main(argv: Optional[list[str]] = None, out: Callable[[str], None] = print) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro cache",
        description="Inspect query-cache counters over a demo workload.",
    )
    parser.add_argument("action", choices=("stats", "clear"))
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="workload passes before reporting (default: 3)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the stats dictionary as JSON"
    )
    args = parser.parse_args(argv)

    db = run_workload(args.repeats)
    if args.action == "clear":
        db.cache.clear()
    stats = db.cache.stats_dict()
    if args.json:
        out(
            json.dumps(
                {
                    "action": args.action,
                    "workload_queries": len(WORKLOAD),
                    "repeats": args.repeats,
                    "stats": stats,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    out(
        f"query cache after {args.repeats}x {len(WORKLOAD)}-query demo workload"
        + (" (cleared)" if args.action == "clear" else "")
    )
    out(
        f"  compile: {stats['compile_hits']} hits, "
        f"{stats['compile_misses']} misses ({stats['compiled_entries']} entries)"
    )
    out(
        f"  result:  {stats['result_hits']} hits, "
        f"{stats['result_misses']} misses ({stats['result_entries']} entries)"
    )
    out(
        f"  evictions: {stats['evictions']}  invalidations: {stats['invalidations']}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
