"""Seeded sample databases.

Two schemas used throughout the examples, tests and benchmarks:

- the paper's **travel agency**: Cities with nested sets of Hotels,
  each with a list of Rooms and a set of facilities — the exact shape
  of the paper's running OQL examples (nested collections, path
  expressions, the Portland query);
- a flat **company** schema (Departments/Employees joined on ``dno``)
  exercising classic equi-joins for the algebra benchmarks.

All generators are deterministic in their ``seed``.
"""

from __future__ import annotations

import random
from typing import Any

from repro.types.schema import Schema
from repro.types.types import TBOOL, TColl, TClass, TINT, TRecord, TSTRING
from repro.values import Bag, Record

_CITY_NAMES = (
    "Portland", "Salem", "Eugene", "Bend", "Medford", "Corvallis",
    "Astoria", "Ashland", "Hillsboro", "Gresham", "Tigard", "Beaverton",
)
_HOTEL_PREFIXES = ("Grand", "Royal", "Park", "River", "Forest", "Summit")
_HOTEL_SUFFIXES = ("Hotel", "Inn", "Lodge", "Suites", "Resort")
_FACILITIES = ("pool", "gym", "spa", "bar", "restaurant", "parking", "wifi")
_FIRST_NAMES = (
    "Ann", "Bob", "Cara", "Dan", "Eve", "Finn", "Gail", "Hugo",
    "Iris", "Jack", "Kira", "Liam", "Mona", "Nils", "Olga", "Pete",
)
_SKILLS = ("sql", "oql", "ml", "ops", "ui", "api", "qa")


def travel_schema() -> Schema:
    """The travel-agency schema (Cities extent; nested Hotels/Rooms)."""
    schema = Schema()
    room = TRecord((("beds", TINT), ("price", TINT)))
    schema.define_class(
        "Hotel",
        {
            "name": TSTRING,
            "address": TSTRING,
            "stars": TINT,
            "rooms": TColl("list", room),
            "facilities": TColl("set", TSTRING),
        },
    )
    schema.define_class(
        "City",
        {
            "name": TSTRING,
            "state": TSTRING,
            "population": TINT,
            "hotels": TColl("set", TClass("Hotel")),
            "hotel_count": TINT,
        },
        extent="Cities",
    )
    schema.define_method(
        "Hotel",
        "cheapest_room",
        lambda hotel: min(hotel["rooms"], key=lambda r: r["price"]),
        result=room,
        doc="The room with the lowest price.",
    )
    schema.define_method(
        "City",
        "has_luxury",
        lambda city: any(h["stars"] >= 5 for h in city["hotels"]),
        result=TBOOL,
        doc="True when the city has a five-star hotel.",
    )
    return schema


def make_travel_agency(
    num_cities: int = 8,
    hotels_per_city: int = 4,
    rooms_per_hotel: int = 6,
    seed: int = 0,
) -> dict[str, Any]:
    """Generate the travel database: ``{"Cities": frozenset[Record]}``.

    >>> data = make_travel_agency(num_cities=2, seed=1)
    >>> sorted(c.name for c in data["Cities"])[0]
    'Portland'
    """
    rng = random.Random(seed)
    cities = []
    for i in range(num_cities):
        base = _CITY_NAMES[i % len(_CITY_NAMES)]
        name = base if i < len(_CITY_NAMES) else f"{base}-{i // len(_CITY_NAMES)}"
        hotels = []
        for j in range(hotels_per_city):
            rooms = tuple(
                Record(beds=rng.randint(1, 4), price=rng.randint(40, 400))
                for _ in range(rooms_per_hotel)
            )
            hotels.append(
                Record(
                    name=f"{rng.choice(_HOTEL_PREFIXES)} {rng.choice(_HOTEL_SUFFIXES)} {i}-{j}",
                    address=f"{rng.randint(1, 999)} Main St, {name}",
                    stars=rng.randint(1, 5),
                    rooms=rooms,
                    facilities=frozenset(
                        rng.sample(_FACILITIES, rng.randint(1, 4))
                    ),
                )
            )
        cities.append(
            Record(
                name=name,
                state="OR",
                population=rng.randint(10_000, 700_000),
                hotels=frozenset(hotels),
                hotel_count=len(hotels),
            )
        )
    return {"Cities": frozenset(cities)}


def company_schema() -> Schema:
    """Departments/Employees with a ``dno`` foreign key."""
    schema = Schema()
    schema.define_class(
        "Department",
        {"dno": TINT, "name": TSTRING, "budget": TINT, "floor": TINT},
        extent="Departments",
    )
    schema.define_class(
        "Employee",
        {
            "name": TSTRING,
            "salary": TINT,
            "age": TINT,
            "dno": TINT,
            "skills": TColl("set", TSTRING),
        },
        extent="Employees",
        extent_monoid="bag",
    )
    schema.define_class(
        "Manager",
        {"bonus": TINT},
        superclass="Employee",
    )
    return schema


def make_company(
    num_departments: int = 10,
    num_employees: int = 100,
    seed: int = 0,
) -> dict[str, Any]:
    """Generate the company database with a bag of employees.

    >>> data = make_company(num_departments=2, num_employees=5, seed=3)
    >>> len(data["Employees"])
    5
    """
    rng = random.Random(seed)
    departments = frozenset(
        Record(
            dno=d,
            name=f"Dept-{d}",
            budget=rng.randint(100_000, 5_000_000),
            floor=rng.randint(1, 12),
        )
        for d in range(num_departments)
    )
    employees = Bag(
        Record(
            name=f"{rng.choice(_FIRST_NAMES)}-{e}",
            salary=rng.randint(30_000, 180_000),
            age=rng.randint(21, 67),
            dno=rng.randrange(num_departments),
            skills=frozenset(rng.sample(_SKILLS, rng.randint(1, 3))),
        )
        for e in range(num_employees)
    )
    return {"Departments": departments, "Employees": employees}
