"""The database facade: the whole paper as one object.

:class:`Database` wires every layer together::

    OQL text --parse--> OQL AST --translate--> calculus term
        --typecheck--> (C/I well-formedness)
        --normalize--> canonical comprehension
        --plan------> logical algebra --optimize--> physical plan
        --execute---> result (pipelined)

``run`` returns just the value; ``run_detailed`` returns every
intermediate artifact (the translated term, the normalization trace,
the optimized plan, executor statistics), which the examples and the
benchmark harness print. An ``engine="interpret"`` escape hatch runs
the normalized term on the reference evaluator instead of the algebra
— the two paths are cross-checked in the integration tests.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Literal, Optional

from repro.algebra.ops import Reduce
from repro.algebra.optimizer import Optimizer, explain as explain_plan
from repro.algebra.physical import ExecutionStats, Executor
from repro.algebra.translate import build_plan
from repro.analysis.verifier import resolve_verify, verification
from repro.cache.core import CompiledQuery, QueryCache, resolve_cache
from repro.calculus.ast import Comprehension, Term
from repro.db.catalog import Catalog
from repro.db.sample_data import (
    company_schema,
    make_company,
    make_travel_agency,
    travel_schema,
)
from repro.errors import DatabaseError, PlanError
from repro.eval.evaluator import Evaluator
from repro.monoids import BAG, LIST, SET
from repro.normalize.engine import normalize_with_trace
from repro.normalize.trace import NormalizationTrace
from repro.obs.metrics import PlanMetrics
from repro.obs.querylog import QueryLog, oql_fingerprint
from repro.obs.tracer import Tracer, TraceSpan
from repro.objects.classes import ExtentRegistry
from repro.objects.store import ObjectStore
from repro.oql.parser import parse
from repro.oql.translate import Translator
from repro.types.infer import TypeChecker
from repro.types.schema import Schema
from repro.values import Bag, Record


@dataclass
class QueryResult:
    """Everything produced while answering one query."""

    oql: str
    calculus: Term
    normalized: Term
    trace: NormalizationTrace
    plan: Optional[Reduce]
    value: Any
    stats: Optional[ExecutionStats] = None
    engine: str = "algebra"
    #: root trace span of this query (None unless tracing was on)
    span: Optional[TraceSpan] = None
    #: per-operator metrics (None unless tracing/metrics were on)
    metrics: Optional[PlanMetrics] = None
    #: cache outcome for this query, e.g. {"compile": "hit",
    #: "result": "miss"} (None unless the database had a cache)
    cache: Optional[dict[str, Any]] = None
    #: JIT compilation report, e.g. {"compiled": 3, "fallback": 1,
    #: "constructs": {"Comprehension": 1}} (None unless the JIT was on
    #: and the query ran on the algebra engine)
    jit: Optional[dict[str, Any]] = None

    def pipeline_report(self) -> str:
        """A printable record of every pipeline stage."""
        lines = [
            f"OQL:        {self.oql.strip()}",
            f"calculus:   {self.calculus}",
            f"normalized: {self.normalized}",
            f"rules:      {', '.join(self.trace.rules_fired()) or '(already canonical)'}",
            f"engine:     {self.engine}",
        ]
        if self.cache is not None:
            lines.append(
                "cache:      "
                + "  ".join(f"{k}={v}" for k, v in sorted(self.cache.items()))
            )
        if self.jit is not None:
            line = (
                f"jit:        compiled={self.jit.get('compiled', 0)}"
                f"  fallback={self.jit.get('fallback', 0)}"
            )
            constructs = self.jit.get("constructs") or {}
            if constructs:
                line += "  (" + ", ".join(
                    f"{name} x{count}" for name, count in sorted(constructs.items())
                ) + ")"
            lines.append(line)
        if self.span is not None:
            phases = self.span.phase_times_ms()
            lines.append(
                "phases:     "
                + "  ".join(f"{name}={ms:.3f}ms" for name, ms in phases.items())
            )
        if self.plan is not None:
            lines.append("plan:")
            lines.extend("  " + l for l in self.plan.render().splitlines())
        if self.stats is not None:
            lines.append(f"stats:      {self.stats.as_dict()}")
        lines.append(f"value:      {self.value!r}")
        return "\n".join(lines)


class Database:
    """An in-memory OQL database over the monoid calculus.

    >>> db = Database(travel_schema())
    >>> db.load_extents(make_travel_agency(num_cities=3, seed=1))
    >>> isinstance(db.run("count(select h.name from c in Cities, "
    ...                   "h in c.hotels)"), int)
    True
    """

    def __init__(
        self,
        schema: Optional[Schema] = None,
        cache: Any = None,
        telemetry: Any = None,
        parallel: Any = None,
        jit: Any = None,
    ) -> None:
        self.schema = schema if schema is not None else Schema()
        self.catalog = Catalog()
        self.store = ObjectStore()
        self.registry = ExtentRegistry(self.schema, self.store)
        self.functions: dict[str, Any] = {}
        self._object_extents: set[str] = set()
        self._views: dict[str, Term] = {}
        self._stats: dict[str, Any] = {}
        #: pipeline tracer; disabled by default so queries run untouched
        self.tracer = Tracer(enabled=False)
        # Per-thread tracer override (telemetry turns tracing on for
        # its own queries without mutating the shared ``tracer``, which
        # would race under concurrent query threads).
        self._tracer_local = threading.local()
        #: structured query log, enabled via :meth:`profile`
        self.query_log: Optional[QueryLog] = None
        #: query cache (compiled plans + results); None means off — the
        #: default unless ``cache=`` or ``REPRO_CACHE`` says otherwise,
        #: keeping the uncached pipeline byte-for-byte the seed's
        self.cache: Optional[QueryCache] = resolve_cache(cache)
        #: metrics registry (fleet telemetry); None means off — the
        #: default unless ``telemetry=`` / ``REPRO_TELEMETRY`` /
        #: :func:`repro.obs.telemetry.enable_telemetry` says otherwise
        self.telemetry: Optional[Any] = _resolve_telemetry_lazy(telemetry)
        #: partition-parallel execution config; None means off — the
        #: default unless ``parallel=`` / ``REPRO_PARALLEL`` says
        #: otherwise, keeping the serial pipeline byte-for-byte the
        #: seed's (same opt-in convention as cache and telemetry)
        self.parallel: Optional[Any] = _resolve_parallel_lazy(parallel)
        #: closure-compilation (JIT) config; None means off — the
        #: default unless ``jit=`` / ``REPRO_JIT`` says otherwise,
        #: keeping the interpreted hot loops byte-for-byte the seed's
        self.jit: Optional[Any] = _resolve_jit_lazy(jit)
        # Bumped whenever query *meaning* changes outside the catalog
        # (views defined, functions registered, object extents added);
        # part of the compile-version vector cache entries pin.
        self._cache_epoch = 0

    # -- loading ----------------------------------------------------------------

    def load_extent(
        self,
        name: str,
        rows: Any,
        monoid: str = "set",
        replace: bool = False,
    ) -> None:
        """Load an extent from an iterable of dicts/records.

        ``monoid`` chooses the carrier: ``set`` (default), ``bag`` or
        ``list``. Already-built collections (frozenset, Bag, tuple)
        pass through unchanged.
        """
        if isinstance(rows, (frozenset, Bag, tuple)):
            collection = rows
        else:
            converted = [_to_record(row) for row in rows]
            if monoid == "set":
                collection = SET.from_iterable(converted)
            elif monoid == "bag":
                collection = BAG.from_iterable(converted)
            elif monoid == "list":
                collection = LIST.from_iterable(converted)
            else:
                raise DatabaseError(f"extent monoid must be set/bag/list, got {monoid!r}")
        self.catalog.register_extent(name, collection, replace=replace)

    def load_extents(self, extents: dict[str, Any], replace: bool = False) -> None:
        """Load several extents (e.g. a sample-data dictionary)."""
        for name, collection in extents.items():
            self.load_extent(name, collection, replace=replace)

    def load_objects(self, extent: str, class_name: str, rows: Any) -> None:
        """Load an extent in *object mode*: rows become OIDs (section 4.2).

        Queries navigate the objects transparently (paths dereference);
        update programs may mutate them in place.
        """
        if not self.schema.has_class(class_name):
            raise DatabaseError(f"unknown class {class_name!r} for object extent")
        for row in rows:
            record = _to_record(row)
            self.registry.create(class_name, dict(record))
        self._object_extents.add(extent)
        self._cache_epoch += 1

    def create_index(self, extent: str, attribute: str) -> None:
        """Build a hash index usable by the optimizer."""
        self.catalog.create_index(extent, attribute, self.store)

    def register_function(self, name: str, fn: Any) -> None:
        """Expose a Python function to OQL queries."""
        self.functions[name] = fn
        self._cache_epoch += 1

    # -- core pipeline -----------------------------------------------------------------

    def evaluator(self) -> Evaluator:
        """A fresh evaluator bound to the current extents and schema."""
        bindings: dict[str, Any] = dict(self.catalog.extents())
        for extent in self._object_extents:
            bindings[extent] = self.registry.extent(extent)
        return Evaluator(
            bindings,
            functions=self.functions,
            methods=self.schema.all_methods(),
            store=self.store,
        )

    def define(self, name: str, oql: str) -> Term:
        """Define a named query (an ODMG ``define name as query`` view).

        Views are pure macro expansion into the calculus: any later
        query mentioning ``name`` has the view's term substituted in,
        and normalization then fuses the view body into the query —
        views cost nothing at run time. Views may reference previously
        defined views.
        """
        if self.catalog.has_extent(name) or name in self._object_extents:
            raise DatabaseError(f"cannot define view {name!r}: extent exists")
        term = self.translate(oql)
        self._views[name] = term
        self._cache_epoch += 1
        return term

    def translate(self, oql: str) -> Term:
        """OQL text -> calculus term with views expanded."""
        from repro.calculus.traversal import substitute_many

        term = Translator(self.schema).translate(parse(oql))
        if self._views:
            term = substitute_many(term, dict(self._views))
        return term

    def typecheck(self, term: Term) -> None:
        """Run the static checker (C/I restriction and type errors)."""
        TypeChecker(self.schema).check(term, self._extent_types())

    def lint(self, oql: str) -> list:
        """Statically analyze a query; returns all :class:`Diagnostic`\\ s.

        Unlike :meth:`typecheck` this never raises on a bad query —
        syntax errors, C/I violations, unbound names, and the
        semantic/performance lints all come back as one batch with
        stable ``QLxxx`` codes and source spans. See ``docs/LINT.md``.
        """
        from repro.lint.linter import Linter
        from repro.types.infer import type_of_value

        names = set(self.schema.extents())
        names.update(self.catalog.extents())
        names.update(self._object_extents)
        names.update(self._views)
        names.update(self.functions)
        types = self._extent_types()
        for extent, collection in self.catalog.extents().items():
            if extent not in types:
                try:
                    types[extent] = type_of_value(collection)
                except Exception:
                    pass
        return Linter(
            self.schema, known_names=names, name_types=types
        ).lint_source(oql)

    def run(
        self,
        oql: str,
        engine: Literal["auto", "algebra", "interpret"] = "auto",
        typecheck: bool = False,
        strict: bool = False,
        verify: Optional[bool] = None,
    ) -> Any:
        """Answer an OQL query; returns just the value.

        With ``strict=True`` the query is linted first and a
        :class:`~repro.errors.LintError` carrying every error-severity
        diagnostic is raised before any evaluation happens.

        With ``verify=True`` every normalization-rule fire and optimizer
        rewrite is checked against the soundness invariants of
        :mod:`repro.analysis`, raising
        :class:`~repro.errors.VerificationError` on the first unsound
        step. ``None`` (the default) defers to the ``REPRO_VERIFY``
        environment flag; ``False`` forces verification off.
        """
        return self.run_detailed(
            oql, engine=engine, typecheck=typecheck, strict=strict, verify=verify
        ).value

    def run_detailed(
        self,
        oql: str,
        engine: Literal["auto", "algebra", "interpret"] = "auto",
        typecheck: bool = False,
        strict: bool = False,
        metrics: bool = False,
        verify: Optional[bool] = None,
    ) -> QueryResult:
        """Answer an OQL query, keeping every intermediate artifact.

        With tracing enabled (:meth:`profile` / ``tracer.enabled``) the
        result additionally carries the phase span tree and per-operator
        metrics; ``metrics=True`` forces operator metrics collection for
        this one call even while tracing is off (EXPLAIN ANALYZE does
        this). ``verify`` is :meth:`run`'s rewrite-verification switch
        (it covers the whole pipeline, including the re-normalization
        inside plan building). With everything off, the pipeline is
        exactly the seed's.
        """
        if self.telemetry is None:
            return self._run_detailed_plain(
                oql, engine, typecheck, strict, metrics, verify
            )
        return self._with_telemetry(
            lambda: self._run_detailed_plain(
                oql, engine, typecheck, strict, metrics, verify
            )
        )

    def _run_detailed_plain(
        self,
        oql: str,
        engine: Literal["auto", "algebra", "interpret"],
        typecheck: bool,
        strict: bool,
        metrics: bool,
        verify: Optional[bool],
    ) -> QueryResult:
        """The seed's ``run_detailed`` body, telemetry-free."""
        with self._active_tracer().span(
            "query", oql_sha256=oql_fingerprint(oql)
        ) as qspan:
            with verification(verify):
                result = self._run_pipeline(oql, engine, typecheck, strict, metrics)
        if qspan is not None:
            result.span = qspan
            if self.query_log is not None:
                self.query_log.record(result, qspan)
        return result

    def _active_tracer(self) -> Tracer:
        """This thread's tracer: the telemetry override when one is
        installed for the current query, else the shared tracer."""
        override = getattr(self._tracer_local, "tracer", None)
        return override if override is not None else self.tracer

    def _executor(
        self, evaluator: Evaluator, plan_metrics: Optional[PlanMetrics]
    ) -> Executor:
        """The executor for one query: the seed's serial
        :class:`Executor` unless parallelism is enabled, in which case a
        :class:`~repro.parallel.ParallelExecutor` (which itself falls
        back to the identical serial path whenever the plan shape or
        config rules fan-out out)."""
        if self.parallel is None:
            return Executor(
                evaluator,
                self.catalog.index_mappings(),
                metrics=plan_metrics,
                jit=self.jit,
            )
        from repro.parallel import ParallelExecutor

        tracer = self._active_tracer()
        return ParallelExecutor(
            evaluator,
            self.catalog.index_mappings(),
            metrics=plan_metrics,
            config=self.parallel,
            tracer=tracer if tracer.enabled else None,
            jit=self.jit,
        )

    def _with_telemetry(self, thunk: Any) -> QueryResult:
        """Run one query thunk with telemetry recording around it.

        Timing uses ``time.perf_counter`` (never wall clock). When
        session tracing is off, a throwaway enabled tracer is installed
        thread-locally so the phase histograms still get a span tree —
        the shared ``self.tracer`` is never touched, keeping concurrent
        queries race-free. The registry is also *activated* for the
        dynamic extent of the query so deep layers (query log, rewrite
        verifier) can record without being handed it explicitly.
        """
        from repro.obs.telemetry.instrument import (
            record_query_error,
            record_query_result,
        )
        from repro.obs.telemetry.registry import activation

        registry = self.telemetry
        override = None
        if not self.tracer.enabled:
            override = Tracer(enabled=True)
            self._tracer_local.tracer = override
        start = time.perf_counter()
        try:
            with activation(registry):
                result = thunk()
        except Exception as err:
            record_query_error(registry, err, time.perf_counter() - start)
            raise
        finally:
            if override is not None:
                self._tracer_local.tracer = None
        record_query_result(registry, self, result, time.perf_counter() - start)
        return result

    def _run_pipeline(
        self,
        oql: str,
        engine: Literal["auto", "algebra", "interpret"],
        typecheck: bool,
        strict: bool,
        metrics: bool,
    ) -> QueryResult:
        if self.cache is not None:
            return self._run_pipeline_cached(oql, engine, typecheck, strict, metrics)
        tracer = self._active_tracer()
        if strict:
            with tracer.span("lint"):
                errors = [d for d in self.lint(oql) if d.is_error]
            if errors:
                from repro.errors import LintError

                raise LintError(errors)
        with tracer.span("parse"):
            node = parse(oql)
        with tracer.span("translate"):
            from repro.calculus.traversal import substitute_many

            calculus = Translator(self.schema).translate(node)
            if self._views:
                calculus = substitute_many(calculus, dict(self._views))
        if typecheck:
            with tracer.span("typecheck"):
                self.typecheck(calculus)
        with tracer.span("normalize"):
            normalized, trace = normalize_with_trace(calculus)
        evaluator = self.evaluator()
        plan_metrics = PlanMetrics() if (metrics or tracer.enabled) else None

        plan: Optional[Reduce] = None
        stats: Optional[ExecutionStats] = None
        used_engine = "interpret"

        if engine in ("auto", "algebra") and not self._views:
            nest_result = self._try_group_by_plan(node, evaluator, plan_metrics)
            if nest_result is not None:
                plan, value, stats, jit_report = nest_result
                return QueryResult(
                    oql,
                    calculus,
                    normalized,
                    trace,
                    plan,
                    value,
                    stats,
                    "algebra",
                    metrics=plan_metrics,
                    jit=jit_report,
                )
        if engine in ("auto", "algebra") and isinstance(normalized, Comprehension):
            try:
                # Re-normalize with the planning rule set (no merge splits),
                # which keeps the term a single plannable comprehension.
                with tracer.span("plan"):
                    logical = build_plan(normalized, pre_normalize=True)
                with tracer.span("optimize"):
                    plan = self._optimize(logical)
                jit_report = self._jit_precompile(plan)
                executor = self._executor(evaluator, plan_metrics)
                with tracer.span("execute"):
                    value = executor.execute(plan)
                stats = executor.stats
                used_engine = "algebra"
                return QueryResult(
                    oql,
                    calculus,
                    normalized,
                    trace,
                    plan,
                    value,
                    stats,
                    used_engine,
                    metrics=plan_metrics,
                    jit=jit_report,
                )
            except PlanError:
                if engine == "algebra":
                    raise
        with tracer.span("execute"):
            value = evaluator.evaluate(normalized)
        return QueryResult(
            oql, calculus, normalized, trace, plan, value, stats, used_engine
        )

    def _try_group_by_plan(
        self,
        node: Any,
        evaluator: Evaluator,
        plan_metrics: Optional[PlanMetrics] = None,
    ) -> Optional[tuple[Reduce, Any, ExecutionStats, Optional[dict[str, Any]]]]:
        """A single-pass Nest plan for group-by selects (see
        :mod:`repro.algebra.groupby`); None when the shape doesn't apply."""
        from repro.algebra.groupby import build_group_by_plan
        from repro.oql.ast import Select

        if not isinstance(node, Select) or not node.group_by:
            return None
        tracer = self._active_tracer()
        try:
            with tracer.span("plan"):
                plan = build_group_by_plan(node, Translator(self.schema))
            if resolve_verify(None):
                from repro.analysis.plancheck import verify_plan

                verify_plan(plan, phase="group-by-plan")
            jit_report = self._jit_precompile(plan)
            executor = self._executor(evaluator, plan_metrics)
            with tracer.span("execute"):
                value = executor.execute(plan)
            return plan, value, executor.stats, jit_report
        except PlanError:
            return None

    def _jit_precompile(self, plan: Optional[Reduce]) -> Optional[dict[str, Any]]:
        """Pre-compile a plan's expressions (the pipeline's ``jit``
        phase); None (and no span) when the JIT is off."""
        if self.jit is None or plan is None:
            return None
        from repro.jit.plan import precompile_plan

        with self._active_tracer().span("jit"):
            return precompile_plan(plan)

    def _jit_ensure(self, plan: Optional[Reduce]) -> Optional[dict[str, Any]]:
        """The execute-time (re)compilation guard for cached plans: a
        cache hit skips the jit span, but the nodes may have been
        evicted-and-rebuilt or never compiled (entry cached before the
        JIT was enabled). Idempotent and cheap when already compiled."""
        if self.jit is None or plan is None:
            return None
        from repro.jit.plan import precompile_plan

        return precompile_plan(plan)

    # -- cached pipeline --------------------------------------------------------
    #
    # With a cache attached, _run_pipeline branches here instead of the
    # seed path above. The contract: identical values for every query,
    # with the front half (parse..optimize) memoized per canonical
    # alpha-form and, where sound, whole results memoized under a
    # version vector. docs/CACHE.md specifies keying and invalidation.

    def enable_cache(self, cache: Any = True) -> QueryCache:
        """Attach a query cache (``True``, a CacheConfig or a QueryCache)."""
        resolved = resolve_cache(cache)
        if resolved is None:
            resolved = resolve_cache(True)
        self.cache = resolved
        return resolved

    def disable_cache(self) -> None:
        """Detach the cache; the pipeline reverts to the uncached path."""
        self.cache = None

    def enable_telemetry(self, telemetry: Any = True):
        """Attach a metrics registry (``True`` = the shared process
        default, or an explicit :class:`MetricsRegistry` of your own).

        While attached, every :meth:`run`/:meth:`run_detailed` and
        prepared execution updates the registry's counters, latency
        histograms and hot-query table; export with
        :func:`repro.obs.telemetry.prometheus_text` (and friends) or
        serve them with ``python -m repro metrics serve``.
        """
        from repro.obs.telemetry.registry import resolve_telemetry

        resolved = resolve_telemetry(telemetry)
        if resolved is None:
            resolved = resolve_telemetry(True)
        self.telemetry = resolved
        return resolved

    def disable_telemetry(self) -> None:
        """Detach telemetry; queries revert to the exact seed path."""
        self.telemetry = None

    def enable_parallel(self, parallel: Any = True):
        """Turn on partition-parallel execution.

        ``True`` gives the default config (4 workers), an ``int`` sets
        the worker count, a
        :class:`~repro.parallel.ParallelConfig` tunes everything
        (morsel size, minimum rows, the serial-equivalence ``verify``
        switch). Results are guaranteed identical to serial execution —
        see ``docs/PARALLEL.md`` for the determinism argument per
        monoid property.
        """
        from repro.parallel import resolve_parallel

        resolved = resolve_parallel(parallel)
        if resolved is None:
            resolved = resolve_parallel(True)
        self.parallel = resolved
        return resolved

    def disable_parallel(self) -> None:
        """Revert to the seed's serial executor."""
        self.parallel = None

    def enable_jit(self, jit: Any = True):
        """Turn on closure compilation of hot-path expressions.

        ``True`` gives the defaults; a
        :class:`~repro.jit.JITConfig` tunes the per-row differential
        ``verify`` check. While on, every Select predicate, Join key,
        Unnest path, Nest key and Reduce head runs as a compiled Python
        closure instead of re-interpreting its AST per row; constructs
        outside the compilable fragment fall back to the reference
        interpreter expression-by-expression. Values are guaranteed
        identical either way — see ``docs/JIT.md``.
        """
        from repro.jit import resolve_jit

        resolved = resolve_jit(jit)
        if resolved is None:
            resolved = resolve_jit(True)
        self.jit = resolved
        return resolved

    def disable_jit(self) -> None:
        """Revert to the seed's interpreted hot loops."""
        self.jit = None

    def prepare(
        self,
        oql: str,
        engine: Literal["auto", "algebra", "interpret"] = "auto",
        typecheck: bool = False,
        param_types: Optional[dict[str, Any]] = None,
    ):
        """Compile once, execute many: a prepared statement.

        ``oql`` may name parameters as ``$name``; the returned
        :class:`~repro.cache.prepared.Prepared` binds them per call::

            q = db.prepare("select distinct c.name from c in Cities "
                           "where c.state = $state")
            q.run(state="OR")

        Works with or without a cache attached; with one, the compiled
        entry is shared with equivalent ad-hoc queries.
        """
        from repro.cache.prepared import Prepared

        return Prepared(
            self, oql, engine=engine, typecheck=typecheck, param_types=param_types
        )

    def _compile_version(self) -> tuple:
        """What compiled entries are valid against: catalog + epoch."""
        return (self.catalog.version, self._cache_epoch)

    def _result_versions(self, entry: CompiledQuery) -> tuple:
        """The version vector guarding one result-cache entry."""
        return (
            entry.version,
            tuple(
                (name, self.catalog.extent_version(name))
                for name in sorted(entry.extents)
            ),
            self.store.version,
        )

    def _known_extent_names(self) -> set[str]:
        return set(self.catalog.extents()) | set(self._object_extents)

    def _run_pipeline_cached(
        self,
        oql: str,
        engine: Literal["auto", "algebra", "interpret"],
        typecheck: bool,
        strict: bool,
        metrics: bool,
    ) -> QueryResult:
        tracer = self._active_tracer()
        if strict:
            # Lint is a per-call request, honored on hits and misses
            # alike — a cached plan must not smuggle past strict mode.
            with tracer.span("lint"):
                errors = [d for d in self.lint(oql) if d.is_error]
            if errors:
                from repro.errors import LintError

                raise LintError(errors)
        version = self._compile_version()
        text_key = (oql, engine, typecheck)
        info: dict[str, Any] = {}
        with tracer.span("cache"):
            entry = self.cache.compiled_by_text(text_key, version)
        if entry is not None:
            info["compile"] = "hit"
            tracer.mark_cached(*entry.phases)
        else:
            entry = self._compile_entry(oql, engine, typecheck, text_key, version, info)
        return self._finish_cached(oql, entry, engine, {}, metrics, info)

    def _compile_entry(
        self,
        oql: str,
        engine: str,
        typecheck: bool,
        text_key: Any,
        version: tuple,
        info: dict[str, Any],
        param_types: Optional[dict[str, Any]] = None,
        skip_group_by: bool = False,
    ) -> CompiledQuery:
        """Run the pipeline front half, consulting/updating the cache.

        Parse and translate always run (the canonical key needs the
        term); an alpha-equivalent entry then short-circuits the rest.
        """
        from repro.cache.invalidation import analyze_dependencies
        from repro.cache.keys import canonical_term, param_names
        from repro.obs.tracer import COMPILE_PHASES

        cache = self.cache
        tracer = self._active_tracer()
        with tracer.span("parse"):
            node = parse(oql)
        with tracer.span("translate"):
            from repro.calculus.traversal import substitute_many

            calculus = Translator(self.schema).translate(node)
            if self._views:
                calculus = substitute_many(calculus, dict(self._views))
        canon_key = (canonical_term(calculus), engine, typecheck)
        if cache is not None and not skip_group_by:
            entry = cache.compiled_by_canon(canon_key, version)
            if entry is not None:
                # An alpha-variant of a cached query: alias the text so
                # the next repeat skips parse/translate too.
                cache.alias(text_key, canon_key)
                info["compile"] = "hit"
                tracer.mark_cached(
                    *[p for p in entry.phases if p not in ("parse", "translate")]
                )
                return entry
        info["compile"] = "miss"
        params = param_names(calculus)
        if typecheck:
            with tracer.span("typecheck"):
                self._typecheck_with_params(calculus, params, param_types)
        with tracer.span("normalize"):
            normalized, trace = normalize_with_trace(calculus)
        ran = {"parse", "translate", "normalize"}
        if typecheck:
            ran.add("typecheck")
        kind = "interpret"
        plan: Optional[Reduce] = None
        if (
            not skip_group_by
            and engine in ("auto", "algebra")
            and not self._views
        ):
            plan = self._build_group_by_plan(node)
            if plan is not None:
                kind = "groupby"
                ran.add("plan")
        if (
            kind == "interpret"
            and engine in ("auto", "algebra")
            and isinstance(normalized, Comprehension)
        ):
            try:
                with tracer.span("plan"):
                    logical = build_plan(normalized, pre_normalize=True)
                with tracer.span("optimize"):
                    plan = self._optimize(logical)
                kind = "algebra"
                ran.update(("plan", "optimize"))
            except PlanError:
                if engine == "algebra":
                    raise
                plan = None
        if self.jit is not None and plan is not None:
            with tracer.span("jit"):
                from repro.jit.plan import precompile_plan

                precompile_plan(plan)
            ran.add("jit")
        deps = analyze_dependencies(
            kind, plan, normalized, self._known_extent_names(), self.functions
        )
        entry = CompiledQuery(
            oql=oql,
            engine=engine,
            typecheck=typecheck,
            key=canon_key,
            calculus=calculus,
            normalized=normalized,
            trace=trace,
            kind=kind,
            plan=plan,
            phases=tuple(p for p in COMPILE_PHASES if p in ran),
            extents=deps.extents,
            result_cacheable=deps.cacheable,
            params=params,
            version=version,
            uncacheable_reason=deps.reason,
        )
        if cache is not None:
            cache.remember(text_key, canon_key, entry)
        return entry

    def _typecheck_with_params(
        self,
        term: Term,
        params: tuple[str, ...],
        param_types: Optional[dict[str, Any]] = None,
    ) -> None:
        """Type-check with ``$`` parameters bound (``ANY`` by default)."""
        env = self._extent_types()
        if params:
            from repro.types.types import ANY

            for name in params:
                env["$" + name] = (param_types or {}).get(name, ANY)
        TypeChecker(self.schema).check(term, env)

    def _build_group_by_plan(self, node: Any) -> Optional[Reduce]:
        """Build (and verify) a Nest plan without executing it."""
        from repro.algebra.groupby import build_group_by_plan
        from repro.oql.ast import Select

        if not isinstance(node, Select) or not node.group_by:
            return None
        try:
            with self._active_tracer().span("plan"):
                plan = build_group_by_plan(node, Translator(self.schema))
            if resolve_verify(None):
                from repro.analysis.plancheck import verify_plan

                verify_plan(plan, phase="group-by-plan")
            return plan
        except PlanError:
            return None

    def _finish_cached(
        self,
        oql: str,
        entry: CompiledQuery,
        engine: str,
        params: dict[str, Any],
        metrics: bool,
        info: dict[str, Any],
    ) -> QueryResult:
        """Result-cache consultation, execution, and result assembly."""
        cache = self.cache
        tracer = self._active_tracer()
        plan_metrics = PlanMetrics() if (metrics or tracer.enabled) else None
        result_key = None
        versions = None
        if cache is not None and cache.config.results and entry.result_cacheable:
            if metrics:
                # EXPLAIN ANALYZE needs real per-operator actuals;
                # serving a stored value would report an empty plan.
                info["result"] = "bypass"
            else:
                try:
                    result_key = (entry.key, tuple(sorted(params.items())))
                    hash(result_key)
                except TypeError:
                    result_key = None
                if result_key is not None:
                    versions = self._result_versions(entry)
                    with tracer.span("cache"):
                        hit, value = cache.result_for(result_key, versions)
                    if hit:
                        info["result"] = "hit"
                        tracer.mark_cached("execute")
                        used_engine = (
                            "algebra" if entry.kind in ("groupby", "algebra") else "interpret"
                        )
                        return QueryResult(
                            oql,
                            entry.calculus,
                            entry.normalized,
                            entry.trace,
                            entry.plan,
                            value,
                            None,
                            used_engine,
                            metrics=plan_metrics,
                            cache=info,
                        )
                    info["result"] = "miss"
        entry, plan, value, stats, used_engine, jit_report = self._execute_entry(
            entry, engine, params, plan_metrics
        )
        if (
            result_key is not None
            and versions is not None
            and cache is not None
            and entry.result_cacheable
        ):
            cache.remember_result(result_key, versions, value)
        return QueryResult(
            oql,
            entry.calculus,
            entry.normalized,
            entry.trace,
            plan,
            value,
            stats,
            used_engine,
            metrics=plan_metrics,
            cache=info,
            jit=jit_report,
        )

    def _execute_entry(
        self,
        entry: CompiledQuery,
        engine: str,
        params: dict[str, Any],
        plan_metrics: Optional[PlanMetrics],
    ) -> tuple[
        CompiledQuery,
        Optional[Reduce],
        Any,
        Optional[ExecutionStats],
        str,
        Optional[dict[str, Any]],
    ]:
        """Execute a compiled entry, mirroring the seed's fallback chain.

        The seed discovers plan failures at execution time (its try
        blocks wrap execute); a cached plan must degrade the same way:
        group-by plan fails → recompile without group-by; algebra plan
        fails → demote to the interpreter (unless engine forces
        algebra). The replacement entry overwrites the stale one.
        """
        evaluator = self.evaluator()
        for name, value in params.items():
            evaluator.bind_global("$" + name, value)
        tracer = self._active_tracer()
        if entry.kind in ("groupby", "algebra"):
            jit_report = self._jit_ensure(entry.plan)
            executor = self._executor(evaluator, plan_metrics)
            try:
                with tracer.span("execute"):
                    value = executor.execute(entry.plan)
                return entry, entry.plan, value, executor.stats, "algebra", jit_report
            except PlanError:
                if entry.kind == "groupby":
                    entry = self._compile_entry(
                        entry.oql,
                        entry.engine,
                        entry.typecheck,
                        (entry.oql, entry.engine, entry.typecheck),
                        entry.version,
                        {},
                        skip_group_by=True,
                    )
                    return self._execute_entry(entry, engine, params, plan_metrics)
                if engine == "algebra":
                    raise
                entry = self._demote_entry(entry)
        with tracer.span("execute"):
            value = evaluator.evaluate(entry.normalized)
        return entry, None, value, None, "interpret", None

    def _demote_entry(self, entry: CompiledQuery) -> CompiledQuery:
        """Rewrite an entry in place to interpreter execution."""
        from repro.cache.invalidation import analyze_dependencies

        entry.kind = "interpret"
        entry.plan = None
        entry.phases = tuple(p for p in entry.phases if p not in ("plan", "optimize"))
        deps = analyze_dependencies(
            "interpret",
            None,
            entry.normalized,
            self._known_extent_names(),
            self.functions,
        )
        entry.extents = deps.extents
        entry.result_cacheable = deps.cacheable
        entry.uncacheable_reason = deps.reason
        return entry

    def _run_prepared(
        self, prepared: Any, params: dict[str, Any], metrics: bool = False
    ) -> QueryResult:
        """Execute a :class:`~repro.cache.prepared.Prepared` statement."""
        if self.telemetry is None:
            return self._run_prepared_plain(prepared, params, metrics)
        return self._with_telemetry(
            lambda: self._run_prepared_plain(prepared, params, metrics)
        )

    def _run_prepared_plain(
        self, prepared: Any, params: dict[str, Any], metrics: bool
    ) -> QueryResult:
        with self._active_tracer().span(
            "query", oql_sha256=oql_fingerprint(prepared.oql)
        ) as qspan:
            entry = prepared._ensure()
            prepared._validate(params)
            info: dict[str, Any] = {"compile": "prepared"}
            result = self._finish_cached(
                prepared.oql, entry, prepared.engine, params, metrics, info
            )
        if qspan is not None:
            result.span = qspan
            if self.query_log is not None:
                self.query_log.record(result, qspan)
        return result

    def run_calculus(self, term: Term) -> Any:
        """Evaluate a hand-built calculus term against this database."""
        return self.evaluator().evaluate(term)

    def analyze(self) -> dict[str, Any]:
        """Collect per-extent/attribute statistics for the cost model.

        After ``analyze()``, ``explain`` uses measured equality
        selectivities (``1/distinct``) and collection fan-outs instead
        of fixed defaults. Re-run after reloading extents.
        """
        from repro.db.stats import StatisticsCollector

        self._stats = StatisticsCollector(self.catalog, self.store).collect()
        return self._stats

    def profile(
        self,
        enabled: bool = True,
        slow_ms: Optional[float] = None,
        sink: Optional[Any] = None,
        path: Optional[str] = None,
        max_bytes: Optional[int] = None,
        backups: int = 3,
    ) -> None:
        """Toggle observability: pipeline tracing plus the query log.

        While on, every :meth:`run`/:meth:`run_detailed` records a phase
        span tree and per-operator metrics (on the :class:`QueryResult`)
        and appends one JSON entry to :attr:`query_log` — streamed to
        ``sink`` (a ``str -> None`` callable) when given, and/or
        appended to the file at ``path`` with size-based rotation
        (``max_bytes`` per file, ``backups`` old files kept; see
        :class:`~repro.obs.querylog.QueryLog`). ``slow_ms`` marks
        entries whose total time crossed the threshold. Off again
        restores the untraced pipeline exactly.
        """
        self.tracer.enabled = enabled
        self.query_log = (
            QueryLog(
                sink=sink,
                slow_ms=slow_ms,
                path=path,
                max_bytes=max_bytes,
                backups=backups,
            )
            if enabled
            else None
        )

    def explain(self, oql: str, analyze: bool = False) -> str:
        """The optimized plan with cardinality estimates.

        With ``analyze=True`` the query is *executed* with per-operator
        metrics on, and every node is rendered with its estimated vs
        actual cardinality, q-error and wall time — plus the pipeline's
        phase timings and a cost-model accuracy summary.
        """
        if analyze:
            from repro.obs.explain import render_explain

            return render_explain(self.explain_data(oql, analyze=True))
        normalized, _ = normalize_with_trace(self.translate(oql))
        if not isinstance(normalized, Comprehension):
            return f"(not a comprehension: {normalized})"
        plan = self._optimize(build_plan(normalized, pre_normalize=True))
        return explain_plan(plan, self.catalog.extent_sizes(), self._stats)

    def explain_data(self, oql: str, analyze: bool = False) -> dict[str, Any]:
        """The EXPLAIN [ANALYZE] document as JSON-ready dicts.

        Shape (see ``docs/OBSERVABILITY.md``): ``oql``, ``engine``,
        ``analyzed``, a nested ``plan`` tree with per-node
        ``estimated_rows`` (and, when analyzed, ``actual_rows``,
        ``q_error``, ``time_ms``…), ``phases_ms`` and a ``summary``
        block with the cost model's mean/max q-error. Queries the
        algebra cannot plan come back with ``plan: None`` and a
        ``note`` instead of raising.
        """
        from repro.obs.explain import plan_to_dict, summarize

        doc: dict[str, Any] = {"oql": oql.strip(), "analyzed": analyze}
        if not analyze:
            normalized, _ = normalize_with_trace(self.translate(oql))
            if not isinstance(normalized, Comprehension):
                doc.update(
                    engine="interpret",
                    plan=None,
                    note=f"not a comprehension: {normalized}",
                )
                return doc
            try:
                plan = self._optimize(build_plan(normalized, pre_normalize=True))
            except PlanError as err:
                doc.update(engine="interpret", plan=None, note=str(err))
                return doc
            doc["engine"] = "algebra"
            doc["plan"] = plan_to_dict(
                plan, self.catalog.extent_sizes(), self._stats
            )
            return doc

        # ANALYZE: run the full pipeline under a dedicated tracer so the
        # document has phase timings even when session tracing is off.
        saved = self.tracer
        self.tracer = Tracer(enabled=True)
        try:
            result = self.run_detailed(oql, metrics=True)
        finally:
            self.tracer = saved
        doc["engine"] = result.engine
        if result.cache is not None:
            doc["cache"] = dict(result.cache)
            if self.cache is not None:
                doc["cache"]["stats"] = self.cache.stats.as_dict()
        if result.span is not None:
            doc["total_ms"] = round(result.span.duration_ms, 3)
            doc["phases_ms"] = {
                name: round(ms, 3)
                for name, ms in result.span.phase_times_ms().items()
            }
        if result.plan is None or result.metrics is None:
            doc["plan"] = None
            doc["note"] = "query ran on the reference interpreter (no algebra plan)"
            return doc
        doc["plan"] = plan_to_dict(
            result.plan, self.catalog.extent_sizes(), self._stats, result.metrics
        )
        doc["summary"] = summarize(doc["plan"])
        return doc

    def _optimize(self, plan: Reduce) -> Reduce:
        return Optimizer(
            self.catalog.index_keys(), self.catalog.extent_sizes()
        ).optimize(plan)

    def _extent_types(self) -> dict[str, Any]:
        types = {}
        for extent in self.schema.extents():
            types[extent] = self.schema.extent_type(extent)
        return types


def _resolve_telemetry_lazy(telemetry: Any):
    """``Database(telemetry=...)`` -> registry or None, without
    importing the telemetry package on the default-off path.

    The package is only pulled in when the caller passed something,
    the ``REPRO_TELEMETRY`` flag is set, or the registry module is
    already loaded (someone called ``enable_telemetry()``)."""
    if telemetry is None:
        import os
        import sys

        if "repro.obs.telemetry.registry" not in sys.modules and os.environ.get(
            "REPRO_TELEMETRY", ""
        ).strip().lower() in ("", "0", "false", "off", "no"):
            return None
    from repro.obs.telemetry.registry import resolve_telemetry

    return resolve_telemetry(telemetry)


def _resolve_parallel_lazy(parallel: Any):
    """``Database(parallel=...)`` -> :class:`ParallelConfig` or None,
    without importing :mod:`repro.parallel` on the default-off path."""
    if parallel is None:
        import os

        if os.environ.get("REPRO_PARALLEL", "").strip().lower() in (
            "",
            "0",
            "false",
            "off",
            "no",
        ):
            return None
    from repro.parallel import resolve_parallel

    return resolve_parallel(parallel)


def _resolve_jit_lazy(jit: Any):
    """``Database(jit=...)`` -> :class:`JITConfig` or None, without
    importing :mod:`repro.jit` on the default-off path."""
    if jit is None:
        import os

        if os.environ.get("REPRO_JIT", "").strip().lower() in (
            "",
            "0",
            "false",
            "off",
            "no",
        ):
            return None
    from repro.jit import resolve_jit

    return resolve_jit(jit)


def _to_record(row: Any) -> Any:
    """Deep-convert a dict row into an immutable Record value."""
    if isinstance(row, Record):
        return row
    if isinstance(row, dict):
        return Record({k: _to_record(v) for k, v in row.items()})
    if isinstance(row, list):
        return tuple(_to_record(v) for v in row)
    if isinstance(row, set):
        return frozenset(_to_record(v) for v in row)
    return row


def demo_travel_database(
    num_cities: int = 8,
    hotels_per_city: int = 4,
    rooms_per_hotel: int = 6,
    seed: int = 0,
) -> Database:
    """A ready-to-query travel-agency database (the paper's examples)."""
    db = Database(travel_schema())
    db.load_extents(
        make_travel_agency(num_cities, hotels_per_city, rooms_per_hotel, seed)
    )
    return db


def demo_company_database(
    num_departments: int = 10,
    num_employees: int = 100,
    seed: int = 0,
) -> Database:
    """A ready-to-query company database (join benchmarks)."""
    db = Database(company_schema())
    db.load_extents(make_company(num_departments, num_employees, seed))
    return db
