"""Database facade, catalog, indexes and sample data."""

from repro.db.catalog import Catalog
from repro.db.database import (
    Database,
    QueryResult,
    demo_company_database,
    demo_travel_database,
)
from repro.db.index import HashIndex
from repro.db.persist import (
    dump_database,
    load_database,
    restore_database,
    save_database,
)
from repro.db.stats import (
    AttributeStats,
    ExtentStats,
    StatisticsCollector,
    fanout_of,
    selectivity_of,
)
from repro.db.sample_data import (
    company_schema,
    make_company,
    make_travel_agency,
    travel_schema,
)

__all__ = [
    "AttributeStats",
    "Catalog",
    "ExtentStats",
    "StatisticsCollector",
    "fanout_of",
    "selectivity_of",
    "Database",
    "HashIndex",
    "QueryResult",
    "company_schema",
    "demo_company_database",
    "dump_database",
    "load_database",
    "restore_database",
    "save_database",
    "demo_travel_database",
    "make_company",
    "make_travel_agency",
    "travel_schema",
]
