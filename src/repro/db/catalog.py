"""The catalog: named extents, their sizes and their indexes."""

from __future__ import annotations

from typing import Any, Iterator

from repro.db.index import HashIndex
from repro.errors import DatabaseError
from repro.eval.builtins import runtime_monoid_of
from repro.objects.store import ObjectStore


class Catalog:
    """Extent namespace plus index bookkeeping for one database.

    The catalog also carries the version counters the query cache keys
    on: a per-extent counter (bumped when that extent is re-registered)
    and one structure :attr:`version` covering everything a compiled
    plan depends on — extent membership/sizes and the set of available
    indexes. Both are monotonic; comparisons are for equality only.
    """

    def __init__(self) -> None:
        self._extents: dict[str, Any] = {}
        self._indexes: dict[tuple[str, str], HashIndex] = {}
        self._versions: dict[str, int] = {}
        self._version = 0

    # -- versions --------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic structure counter (extents loaded, indexes built)."""
        return self._version

    def extent_version(self, name: str) -> int:
        """Monotonic reload counter for one extent (0 if never loaded)."""
        return self._versions.get(name, 0)

    # -- extents ---------------------------------------------------------------

    def register_extent(self, name: str, collection: Any, replace: bool = False) -> None:
        if name in self._extents and not replace:
            raise DatabaseError(f"extent {name!r} already loaded")
        runtime_monoid_of(collection)  # raises if not a collection
        self._extents[name] = collection
        self._versions[name] = self._versions.get(name, 0) + 1
        self._version += 1
        # Rebuild any indexes declared on this extent.
        for (extent, attribute), index in list(self._indexes.items()):
            if extent == name:
                self._indexes[(extent, attribute)] = HashIndex.build(
                    extent, attribute, self.iterate_extent(extent), index_store(index)
                )

    def extent(self, name: str) -> Any:
        try:
            return self._extents[name]
        except KeyError:
            raise DatabaseError(
                f"unknown extent {name!r} (loaded: {', '.join(sorted(self._extents))})"
            ) from None

    def has_extent(self, name: str) -> bool:
        return name in self._extents

    def extents(self) -> dict[str, Any]:
        return dict(self._extents)

    def extent_sizes(self) -> dict[str, int]:
        """Element counts per extent, for the plan cost model."""
        sizes = {}
        for name, collection in self._extents.items():
            sizes[name] = runtime_monoid_of(collection).length(collection)
        return sizes

    def iterate_extent(self, name: str) -> Iterator[Any]:
        collection = self.extent(name)
        return runtime_monoid_of(collection).iterate(collection)

    # -- indexes -----------------------------------------------------------------

    def create_index(
        self, extent: str, attribute: str, store: ObjectStore | None = None
    ) -> HashIndex:
        """Build (or rebuild) a hash index on ``extent.attribute``."""
        if not self.has_extent(extent):
            raise DatabaseError(f"cannot index unknown extent {extent!r}")
        index = HashIndex.build(
            extent, attribute, self.iterate_extent(extent), store
        )
        index._store = store  # kept for rebuilds on reload
        self._indexes[(extent, attribute)] = index
        self._version += 1
        return index

    def index_keys(self) -> set[tuple[str, str]]:
        return set(self._indexes)

    def index_mappings(self) -> dict[tuple[str, str], dict[Any, list[Any]]]:
        """(extent, attribute) -> raw mapping, for the executor."""
        return {key: index.as_mapping() for key, index in self._indexes.items()}


def index_store(index: HashIndex) -> ObjectStore | None:
    return getattr(index, "_store", None)
