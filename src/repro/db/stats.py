"""Catalog statistics: per-extent and per-attribute cardinalities.

The optimizer's cost model defaults to fixed guesses (selectivity 0.25,
fan-out 4). Collected statistics replace those guesses with data:

- extent sizes (element counts);
- per-attribute distinct counts, giving equality selectivity
  ``1 / distinct(attr)``;
- average fan-out of collection-valued attributes (the paper's nested
  sets: ``c.hotels``), giving Unnest cardinality.

Statistics are a snapshot: call :meth:`StatisticsCollector.collect`
again after reloading extents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.db.catalog import Catalog
from repro.eval.builtins import runtime_monoid_of
from repro.objects.store import Obj, ObjectStore
from repro.values import Bag, OrderedSet, Record, Vector


@dataclass
class AttributeStats:
    """Statistics for one attribute of one extent."""

    distinct: int = 0
    non_null: int = 0
    #: average element count when the attribute is collection-valued
    avg_fanout: Optional[float] = None

    def equality_selectivity(self) -> float:
        """Estimated fraction of rows matching ``attr = const``."""
        if self.distinct <= 0:
            return 1.0
        return 1.0 / self.distinct


@dataclass
class ExtentStats:
    """Statistics for one extent."""

    size: int = 0
    attributes: dict[str, AttributeStats] = field(default_factory=dict)


class StatisticsCollector:
    """Scans a catalog and produces :class:`ExtentStats` per extent.

    >>> from repro.db.catalog import Catalog
    >>> from repro.values import Record
    >>> catalog = Catalog()
    >>> catalog.register_extent("Xs", (Record(k=1, tags=(1, 2)),
    ...                                Record(k=1, tags=(3,))))
    >>> stats = StatisticsCollector(catalog).collect()
    >>> stats["Xs"].size
    2
    >>> stats["Xs"].attributes["k"].distinct
    1
    >>> stats["Xs"].attributes["tags"].avg_fanout
    1.5
    """

    def __init__(self, catalog: Catalog, store: Optional[ObjectStore] = None) -> None:
        self.catalog = catalog
        self.store = store

    def collect(self) -> dict[str, ExtentStats]:
        out: dict[str, ExtentStats] = {}
        for name in self.catalog.extents():
            out[name] = self._collect_extent(name)
        return out

    def _collect_extent(self, name: str) -> ExtentStats:
        stats = ExtentStats()
        distinct_values: dict[str, set] = {}
        fanouts: dict[str, list[int]] = {}
        for element in self.catalog.iterate_extent(name):
            stats.size += 1
            record = element
            if isinstance(record, Obj) and self.store is not None:
                record = self.store.deref(record)
            if not isinstance(record, Record):
                continue
            for attribute, value in record.items():
                attr = stats.attributes.setdefault(attribute, AttributeStats())
                if value is None:
                    continue
                attr.non_null += 1
                distinct_values.setdefault(attribute, set()).add(value)
                if isinstance(value, (tuple, frozenset, Bag, OrderedSet, Vector)):
                    fanouts.setdefault(attribute, []).append(
                        runtime_monoid_of(value).length(value)
                    )
        for attribute, values in distinct_values.items():
            stats.attributes[attribute].distinct = len(values)
        for attribute, counts in fanouts.items():
            stats.attributes[attribute].avg_fanout = sum(counts) / len(counts)
        return stats


def selectivity_of(
    stats: dict[str, ExtentStats], extent: str, attribute: str
) -> Optional[float]:
    """Equality selectivity of ``extent.attribute``, if known."""
    extent_stats = stats.get(extent)
    if extent_stats is None:
        return None
    attr = extent_stats.attributes.get(attribute)
    if attr is None or attr.distinct == 0:
        return None
    return attr.equality_selectivity()


def fanout_of(
    stats: dict[str, ExtentStats], extent: str, attribute: str
) -> Optional[float]:
    """Average fan-out of a collection attribute, if known."""
    extent_stats = stats.get(extent)
    if extent_stats is None:
        return None
    attr = extent_stats.attributes.get(attribute)
    if attr is None:
        return None
    return attr.avg_fanout
