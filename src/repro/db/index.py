"""Hash indexes over extents.

A :class:`HashIndex` maps an attribute value to the list of extent
elements carrying it. The optimizer turns ``Scan + Select(attr = const)``
into an :class:`repro.algebra.ops.IndexScan` when an index exists; the
executor then probes these structures.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import DatabaseError
from repro.objects.store import Obj, ObjectStore
from repro.values import Record


class HashIndex:
    """An equality index on one attribute of an extent.

    >>> rows = [Record(name="a", k=1), Record(name="b", k=2), Record(name="c", k=1)]
    >>> idx = HashIndex.build("rows", "k", rows)
    >>> sorted(r.name for r in idx.lookup(1))
    ['a', 'c']
    >>> idx.lookup(9)
    []
    """

    def __init__(self, extent: str, attribute: str) -> None:
        self.extent = extent
        self.attribute = attribute
        self._buckets: dict[Any, list[Any]] = {}

    @classmethod
    def build(
        cls,
        extent: str,
        attribute: str,
        elements: Iterable[Any],
        store: ObjectStore | None = None,
    ) -> "HashIndex":
        """Index ``elements`` by ``attribute`` (dereferencing objects)."""
        index = cls(extent, attribute)
        for element in elements:
            index.insert(element, store)
        return index

    def insert(self, element: Any, store: ObjectStore | None = None) -> None:
        record = element
        if isinstance(record, Obj):
            if store is None:
                raise DatabaseError("indexing objects requires the object store")
            record = store.deref(record)
        if not isinstance(record, Record):
            raise DatabaseError(
                f"index on {self.extent}.{self.attribute}: elements must be "
                f"records, got {type(element).__name__}"
            )
        if self.attribute not in record:
            raise DatabaseError(
                f"index on {self.extent}.{self.attribute}: element lacks the attribute"
            )
        self._buckets.setdefault(record[self.attribute], []).append(element)

    def lookup(self, key: Any) -> list[Any]:
        """All elements whose attribute equals ``key``."""
        return list(self._buckets.get(key, ()))

    def as_mapping(self) -> dict[Any, list[Any]]:
        """The raw key -> elements mapping (used by the plan executor)."""
        return self._buckets

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())
