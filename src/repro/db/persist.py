"""JSON persistence for databases.

Serializes every library value with a type tag so arbitrary nesting
round-trips losslessly:

=========  ======================================
carrier    encoding
=========  ======================================
scalar     itself
Record     ``{"$": "record", "fields": {...}}``
tuple      ``{"$": "list", "items": [...]}``
frozenset  ``{"$": "set", "items": [...]}`` (canonical order)
Bag        ``{"$": "bag", "items": [[elem, count], ...]}``
OrderedSet ``{"$": "oset", "items": [...]}``
Vector     ``{"$": "vector", "size": n, "default": d, "slots": ...}``
=========  ======================================

``save_database``/``load_database`` persist a :class:`Database`'s
extents and index declarations (the schema is code, so the loader takes
it as an argument, like migrations do).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional, Union

from repro.db.database import Database
from repro.errors import DatabaseError
from repro.types.schema import Schema
from repro.values import Bag, OrderedSet, Record, Vector, canonical_sorted


def encode_value(value: Any) -> Any:
    """Encode one library value as JSON-compatible data."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Record):
        return {"$": "record", "fields": {k: encode_value(v) for k, v in value.items()}}
    if isinstance(value, tuple):
        return {"$": "list", "items": [encode_value(v) for v in value]}
    if isinstance(value, frozenset):
        return {"$": "set", "items": [encode_value(v) for v in canonical_sorted(value)]}
    if isinstance(value, Bag):
        items = [
            [encode_value(element), count]
            for element, count in sorted(
                value.counts().items(), key=lambda kv: str(kv[0])
            )
        ]
        return {"$": "bag", "items": items}
    if isinstance(value, OrderedSet):
        return {"$": "oset", "items": [encode_value(v) for v in value]}
    if isinstance(value, Vector):
        return {
            "$": "vector",
            "size": len(value),
            "default": encode_value(value.default),
            "slots": [[i, encode_value(v)] for i, v in value.occupied()],
        }
    raise DatabaseError(f"cannot persist value of type {type(value).__name__}")


def decode_value(data: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if isinstance(data, dict) and "$" in data:
        kind = data["$"]
        if kind == "record":
            return Record({k: decode_value(v) for k, v in data["fields"].items()})
        if kind == "list":
            return tuple(decode_value(v) for v in data["items"])
        if kind == "set":
            return frozenset(decode_value(v) for v in data["items"])
        if kind == "bag":
            return Bag.from_counts(
                {decode_value(element): count for element, count in data["items"]}
            )
        if kind == "oset":
            return OrderedSet(decode_value(v) for v in data["items"])
        if kind == "vector":
            return Vector(
                data["size"],
                default=decode_value(data["default"]),
                slots={i: decode_value(v) for i, v in data["slots"]},
            )
        raise DatabaseError(f"unknown persisted value tag {kind!r}")
    raise DatabaseError(f"cannot decode persisted data: {data!r}")


def dump_database(db: Database) -> dict:
    """The database's persistable state as plain JSON data."""
    return {
        "format": "repro-db",
        "version": 1,
        "extents": {
            name: encode_value(collection)
            for name, collection in db.catalog.extents().items()
        },
        "indexes": sorted(list(key) for key in db.catalog.index_keys()),
    }


def restore_database(data: dict, schema: Optional[Schema] = None) -> Database:
    """Rebuild a database from :func:`dump_database` output."""
    if data.get("format") != "repro-db":
        raise DatabaseError("not a persisted repro database")
    if data.get("version") != 1:
        raise DatabaseError(f"unsupported database version {data.get('version')!r}")
    db = Database(schema)
    for name, encoded in data["extents"].items():
        db.load_extent(name, decode_value(encoded))
    for extent, attribute in data.get("indexes", []):
        db.create_index(extent, attribute)
    return db


def save_database(db: Database, path: Union[str, Path]) -> None:
    """Write the database to a JSON file."""
    payload = dump_database(db)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)


def load_database(path: Union[str, Path], schema: Optional[Schema] = None) -> Database:
    """Read a database from a JSON file written by :func:`save_database`."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    return restore_database(payload, schema)
