"""Source spans: line/column ranges pointing back into query text.

A :class:`Span` is a half-open range over 1-based line/column positions
in the source an AST node came from. The OQL lexer produces spans for
tokens, the parser merges them onto OQL syntax nodes, and the
translator copies them onto calculus terms, so that every diagnostic
the static analyzer (:mod:`repro.lint`) emits can point at the exact
piece of OQL that caused it.

Spans are deliberately *not* dataclass fields of the AST nodes: terms
compare and hash structurally (normalization memoizes on them), so the
span rides along in the instance ``__dict__`` via :func:`set_span` and
never participates in equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional


@dataclass(frozen=True)
class Span:
    """A contiguous source region, 1-based, end-exclusive in columns.

    >>> str(Span(2, 8, 2, 12))
    'line 2, column 8'
    """

    line: int
    column: int
    end_line: int
    end_column: int

    def __str__(self) -> str:
        return f"line {self.line}, column {self.column}"

    @property
    def location(self) -> tuple[int, int]:
        return (self.line, self.column)

    def merge(self, other: "Span") -> "Span":
        """The smallest span covering both ``self`` and ``other``."""
        start = min((self.line, self.column), (other.line, other.column))
        end = max((self.end_line, self.end_column), (other.end_line, other.end_column))
        return Span(start[0], start[1], end[0], end[1])

    def shifted(self, line_offset: int, first_line_column_offset: int = 0) -> "Span":
        """The same span re-based into an enclosing document.

        Used when a file holds several ``;``-separated queries: each is
        linted on its own, then its spans are shifted back to absolute
        file positions.
        """

        def move(line: int, column: int) -> tuple[int, int]:
            if line == 1:
                return line + line_offset, column + first_line_column_offset
            return line + line_offset, column

        line, column = move(self.line, self.column)
        end_line, end_column = move(self.end_line, self.end_column)
        return Span(line, column, end_line, end_column)


def point_span(line: int, column: int, width: int = 1) -> Span:
    """A span covering ``width`` columns starting at ``line:column``."""
    return Span(line, column, line, column + max(width, 1))


def set_span(node: Any, span: Optional[Span]) -> Any:
    """Attach ``span`` to a (possibly frozen) AST node; returns the node.

    Works on frozen dataclasses because the span bypasses the dataclass
    machinery entirely — it lives in the instance ``__dict__`` and is
    excluded from ``__eq__``/``__hash__``.
    """
    if span is not None:
        object.__setattr__(node, "span", span)
    return node


def span_of(node: Any) -> Optional[Span]:
    """The span attached to ``node``, or None."""
    return getattr(node, "span", None)
