"""Order-preserving partitioning of materialized binding streams.

A partition is a contiguous slice of the input sequence, so
concatenating the partitions in index order reproduces the input
exactly — the property the non-commutative combine path relies on
(:meth:`repro.monoids.base.Monoid.combine_partials`).
"""

from __future__ import annotations

from typing import Optional, Sequence, TypeVar

T = TypeVar("T")


def partition_rows(
    rows: Sequence[T],
    max_workers: int,
    morsel_size: Optional[int] = None,
) -> list[Sequence[T]]:
    """Split ``rows`` into contiguous, non-empty, in-order partitions.

    Without ``morsel_size`` the split is as even as possible across at
    most ``max_workers`` partitions; with it, fixed-size morsels (the
    last one short). Never returns empty partitions: fewer rows than
    workers (or than one morsel) simply yields fewer partitions —
    including the degenerate cases of an empty input (``[]``) and a
    requested partition count far above the element count.

    >>> partition_rows([1, 2, 3, 4, 5], 2)
    [[1, 2, 3], [4, 5]]
    >>> partition_rows([1, 2], 8)
    [[1], [2]]
    >>> partition_rows([], 4)
    []
    >>> partition_rows([1, 2, 3, 4, 5], 2, morsel_size=2)
    [[1, 2], [3, 4], [5]]
    """
    n = len(rows)
    if n == 0:
        return []
    if morsel_size is not None:
        size = max(1, morsel_size)
        return [rows[i : i + size] for i in range(0, n, size)]
    count = max(1, min(max_workers, n))
    base, extra = divmod(n, count)
    parts: list[Sequence[T]] = []
    start = 0
    for i in range(count):
        size = base + (1 if i < extra else 0)
        parts.append(rows[start : start + size])
        start += size
    return parts
