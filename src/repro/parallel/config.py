"""Configuration and enablement for the partition-parallel engine.

Mirrors the cache/telemetry opt-in convention exactly: parallelism is
**off by default** and the serial pipeline is byte-identical to the
seed. It turns on via ``Database(parallel=...)``,
``Database.enable_parallel()`` or the ``REPRO_PARALLEL`` environment
flag (an integer value sets the worker count: ``REPRO_PARALLEL=8``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import DatabaseError

_FALSEY = ("", "0", "false", "off", "no")


def parallel_env_enabled() -> bool:
    """Is the ``REPRO_PARALLEL`` environment flag set (and not falsey)?"""
    return os.environ.get("REPRO_PARALLEL", "").strip().lower() not in _FALSEY


@dataclass
class ParallelConfig:
    """Tuning knobs for one :class:`~repro.parallel.ParallelExecutor`.

    ``max_workers`` bounds the thread pool; ``min_partition_rows`` is
    the scan size below which partitioning is not worth the thread
    hand-off and the engine silently stays serial (set it to 0 in tests
    to force tiny extents through the parallel path). ``morsel_size``
    fixes the rows-per-partition explicitly; ``None`` divides the scan
    evenly across ``max_workers``. ``verify`` controls the
    serial-vs-parallel result-equivalence check: ``None`` defers to
    ``REPRO_VERIFY`` / :func:`repro.analysis.verifier.verification`,
    matching the rewrite verifier's convention.
    """

    max_workers: int = 4
    min_partition_rows: int = 64
    morsel_size: Optional[int] = None
    verify: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise DatabaseError("parallel max_workers must be at least 1")
        if self.min_partition_rows < 0:
            raise DatabaseError("parallel min_partition_rows must be >= 0")
        if self.morsel_size is not None and self.morsel_size < 1:
            raise DatabaseError("parallel morsel_size must be at least 1")


def config_from_env() -> ParallelConfig:
    """A :class:`ParallelConfig` from ``REPRO_PARALLEL``.

    A bare truthy value (``1``, ``true``, ``on``) gives the defaults; an
    integer above 1 additionally sets ``max_workers``.
    """
    raw = os.environ.get("REPRO_PARALLEL", "").strip()
    try:
        workers = int(raw)
    except ValueError:
        workers = 0
    if workers > 1:
        return ParallelConfig(max_workers=workers)
    return ParallelConfig()


def resolve_parallel(parallel: Any) -> Optional[ParallelConfig]:
    """Normalize ``Database(parallel=...)`` to a config or None.

    ``None`` defers to the ``REPRO_PARALLEL`` environment flag (unset
    or falsey → parallelism off, the byte-for-byte-unchanged default).
    ``True``/``False`` force it; an ``int`` sets the worker count; a
    :class:`ParallelConfig` is used as-is.
    """
    if parallel is None:
        return config_from_env() if parallel_env_enabled() else None
    if parallel is False:
        return None
    if parallel is True:
        return ParallelConfig()
    if isinstance(parallel, int):
        return ParallelConfig(max_workers=parallel)
    if isinstance(parallel, ParallelConfig):
        return parallel
    raise DatabaseError(
        "parallel must be None, a bool, an int worker count or a "
        f"ParallelConfig, got {type(parallel).__name__}"
    )
