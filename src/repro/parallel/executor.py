"""The partition-parallel executor.

The paper's observation (section 2) makes this engine sound: a
``Reduce`` is a monoid homomorphism, and ``merge`` is associative, so
folding each partition of the input independently and recombining the
partials with :meth:`~repro.monoids.base.Monoid.combine_partials`
equals the serial fold — *provided* the partials are combined in
partition-index order. Commutative monoids additionally allow the
partials to be combined as they complete.

Execution model:

1. Walk the plan spine from the ``Reduce`` down to the driving
   :class:`~repro.algebra.ops.Scan` (through ``Select``/``Unnest``
   wrappers and the left input of ``Join``\\ s). An unsupported spine
   (e.g. an ``IndexScan`` leaf) falls back to serial execution.
2. Materialize the driving scan's bindings in the coordinating thread
   and split them into contiguous, order-preserving partitions
   (:func:`repro.parallel.partition.partition_rows`).
3. Prepare shared state for spine ``Join``\\ s once: hash tables are
   built up front (the key evaluation itself fanned out over
   partitions of the build side, buckets concatenated in partition
   order), loop-join right sides materialized once.
4. Rebuild the spine per partition with the scan replaced by a
   :class:`_MaterializedScan` and run each pipeline
   (filter → map → partial ``Reduce``) on a ``ThreadPoolExecutor``
   worker with its own :class:`~repro.algebra.physical.ExecutionStats`.
5. Combine partials with the target monoid's ``combine_partials`` —
   index order for non-commutative monoids, completion order for
   commutative ones — and fold the workers' stats back into the
   query's block.

``Nest`` (group-by) parallelizes as partitioned partial groupings:
each worker groups its partition into per-key partial carriers, the
coordinator merges them per key in partition-index order, and the
outer fold then runs over the merged groups in canonical key order —
the same order the serial operator emits.

Per-operator metrics compose with the fan-out: each worker collects a
private :class:`~repro.obs.metrics.PlanMetrics` over its rebuilt spine
and the coordinator folds the blocks back onto the *original* plan
nodes (a lock-step walk of both spines), so ``EXPLAIN ANALYZE`` and
telemetry see the same tree they would serially — with ``invocations``
honestly reporting one stream opening per partition.

Serial fallbacks (always value-identical): one worker, too few rows
(``min_partition_rows``), or an unsupported spine. With ``verify`` on,
every parallel execution is re-run serially and checked with
:func:`repro.analysis.verifier.check_parallel_equivalence`.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterator, Optional

from repro.algebra.ops import Join, Nest, PlanNode, Reduce, Scan, SelectOp, Unnest
from repro.algebra.physical import Executor
from repro.monoids import CollectionMonoid, Monoid
from repro.parallel.config import ParallelConfig
from repro.parallel.partition import partition_rows

#: Spine rebuild: maps the partition's materialized scan to the rebuilt
#: plan fragment feeding the partial fold.
Rebuild = Callable[[PlanNode], PlanNode]


@dataclass(frozen=True, eq=False)
class _MaterializedScan(PlanNode):
    """A scan whose bindings were already produced (and counted) by the
    coordinating thread; workers replay them without re-counting."""

    rows: tuple[dict[str, Any], ...]
    source: Scan

    def columns(self) -> frozenset[str]:
        return self.source.columns()

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        return f"{pad}MaterializedScan {self.source.var} ({len(self.rows)} rows)"


@dataclass(frozen=True, eq=False)
class _PrebuiltHashJoin(PlanNode):
    """A hash join whose build side was prepared once by the
    coordinator; each partition probes the shared (read-only) table."""

    left: PlanNode
    join: Join
    table: dict[Any, list[dict[str, Any]]]

    def columns(self) -> frozenset[str]:
        return self.join.columns()

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left,)

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        return f"{pad}PrebuiltHashJoin\n{self.left.render(indent + 1)}"


@dataclass(frozen=True, eq=False)
class _PrebuiltLoopJoin(PlanNode):
    """A nested-loop join whose right side was materialized once."""

    left: PlanNode
    join: Join
    rows: tuple[dict[str, Any], ...]

    def columns(self) -> frozenset[str]:
        return self.join.columns()

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left,)

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        return f"{pad}PrebuiltLoopJoin\n{self.left.render(indent + 1)}"


class _PartitionExecutor(Executor):
    """An :class:`Executor` that additionally understands the internal
    prebuilt/materialized nodes. One instance per worker, so its
    ``stats`` block is single-threaded (merged by the coordinator)."""

    def _dispatch(self, node: PlanNode) -> Iterator[dict[str, Any]]:
        if isinstance(node, _MaterializedScan):
            # The coordinator counted rows_scanned at materialization.
            yield from node.rows
        elif isinstance(node, _PrebuiltHashJoin):
            yield from self._probe_prebuilt(node)
        elif isinstance(node, _PrebuiltLoopJoin):
            yield from self._loop_prebuilt(node)
        else:
            yield from super()._dispatch(node)

    def _probe_prebuilt(self, node: _PrebuiltHashJoin) -> Iterator[dict[str, Any]]:
        join = node.join
        if self.jit is not None:
            # Compiled against the *original* Join node, so every worker
            # sharing the prebuilt table reuses one set of closures.
            left_fns, _, residual_fn = self._join_fns(join)
            rt = self._rt
            for left_binding in self._iter(node.left):
                key = tuple(fn(left_binding, rt) for fn in left_fns)
                for right_binding in node.table.get(key, ()):
                    merged = {**left_binding, **right_binding}
                    if residual_fn is not None and not residual_fn(merged, rt):
                        continue
                    self.stats.rows_joined += 1
                    yield merged
            return
        for left_binding in self._iter(node.left):
            key = tuple(self._eval(k, left_binding) for k in join.left_keys)
            for right_binding in node.table.get(key, ()):
                merged = {**left_binding, **right_binding}
                if join.residual is not None and not self._eval(join.residual, merged):
                    continue
                self.stats.rows_joined += 1
                yield merged

    def _loop_prebuilt(self, node: _PrebuiltLoopJoin) -> Iterator[dict[str, Any]]:
        join = node.join
        if self.jit is not None:
            _, _, residual_fn = self._join_fns(join)
            rt = self._rt
            for left_binding in self._iter(node.left):
                for right_binding in node.rows:
                    merged = {**left_binding, **right_binding}
                    if residual_fn is not None and not residual_fn(merged, rt):
                        continue
                    self.stats.rows_joined += 1
                    yield merged
            return
        for left_binding in self._iter(node.left):
            for right_binding in node.rows:
                merged = {**left_binding, **right_binding}
                if join.residual is not None and not self._eval(join.residual, merged):
                    continue
                self.stats.rows_joined += 1
                yield merged


class ParallelExecutor(_PartitionExecutor):
    """Drop-in :class:`Executor` that fans ``Reduce`` out over
    partitions when the plan shape and configuration allow it.

    ``tracer`` (optional) receives one attached span per partition so
    traced queries show the fan-out; ``last_mode`` records how the most
    recent ``execute`` ran (``"parallel"`` or ``"serial"``) for tests
    and diagnostics. Evaluation through the shared evaluator is
    read-only, so workers share it safely.
    """

    def __init__(
        self,
        evaluator,
        indexes=None,
        metrics=None,
        config: Optional[ParallelConfig] = None,
        tracer=None,
        jit=None,
    ) -> None:
        super().__init__(evaluator, indexes, metrics, jit=jit)
        self.config = config or ParallelConfig()
        self.tracer = tracer
        self.last_mode = "serial"

    # -- the parallel reduce ---------------------------------------------------

    def _reduce(self, plan: Reduce) -> Any:
        monoid = self.evaluator.resolve_monoid(plan.monoid, self.evaluator.global_env)
        if self.config.max_workers <= 1:
            self.last_mode = "serial"
            return self._fold_plan(plan, monoid, self._iter(plan.child))
        value, mode = self._maybe_parallel(plan, monoid)
        self.last_mode = mode
        if mode == "parallel":
            from repro.analysis.verifier import resolve_verify

            if resolve_verify(self.config.verify):
                from repro.analysis.verifier import check_parallel_equivalence

                reference = Executor(self.evaluator, self.indexes)
                check_parallel_equivalence(plan, reference.execute(plan), value)
        return value

    def _maybe_parallel(self, plan: Reduce, monoid: Monoid) -> tuple[Any, str]:
        child = plan.child
        nest = child if isinstance(child, Nest) else None
        spine_root = nest.child if nest is not None else child
        prepared = self._prepare_spine(spine_root)
        if prepared is None:
            return self._fold_plan(plan, monoid, self._iter(child)), "serial"
        rebuild, scan = prepared
        source = self._eval(scan.source, {})
        rows = tuple(self._bindings_of(source, scan.var, scan.index_var))
        self.stats.rows_scanned += len(rows)
        partitions = partition_rows(
            rows, self.config.max_workers, self.config.morsel_size
        )
        if len(rows) < self.config.min_partition_rows or len(partitions) <= 1:
            rebuilt: PlanNode = rebuild(_MaterializedScan(rows, scan))
            original: PlanNode = child
            if nest is not None:
                rebuilt = replace(nest, child=rebuilt)
            # Run through a single in-thread "worker" so that, with
            # per-operator metrics on, the rebuilt nodes' blocks can be
            # folded back onto the original plan nodes the snapshot
            # walks.
            worker = self._make_worker()
            value = worker._fold_plan(plan, monoid, worker._iter(rebuilt))
            self.stats.merge_from(worker.stats)
            if self.metrics is not None and worker.metrics is not None:
                self._pair_merge(original, rebuilt, worker.metrics)
            return value, "serial"
        if nest is not None:
            return (
                self._parallel_nest(plan, monoid, nest, rebuild, scan, partitions),
                "parallel",
            )
        return self._parallel_fold(plan, monoid, rebuild, scan, partitions), "parallel"

    def _make_worker(self) -> _PartitionExecutor:
        """A private executor for one partition: its own stats block
        and (when the query is instrumented) its own PlanMetrics."""
        metrics = None
        if self.metrics is not None:
            from repro.obs.metrics import PlanMetrics

            metrics = PlanMetrics()
        return _PartitionExecutor(
            self.evaluator, self.indexes, metrics=metrics, jit=self.jit
        )

    def _pair_merge(self, original: PlanNode, rebuilt: PlanNode, worker_metrics) -> None:
        """Fold a worker's per-operator counters (keyed by the rebuilt
        partition nodes) into the parent's blocks for the corresponding
        *original* plan nodes, walking both spines in lockstep."""
        while True:
            block = worker_metrics.get(rebuilt)
            if block is not None:
                self.metrics.for_node(original).merge_from(block)
            if isinstance(rebuilt, _MaterializedScan):
                return
            if isinstance(rebuilt, (_PrebuiltHashJoin, _PrebuiltLoopJoin)):
                original = original.left
                rebuilt = rebuilt.left
            elif isinstance(rebuilt, (SelectOp, Unnest, Nest)):
                original = original.child
                rebuilt = rebuilt.child
            else:
                return

    def _prepare_spine(
        self, node: PlanNode
    ) -> Optional[tuple[Rebuild, Scan]]:
        """``(rebuild, driving_scan)`` for a partitionable spine, else None.

        Shared join state (hash tables, materialized right sides) is
        prepared here, exactly once, on the way back up a successful
        walk — ``rebuild`` closures only assemble per-partition nodes.
        """
        if isinstance(node, Scan):
            return (lambda repl: repl), node
        if isinstance(node, (SelectOp, Unnest)):
            prepared = self._prepare_spine(node.child)
            if prepared is None:
                return None
            inner, scan = prepared
            return (lambda repl, _n=node, _r=inner: replace(_n, child=_r(repl))), scan
        if isinstance(node, Join):
            prepared = self._prepare_spine(node.left)
            if prepared is None:
                return None
            inner, scan = prepared
            if node.left_keys:
                table = self._build_hash_table(node)
                return (
                    lambda repl, _n=node, _r=inner, _t=table: _PrebuiltHashJoin(
                        _r(repl), _n, _t
                    )
                ), scan
            right_rows = tuple(self._iter(node.right))
            return (
                lambda repl, _n=node, _r=inner, _rows=right_rows: _PrebuiltLoopJoin(
                    _r(repl), _n, _rows
                )
            ), scan
        return None

    def _build_hash_table(self, join: Join) -> dict[Any, list[dict[str, Any]]]:
        """Build the join's hash table once, fanning the key evaluation
        out over partitions of the build side.

        Buckets are concatenated in partition-index order, so each
        bucket lists its rows in exactly the order the serial build
        would — probe outputs stay deterministic.
        """
        right_rows = tuple(self._iter(join.right))
        self.stats.hash_builds += len(right_rows)
        if self.metrics is not None:
            self.metrics.for_node(join).hash_builds += len(right_rows)
        partitions = partition_rows(
            right_rows, self.config.max_workers, self.config.morsel_size
        )
        table: dict[Any, list[dict[str, Any]]] = {}
        if self.jit is not None:
            right_fns = self._join_fns(join)[1]
            rt = self._rt

            def key_of(rb: dict[str, Any]) -> tuple:
                return tuple(fn(rb, rt) for fn in right_fns)

        else:

            def key_of(rb: dict[str, Any]) -> tuple:
                return tuple(self._eval(k, rb) for k in join.right_keys)

        if len(partitions) <= 1 or len(right_rows) < self.config.min_partition_rows:
            for right_binding in right_rows:
                table.setdefault(key_of(right_binding), []).append(right_binding)
            return table

        def keyed(part: Any) -> list[tuple[Any, dict[str, Any]]]:
            return [(key_of(rb), rb) for rb in part]

        with ThreadPoolExecutor(
            max_workers=min(self.config.max_workers, len(partitions))
        ) as pool:
            for pairs in pool.map(keyed, partitions):
                for key, right_binding in pairs:
                    table.setdefault(key, []).append(right_binding)
        return table

    def _run_partition(
        self,
        index: int,
        part: Any,
        rebuild: Rebuild,
        scan: Scan,
        fold: Callable[[_PartitionExecutor, PlanNode], Any],
    ) -> tuple[int, Any, _PartitionExecutor, PlanNode, float, float]:
        """One worker task: rebuild the spine over this partition's rows
        and fold it with a private executor. Returns
        ``(index, value, worker, rebuilt_child, start, duration)``."""
        child = rebuild(_MaterializedScan(tuple(part), scan))
        worker = self._make_worker()
        start = time.perf_counter()
        value = fold(worker, child)
        duration = time.perf_counter() - start
        return index, value, worker, child, start, duration

    def _fan_out(
        self,
        partitions: list,
        rebuild: Rebuild,
        scan: Scan,
        fold: Callable[[_PartitionExecutor, PlanNode], Any],
        ordered: bool,
    ) -> tuple[list[tuple[int, Any, _PartitionExecutor, PlanNode, float, float]], int]:
        """Run every partition on the pool.

        ``ordered=True`` returns results in partition-index order (the
        non-commutative requirement); ``ordered=False`` returns them in
        completion order, which commutative combining may exploit.
        """
        workers = min(self.config.max_workers, len(partitions))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(self._run_partition, i, part, rebuild, scan, fold)
                for i, part in enumerate(partitions)
            ]
            if ordered:
                outs = [f.result() for f in futures]
            else:
                outs = []
                pending = set(futures)
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    outs.extend(f.result() for f in done)
        return outs, workers

    def _record_fan_out(
        self,
        outs: list[tuple[int, Any, _PartitionExecutor, PlanNode, float, float]],
        workers: int,
        original: PlanNode,
    ) -> None:
        """Fold worker stats (and per-operator metrics blocks, keyed to
        ``original``'s spine) back in; attach per-partition trace spans."""
        for index, _value, worker, child, start, duration in sorted(
            outs, key=lambda out: out[0]
        ):
            self.stats.merge_from(worker.stats)
            if self.metrics is not None and worker.metrics is not None:
                self._pair_merge(original, child, worker.metrics)
            if self.tracer is not None:
                self.tracer.attach(
                    f"partition[{index}]",
                    start,
                    duration,
                    rows=worker.stats.rows_reduced,
                )
        self.stats.partitions = len(outs)
        self.stats.parallel_workers = workers

    def _parallel_fold(
        self,
        plan: Reduce,
        monoid: Monoid,
        rebuild: Rebuild,
        scan: Scan,
        partitions: list,
    ) -> Any:
        def fold(worker: _PartitionExecutor, child: PlanNode) -> Any:
            return worker._fold_plan(plan, monoid, worker._iter(child))

        outs, workers = self._fan_out(
            partitions, rebuild, scan, fold, ordered=not monoid.commutative
        )
        self._record_fan_out(outs, workers, plan.child)
        # ``outs`` is index-ordered for non-commutative monoids (the
        # combine_partials contract) and completion-ordered otherwise.
        return monoid.combine_partials([out[1] for out in outs])

    def _parallel_nest(
        self,
        plan: Reduce,
        monoid: Monoid,
        nest: Nest,
        rebuild: Rebuild,
        scan: Scan,
        partitions: list,
    ) -> Any:
        part_monoid = self.evaluator.resolve_monoid(
            nest.part_monoid, self.evaluator.global_env
        )
        assert isinstance(part_monoid, CollectionMonoid)

        def group(worker: _PartitionExecutor, child: PlanNode) -> dict[tuple, Any]:
            groups: dict[tuple, Any] = {}
            if worker.jit is not None:
                worker._jit_node(nest)
                key_fns = tuple(
                    worker._jit_wrap(fn, term)
                    for fn, (_, term) in zip(nest.key_fns, nest.keys)
                )
                head_fn = worker._jit_wrap(nest.head_fn, nest.part_head)
                rt = worker._rt
                for binding in worker._iter(child):
                    key = tuple(fn(binding, rt) for fn in key_fns)
                    acc = groups.get(key)
                    if acc is None:
                        acc = groups[key] = part_monoid.accumulator()
                    acc.add(head_fn(binding, rt))
                return {key: acc.finish() for key, acc in groups.items()}
            for binding in worker._iter(child):
                key = tuple(worker._eval(term, binding) for _, term in nest.keys)
                acc = groups.get(key)
                if acc is None:
                    acc = groups[key] = part_monoid.accumulator()
                acc.add(worker._eval(nest.part_head, binding))
            return {key: acc.finish() for key, acc in groups.items()}

        nest_start = time.perf_counter_ns()
        outs, workers = self._fan_out(partitions, rebuild, scan, group, ordered=True)
        self._record_fan_out(outs, workers, nest.child)
        # Per-key partial carriers, merged in partition-index order so
        # non-commutative partition monoids (e.g. list partitions) see
        # their elements exactly as the serial single-pass grouping did.
        merged: dict[tuple, list[Any]] = {}
        for out in sorted(outs, key=lambda o: o[0]):
            for key, carrier in out[1].items():
                merged.setdefault(key, []).append(carrier)
        from repro.values import canonical_key

        bindings: list[dict[str, Any]] = []
        for key in sorted(merged, key=canonical_key):
            out_binding = {label: value for (label, _), value in zip(nest.keys, key)}
            out_binding[nest.part_var] = part_monoid.combine_partials(merged[key])
            self.stats.rows_grouped += 1
            bindings.append(out_binding)
        if self.metrics is not None:
            # Workers iterate the spine *below* the Nest; the Nest block
            # itself is the coordinator's grouping work.
            block = self.metrics.for_node(nest)
            block.invocations += 1
            block.rows_out += len(bindings)
            block.time_ns += time.perf_counter_ns() - nest_start
        return self._fold_plan(plan, monoid, iter(bindings))
