"""Partition-parallel execution of monoid homomorphisms.

The calculus makes this safe by construction: every query is a monoid
homomorphism, ``merge`` is associative, and the C/I property lattice
(:mod:`repro.monoids.base`) says exactly when partition order may be
relaxed. See ``docs/PARALLEL.md`` for enablement, the determinism
guarantees by monoid property, and worker tuning.

Off by default; enable with ``Database(parallel=...)``,
``Database.enable_parallel()`` or ``REPRO_PARALLEL=1``.
"""

from repro.parallel.config import (
    ParallelConfig,
    config_from_env,
    parallel_env_enabled,
    resolve_parallel,
)
from repro.parallel.executor import ParallelExecutor
from repro.parallel.partition import partition_rows

__all__ = [
    "ParallelConfig",
    "ParallelExecutor",
    "config_from_env",
    "parallel_env_enabled",
    "partition_rows",
    "resolve_parallel",
]
