"""The paper's primitive monoids: sum, prod, max, min, some, all.

Primitive monoids aggregate scalars; their unit function is the
identity. Their property sets (Table 1's C/I column):

========  ===========  ==========
monoid    commutative  idempotent
========  ===========  ==========
sum       yes          no
prod      yes          no
max       yes          yes
min       yes          yes
some      yes          yes
all       yes          yes
========  ===========  ==========

``max``/``min`` use ``None`` as the zero (identity), so they are defined
over any totally ordered carrier without inventing infinities; an empty
``max{...}`` comprehension therefore yields ``None``, which the OQL
layer surfaces as SQL-style NULL behaviour for empty aggregates.
"""

from __future__ import annotations

import operator
from typing import Any

from repro.monoids.base import PrimitiveMonoid


def _max_merge(left: Any, right: Any) -> Any:
    if left is None:
        return right
    if right is None:
        return left
    return left if left >= right else right


def _min_merge(left: Any, right: Any) -> Any:
    if left is None:
        return right
    if right is None:
        return left
    return left if left <= right else right


SUM = PrimitiveMonoid(
    "sum",
    zero_value=0,
    merge_fn=operator.add,
    commutative=True,
    idempotent=False,
    doc="Numeric addition; zero 0. The carrier of count/sum aggregates.",
)

PROD = PrimitiveMonoid(
    "prod",
    zero_value=1,
    merge_fn=operator.mul,
    commutative=True,
    idempotent=False,
    doc="Numeric multiplication; zero 1.",
)

MAX = PrimitiveMonoid(
    "max",
    zero_value=None,
    merge_fn=_max_merge,
    commutative=True,
    idempotent=True,
    doc="Maximum under the carrier's order; zero None (identity).",
)

MIN = PrimitiveMonoid(
    "min",
    zero_value=None,
    merge_fn=_min_merge,
    commutative=True,
    idempotent=True,
    doc="Minimum under the carrier's order; zero None (identity).",
)

SOME = PrimitiveMonoid(
    "some",
    zero_value=False,
    merge_fn=operator.or_,
    commutative=True,
    idempotent=True,
    doc="Boolean disjunction; existential quantification (OQL exists).",
)

ALL = PrimitiveMonoid(
    "all",
    zero_value=True,
    merge_fn=operator.and_,
    commutative=True,
    idempotent=True,
    doc="Boolean conjunction; universal quantification (OQL for all).",
)

PRIMITIVE_MONOIDS = (SUM, PROD, MAX, MIN, SOME, ALL)
