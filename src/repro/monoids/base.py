"""Monoid abstractions: the algebraic heart of the calculus.

A monoid is a triple ``(merge, zero, unit)`` where ``merge`` is an
associative binary operation with identity ``zero`` and ``unit`` maps an
element into the monoid's carrier. The paper (section 2) splits monoids
into *primitive* monoids (``sum``, ``max``, ``some``, ...), whose unit is
the identity function, and *collection* monoids (``list``, ``set``,
``bag``, ...), whose unit builds a singleton collection.

Two structural properties drive the whole calculus:

- **commutativity** (``merge(x, y) == merge(y, x)``)
- **idempotence** (``merge(x, x) == x``)

The paper's static correctness condition — which we expose as
:func:`check_hom_well_formed` — is that a homomorphism from monoid ``N``
to monoid ``M`` is well formed only when ``props(N) ⊆ props(M)``.
Sets may be converted to sets, to ``some``/``all``/``max`` results, or to
sorted lists, but not to bags, plain lists or sums; lists may be
converted to anything.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable, Iterator
from typing import Any

from repro.errors import MonoidError, WellFormednessError

#: Property tokens. A monoid's property set is a subset of these.
COMMUTATIVE = "commutative"
IDEMPOTENT = "idempotent"


class Monoid(ABC):
    """Common interface of primitive and collection monoids."""

    #: Stable name used by the registry, the parser and pretty printers.
    name: str
    #: Whether ``merge`` commutes.
    commutative: bool
    #: Whether ``merge(x, x) == x``.
    idempotent: bool

    @abstractmethod
    def zero(self) -> Any:
        """The identity element of ``merge``."""

    @abstractmethod
    def unit(self, value: Any) -> Any:
        """Inject a single element into the monoid's carrier."""

    @abstractmethod
    def merge(self, left: Any, right: Any) -> Any:
        """The monoid's associative binary operation."""

    @property
    def properties(self) -> frozenset[str]:
        """The subset of {commutative, idempotent} this monoid satisfies."""
        props = set()
        if self.commutative:
            props.add(COMMUTATIVE)
        if self.idempotent:
            props.add(IDEMPOTENT)
        return frozenset(props)

    @property
    def is_collection(self) -> bool:
        """True for collection monoids (list, set, bag, ...)."""
        return isinstance(self, CollectionMonoid)

    def merge_all(self, parts: Iterable[Any]) -> Any:
        """Fold ``merge`` over ``parts``, starting from ``zero``.

        **Ordering contract**: this is a left fold in the iteration
        order of ``parts``. For non-commutative monoids (``list``,
        ``oset``, ``string``, ``sortedbag`` over ties) the order of
        ``parts`` is semantically significant — callers that compute
        parts out of order (e.g. parallel partial folds) must restore
        the original order before calling this, or use
        :meth:`combine_partials` which states the same contract
        explicitly.
        """
        result = self.zero()
        for part in parts:
            result = self.merge(result, part)
        return result

    def combine_partials(self, parts: Iterable[Any]) -> Any:
        """Combine per-partition partial folds into one value.

        This is the hook the partition-parallel engine
        (:mod:`repro.parallel`) uses to recombine partial ``Reduce``
        results. ``parts`` MUST be in partition-index order — the order
        the partitions appear in the serial scan. Because ``merge`` is
        associative, this then equals the serial fold for every monoid;
        only *commutative* monoids additionally allow callers to relax
        the order of ``parts``. Subclasses may override with a more
        efficient combining strategy (e.g. a k-way merge for sorted
        carriers) but must preserve these semantics.
        """
        return self.merge_all(parts)

    def __repr__(self) -> str:
        return f"<monoid {self.name}>"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Monoid):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())

    def signature(self) -> tuple:
        """A structural identity key; parameterized monoids extend this."""
        return (type(self).__name__, self.name)


class PrimitiveMonoid(Monoid):
    """A monoid over scalar values whose unit is the identity function.

    Examples: ``sum = (+, 0, identity)``, ``some = (or, false, identity)``.
    """

    def __init__(
        self,
        name: str,
        zero_value: Any,
        merge_fn,
        commutative: bool = True,
        idempotent: bool = False,
        doc: str = "",
    ) -> None:
        self.name = name
        self._zero = zero_value
        self._merge = merge_fn
        self.commutative = commutative
        self.idempotent = idempotent
        self.doc = doc

    def zero(self) -> Any:
        return self._zero

    def unit(self, value: Any) -> Any:
        return value

    def merge(self, left: Any, right: Any) -> Any:
        return self._merge(left, right)


class CollectionMonoid(Monoid):
    """A monoid whose carrier is a collection built from singletons.

    Besides the monoid triple, collection monoids expose:

    - :meth:`iterate` — enumerate a carrier value's elements in a
      deterministic order (the basis of comprehension generators);
    - :meth:`accumulator` — an O(n) bulk builder, so evaluating
      ``M{ e | ... }`` does not pay quadratic merge costs;
    - :meth:`from_iterable` — bulk construction from any iterable.
    """

    @abstractmethod
    def iterate(self, collection: Any) -> Iterator[Any]:
        """Yield the elements of ``collection`` deterministically."""

    @abstractmethod
    def accumulator(self) -> "Accumulator":
        """A fresh mutable builder for this monoid's carrier."""

    def from_iterable(self, items: Iterable[Any]) -> Any:
        """Build a carrier value containing ``items``."""
        acc = self.accumulator()
        for item in items:
            acc.add(item)
        return acc.finish()

    def contains(self, collection: Any, value: Any) -> bool:
        """Membership test; subclasses override when they can do better."""
        return any(element == value for element in self.iterate(collection))

    def length(self, collection: Any) -> int:
        """Number of elements (with multiplicity where applicable)."""
        return sum(1 for _ in self.iterate(collection))


class Accumulator(ABC):
    """Mutable builder used by :meth:`CollectionMonoid.accumulator`."""

    @abstractmethod
    def add(self, value: Any) -> None:
        """Append one element (the effect of merging in ``unit(value)``)."""

    @abstractmethod
    def finish(self) -> Any:
        """Freeze and return the carrier value. The builder is then dead."""


def check_hom_well_formed(source: Monoid, target: Monoid) -> None:
    """Enforce the paper's C/I restriction on ``hom[source -> target]``.

    Raises :class:`WellFormednessError` unless every structural property
    of ``source`` also holds for ``target``. This is the compile-time
    check that makes the calculus consistent: e.g. ``hom[set -> sum]``
    (set cardinality via sum of ones) is rejected because ``sum`` is not
    idempotent, while ``hom[bag -> sum]`` is accepted.

    >>> from repro.monoids import SET, BAG, SUM
    >>> check_hom_well_formed(BAG, SUM)
    >>> check_hom_well_formed(SET, SUM)
    Traceback (most recent call last):
        ...
    repro.errors.WellFormednessError: ...
    """
    missing = source.properties - target.properties
    if missing:
        raise WellFormednessError(
            f"hom[{source.name} -> {target.name}] is not well formed: "
            f"{source.name} is {_props_text(source.properties)} but "
            f"{target.name} lacks {{{', '.join(sorted(missing))}}}"
        )


def is_hom_well_formed(source: Monoid, target: Monoid) -> bool:
    """Boolean form of :func:`check_hom_well_formed`."""
    return source.properties <= target.properties


def require_collection(monoid: Monoid, context: str = "") -> CollectionMonoid:
    """Downcast to :class:`CollectionMonoid`, raising a clear error."""
    if not isinstance(monoid, CollectionMonoid):
        where = f" in {context}" if context else ""
        raise MonoidError(f"{monoid.name} is not a collection monoid{where}")
    return monoid


def _props_text(props: frozenset[str]) -> str:
    if not props:
        return "neither commutative nor idempotent"
    return " and ".join(sorted(props))
