"""The vector monoid ``M[n]`` of section 4.1.

For a monoid ``M`` and size ``n``, ``M[n]`` is the monoid of n-element
vectors whose components live in ``M``:

- ``zero`` is a vector of n copies of ``zero(M)``;
- ``unit(a, i)`` is the vector with ``unit(M)(a)`` at index ``i`` and
  zeros elsewhere — the paper's ``unit sum[4](8, 2) = (|0,0,8,0|)``;
- ``merge`` is pointwise ``merge(M)`` — the paper's
  ``merge sum[4]((|0,1,2,0|), (|3,0,2,1|)) = (|3,1,4,1|)``.

``M[n]`` inherits M's commutativity/idempotence pointwise. As the paper
notes, ``M[n]`` is *not* freely generated from ``M`` — several units can
land on the same slot and get merged by ``M`` — which is exactly what
makes vector comprehensions expressive (FFT butterflies, histograms).
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

from repro.errors import VectorError
from repro.monoids.base import Accumulator, CollectionMonoid, Monoid
from repro.values import Vector


class VectorMonoid(CollectionMonoid):
    """``M[n]``: fixed-size vectors over an element monoid ``M``.

    >>> from repro.monoids import SUM
    >>> m = VectorMonoid(SUM, 4)
    >>> m.unit(8, 2)
    (|0, 0, 8, 0|)
    >>> m.merge(Vector.from_dense([0, 1, 2, 0]), Vector.from_dense([3, 0, 2, 1]))
    (|3, 1, 4, 1|)
    """

    def __init__(self, element: Monoid, size: int) -> None:
        if size < 0:
            raise VectorError(f"vector size must be non-negative, got {size}")
        self.element = element
        self.size = size
        self.name = f"{element.name}[{size}]"
        self.commutative = element.commutative
        self.idempotent = element.idempotent

    def signature(self) -> tuple:
        return (type(self).__name__, self.element.signature(), self.size)

    def zero(self) -> Vector:
        return Vector(self.size, default=self.element.zero())

    def unit(self, value: Any, index: int | None = None) -> Vector:
        """Place ``unit(M)(value)`` at ``index``; all other slots zero.

        ``index`` is keyword-optional only so the generic
        :class:`CollectionMonoid` interface stays callable; omitting it is
        an error because a vector unit is inherently positional.
        """
        if index is None:
            raise VectorError(
                f"{self.name}.unit requires an index: vectors are indexed collections"
            )
        if not 0 <= index < self.size:
            raise VectorError(
                f"unit index {index} out of range for {self.name}"
            )
        return Vector(
            self.size,
            default=self.element.zero(),
            slots={index: self.element.unit(value)},
        )

    def merge(self, left: Vector, right: Vector) -> Vector:
        self._check(left)
        self._check(right)
        slots = dict(left._slots)  # noqa: SLF001 — same-module intimacy
        for index, value in right._slots.items():  # noqa: SLF001
            if index in slots:
                slots[index] = self.element.merge(slots[index], value)
            else:
                slots[index] = value
        return Vector(self.size, default=self.element.zero(), slots=slots)

    def iterate(self, collection: Vector) -> Iterator[tuple[int, Any]]:
        """Vectors iterate as ``(index, element)`` pairs.

        This realizes the paper's indexed generator ``a[i] <- x``: the
        comprehension machinery binds both the slot value and its index.
        """
        self._check(collection)
        return collection.items()

    def accumulator(self) -> Accumulator:
        return _VectorAccumulator(self)

    def length(self, collection: Vector) -> int:
        return len(collection)

    def _check(self, value: Vector) -> None:
        if not isinstance(value, Vector):
            raise VectorError(f"{self.name} operates on Vector values, got {type(value).__name__}")
        if len(value) != self.size:
            raise VectorError(
                f"{self.name} operates on vectors of size {self.size}, got size {len(value)}"
            )


class _VectorAccumulator(Accumulator):
    """Accumulates ``(value, index)`` pairs into a vector via M-merges."""

    def __init__(self, monoid: VectorMonoid) -> None:
        self._monoid = monoid
        self._slots: dict[int, Any] = {}

    def add(self, value: Any) -> None:
        try:
            element, index = value
        except (TypeError, ValueError):
            raise VectorError(
                "vector accumulator expects (value, index) pairs"
            ) from None
        if not 0 <= index < self._monoid.size:
            raise VectorError(
                f"index {index} out of range for {self._monoid.name}"
            )
        unit = self._monoid.element.unit(element)
        if index in self._slots:
            self._slots[index] = self._monoid.element.merge(self._slots[index], unit)
        else:
            self._slots[index] = unit

    def finish(self) -> Vector:
        return Vector(
            self._monoid.size,
            default=self._monoid.element.zero(),
            slots=self._slots,
        )
