"""Monoid framework — Table 1 of the paper, homomorphisms, registry.

Quick tour:

>>> from repro.monoids import LIST, SET, SUM, hom
>>> hom(LIST, SUM, lambda a: a, (1, 2, 3))
6
>>> from repro.monoids import check_hom_well_formed
>>> check_hom_well_formed(LIST, SET)   # lists convert to sets: fine
"""

from repro.monoids.base import (
    COMMUTATIVE,
    IDEMPOTENT,
    Accumulator,
    CollectionMonoid,
    Monoid,
    PrimitiveMonoid,
    check_hom_well_formed,
    is_hom_well_formed,
    require_collection,
)
from repro.monoids.collection import (
    BAG,
    LIST,
    OSET,
    SET,
    STRING,
    BagMonoid,
    ListMonoid,
    OSetMonoid,
    SetMonoid,
    SortedBagMonoid,
    SortedMonoid,
    StringMonoid,
)
from repro.monoids.homomorphism import convert, ext, hom, map_collection
from repro.monoids.primitive import ALL, MAX, MIN, PROD, SOME, SUM
from repro.monoids.registry import (
    MonoidRegistry,
    default_registry,
    get_monoid,
    sorted_bag_monoid,
    sorted_monoid,
    table1,
    vector_monoid,
)
from repro.monoids.vector import VectorMonoid

__all__ = [
    "ALL",
    "BAG",
    "COMMUTATIVE",
    "IDEMPOTENT",
    "LIST",
    "MAX",
    "MIN",
    "OSET",
    "PROD",
    "SET",
    "SOME",
    "STRING",
    "SUM",
    "Accumulator",
    "BagMonoid",
    "CollectionMonoid",
    "ListMonoid",
    "Monoid",
    "MonoidRegistry",
    "OSetMonoid",
    "PrimitiveMonoid",
    "SetMonoid",
    "SortedBagMonoid",
    "SortedMonoid",
    "StringMonoid",
    "VectorMonoid",
    "check_hom_well_formed",
    "convert",
    "default_registry",
    "ext",
    "get_monoid",
    "hom",
    "is_hom_well_formed",
    "map_collection",
    "require_collection",
    "sorted_bag_monoid",
    "sorted_monoid",
    "table1",
    "vector_monoid",
]
