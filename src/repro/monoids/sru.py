"""Structural recursion over the union presentation (SRU) — and why not.

The paper's related-work argument (section 5): Tannen et al.'s SRU
operator is *more expressive* than monoid homomorphisms, but an SRU
application ``sru(z, u, m)`` is only well-defined when ``(m, z)`` is a
monoid respecting the source collection's equations (commutativity,
idempotence) — conditions "hard to check by a compiler", hence
impractical. The monoid calculus restricts itself to homomorphisms
between *declared* monoids, where the C/I check is a subset test.

This module makes the argument executable:

- :class:`UnionTree` represents a collection *presentation* — the merge
  tree by which a collection was built. Equal collections can have many
  presentations (``{a}`` is also ``{a} ∪ {a}``).
- :func:`sru` folds arbitrary ``(zero, unit, merge)`` over a
  presentation. For ill-behaved arguments, different presentations of
  the same collection give different answers — the classic
  ``1 = sru(0, λx.1, +) {a}`` anomaly, reproduced in the tests.
- :func:`sru_consistent` performs the runtime consistency check an SRU
  compiler would need (testing the equations on the tree's own
  elements) — sound but per-application and per-data, in contrast to
  the calculus' one static subset test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Union

from repro.errors import MonoidError
from repro.monoids.base import CollectionMonoid


@dataclass(frozen=True)
class EmptyTree:
    """The presentation ``zero``."""


@dataclass(frozen=True)
class UnitTree:
    """The presentation ``unit(a)``."""

    element: Any


@dataclass(frozen=True)
class UnionTree:
    """The presentation ``left merge right``."""

    left: "Presentation"
    right: "Presentation"


Presentation = Union[EmptyTree, UnitTree, UnionTree]


def presentation_of(items: Any) -> Presentation:
    """A right-nested presentation of an iterable of elements."""
    tree: Presentation = EmptyTree()
    for item in reversed(list(items)):
        tree = UnionTree(UnitTree(item), tree)
    return tree


def elements(tree: Presentation) -> Iterator[Any]:
    """The multiset of leaf elements, left to right."""
    if isinstance(tree, UnitTree):
        yield tree.element
    elif isinstance(tree, UnionTree):
        yield from elements(tree.left)
        yield from elements(tree.right)


def collapse(tree: Presentation, monoid: CollectionMonoid) -> Any:
    """The collection value a presentation denotes under ``monoid``."""
    if isinstance(tree, EmptyTree):
        return monoid.zero()
    if isinstance(tree, UnitTree):
        return monoid.unit(tree.element)
    return monoid.merge(collapse(tree.left, monoid), collapse(tree.right, monoid))


def sru(
    tree: Presentation,
    zero: Any,
    unit: Callable[[Any], Any],
    merge: Callable[[Any, Any], Any],
) -> Any:
    """Unrestricted structural recursion over a presentation.

    No conditions are checked: if ``(merge, zero)`` fails the source
    collection's equations, the result depends on the presentation —
    i.e. it is not a function of the collection at all.

    >>> one = UnitTree("a")
    >>> sru(one, 0, lambda x: 1, lambda a, b: a + b)
    1
    >>> two = UnionTree(one, one)   # the *same set* {a}, presented twice
    >>> sru(two, 0, lambda x: 1, lambda a, b: a + b)
    2
    """
    if isinstance(tree, EmptyTree):
        return zero
    if isinstance(tree, UnitTree):
        return unit(tree.element)
    return merge(
        sru(tree.left, zero, unit, merge), sru(tree.right, zero, unit, merge)
    )


def sru_consistent(
    tree: Presentation,
    zero: Any,
    unit: Callable[[Any], Any],
    merge: Callable[[Any, Any], Any],
    require_commutative: bool = False,
    require_idempotent: bool = False,
) -> Any:
    """SRU with the runtime checks an SRU system would have to run.

    Tests identity/associativity on the presentation's own images, plus
    commutativity/idempotence when the source collection demands them.
    Raises :class:`MonoidError` on any violation. This is necessarily
    per-application and per-data (and still only a *test*, not a proof)
    — the paper's reason to prefer the statically checkable calculus.

    >>> tree = presentation_of([1, 2])
    >>> sru_consistent(tree, 0, lambda x: x, lambda a, b: a + b)
    3
    >>> sru_consistent(tree, 0, lambda x: 1, lambda a, b: a + b,
    ...                require_idempotent=True)
    Traceback (most recent call last):
        ...
    repro.errors.MonoidError: ...
    """
    images = [unit(element) for element in elements(tree)]
    for image in images:
        if merge(zero, image) != image or merge(image, zero) != image:
            raise MonoidError("SRU check failed: zero is not an identity for merge")
    for a in images:
        for b in images:
            if require_commutative and merge(a, b) != merge(b, a):
                raise MonoidError(
                    "SRU check failed: merge is not commutative on the data "
                    "(required by the source collection)"
                )
            for c in images:
                if merge(merge(a, b), c) != merge(a, merge(b, c)):
                    raise MonoidError("SRU check failed: merge is not associative")
        if require_idempotent and merge(a, a) != a:
            raise MonoidError(
                "SRU check failed: merge is not idempotent on the data "
                "(required by the source collection)"
            )
    return sru(tree, zero, unit, merge)


def is_presentation_invariant(
    trees: list[Presentation],
    zero: Any,
    unit: Callable[[Any], Any],
    merge: Callable[[Any, Any], Any],
) -> bool:
    """Do all presentations give the same SRU result?

    Well-behaved arguments are presentation-invariant; the anomalies
    are exactly the cases where this returns False.
    """
    results = [sru(tree, zero, unit, merge) for tree in trees]
    return all(result == results[0] for result in results[1:])
