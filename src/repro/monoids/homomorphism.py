"""Monoid homomorphisms — the calculus' single bulk operator.

``hom[N -> M](f)(A)`` replaces, in the construction of the collection
``A`` (an ``N`` value), every ``merge(N)`` by ``merge(M)``, every
``zero(N)`` by ``zero(M)``, and every ``unit(N)(a)`` by ``f(a)``:

    hom[N -> M](f)(zero(N))       = zero(M)
    hom[N -> M](f)(unit(N)(a))    = f(a)
    hom[N -> M](f)(x merge(N) y)  = hom(f)(x) merge(M) hom(f)(y)

The paper's claim (section 2) is that this one operator, under the C/I
well-formedness restriction, suffices to express the nested relational
algebra and beyond — joins across different collection types, predicates
and aggregates. Comprehensions are syntactic sugar over ``hom``, and the
evaluator reduces them to the fold implemented here.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.monoids.base import (
    CollectionMonoid,
    Monoid,
    check_hom_well_formed,
    require_collection,
)


def hom(
    source: Monoid,
    target: Monoid,
    f: Callable[[Any], Any],
    collection: Any,
    check: bool = True,
) -> Any:
    """Apply the homomorphism ``hom[source -> target](f)`` to ``collection``.

    ``f`` maps each element of ``collection`` to a value of ``target``'s
    carrier; the results are folded with ``merge(target)``. When
    ``target`` is a collection monoid, an O(n) accumulator path is used
    for the common shape ``f(a) = unit(target)(g(a))``; the general fold
    handles everything else.

    >>> from repro.monoids import LIST, SET, SUM
    >>> hom(LIST, SUM, lambda a: a, (1, 2, 3))
    6
    >>> sorted(hom(LIST, SET, lambda a: frozenset([a * 10]), (1, 2, 2)))
    [10, 20]
    """
    src = require_collection(source, "hom source")
    if check:
        check_hom_well_formed(src, target)
    result = target.zero()
    for element in src.iterate(collection):
        result = target.merge(result, f(element))
    return result


def ext(
    monoid: CollectionMonoid,
    f: Callable[[Any], Any],
    collection: Any,
) -> Any:
    """The extension operator ``ext(f) = hom[M -> M](f)``.

    ``f`` maps each element to an ``M``-collection and the results are
    concatenated/unioned — monadic bind. Always well formed since source
    and target properties trivially coincide (the special case Tannen et
    al. identified where SRU's conditions are automatic).

    >>> from repro.monoids import LIST
    >>> ext(LIST, lambda a: (a, a), (1, 2))
    (1, 1, 2, 2)
    """
    acc = monoid.accumulator()
    for element in monoid.iterate(collection):
        for produced in monoid.iterate(f(element)):
            acc.add(produced)
    return acc.finish()


def map_collection(
    monoid: CollectionMonoid,
    f: Callable[[Any], Any],
    collection: Any,
) -> Any:
    """Elementwise map within one collection monoid (``ext`` of a unit)."""
    acc = monoid.accumulator()
    for element in monoid.iterate(collection):
        acc.add(f(element))
    return acc.finish()


def convert(
    source: CollectionMonoid,
    target: CollectionMonoid,
    collection: Any,
    check: bool = True,
) -> Any:
    """Convert a collection between monoids: ``hom[N -> M](unit(M))``.

    Well-formedness applies: lists convert to anything; bags to bags,
    sets or sorted carriers with dedup rules per the target; sets only to
    idempotent-and-commutative targets.

    >>> from repro.monoids import LIST, BAG
    >>> convert(LIST, BAG, (1, 1, 2))
    {{1, 1, 2}}
    """
    if check:
        check_hom_well_formed(source, target)
    acc = target.accumulator()
    for element in source.iterate(collection):
        acc.add(element)
    return acc.finish()
