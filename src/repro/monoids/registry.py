"""Monoid registry: name -> monoid lookup and the live Table 1.

The OQL front end and the calculus pretty printer refer to monoids by
name (``set{ ... }``, ``sum{ ... }``). The registry resolves those names
and lets applications register their own monoids — the paper emphasizes
that the framework is open (any user triple satisfying the laws may
participate, subject to the C/I restriction).
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.errors import MonoidError, UnknownMonoidError
from repro.monoids.base import Monoid
from repro.monoids.collection import (
    BAG,
    COLLECTION_MONOIDS,
    LIST,
    OSET,
    SET,
    STRING,
    SortedBagMonoid,
    SortedMonoid,
)
from repro.monoids.primitive import ALL, MAX, MIN, PRIMITIVE_MONOIDS, PROD, SOME, SUM
from repro.monoids.vector import VectorMonoid


class MonoidRegistry:
    """A mutable mapping of monoid names to monoid instances."""

    def __init__(self) -> None:
        self._monoids: dict[str, Monoid] = {}

    def register(self, monoid: Monoid, replace: bool = False) -> Monoid:
        """Add ``monoid`` under its ``name``; reject silent redefinition."""
        if monoid.name in self._monoids and not replace:
            raise MonoidError(f"monoid {monoid.name!r} is already registered")
        self._monoids[monoid.name] = monoid
        return monoid

    def get(self, name: str) -> Monoid:
        """Look up a monoid by name.

        >>> default_registry().get("bag").name
        'bag'
        """
        try:
            return self._monoids[name]
        except KeyError:
            raise UnknownMonoidError(name, list(self._monoids)) from None

    def __contains__(self, name: str) -> bool:
        return name in self._monoids

    def names(self) -> list[str]:
        return sorted(self._monoids)

    def monoids(self) -> list[Monoid]:
        return [self._monoids[name] for name in self.names()]


_DEFAULT: MonoidRegistry | None = None


def default_registry() -> MonoidRegistry:
    """The process-wide registry preloaded with Table 1's monoids."""
    global _DEFAULT
    if _DEFAULT is None:
        registry = MonoidRegistry()
        for monoid in PRIMITIVE_MONOIDS:
            registry.register(monoid)
        for monoid in COLLECTION_MONOIDS:
            registry.register(monoid)
        _DEFAULT = registry
    return _DEFAULT


def get_monoid(name: str) -> Monoid:
    """Shorthand for ``default_registry().get(name)``."""
    return default_registry().get(name)


def sorted_monoid(key: Callable[[Any], Any], key_name: str = "f") -> SortedMonoid:
    """Fresh ``sorted[f]`` monoid (CI; duplicate-eliminating)."""
    return SortedMonoid(key, key_name)


def sorted_bag_monoid(key: Callable[[Any], Any], key_name: str = "f") -> SortedBagMonoid:
    """Fresh ``sortedbag[f]`` monoid (C; duplicate-preserving)."""
    return SortedBagMonoid(key, key_name)


def vector_monoid(element: Monoid, size: int) -> VectorMonoid:
    """Fresh ``M[n]`` monoid over element monoid ``element``."""
    return VectorMonoid(element, size)


def table1() -> list[dict[str, str]]:
    """Regenerate the paper's Table 1 from the live monoid objects.

    Returns one row per monoid with the same columns the paper prints:
    monoid, carrier type, zero, unit(a), merge, and the C/I flags.
    """
    sample_sorted = SortedMonoid(lambda x: x)
    rows = [
        _row(LIST, "list(a)", "[]", "[a]", "++"),
        _row(SET, "set(a)", "{}", "{a}", "∪"),
        _row(BAG, "bag(a)", "{{}}", "{{a}}", "⊎"),
        _row(OSET, "list(a)", "[]", "[a]", "x ++ (y -- x)"),
        _row(STRING, "string", '""', '"a"', "concat"),
        _row(sample_sorted, "list(a)", "[]", "[a]", "sorted merge"),
        _row(SUM, "number", "0", "a", "+"),
        _row(PROD, "number", "1", "a", "*"),
        _row(MAX, "ordered", "None", "a", "max"),
        _row(MIN, "ordered", "None", "a", "min"),
        _row(SOME, "bool", "false", "a", "or"),
        _row(ALL, "bool", "true", "a", "and"),
    ]
    return rows


def _row(monoid: Monoid, carrier: str, zero: str, unit: str, merge: str) -> dict[str, str]:
    flags = ""
    if monoid.commutative:
        flags += "C"
    if monoid.idempotent:
        flags += "I"
    return {
        "monoid": monoid.name,
        "type": carrier,
        "zero": zero,
        "unit": unit,
        "merge": merge,
        "C/I": flags or "-",
    }
