"""The paper's collection monoids: list, set, bag, oset, string, sorted[f].

Carriers (Table 1, with our concrete representations):

=========  ==================  ===========  ==========
monoid     carrier             commutative  idempotent
=========  ==================  ===========  ==========
list       ``tuple``           no           no
set        ``frozenset``       yes          yes
bag        :class:`Bag`        yes          no
oset       :class:`OrderedSet` no           yes
string     ``str``             no           no
sorted[f]  sorted ``tuple``    yes          yes
=========  ==================  ===========  ==========

``sorted[f]`` must be both commutative and idempotent: the paper's C/I
restriction "allows the conversion of sets into sorted lists", and
``hom[set -> sorted[f]]`` is well formed only if ``sorted[f]`` has at
least set's properties. Its merge therefore removes exact duplicates and
orders ties among f-equal (but distinct) values by the canonical value
order, which keeps the merge associative. We additionally provide
:class:`SortedBagMonoid` (commutative, duplicate-preserving, hence only
C) for ordering bags without losing multiplicity — this is what the OQL
translator uses for ``sort`` over a bag.
"""

from __future__ import annotations

import bisect
import heapq
from collections import Counter
from collections.abc import Callable, Iterable, Iterator
from typing import Any

from repro.monoids.base import Accumulator, CollectionMonoid
from repro.values import Bag, OrderedSet, canonical_key


class _ListAccumulator(Accumulator):
    def __init__(self) -> None:
        self._items: list[Any] = []

    def add(self, value: Any) -> None:
        self._items.append(value)

    def finish(self) -> tuple:
        return tuple(self._items)


class ListMonoid(CollectionMonoid):
    """Finite sequences with concatenation; carrier is ``tuple``."""

    name = "list"
    commutative = False
    idempotent = False

    def zero(self) -> tuple:
        return ()

    def unit(self, value: Any) -> tuple:
        return (value,)

    def merge(self, left: tuple, right: tuple) -> tuple:
        return tuple(left) + tuple(right)

    def iterate(self, collection: tuple) -> Iterator[Any]:
        return iter(collection)

    def accumulator(self) -> Accumulator:
        return _ListAccumulator()

    def length(self, collection: tuple) -> int:
        return len(collection)


class _SetAccumulator(Accumulator):
    def __init__(self) -> None:
        self._items: set[Any] = set()

    def add(self, value: Any) -> None:
        self._items.add(value)

    def finish(self) -> frozenset:
        return frozenset(self._items)


class SetMonoid(CollectionMonoid):
    """Sets with union; carrier is ``frozenset``.

    Iteration is in canonical order so evaluation is deterministic.
    """

    name = "set"
    commutative = True
    idempotent = True

    def zero(self) -> frozenset:
        return frozenset()

    def unit(self, value: Any) -> frozenset:
        return frozenset((value,))

    def merge(self, left: frozenset, right: frozenset) -> frozenset:
        return left | right

    def iterate(self, collection: frozenset) -> Iterator[Any]:
        return iter(sorted(collection, key=canonical_key))

    def accumulator(self) -> Accumulator:
        return _SetAccumulator()

    def contains(self, collection: frozenset, value: Any) -> bool:
        return value in collection

    def length(self, collection: frozenset) -> int:
        return len(collection)


class _BagAccumulator(Accumulator):
    def __init__(self) -> None:
        self._counts: Counter = Counter()

    def add(self, value: Any) -> None:
        self._counts[value] += 1

    def finish(self) -> Bag:
        return Bag.from_counts(self._counts)


class BagMonoid(CollectionMonoid):
    """Multisets with additive union; carrier is :class:`Bag`."""

    name = "bag"
    commutative = True
    idempotent = False

    def zero(self) -> Bag:
        return Bag()

    def unit(self, value: Any) -> Bag:
        return Bag((value,))

    def merge(self, left: Bag, right: Bag) -> Bag:
        return left.union(right)

    def iterate(self, collection: Bag) -> Iterator[Any]:
        return iter(collection)

    def accumulator(self) -> Accumulator:
        return _BagAccumulator()

    def contains(self, collection: Bag, value: Any) -> bool:
        return value in collection

    def length(self, collection: Bag) -> int:
        return len(collection)


class _OSetAccumulator(Accumulator):
    def __init__(self) -> None:
        self._seen: dict[Any, None] = {}

    def add(self, value: Any) -> None:
        if value not in self._seen:
            self._seen[value] = None

    def finish(self) -> OrderedSet:
        return OrderedSet(self._seen)


class OSetMonoid(CollectionMonoid):
    """Duplicate-free sequences; merge is ``x ++ (y -- x)``.

    Idempotent but not commutative — the mirror image of ``bag``.
    """

    name = "oset"
    commutative = False
    idempotent = True

    def zero(self) -> OrderedSet:
        return OrderedSet()

    def unit(self, value: Any) -> OrderedSet:
        return OrderedSet((value,))

    def merge(self, left: OrderedSet, right: OrderedSet) -> OrderedSet:
        return left.union(right)

    def iterate(self, collection: OrderedSet) -> Iterator[Any]:
        return iter(collection)

    def accumulator(self) -> Accumulator:
        return _OSetAccumulator()

    def contains(self, collection: OrderedSet, value: Any) -> bool:
        return value in collection

    def length(self, collection: OrderedSet) -> int:
        return len(collection)


class _StringAccumulator(Accumulator):
    def __init__(self) -> None:
        self._parts: list[str] = []

    def add(self, value: Any) -> None:
        self._parts.append(str(value))

    def finish(self) -> str:
        return "".join(self._parts)


class StringMonoid(CollectionMonoid):
    """Character strings with concatenation (the paper's ``string``)."""

    name = "string"
    commutative = False
    idempotent = False

    def zero(self) -> str:
        return ""

    def unit(self, value: Any) -> str:
        return str(value)

    def merge(self, left: str, right: str) -> str:
        return left + right

    def iterate(self, collection: str) -> Iterator[str]:
        return iter(collection)

    def accumulator(self) -> Accumulator:
        return _StringAccumulator()

    def length(self, collection: str) -> int:
        return len(collection)


class _SortedAccumulator(Accumulator):
    def __init__(self, sort_key: Callable[[Any], tuple], dedup: bool) -> None:
        self._sort_key = sort_key
        self._dedup = dedup
        self._items: list[Any] = []

    def add(self, value: Any) -> None:
        self._items.append(value)

    def finish(self) -> tuple:
        items = sorted(self._items, key=self._sort_key)
        if not self._dedup:
            return tuple(items)
        deduped: list[Any] = []
        for item in items:
            if not deduped or deduped[-1] != item:
                deduped.append(item)
        return tuple(deduped)


class SortedMonoid(CollectionMonoid):
    """``sorted[f]``: duplicate-free lists ordered by ``f`` (C and I).

    ``key`` maps an element to its ordering attribute. Ties among
    distinct elements with equal keys are broken by the canonical value
    order, which makes the merge associative and commutative; exact
    duplicates are dropped, which makes it idempotent. Together this
    admits ``hom[set -> sorted[f]]`` — sorting a set — exactly as the
    paper requires.
    """

    commutative = True
    idempotent = True

    def __init__(self, key: Callable[[Any], Any], key_name: str = "f") -> None:
        self._key = key
        self.key_name = key_name
        self.name = f"sorted[{key_name}]"

    def signature(self) -> tuple:
        return (type(self).__name__, self.key_name, id(self._key))

    def sort_key(self, value: Any) -> tuple:
        return (canonical_key(self._key(value)), canonical_key(value))

    def zero(self) -> tuple:
        return ()

    def unit(self, value: Any) -> tuple:
        return (value,)

    def merge(self, left: tuple, right: tuple) -> tuple:
        merged = self.accumulator()
        for item in left:
            merged.add(item)
        for item in right:
            merged.add(item)
        return merged.finish()

    def iterate(self, collection: tuple) -> Iterator[Any]:
        return iter(collection)

    def accumulator(self) -> Accumulator:
        return _SortedAccumulator(self.sort_key, dedup=True)

    def combine_partials(self, parts: Iterable[Any]) -> Any:
        """K-way merge of already-sorted partials (each a carrier).

        Each partial is sorted by :meth:`sort_key` already, so a heap
        merge is O(total · log k) instead of the repeated re-sorts a
        pairwise ``merge_all`` would pay. Exact duplicates are dropped
        (idempotence), matching ``merge``.
        """
        merged = heapq.merge(*parts, key=self.sort_key)
        out: list[Any] = []
        for item in merged:
            if self.idempotent and out and out[-1] == item:
                continue
            out.append(item)
        return tuple(out)

    def length(self, collection: tuple) -> int:
        return len(collection)

    def insert(self, collection: tuple, value: Any) -> tuple:
        """Insert one element, preserving order and dropping duplicates."""
        keys = [self.sort_key(item) for item in collection]
        index = bisect.bisect_left(keys, self.sort_key(value))
        if index < len(collection) and collection[index] == value:
            return collection
        return collection[:index] + (value,) + collection[index:]


class SortedBagMonoid(SortedMonoid):
    """``sortedbag[f]``: ordered lists that keep duplicates (C only).

    Used for OQL ``sort`` over bags, where multiplicity must survive.
    ``hom[bag -> sortedbag[f]]`` is well formed; ``hom[set -> sortedbag]``
    is not (idempotence would be lost), mirroring the paper's lattice.
    """

    commutative = True
    idempotent = False

    def __init__(self, key: Callable[[Any], Any], key_name: str = "f") -> None:
        super().__init__(key, key_name)
        self.name = f"sortedbag[{key_name}]"

    def accumulator(self) -> Accumulator:
        return _SortedAccumulator(self.sort_key, dedup=False)

    def insert(self, collection: tuple, value: Any) -> tuple:
        keys = [self.sort_key(item) for item in collection]
        index = bisect.bisect_right(keys, self.sort_key(value))
        return collection[:index] + (value,) + collection[index:]


LIST = ListMonoid()
SET = SetMonoid()
BAG = BagMonoid()
OSET = OSetMonoid()
STRING = StringMonoid()

COLLECTION_MONOIDS = (LIST, SET, BAG, OSET, STRING)
