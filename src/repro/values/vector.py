"""Fixed-length vector values for the paper's ``M[n]`` monoid (section 4.1).

A :class:`Vector` of size ``n`` holds one element per index ``0..n-1``.
Slots that were never merged into hold the element monoid's zero, so a
sparse representation (index -> value for non-default slots) is used:
``unit[M[n]](a, i)`` touches a single slot, and pointwise merges only
visit occupied slots. The paper writes such a vector ``(|v0, ..., vn-1|)``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Any

from repro.errors import VectorError


class Vector:
    """An immutable fixed-length vector with a default (zero) element.

    >>> v = Vector.from_dense([0, 0, 8, 0], default=0)
    >>> v[2]
    8
    >>> v.to_list()
    [0, 0, 8, 0]
    >>> len(v)
    4
    """

    __slots__ = ("_size", "_default", "_slots", "_hash")

    def __init__(self, size: int, default: Any = 0, slots: dict[int, Any] | None = None) -> None:
        if size < 0:
            raise VectorError(f"vector size must be non-negative, got {size}")
        clean: dict[int, Any] = {}
        for index, value in (slots or {}).items():
            if not 0 <= index < size:
                raise VectorError(f"index {index} out of range for vector of size {size}")
            if value != default:
                clean[index] = value
        object.__setattr__(self, "_size", size)
        object.__setattr__(self, "_default", default)
        object.__setattr__(self, "_slots", clean)
        object.__setattr__(self, "_hash", None)

    @classmethod
    def from_dense(cls, values: Iterable[Any], default: Any = 0) -> "Vector":
        """Build a vector from an explicit sequence of all its elements."""
        values = list(values)
        return cls(len(values), default, dict(enumerate(values)))

    # -- container protocol --------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __getitem__(self, index: int) -> Any:
        if not 0 <= index < self._size:
            raise VectorError(f"index {index} out of range for vector of size {self._size}")
        return self._slots.get(index, self._default)

    def __iter__(self) -> Iterator[Any]:
        for index in range(self._size):
            yield self._slots.get(index, self._default)

    def items(self) -> Iterator[tuple[int, Any]]:
        """Iterate ``(index, element)`` pairs for every slot, in order.

        This is the iteration behind the paper's indexed generator
        ``a[i] <- x``: both the element and its index are exposed.
        """
        for index in range(self._size):
            yield index, self._slots.get(index, self._default)

    def occupied(self) -> Iterator[tuple[int, Any]]:
        """Iterate only the non-default slots (sparse view), in index order."""
        for index in sorted(self._slots):
            yield index, self._slots[index]

    @property
    def default(self) -> Any:
        """The fill value of untouched slots (the element monoid's zero)."""
        return self._default

    def to_list(self) -> list[Any]:
        """Dense export as a plain Python list."""
        return list(self)

    def with_slot(self, index: int, value: Any) -> "Vector":
        """Return a new vector with one slot replaced."""
        slots = dict(self._slots)
        slots[index] = value
        return Vector(self._size, self._default, slots)

    # -- value semantics -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vector):
            return NotImplemented
        return (
            self._size == other._size
            and self._default == other._default
            and self._slots == other._slots
        )

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash(
                ("Vector", self._size, self._default, frozenset(self._slots.items()))
            )
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        return f"(|{', '.join(repr(v) for v in self)}|)"

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Vector is immutable")
