"""Immutable bag (multiset) values — the paper's ``{{ ... }}`` collections.

A :class:`Bag` records each distinct element together with its
multiplicity. Bags are the natural semantics for OQL ``select`` without
``distinct``. They are hashable (so bags can be nested inside sets or
other bags) and iterate in a canonical deterministic order, which the
evaluator relies on for reproducible results and well-defined heap
threading (paper section 4.2).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator
from typing import Any


class Bag:
    """An immutable multiset.

    >>> b = Bag([1, 2, 2, 3])
    >>> b.count(2)
    2
    >>> len(b)
    4
    >>> b == Bag([2, 1, 3, 2])
    True
    >>> 2 in b
    True
    """

    __slots__ = ("_counts", "_hash")

    def __init__(self, items: Iterable[Any] = ()) -> None:
        if isinstance(items, Bag):
            counts = Counter(items._counts)
        else:
            counts = Counter(items)
        object.__setattr__(self, "_counts", counts)
        object.__setattr__(self, "_hash", None)

    @classmethod
    def from_counts(cls, counts: dict[Any, int]) -> "Bag":
        """Build a bag directly from an element -> multiplicity mapping."""
        bag = cls()
        clean = Counter()
        for element, n in counts.items():
            if n < 0:
                raise ValueError(f"negative multiplicity {n} for {element!r}")
            if n:
                clean[element] = n
        object.__setattr__(bag, "_counts", clean)
        return bag

    # -- container protocol ----------------------------------------------------

    def __len__(self) -> int:
        return sum(self._counts.values())

    def __contains__(self, item: Any) -> bool:
        return item in self._counts

    def __iter__(self) -> Iterator[Any]:
        """Iterate elements with multiplicity, in canonical order."""
        from repro.values.compare import canonical_key

        for element in sorted(self._counts, key=canonical_key):
            for _ in range(self._counts[element]):
                yield element

    def count(self, item: Any) -> int:
        """Multiplicity of ``item`` (0 if absent)."""
        return self._counts.get(item, 0)

    def distinct(self) -> frozenset:
        """The set of distinct elements."""
        return frozenset(self._counts)

    def counts(self) -> dict[Any, int]:
        """A fresh element -> multiplicity dict."""
        return dict(self._counts)

    # -- bag algebra -------------------------------------------------------------

    def union(self, other: "Bag") -> "Bag":
        """Additive union — the bag monoid's merge.

        >>> sorted(Bag([1, 2]).union(Bag([2, 3])))
        [1, 2, 2, 3]
        """
        merged = Counter(self._counts)
        merged.update(other._counts)
        return Bag.from_counts(merged)

    def __add__(self, other: "Bag") -> "Bag":
        if not isinstance(other, Bag):
            return NotImplemented
        return self.union(other)

    def difference(self, other: "Bag") -> "Bag":
        """Multiplicity-wise difference (monus)."""
        result = Counter(self._counts)
        result.subtract(other._counts)
        return Bag.from_counts({e: n for e, n in result.items() if n > 0})

    def intersection(self, other: "Bag") -> "Bag":
        """Multiplicity-wise minimum."""
        result = {
            e: min(n, other._counts[e])
            for e, n in self._counts.items()
            if e in other._counts
        }
        return Bag.from_counts(result)

    # -- value semantics -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bag):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash(frozenset(self._counts.items()))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        inner = ", ".join(repr(e) for e in self)
        return f"{{{{{inner}}}}}"

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Bag is immutable")
