"""Canonical total ordering and conversion helpers for runtime values.

Python's builtin ordering is partial across types (``1 < "a"`` raises),
but the evaluator needs a *total* deterministic order so that iteration
over sets and bags is reproducible — the paper's section 4.2 heap
threading is only well-defined if qualifier evaluation visits elements in
a fixed order. :func:`canonical_key` maps every library value to a key
that sorts consistently: first by a type rank, then structurally.
"""

from __future__ import annotations

from typing import Any

from repro.values.bag import Bag
from repro.values.oset import OrderedSet
from repro.values.record import Record
from repro.values.vector import Vector

# Type ranks: lower ranks sort first. Booleans rank before numbers because
# bool is a subtype of int in Python and must not be conflated with it.
_RANK_NONE = 0
_RANK_BOOL = 1
_RANK_NUMBER = 2
_RANK_STRING = 3
_RANK_TUPLE = 4
_RANK_SET = 5
_RANK_BAG = 6
_RANK_OSET = 7
_RANK_RECORD = 8
_RANK_VECTOR = 9
_RANK_OTHER = 10


def canonical_key(value: Any) -> tuple:
    """A key giving a total, deterministic order over all library values.

    >>> sorted([True, 2, "a", None], key=canonical_key)
    [None, True, 2, 'a']
    >>> sorted([(2, 1), (1, 9)], key=canonical_key)
    [(1, 9), (2, 1)]
    """
    if value is None:
        return (_RANK_NONE,)
    if isinstance(value, bool):
        return (_RANK_BOOL, value)
    if isinstance(value, (int, float)):
        return (_RANK_NUMBER, value)
    if isinstance(value, str):
        return (_RANK_STRING, value)
    if isinstance(value, tuple):
        return (_RANK_TUPLE, tuple(canonical_key(v) for v in value))
    if isinstance(value, frozenset):
        inner = sorted((canonical_key(v) for v in value))
        return (_RANK_SET, tuple(inner))
    if isinstance(value, Bag):
        inner = sorted((canonical_key(e), n) for e, n in value.counts().items())
        return (_RANK_BAG, tuple(inner))
    if isinstance(value, OrderedSet):
        return (_RANK_OSET, tuple(canonical_key(v) for v in value))
    if isinstance(value, Record):
        inner = tuple(sorted((k, canonical_key(v)) for k, v in value.items()))
        return (_RANK_RECORD, inner)
    if isinstance(value, Vector):
        return (_RANK_VECTOR, len(value), tuple(canonical_key(v) for v in value))
    # Objects (OIDs) and any other hashables: order by type name then repr,
    # which is stable within a process run.
    return (_RANK_OTHER, type(value).__name__, repr(value))


def canonical_sorted(values: Any) -> list:
    """Sort any iterable of library values into canonical order."""
    return sorted(values, key=canonical_key)


def to_python(value: Any) -> Any:
    """Convert a library value into plain Python data for display.

    Tuples used as list-monoid carriers become lists, frozensets become
    sets, bags become sorted lists of (element, count) free form lists,
    records become dicts, vectors become lists. Scalars pass through.

    >>> to_python((1, 2, 3))
    [1, 2, 3]
    >>> to_python(Record(a=1))
    {'a': 1}
    """
    if isinstance(value, tuple):
        return [to_python(v) for v in value]
    if isinstance(value, frozenset):
        return {_freeze_for_set(to_python(v)) for v in value}
    if isinstance(value, Bag):
        return [to_python(v) for v in value]
    if isinstance(value, OrderedSet):
        return [to_python(v) for v in value]
    if isinstance(value, Record):
        return {k: to_python(v) for k, v in value.items()}
    if isinstance(value, Vector):
        return [to_python(v) for v in value]
    return value


def _freeze_for_set(value: Any) -> Any:
    """Make a to_python result hashable again so it can live in a set."""
    if isinstance(value, list):
        return tuple(_freeze_for_set(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze_for_set(v)) for k, v in value.items()))
    if isinstance(value, set):
        return frozenset(value)
    return value
