"""Ordered sets — the paper's ``oset`` monoid carrier.

An :class:`OrderedSet` is a duplicate-free sequence. Its merge is the
paper's definition ``x (+) y = x ++ (y -- x)``: append the elements of
``y`` that do not already occur in ``x``, preserving first-occurrence
order. The paper's worked example: ``[2,5,3,1] (+) [3,2,6] = [2,5,3,1,6]``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Any


class OrderedSet(Sequence[Any]):
    """An immutable sequence without duplicates, in first-occurrence order.

    >>> OrderedSet([2, 5, 3, 1]).union(OrderedSet([3, 2, 6]))
    OrderedSet([2, 5, 3, 1, 6])
    >>> list(OrderedSet([1, 2, 1, 3]))
    [1, 2, 3]
    """

    __slots__ = ("_items", "_index", "_hash")

    def __init__(self, items: Iterable[Any] = ()) -> None:
        seen: dict[Any, None] = {}
        for item in items:
            if item not in seen:
                seen[item] = None
        object.__setattr__(self, "_items", tuple(seen))
        object.__setattr__(self, "_index", frozenset(seen))
        object.__setattr__(self, "_hash", None)

    # -- sequence protocol -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index):
        result = self._items[index]
        if isinstance(index, slice):
            return OrderedSet(result)
        return result

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __contains__(self, item: Any) -> bool:
        return item in self._index

    # -- oset algebra --------------------------------------------------------------

    def union(self, other: "OrderedSet") -> "OrderedSet":
        """The oset merge: ``self ++ (other -- self)``."""
        extra = [item for item in other._items if item not in self._index]
        merged = OrderedSet.__new__(OrderedSet)
        items = self._items + tuple(extra)
        object.__setattr__(merged, "_items", items)
        object.__setattr__(merged, "_index", frozenset(items))
        object.__setattr__(merged, "_hash", None)
        return merged

    def __add__(self, other: "OrderedSet") -> "OrderedSet":
        if not isinstance(other, OrderedSet):
            return NotImplemented
        return self.union(other)

    # -- value semantics --------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OrderedSet):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash(("OrderedSet", self._items))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        return f"OrderedSet([{', '.join(repr(i) for i in self._items)}])"

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("OrderedSet is immutable")
