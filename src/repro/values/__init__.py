"""Runtime value model: immutable, hashable carriers for every monoid.

The calculus allows arbitrary nesting of collections (a set of bags of
records of lists, ...), so every carrier here is immutable and hashable:

- ``tuple`` — the ``list`` monoid carrier (and the calculus' tuple type)
- ``frozenset`` — the ``set`` monoid carrier
- :class:`Bag` — the ``bag`` monoid carrier (multiset)
- :class:`OrderedSet` — the ``oset`` monoid carrier
- :class:`Record` — product values ``<a=..., b=...>``
- :class:`Vector` — the ``M[n]`` vector monoid carrier (section 4.1)

:func:`canonical_key` supplies the total deterministic order the
evaluator uses when iterating sets and bags.
"""

from repro.values.bag import Bag
from repro.values.compare import canonical_key, canonical_sorted, to_python
from repro.values.oset import OrderedSet
from repro.values.record import Record
from repro.values.vector import Vector

__all__ = [
    "Bag",
    "OrderedSet",
    "Record",
    "Vector",
    "canonical_key",
    "canonical_sorted",
    "to_python",
]
