"""Immutable record values (the paper's ``<a1=e1, ..., an=en>`` structs).

Records are the calculus' product type. They behave like a read-only
mapping from field names to values, support attribute-style access
(``r.name``) for ergonomic use from examples and tests, and are hashable
so they can be elements of sets and bags.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from typing import Any

from repro.errors import EvaluationError


class Record(Mapping[str, Any]):
    """An immutable, hashable record ``<field=value, ...>``.

    Field order is preserved as given (insertion order), but equality and
    hashing are order-insensitive: two records are equal iff they have the
    same field/value pairs, matching the paper's structural semantics.

    >>> r = Record(name="Portland", population=500_000)
    >>> r.name
    'Portland'
    >>> r["population"]
    500000
    >>> Record(a=1, b=2) == Record(b=2, a=1)
    True
    """

    __slots__ = ("_fields", "_hash")

    def __init__(self, _fields: Mapping[str, Any] | None = None, **kwargs: Any) -> None:
        fields: dict[str, Any] = {}
        if _fields is not None:
            fields.update(_fields)
        fields.update(kwargs)
        object.__setattr__(self, "_fields", fields)
        object.__setattr__(self, "_hash", None)

    # -- Mapping protocol ---------------------------------------------------

    def __getitem__(self, key: str) -> Any:
        try:
            return self._fields[key]
        except KeyError:
            raise EvaluationError(
                f"record has no field {key!r} (fields: {', '.join(self._fields)})"
            ) from None

    def __contains__(self, key: object) -> bool:
        # Mapping's default relies on __getitem__ raising KeyError, but we
        # raise EvaluationError there for better query diagnostics.
        return key in self._fields

    def __iter__(self) -> Iterator[str]:
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    # -- attribute access ----------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        # Only called when normal attribute lookup fails, i.e. for fields.
        if name.startswith("_"):
            raise AttributeError(name)
        try:
            return self._fields[name]
        except KeyError:
            raise AttributeError(
                f"record has no field {name!r} (fields: {', '.join(self._fields)})"
            ) from None

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Record is immutable")

    # -- value semantics -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash(frozenset(self._fields.items()))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._fields.items())
        return f"<{inner}>"

    # -- functional update ----------------------------------------------------

    def replace(self, **updates: Any) -> "Record":
        """Return a new record with the given fields replaced.

        >>> Record(a=1, b=2).replace(b=3)
        <a=1, b=3>
        """
        fields = dict(self._fields)
        for key, value in updates.items():
            if key not in fields:
                raise EvaluationError(f"record has no field {key!r} to replace")
            fields[key] = value
        return Record(fields)

    def with_field(self, name: str, value: Any) -> "Record":
        """Return a new record with ``name`` added or overwritten."""
        fields = dict(self._fields)
        fields[name] = value
        return Record(fields)

    def fields(self) -> tuple[str, ...]:
        """The record's field names, in declaration order."""
        return tuple(self._fields)
